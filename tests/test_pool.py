"""Tests for the parallel sweep engine: spec serialization round-trips,
serial/parallel/cached determinism, per-network message-id isolation,
and the sequence-seeded fault sweeps."""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments import (WorkloadSpec, code_version_token,
                               run_sweep, run_workload, sweep_fault_rng)
from repro.routing.registry import make_algorithm
from repro.sim import (Mesh2D, Network, SimConfig,
                       random_link_faults)


def small_spec(**over) -> WorkloadSpec:
    kw = dict(topology=Mesh2D(4, 4), algorithm="xy", load=0.08,
              cycles=300, warmup=50, seed=5)
    kw.update(over)
    return WorkloadSpec(**kw)


def _spec_key_in_subprocess(payload: dict) -> str:
    """Round-trip the spec through a dict in another process and hash
    it there (top-level so it pickles)."""
    return WorkloadSpec.from_dict(payload).spec_key()


class TestSpecRoundTrip:
    def test_to_dict_from_dict_round_trip(self):
        spec = small_spec(algorithm="nafta",
                          fault_links=[(5, 9), (1, 2)], fault_nodes=[3])
        d = spec.to_dict()
        rebuilt = WorkloadSpec.from_dict(d)
        assert rebuilt.to_dict() == d
        assert rebuilt.spec_key() == spec.spec_key()
        assert rebuilt.build_topology().n_nodes == 16

    def test_to_dict_is_json_canonical(self):
        d = small_spec(fault_links=[(9, 5)]).to_dict()
        assert json.loads(json.dumps(d)) == d
        # link endpoints are canonicalized (a < b)
        assert d["fault_links"] == [[5, 9]]

    def test_spec_key_invariant_under_fault_ordering(self):
        a = small_spec(fault_links=[(1, 2), (5, 9)], fault_nodes=[7, 3])
        b = small_spec(fault_links=[(9, 5), (2, 1)], fault_nodes=[3, 7])
        assert a.spec_key() == b.spec_key()

    def test_spec_key_distinguishes_fields(self):
        base = small_spec()
        assert base.spec_key() != small_spec(seed=6).spec_key()
        assert base.spec_key() != small_spec(load=0.09).spec_key()
        assert base.spec_key() != small_spec(drain=False).spec_key()
        assert base.spec_key() != \
            small_spec(topology=Mesh2D(4, 5)).spec_key()

    def test_spec_key_includes_code_token(self):
        spec = small_spec()
        assert spec.spec_key("tokenA") != spec.spec_key("tokenB")
        assert spec.spec_key() == spec.spec_key(code_version_token())

    def test_policy_and_pattern_kwargs_round_trip(self):
        spec = small_spec(algorithm="nafta", pattern="bursty",
                          pattern_kwargs={"duty": 0.25, "burst_len": 20},
                          policy="flowlet", policy_seed=9)
        d = spec.to_dict()
        rebuilt = WorkloadSpec.from_dict(d)
        assert rebuilt.to_dict() == d
        assert rebuilt.policy == "flowlet"
        assert rebuilt.policy_seed == 9
        assert rebuilt.pattern_kwargs == {"duty": 0.25, "burst_len": 20}
        assert rebuilt.spec_key() == spec.spec_key()

    def test_default_policy_not_serialized(self):
        # pre-policy cache entries must keep their spec keys: default
        # values stay out of the dict entirely
        d = small_spec().to_dict()
        assert "policy" not in d
        assert "policy_seed" not in d
        assert "pattern_kwargs" not in d

    def test_policy_changes_spec_key(self):
        base = small_spec()
        assert base.spec_key() != small_spec(policy="ecmp").spec_key()
        assert small_spec(policy="ecmp", policy_seed=1).spec_key() != \
            small_spec(policy="ecmp", policy_seed=2).spec_key()

    def test_unknown_policy_rejected_at_spec_parse(self):
        with pytest.raises(ValueError, match="unknown selection policy"):
            small_spec(policy="nope")
        with pytest.raises(ValueError, match="unknown selection policy"):
            WorkloadSpec.from_dict({**small_spec().to_dict(),
                                    "policy": "nope"})

    def test_unknown_pattern_rejected_at_spec_parse(self):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            small_spec(pattern="nope")
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            WorkloadSpec.from_dict({**small_spec().to_dict(),
                                    "pattern": "nope"})

    def test_spec_key_stable_across_processes(self):
        spec = small_spec(algorithm="nafta", fault_links=[(5, 9)])
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_spec_key_in_subprocess,
                                 spec.to_dict()).result()
        assert remote == spec.spec_key()

    def test_topology_description_spelling_is_equivalent(self):
        live = small_spec()
        described = small_spec(
            topology={"kind": "mesh2d", "width": 4, "height": 4})
        assert live.spec_key() == described.spec_key()
        assert json.dumps(run_workload(described), sort_keys=True) == \
            json.dumps(run_workload(live), sort_keys=True)


class TestSweepDeterminism:
    def specs(self):
        return [small_spec(algorithm=algo, load=load)
                for algo in ("xy", "nafta") for load in (0.05, 0.12)]

    def test_serial_parallel_and_cache_byte_identical(self, tmp_path):
        dump = lambda rows: json.dumps(rows, sort_keys=True)  # noqa: E731
        serial_stats, par_stats, warm_stats = {}, {}, {}
        serial = run_sweep(self.specs(), workers=0, cache=False,
                           stats=serial_stats)
        parallel = run_sweep(self.specs(), workers=2, cache=True,
                             cache_dir=tmp_path, stats=par_stats)
        warm = run_sweep(self.specs(), workers=2, cache=True,
                         cache_dir=tmp_path, stats=warm_stats)
        assert dump(serial) == dump(parallel) == dump(warm)
        assert serial_stats["cache_hits"] == 0
        assert par_stats["cache_hits"] == 0 and par_stats["simulated"] == 4
        assert warm_stats["cache_hits"] == 4 and warm_stats["simulated"] == 0
        # the cache directory holds one content-addressed file per point
        assert len(list(tmp_path.glob("*.json"))) == 4

    def test_results_in_submission_order(self, tmp_path):
        specs = self.specs()
        results = run_sweep(specs, workers=2, cache=False)
        assert [r["algorithm"] for r in results] == \
            [s.algorithm for s in specs]
        assert [r["load"] for r in results] == [s.load for s in specs]

    def test_progress_lines(self, tmp_path):
        lines = []
        run_sweep(self.specs()[:2], workers=0, cache=True,
                  cache_dir=tmp_path, progress=lines.append, label="unit")
        assert len(lines) == 2
        assert lines[-1].startswith("[unit] 2/2 done")
        assert "cache hits" in lines[-1] and "ETA" in lines[-1]

    def test_cache_miss_on_spec_change(self, tmp_path):
        run_sweep(self.specs(), workers=0, cache=True, cache_dir=tmp_path)
        stats: dict = {}
        changed = [small_spec(algorithm="xy", load=0.05, seed=99)]
        run_sweep(changed, workers=0, cache=True, cache_dir=tmp_path,
                  stats=stats)
        assert stats["cache_hits"] == 0 and stats["simulated"] == 1


class TestWorkerClamping:
    """``workers=N`` never over-subscribes the machine: requests clamp
    to ``os.cpu_count()`` (and the payload count), and anything that
    clamps to <= 1 runs serially in-process instead of paying
    process-pool overhead."""

    def specs(self):
        return [small_spec(load=load) for load in (0.05, 0.12)]

    def test_effective_workers_clamps(self, monkeypatch):
        import os

        from repro.experiments.pool import effective_workers
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert effective_workers(8, 100) == 2      # CPU-bound
        assert effective_workers(2, 1) == 1        # payload-bound
        assert effective_workers(0, 100) == 0      # explicit serial
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert effective_workers(8, 100) == 1      # unknown CPUs: serial

    def test_single_cpu_falls_back_to_serial(self, monkeypatch, tmp_path):
        """On a 1-CPU machine even ``workers=4`` must not build a
        process pool — and the cache semantics stay identical."""
        import os

        from repro.experiments import pool as pool_mod

        monkeypatch.setattr(os, "cpu_count", lambda: 1)

        def boom(*a, **kw):  # pragma: no cover - fires only on a bug
            raise AssertionError("process pool built on a 1-CPU machine")

        monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", boom)
        stats: dict = {}
        cold = run_sweep(self.specs(), workers=4, cache=True,
                         cache_dir=tmp_path, stats=stats)
        assert stats["workers"] == 1 and stats["simulated"] == 2
        warm_stats: dict = {}
        warm = run_sweep(self.specs(), workers=4, cache=True,
                         cache_dir=tmp_path, stats=warm_stats)
        assert warm_stats["cache_hits"] == 2
        assert json.dumps(cold, sort_keys=True) == \
            json.dumps(warm, sort_keys=True)

    def test_pool_path_when_cpus_allow(self, monkeypatch, tmp_path):
        """With enough CPUs the pool path runs and its results (and
        cache files) are byte-identical to the serial path."""
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        stats: dict = {}
        parallel = run_sweep(self.specs(), workers=2, cache=True,
                             cache_dir=tmp_path, stats=stats)
        assert stats["workers"] == 2
        serial = run_sweep(self.specs(), workers=0, cache=False)
        assert json.dumps(parallel, sort_keys=True) == \
            json.dumps(serial, sort_keys=True)
        # the pool-written cache replays into the serial path
        warm_stats: dict = {}
        warm = run_sweep(self.specs(), workers=0, cache=True,
                         cache_dir=tmp_path, stats=warm_stats)
        assert warm_stats["cache_hits"] == 2
        assert json.dumps(warm, sort_keys=True) == \
            json.dumps(serial, sort_keys=True)


class TestMessageIdIsolation:
    def test_concurrent_networks_do_not_share_ids(self):
        """Two in-process networks must each number messages from 0 —
        the old module-global counter cross-contaminated them."""
        nets = [Network(Mesh2D(3, 3), make_algorithm("xy"),
                        config=SimConfig()) for _ in range(2)]
        for net in nets:
            net.offer(0, 4, 2)
        for net in nets:
            net.offer(4, 8, 2)
        for net in nets:
            assert sorted(net.messages) == [0, 1]

    def test_reset_message_ids_shim_still_works(self):
        from repro.sim import Message, reset_message_ids
        with pytest.warns(DeprecationWarning, match="reset_message_ids"):
            reset_message_ids()
        a = Message.create(0, 1, 2, 0)
        with pytest.warns(DeprecationWarning):
            reset_message_ids()
        b = Message.create(0, 1, 2, 0)
        assert a.header.msg_id == b.header.msg_id == 0


class TestFaultSweepSeeding:
    def test_sequence_seeding_pinned_mesh_faults(self):
        """Pin the per-point fault sets of the mesh sweep's default
        seed so cache keys (and published sweep tables) stay stable."""
        topo = Mesh2D(8, 8)
        assert random_link_faults(topo, 2, sweep_fault_rng(7, 2)) == \
            [(16, 24), (9, 10)]
        assert random_link_faults(topo, 4, sweep_fault_rng(7, 4)) == \
            [(31, 39), (11, 19), (44, 52), (17, 18)]

    def test_sequence_seeding_pinned_cube_faults(self):
        def pick(seed, n):
            rng = sweep_fault_rng(seed, n)
            nodes = []
            while len(nodes) < n:
                cand = int(rng.integers(0, 16))
                if cand not in nodes:
                    nodes.append(cand)
            return nodes
        assert pick(3, 2) == [13, 0]
        assert pick(3, 3) == [5, 1, 4]

    def test_adjacent_base_seeds_do_not_collide(self):
        """The replaced ``seed + n`` scheme made (seed=7, n=1) and
        (seed=6, n=2) draw from one stream; sequence seeding keeps
        every (seed, point) pair distinct."""
        topo = Mesh2D(8, 8)
        a = random_link_faults(topo, 3, sweep_fault_rng(7, 1))
        b = random_link_faults(topo, 3, sweep_fault_rng(6, 2))
        assert a != b


class TestSweepRunners:
    def test_mesh_fault_sweep_parallel_matches_serial(self):
        from repro.experiments import mesh_fault_sweep
        kw = dict(width=4, height=4, load=0.08, cycles=300, warmup=50)
        serial = mesh_fault_sweep("nafta", [0, 2], **kw)
        parallel = mesh_fault_sweep("nafta", [0, 2], workers=2, **kw)
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)
        assert [r["n_link_faults"] for r in serial] == [0, 2]

    def test_cube_fault_sweep_labels(self):
        from repro.experiments import cube_fault_sweep
        rows = cube_fault_sweep("route_c", [1], dimension=3, load=0.08,
                                cycles=300, warmup=50)
        assert rows[0]["n_node_faults"] == 1
        assert rows[0]["n_faults"] == 1

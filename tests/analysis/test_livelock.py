"""Tests for the livelock analysis (Section 3, Lifelock Avoidance)."""

import numpy as np

from repro.analysis import (certify_progress, nafta_bound, path_inflation)
from repro.routing import NaftaRouting
from repro.sim import (FaultSchedule, Mesh2D, Network, TrafficGenerator,
                       random_link_faults)


def finished_network(n_faults=0, seed=5, load=0.12, cycles=1200):
    topo = Mesh2D(6, 6)
    net = Network(topo, NaftaRouting())
    if n_faults:
        rng = np.random.default_rng(seed)
        links = random_link_faults(topo, n_faults, rng)
        net.schedule_faults(FaultSchedule.static(links=links))
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=load,
                                        message_length=3, seed=seed + 1))
    net.run(cycles)
    net.traffic = None
    net.run_until_drained()
    return net


class TestPathInflation:
    def test_fault_free_paths_are_minimal(self):
        net = finished_network()
        infl = path_inflation(net)
        assert infl.max == 1.0
        assert infl.misrouted_share == 0.0

    def test_faults_inflate_some_paths(self):
        net = finished_network(n_faults=5)
        infl = path_inflation(net, bound=nafta_bound(net))
        assert infl.misrouted_share > 0.0
        assert infl.mean > 1.0
        assert infl.max <= infl.bound

    def test_summary_keys(self):
        net = finished_network()
        s = path_inflation(net).summary()
        assert {"messages", "mean_inflation", "p99_inflation",
                "misrouted_share"} <= set(s)


class TestProgressCertificate:
    def test_certificate_holds_fault_free(self):
        net = finished_network()
        cert = certify_progress(net, bound=nafta_bound(net))
        assert cert.holds
        assert cert.declared_unroutable == 0
        assert cert.delivered == cert.accepted

    def test_certificate_holds_with_faults(self):
        net = finished_network(n_faults=6)
        cert = certify_progress(net, bound=nafta_bound(net))
        assert cert.holds
        assert cert.delivered + cert.declared_unroutable == cert.accepted

    def test_certificate_detects_undrained_network(self):
        topo = Mesh2D(6, 6)
        net = Network(topo, NaftaRouting())
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.2,
                                            message_length=4, seed=2))
        net.run(300)  # messages still in flight
        cert = certify_progress(net)
        assert not cert.holds

    def test_bound_violation_detected(self):
        net = finished_network(n_faults=5)
        cert = certify_progress(net, bound=1)  # absurd bound
        assert not cert.holds

"""Tests of the Condition 1-3 checkers (paper Section 2.1)."""

import pytest

from repro.analysis import (check_condition1, check_conditions_2_3,
                            connected_pairs, fraction_links_usable_by_tree,
                            healthy_graph, partition_summary)
from repro.routing import (NaftaRouting, NaraRouting, RouteCRouting,
                           SpanningTreeRouting, XYRouting)
from repro.sim import FaultSchedule, FaultState, Hypercube, Mesh2D, Network


def all_pairs(topo, stride=1):
    return [(s, d) for s in range(0, topo.n_nodes, stride)
            for d in range(0, topo.n_nodes, stride) if s != d]


class TestCondition1:
    def test_nara_fully_adaptive(self):
        net = Network(Mesh2D(5, 5), NaraRouting())
        res = check_condition1(net, all_pairs(net.topology, 3))
        assert res.satisfied

    def test_nafta_fully_adaptive_fault_free(self):
        net = Network(Mesh2D(5, 5), NaftaRouting())
        res = check_condition1(net, all_pairs(net.topology, 3))
        assert res.satisfied

    def test_route_c_adaptive_within_phases(self):
        """ROUTE_C's two-phase scheme ([Kon90]) is fully adaptive only
        within each phase; the paper claims Condition 1 for NAFTA, not
        for ROUTE_C.  Pairs needing only up-flips (src subset of dst)
        are one-phase and fully adaptive; mixed pairs are not."""
        net = Network(Hypercube(4), RouteCRouting())
        up_only = [(s, d) for s in range(16) for d in range(16)
                   if s != d and s & ~d == 0]
        res = check_condition1(net, up_only)
        assert res.satisfied
        mixed = [(1, 2), (5, 10)]
        res = check_condition1(net, mixed)
        assert not res.satisfied

    def test_xy_not_fully_adaptive(self):
        """Oblivious XY offers a single path: Condition 1 must fail for
        pairs with more than one minimal path."""
        net = Network(Mesh2D(4, 4), XYRouting())
        res = check_condition1(net, [(0, 15)])
        assert not res.satisfied

    def test_spanning_tree_not_fully_adaptive(self):
        net = Network(Mesh2D(4, 4), SpanningTreeRouting())
        res = check_condition1(net, [(0, 15), (3, 12)])
        assert not res.satisfied


class TestConditions23:
    def test_nafta_condition2_with_off_path_fault(self):
        topo = Mesh2D(5, 5)
        sched = FaultSchedule.static(nodes=[topo.node_at(4, 4)])
        pairs = [(topo.node_at(0, 0), topo.node_at(3, 1)),
                 (topo.node_at(0, 2), topo.node_at(2, 0)),
                 (topo.node_at(1, 1), topo.node_at(3, 3))]
        res = check_conditions_2_3(topo, NaftaRouting, sched, pairs)
        c2 = res["condition2"]
        assert c2.pairs == 3
        assert c2.minimal == 3  # all delivered minimally

    def test_nafta_condition3_mostly_holds_small_faults(self):
        topo = Mesh2D(5, 5)
        sched = FaultSchedule.static(nodes=[topo.node_at(2, 2)])
        pairs = all_pairs(topo, 4)
        res = check_conditions_2_3(topo, NaftaRouting, sched, pairs)
        c3 = res["condition3"]
        assert c3.delivery_rate >= 0.9

    def test_nafta_condition3_violated_by_deactivation(self):
        """A diagonal fault pair deactivates healthy nodes — messages to
        them are refused although physically connected (the paper's
        concession)."""
        topo = Mesh2D(5, 5)
        sched = FaultSchedule.static(nodes=[topo.node_at(2, 2),
                                            topo.node_at(3, 3)])
        dead_healthy = topo.node_at(2, 3)
        pairs = [(0, dead_healthy)]
        res = check_conditions_2_3(topo, NaftaRouting, sched, pairs)
        c3 = res["condition3"]
        assert c3.pairs == 1
        assert c3.refused == 1

    def test_route_c_condition3_with_two_faults(self):
        topo = Hypercube(4)
        sched = FaultSchedule.static(nodes=[5, 10])
        pairs = [(s, d) for s in range(16) for d in range(16)
                 if s != d and s not in (5, 10) and d not in (5, 10)]
        res = check_conditions_2_3(topo, RouteCRouting, sched, pairs)
        c3 = res["condition3"]
        assert c3.delivery_rate == 1.0

    def test_spanning_tree_condition3_perfect_condition2_poor(self):
        topo = Mesh2D(4, 4)
        sched = FaultSchedule.static(nodes=[topo.node_at(1, 1)])
        pairs = all_pairs(topo, 2)
        pairs = [(s, d) for s, d in pairs
                 if s != topo.node_at(1, 1) and d != topo.node_at(1, 1)]
        res = check_conditions_2_3(topo, SpanningTreeRouting, sched, pairs)
        assert res["condition3"].delivery_rate == 1.0
        # tree routing rarely takes minimal paths (the paper's point)
        assert res["condition2"].minimal_rate < 0.9


class TestReachability:
    def test_healthy_graph_drops_faulty(self):
        topo = Mesh2D(4, 4)
        faults = FaultState(topo)
        faults.fail_node(5)
        g = healthy_graph(topo, faults)
        assert 5 not in g
        assert g.number_of_nodes() == 15

    def test_connected_pairs_excludes_cross_partition(self):
        topo = Mesh2D(3, 1)  # a path: 0 - 1 - 2
        faults = FaultState(topo)
        faults.fail_node(1)
        pairs = connected_pairs(topo, faults)
        assert (0, 2) not in pairs
        assert pairs == []

    def test_partition_summary(self):
        topo = Mesh2D(3, 1)
        faults = FaultState(topo)
        faults.fail_node(1)
        s = partition_summary(topo, faults)
        assert s["components"] == 2
        assert s["largest_component"] == 1

    def test_tree_uses_fraction_of_links(self):
        topo = Mesh2D(6, 6)
        faults = FaultState(topo)
        frac = fraction_links_usable_by_tree(topo, faults)
        assert frac == pytest.approx(35 / 60)

"""CDG deadlock-freedom checks — the machine-checked counterpart of
the deadlock arguments in the routing module docstrings."""

import pytest

from repro.analysis import build_cdg, check_deadlock_free
from repro.routing import (ECubeRouting, NaftaRouting, NaraRouting,
                           RouteCRouting, SpanningTreeRouting,
                           StrippedRouteC, XYRouting)
from repro.routing.base import RouteDecision, RoutingAlgorithm
from repro.sim import FaultSchedule, Hypercube, Mesh2D, Network


class TestFaultFree:
    @pytest.mark.parametrize("algo_cls", [XYRouting, NaraRouting,
                                          NaftaRouting])
    def test_mesh_algorithms_acyclic(self, algo_cls):
        r = check_deadlock_free(Mesh2D(5, 5), algo_cls())
        assert r.acyclic, r.cycle

    @pytest.mark.parametrize("algo_cls", [ECubeRouting, StrippedRouteC,
                                          RouteCRouting])
    def test_cube_algorithms_acyclic(self, algo_cls):
        r = check_deadlock_free(Hypercube(3), algo_cls())
        assert r.acyclic, r.cycle

    def test_spanning_tree_acyclic(self):
        r = check_deadlock_free(Mesh2D(5, 5), SpanningTreeRouting())
        assert r.acyclic, r.cycle


class TestWithFaults:
    @pytest.mark.parametrize("fault_coords", [
        [(2, 2)],
        [(2, 2), (3, 3)],
        [(1, 2), (2, 2), (3, 2)],        # a wall
        [(0, 2), (1, 2)],                # wall at the west border
    ])
    def test_nafta_acyclic_under_node_faults(self, fault_coords):
        topo = Mesh2D(6, 6)
        sched = FaultSchedule.static(
            nodes=[topo.node_at(*c) for c in fault_coords])
        r = check_deadlock_free(topo, NaftaRouting(), sched)
        assert r.acyclic, r.cycle

    @pytest.mark.parametrize("links", [
        [((2, 2), (3, 2))],
        [((0, 4), (1, 4)), ((2, 3), (2, 4))],
        [((4, 5), (5, 5)), ((4, 4), (5, 4)), ((4, 3), (5, 3))],
    ])
    def test_nafta_acyclic_under_link_faults(self, links):
        topo = Mesh2D(6, 6)
        sched = FaultSchedule.static(
            links=[(topo.node_at(*a), topo.node_at(*b)) for a, b in links])
        r = check_deadlock_free(topo, NaftaRouting(), sched)
        assert r.acyclic, r.cycle

    @pytest.mark.parametrize("dead", [[3], [3, 9], [1, 2, 4]])
    def test_route_c_acyclic_under_faults(self, dead):
        r = check_deadlock_free(Hypercube(4), RouteCRouting(),
                                FaultSchedule.static(nodes=dead))
        assert r.acyclic, r.cycle

    def test_route_c_acyclic_under_link_faults(self):
        r = check_deadlock_free(Hypercube(3), RouteCRouting(),
                                FaultSchedule.static(links=[(0, 1), (2, 6)]))
        assert r.acyclic, r.cycle


class BadUTurnRouting(RoutingAlgorithm):
    """Deliberately broken: minimal XY that also offers the reverse
    port, creating two-channel cycles — the checker must catch it."""

    name = "bad_uturn"
    n_vcs = 1

    def check_topology(self, topology):
        pass

    def route(self, router, header, in_port, in_vc):
        topo = router.topology
        if router.node == header.dst:
            return RouteDecision.delivery()
        ports = list(topo.minimal_ports(router.node, header.dst))
        if in_port >= 0:
            ports.append(in_port)  # the poison: u-turn dependency
        return RouteDecision(candidates=[(p, 0) for p in ports])


class BadRingRouting(RoutingAlgorithm):
    """Deliberately broken: unrestricted clockwise routing on a mesh
    ring — the classic cyclic-dependency example."""

    name = "bad_ring"
    n_vcs = 1

    def check_topology(self, topology):
        pass

    def route(self, router, header, in_port, in_vc):
        from repro.sim import EAST, NORTH, SOUTH, WEST
        topo = router.topology
        if router.node == header.dst:
            return RouteDecision.delivery()
        x, y = topo.coords(router.node)
        w, h = topo.width - 1, topo.height - 1
        # walk the outer ring clockwise: E along the bottom, N up the
        # east side, W along the top, S down the west side
        if y == 0 and x < w:
            port = EAST
        elif x == w and y < h:
            port = NORTH
        elif y == h and x > 0:
            port = WEST
        else:
            port = SOUTH
        return RouteDecision(candidates=[(port, 0)])


class TestNegativeControls:
    def test_uturn_cycle_detected(self):
        r = check_deadlock_free(Mesh2D(4, 4), BadUTurnRouting())
        assert not r.acyclic
        assert len(r.cycle) >= 2

    def test_ring_cycle_detected(self):
        r = check_deadlock_free(Mesh2D(4, 4), BadRingRouting())
        assert not r.acyclic


class TestCdgMechanics:
    def test_channel_counts(self):
        # 5x5 mesh: 40 links x 2 directions x 1 vc = 80 channels for XY
        r = check_deadlock_free(Mesh2D(5, 5), XYRouting())
        assert r.summary()["channels"] == 80

    def test_reachability_pruning(self):
        """The CDG only contains channels some message can use: XY never
        enters a north/south channel and then an east/west one."""
        net = Network(Mesh2D(4, 4), XYRouting())
        r = build_cdg(net)
        from repro.sim import EAST, NORTH, SOUTH, WEST
        for (na, pa, _), (nb, pb, _) in r.graph.edges():
            if pa in (NORTH, SOUTH):
                assert pb in (NORTH, SOUTH), "XY turned off the y axis"

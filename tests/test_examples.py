"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; if they break, the quickstart
breaks.  Each is run in-process (same interpreter, ~seconds each).
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[1] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "mesh_fault_tolerance", "hypercube_route_c",
            "custom_rule_algorithm", "decision_time_study",
            "rule_machine_router"} <= names

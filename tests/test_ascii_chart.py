"""Tests for the ASCII chart renderer."""

from repro.experiments import line_chart


class TestLineChart:
    def test_basic_render(self):
        out = line_chart({"a": [(0, 0), (1, 10)]}, title="T")
        assert out.startswith("T")
        assert "*" in out
        assert "[*=a]" in out

    def test_two_series_distinct_markers(self):
        out = line_chart({"a": [(0, 1)], "b": [(1, 2)]})
        assert "*" in out and "o" in out
        assert "*=a" in out and "o=b" in out

    def test_empty_data(self):
        out = line_chart({"a": []}, title="T")
        assert "(no data)" in out

    def test_log_scale_skips_nonpositive(self):
        out = line_chart({"a": [(0, 0), (1, 100)]}, y_log=True)
        assert "(log y)" in out

    def test_constant_series_does_not_crash(self):
        out = line_chart({"a": [(0, 5), (1, 5), (2, 5)]})
        grid = "\n".join(l for l in out.splitlines() if "|" in l)
        assert grid.count("*") == 3

    def test_extremes_on_borders(self):
        out = line_chart({"a": [(0, 0), (10, 100)]}, width=20, height=5)
        lines = [l for l in out.splitlines() if "|" in l]
        assert lines[0].rstrip().endswith("*|")   # max in top-right
        assert "|*" in lines[-1]                  # min in bottom-left

"""Tests for the shipped DSL rulesets: compilation, behaviour, and
differential checks against the native Python algorithms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import NaraRouting
from repro.routing.rulesets import RULESETS, compile_ruleset, load_ruleset
from repro.routing.rulesets.loader import minimal_cands
from repro.sim import Mesh2D, Network
from repro.sim.flit import Header


def nafta_inputs(**over):
    base = {
        "xpos": 0, "ypos": 0, "xdes": 0, "ydes": 0, "vnin": 0,
        "termin": "false", "sdirin": 0, "fault_present": "false",
        "freemask": {(0,): frozenset({0, 1, 2, 3}),
                     (1,): frozenset({0, 1, 2, 3})},
        "oq": {(0,): 0, (1,): 0, (2,): 0, (3,): 0},
        "samecol": "false", "runok": "false", "mlen": 4,
        "info_kind": "load_info", "info_val": 0, "fault_kind": 0,
    }
    base.update(over)
    return base


class TestCompilation:
    @pytest.mark.parametrize("name", sorted(RULESETS))
    def test_all_rulesets_compile(self, name):
        cp = compile_ruleset(name)
        assert cp.total_table_bits > 0

    def test_route_c_parametric(self):
        small = compile_ruleset("route_c", {"d": 3, "a": 1})
        large = compile_ruleset("route_c", {"d": 8, "a": 3})
        assert large.register_bits() > small.register_bits()

    def test_merged_grows_exponentially(self):
        sizes = {}
        for d in (4, 5, 6):
            cp = compile_ruleset("route_c_merged", {"d": d},
                                 materialize=False)
            sizes[d] = cp.rulebases["decide_all"].n_entries
        assert sizes[5] == 2 * sizes[4]
        assert sizes[6] == 2 * sizes[5]

    def test_no_dead_rules_in_decision_bases(self):
        cp = compile_ruleset("route_c")
        assert cp.rulebases["decide_dir"].stats()["dead_rules"] == []


@pytest.fixture(params=["table", "ast"])
def mode(request):
    return request.param


class TestNaftaRulesetDecisions:
    def test_deliver_at_destination(self, mode):
        eng = load_ruleset("nafta", mode=mode)
        eng.set_inputs(nafta_inputs(xpos=3, ypos=3, xdes=3, ydes=3))
        assert eng.decide("incoming_message", 4, 0) == 4

    def test_single_direction_quadrants(self, mode):
        eng = load_ruleset("nafta", mode=mode)
        cases = [
            (dict(xpos=1, xdes=5, ypos=2, ydes=2, vnin=0), 0),   # east
            (dict(xpos=5, xdes=1, ypos=2, ydes=2, vnin=0), 1),   # west
            (dict(xpos=3, xdes=3, ypos=1, ydes=6, vnin=1), 2),   # north
            (dict(xpos=3, xdes=3, ypos=6, ydes=1, vnin=0), 3),   # south
        ]
        for over, expect in cases:
            eng.set_inputs(nafta_inputs(**over))
            assert eng.decide("incoming_message", 4, 0) == expect

    def test_quadrant_picks_lower_load(self, mode):
        eng = load_ruleset("nafta", mode=mode)
        eng.set_inputs(nafta_inputs(
            xpos=1, xdes=5, ypos=1, ydes=5, vnin=1,
            oq={(0,): 9, (1,): 0, (2,): 1, (3,): 0}))
        assert eng.decide("incoming_message", 4, 1) == 2  # north less loaded

    def test_blocked_output_not_chosen(self, mode):
        eng = load_ruleset("nafta", mode=mode)
        eng.set_inputs(nafta_inputs(
            xpos=1, xdes=5, ypos=1, ydes=5, vnin=1,
            freemask={(0,): frozenset(), (1,): frozenset({0})},
            oq={(0,): 9, (1,): 0, (2,): 0, (3,): 0}))
        # north not free on VC1 -> east despite higher load
        assert eng.decide("incoming_message", 4, 1) == 0

    def test_abstains_with_faults_present(self, mode):
        """With fault knowledge the first base abstains and the ft base
        takes the second interpretation step (paper: 1 vs up to 3)."""
        eng = load_ruleset("nafta", mode=mode)
        eng.set_inputs(nafta_inputs(xpos=1, xdes=5, ypos=2, ydes=2,
                                    fault_present="true"))
        res = eng.call("incoming_message", 4, 0)
        assert not res.has_return

    def test_ft_base_respects_usable_set(self, mode):
        eng = load_ruleset("nafta", mode=mode)
        eng.registers.write("usable_set", frozenset({1, 2, 3}))  # east dead
        eng.set_inputs(nafta_inputs(xpos=1, xdes=5, ypos=1, ydes=5, vnin=1,
                                    fault_present="true"))
        assert eng.decide("in_message_ft", 4) == 2  # only north remains

    def test_terminal_run_requires_runok(self, mode):
        # a VC1 (south-last) message correcting a southward overshoot:
        # the terminal south run may only start with a proven clear
        # column; otherwise the base abstains (escalate to step 3)
        eng = load_ruleset("nafta", mode=mode)
        eng.set_inputs(nafta_inputs(xpos=3, xdes=3, ypos=6, ydes=1, vnin=1,
                                    fault_present="true", samecol="true",
                                    runok="false"))
        res = eng.call("in_message_ft", 4)
        assert not res.has_return  # must escalate to test_exception
        eng.set_inputs(nafta_inputs(xpos=3, xdes=3, ypos=6, ydes=1, vnin=1,
                                    fault_present="true", samecol="true",
                                    runok="true"))
        assert eng.decide("in_message_ft", 4) == 3  # terminal south

    def test_free_minimal_needs_no_run_check(self, mode):
        # northward progress in VC1 is a free move: no clear-run proof
        # is required even in ft mode
        eng = load_ruleset("nafta", mode=mode)
        eng.set_inputs(nafta_inputs(xpos=3, xdes=3, ypos=1, ydes=6, vnin=1,
                                    fault_present="true", samecol="true",
                                    runok="false"))
        assert eng.decide("in_message_ft", 4) == 2

    def test_exception_base_picks_detour(self, mode):
        eng = load_ruleset("nafta", mode=mode)
        eng.set_inputs(nafta_inputs(xpos=2, xdes=6, ypos=3, ydes=3, vnin=1))
        # arrived from the west (in_port 1); east blocked by usable_set
        eng.registers.write("usable_set", frozenset({1, 2}))
        out = eng.decide("test_exception", 1)
        assert out == 2  # north, never back west

    def test_stuck_emitted_when_no_detour(self, mode):
        eng = load_ruleset("nafta", mode=mode)
        eng.set_inputs(nafta_inputs(xpos=0, xdes=6, ypos=0, ydes=0, vnin=0))
        eng.registers.write("usable_set", frozenset())
        res = eng.call("test_exception", 1)
        assert any(e.event == "declare_stuck" for e in res.emissions)


class TestNaftaDifferential:
    """DSL incoming_message == native NARA on the fault-free minimal
    decision (same candidate structure, same adaptivity criterion)."""

    @settings(max_examples=120, deadline=None)
    @given(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7),
           st.integers(0, 7),
           st.lists(st.integers(0, 63), min_size=4, max_size=4))
    def test_matches_nara(self, xpos, ypos, xdes, ydes, loads):
        if (xpos, ypos) == (xdes, ydes):
            return
        topo = Mesh2D(8, 8)
        net = Network(topo, NaraRouting())
        src = topo.node_at(xpos, ypos)
        dst = topo.node_at(xdes, ydes)
        hdr = Header(msg_id=0, src=src, dst=dst, length=2, created=0)
        router = net.routers[src]
        router.output_load = lambda pid: loads[pid] if pid >= 0 else 0  # noqa: E731
        decision = net.algorithm.route(router, hdr, -1, 0)
        vn = hdr.fields["vn"]
        eng = load_ruleset("nafta")
        eng.set_inputs(nafta_inputs(
            xpos=xpos, ypos=ypos, xdes=xdes, ydes=ydes, vnin=vn,
            oq={(i,): loads[i] for i in range(4)}))
        out = eng.decide("incoming_message", 4, vn)
        assert out == decision.candidates[0][0]

    def test_minimal_cands_function_matches_nara_structure(self):
        topo = Mesh2D(8, 8)
        for src in (0, 9, 27, 63):
            for dst in (5, 42, 56):
                if src == dst:
                    continue
                from repro.routing.nara import (VN_FREE, VN_TERMINAL,
                                                assign_virtual_network)
                vn = assign_virtual_network(topo, src, dst)
                x, y = topo.coords(src)
                dx, dy = topo.coords(dst)
                got = minimal_cands(x, y, dx, dy, vn)
                want = {p for p in topo.minimal_ports(src, dst)
                        if p in VN_FREE[vn]}
                if VN_TERMINAL[vn] in topo.minimal_ports(src, dst) and x == dx:
                    want.add(VN_TERMINAL[vn])
                assert got == frozenset(want)


class TestRouteCRuleset:
    def test_decide_dir_prefers_safe_up(self, mode):
        eng = load_ruleset("route_c", mode=mode)
        eng.set_inputs({
            "up_set": frozenset({0, 2}), "down_set": frozenset({4}),
            "usable": frozenset({0, 2, 4}), "safe_mask": frozenset({2, 4}),
            "at_dest": "false", "qload": {}, "new_state": {},
        })
        assert eng.decide("decide_dir") == frozenset({2})

    def test_decide_dir_down_phase_after_up(self, mode):
        eng = load_ruleset("route_c", mode=mode)
        eng.set_inputs({
            "up_set": frozenset(), "down_set": frozenset({1, 3}),
            "usable": frozenset({1, 3}), "safe_mask": frozenset({1, 3}),
            "at_dest": "false", "qload": {}, "new_state": {},
        })
        assert eng.decide("decide_dir") == frozenset({1, 3})

    def test_decide_dir_detour_set(self, mode):
        eng = load_ruleset("route_c", mode=mode)
        eng.set_inputs({
            "up_set": frozenset({0}), "down_set": frozenset(),
            "usable": frozenset({3, 5}), "safe_mask": frozenset(),
            "at_dest": "false", "qload": {}, "new_state": {},
        })
        assert eng.decide("decide_dir") == frozenset({3, 5})

    def test_decide_vc_class_increment(self, mode):
        eng = load_ruleset("route_c", mode=mode)
        eng.set_inputs({"qload": {}, "new_state": {}})
        assert eng.decide("decide_vc", 1, "false", 0) == 1
        assert eng.decide("decide_vc", 1, "true", 0) == 2

    def test_decide_vc_exhausted_emits_stuck(self, mode):
        eng = load_ruleset("route_c", mode=mode)
        eng.set_inputs({"qload": {}, "new_state": {}})
        res = eng.call("decide_vc", 4, "true", 0)
        assert not res.has_return
        assert any(e.event == "stuck" for e in res.emissions)

    def test_update_state_counts_and_propagates(self, mode):
        eng = load_ruleset("route_c", mode=mode)
        eng.set_inputs({"new_state": {(i,): "safe" for i in range(6)},
                        "qload": {}})
        # first faulty neighbour: counters only
        eng.set_inputs({"new_state": {(0,): "faulty"}, "qload": {}})
        eng.post("update_state", 0)
        eng.run()
        assert eng.registers.read("number_faulty") == 1
        assert eng.registers.read("state") == "safe"
        # second faulty neighbour: strongly unsafe + broadcast
        eng.set_inputs({"new_state": {(1,): "lfault"}, "qload": {}})
        eng.post("update_state", 1)
        eng.run()
        assert eng.registers.read("state") == "sunsafe"
        ext = eng.drain_external()
        assert sum(1 for e in ext if e.event == "send_newmessage") == 6

    def test_update_state_two_unsafe_neighbors(self, mode):
        eng = load_ruleset("route_c", mode=mode)
        eng.set_inputs({"new_state": {(2,): "ounsafe"}, "qload": {}})
        eng.post("update_state", 2)
        eng.run()
        assert eng.registers.read("state") == "safe"
        assert eng.registers.read("number_unsafe") == 1
        eng.set_inputs({"new_state": {(3,): "sunsafe"}, "qload": {}})
        eng.post("update_state", 3)
        eng.run()
        assert eng.registers.read("state") == "ounsafe"
        assert eng.registers.read("number_unsafe") == 2

"""Tests for k-ary n-cube dimension-order routing."""

import pytest

from repro.analysis import check_deadlock_free
from repro.routing import KAryNCubeDOR, RoutingError
from repro.sim import KAryNCube, Mesh2D, Network, SimConfig, TrafficGenerator


class TestKAryNCubeDOR:
    def test_wrong_topology_rejected(self):
        with pytest.raises(RoutingError):
            Network(Mesh2D(4, 4), KAryNCubeDOR())

    def test_minimal_delivery(self):
        topo = KAryNCube(4, 3)
        net = Network(topo, KAryNCubeDOR())
        src = topo.node_at((0, 0, 0))
        dst = topo.node_at((2, 3, 1))
        m = net.offer(src, dst, 3)
        net.run_until_drained()
        assert m.delivered is not None
        assert m.hops == topo.distance(src, dst) + 1

    def test_takes_short_way_around(self):
        topo = KAryNCube(5, 2)
        net = Network(topo, KAryNCubeDOR(), config=SimConfig(trace_paths=True))
        src = topo.node_at((0, 0))
        dst = topo.node_at((4, 0))  # one hop backwards around the ring
        m = net.offer(src, dst, 2)
        net.run_until_drained()
        assert m.hops == 2  # 1 wrap hop + ejection

    def test_dimension_order_in_trace(self):
        topo = KAryNCube(4, 3)
        net = Network(topo, KAryNCubeDOR(), config=SimConfig(trace_paths=True))
        src = topo.node_at((0, 0, 0))
        dst = topo.node_at((2, 2, 2))
        m = net.offer(src, dst, 2)
        net.run_until_drained()
        dims = []
        trace = m.header.fields["trace"]
        for a, b in zip(trace, trace[1:]):
            ca, cb = topo.coords(a), topo.coords(b)
            dims.append(next(i for i in range(3) if ca[i] != cb[i]))
        assert dims == sorted(dims)  # ascending dimension order

    def test_uniform_load_delivers(self):
        topo = KAryNCube(4, 2)
        net = Network(topo, KAryNCubeDOR())
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.15,
                                            message_length=4, seed=3))
        net.run(1200)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()

    def test_cdg_acyclic(self):
        r = check_deadlock_free(KAryNCube(4, 2), KAryNCubeDOR())
        assert r.acyclic, r.cycle

    def test_cdg_acyclic_3d(self):
        r = check_deadlock_free(KAryNCube(3, 3), KAryNCubeDOR())
        assert r.acyclic, r.cycle

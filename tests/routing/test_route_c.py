"""Tests for ROUTE_C (hypercube) and its stripped nft variant."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import (FAULTY, LFAULT, OUNSAFE, SAFE, SUNSAFE,
                           RouteCRouting, StrippedRouteC)
from repro.routing.route_c import SEVERITY, CubeStateMap
from repro.sim import (FaultSchedule, FaultState, Hypercube, Network,
                       SimConfig, TrafficGenerator)


def cube_map(d=4, dead_nodes=(), dead_links=()):
    topo = Hypercube(d)
    faults = FaultState(topo)
    for n in dead_nodes:
        faults.fail_node(n)
    for a, b in dead_links:
        faults.fail_link(a, b)
    return topo, CubeStateMap(topo, faults)


class TestCubeStateMap:
    def test_all_safe_without_faults(self):
        _, sm = cube_map()
        assert all(s == SAFE for s in sm.states)

    def test_faulty_node_marked(self):
        _, sm = cube_map(dead_nodes=[5])
        assert sm.state(5) == FAULTY
        # one faulty neighbour alone does not make anyone unsafe
        assert all(s in (SAFE, FAULTY) for s in sm.states)

    def test_link_fault_marks_endpoints(self):
        _, sm = cube_map(dead_links=[(0, 1)])
        assert sm.state(0) == LFAULT
        assert sm.state(1) == LFAULT

    def test_two_faulty_neighbors_make_sunsafe(self):
        # node 0's neighbours in a 4-cube: 1, 2, 4, 8
        _, sm = cube_map(dead_nodes=[1, 2])
        assert sm.state(0) == SUNSAFE

    def test_two_unsafe_neighbors_make_ounsafe(self):
        # make nodes 1 and 2 unsafe (not faulty), then 0 becomes ounsafe
        # 1's neighbours: 0,3,5,9 ; 2's: 0,3,6,10
        _, sm = cube_map(dead_nodes=[3, 5, 9, 6, 10])
        assert sm.state(1) == SUNSAFE or SEVERITY[sm.state(1)] >= 1
        assert SEVERITY[sm.state(0)] >= SEVERITY[OUNSAFE]

    def test_propagation_converges(self):
        _, sm = cube_map(d=5, dead_nodes=[1, 2, 4, 8, 16])
        assert sm.propagation_rounds <= 32 + 2

    def test_not_totally_unsafe_with_few_faults(self):
        d = 4
        _, sm = cube_map(d=d, dead_nodes=[1, 2, 4])  # n-1 = 3 faults
        assert not sm.totally_unsafe()

    def test_totally_unsafe_needs_many_faults(self):
        """The paper: 'This will only occur if more than n-1 nodes are
        faulty' — verify no (n-1)-subset of a 3-cube makes the network
        totally unsafe, but some n-subset does."""
        import itertools
        d = 3
        topo = Hypercube(d)
        for combo in itertools.combinations(range(8), d - 1):
            faults = FaultState(topo)
            for n in combo:
                faults.fail_node(n)
            sm = CubeStateMap(topo, faults)
            assert not sm.totally_unsafe(), combo

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.integers(0, 15), max_size=6))
    def test_monotone_lattice_property(self, dead):
        """More faults never make any node state less severe."""
        _, sm_small = cube_map(dead_nodes=sorted(dead)[:len(dead) // 2])
        _, sm_large = cube_map(dead_nodes=sorted(dead))
        for n in range(16):
            assert SEVERITY[sm_large.state(n)] >= SEVERITY[sm_small.state(n)] \
                or sm_large.state(n) in (FAULTY, LFAULT)


class TestStrippedRouteC:
    def test_minimal_delivery(self):
        net = Network(Hypercube(4), StrippedRouteC())
        m = net.offer(0b0000, 0b1111, 4)
        net.run_until_drained()
        assert m.hops == 4 + 1

    def test_two_phase_order(self):
        """Up-flips (0->1) happen before down-flips (1->0)."""
        net = Network(Hypercube(4), StrippedRouteC(),
                      config=SimConfig(trace_paths=True))
        m = net.offer(0b0011, 0b1100, 2)
        net.run_until_drained()
        trace = m.header.fields["trace"]
        phase = 0  # 0 = up, 1 = down
        for a, b in zip(trace, trace[1:]):
            if b > a:
                assert phase == 0
            else:
                phase = 1

    def test_steps_are_one(self):
        net = Network(Hypercube(4), StrippedRouteC())
        net.offer(0, 15, 2)
        net.run_until_drained()
        assert net.stats.max_decision_steps == 1

    def test_load_delivers(self):
        net = Network(Hypercube(4), StrippedRouteC())
        net.attach_traffic(TrafficGenerator(net.topology, "uniform",
                                            load=0.25, message_length=4,
                                            seed=4))
        net.run(1200)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()


class TestRouteC:
    def test_fault_free_behaves_like_stripped(self):
        """The nft variant is defined by identical fault-free paths."""
        results = {}
        for algo in (StrippedRouteC(), RouteCRouting()):
            net = Network(Hypercube(4), algo)
            pairs = [(s, d) for s in range(16) for d in (7, 12) if s != d]
            msgs = [net.offer(s, d, 3) for s, d in pairs]
            net.run_until_drained()
            results[algo.name] = [m.hops for m in msgs]
        assert results["route_c_nft"] == results["route_c"]

    def test_steps_always_two(self):
        net = Network(Hypercube(4), RouteCRouting())
        net.offer(0, 15, 2)
        net.run_until_drained()
        assert net.stats.max_decision_steps == 2
        assert net.stats.mean_decision_steps == 2.0

    def test_detour_around_faulty_node(self):
        net = Network(Hypercube(4), RouteCRouting(),
                      config=SimConfig(trace_paths=True))
        # 0 -> 3 has minimal paths through 1 and 2; kill both
        net.schedule_faults(FaultSchedule.static(nodes=[1, 2]))
        m = net.offer(0, 3, 3)
        net.run_until_drained()
        assert m.delivered is not None
        assert m.header.misrouted
        assert m.hops > net.topology.distance(0, 3) + 1
        assert not {1, 2} & set(m.header.fields["trace"])

    def test_detour_around_dead_link(self):
        net = Network(Hypercube(3), RouteCRouting())
        net.schedule_faults(FaultSchedule.static(links=[(0, 1)]))
        m = net.offer(0, 1, 3)
        net.run_until_drained()
        assert m.delivered is not None
        assert m.hops == 3 + 1  # shortest detour: 3 hops

    @pytest.mark.parametrize("fseed", [0, 1, 2, 3])
    def test_no_deadlock_random_faults(self, fseed):
        rng = np.random.default_rng(fseed)
        topo = Hypercube(4)
        dead = sorted(set(int(x) for x in rng.integers(0, 16, 3)))
        net = Network(topo, RouteCRouting())
        net.schedule_faults(FaultSchedule.static(nodes=dead))
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.15,
                                            message_length=4,
                                            seed=fseed + 30))
        net.run(1500)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()

    def test_vc_classes_monotone(self):
        """A worm's VC class never decreases (the hops-so-far scheme's
        acyclicity argument)."""
        net = Network(Hypercube(4), RouteCRouting())
        net.schedule_faults(FaultSchedule.static(nodes=[1, 2, 4]))
        msgs = [net.offer(0, d, 3) for d in (3, 5, 6, 7, 15)]
        net.run_until_drained()
        for m in msgs:
            if m is None:
                continue
            assert int(m.header.fields.get("vc_class", 0)) <= 4

    def test_accepts_refuses_faulty_destination(self):
        net = Network(Hypercube(4), RouteCRouting())
        net.schedule_faults(FaultSchedule.static(nodes=[5]))
        assert net.offer(0, 5, 2) is None


class TestCondition2Knowledge:
    """Paper: 'The algorithm has the interesting property that it is
    known for a node, whether condition 2 ... can be met or not.'
    Whenever the state map's predicate promises Condition 2, ROUTE_C
    must deliver over a minimal path (one-sided guarantee)."""

    @pytest.mark.parametrize("dead", [[5], [5, 10], [1, 2, 4]])
    def test_prediction_implies_minimal_delivery(self, dead):
        topo = Hypercube(4)
        probe = Network(topo, RouteCRouting())
        probe.schedule_faults(FaultSchedule.static(nodes=dead))
        sm = probe.algorithm.state_map
        checked = 0
        for src in range(16):
            for dst in range(16):
                if src == dst or src in dead or dst in dead:
                    continue
                if not sm.condition2_attainable(src, dst):
                    continue
                net = Network(Hypercube(4), RouteCRouting())
                net.schedule_faults(FaultSchedule.static(nodes=dead))
                m = net.offer(src, dst, 2)
                assert m is not None
                net.run_until_drained()
                assert m.delivered is not None, (src, dst)
                assert m.hops == topo.distance(src, dst) + 1, (src, dst)
                checked += 1
        assert checked > 20  # the predicate is not vacuous

    def test_prediction_false_for_severed_minimal_paths(self):
        topo = Hypercube(3)
        net = Network(topo, RouteCRouting())
        net.schedule_faults(FaultSchedule.static(nodes=[1, 2]))
        sm = net.algorithm.state_map
        # 0 -> 3: both intermediate nodes (1 and 2) are faulty
        assert not sm.condition2_attainable(0, 3)

    def test_fault_free_always_attainable(self):
        topo = Hypercube(3)
        net = Network(topo, RouteCRouting())
        sm = net.algorithm.state_map
        assert all(sm.condition2_attainable(s, d)
                   for s in range(8) for d in range(8) if s != d)

"""Tests for Planar-Adaptive Routing and the n-dimensional mesh."""

import pytest

from repro.analysis import check_deadlock_free
from repro.routing import PlanarAdaptiveRouting, RoutingError
from repro.sim import (FaultSchedule, Mesh2D, MeshND, Network, SimConfig,
                       Torus2D, TrafficGenerator)


class TestMeshND:
    def test_node_count(self):
        assert MeshND((4, 3, 2)).n_nodes == 24

    def test_coords_roundtrip(self):
        t = MeshND((3, 4, 2))
        for n in t.nodes():
            assert t.node_at(t.coords(n)) == n

    def test_border_ports_missing(self):
        t = MeshND((3, 3))
        origin = t.node_at((0, 0))
        # + ports exist, - ports do not
        assert set(t.ports(origin)) == {0, 2}

    def test_ports_symmetric(self):
        t = MeshND((3, 3, 2))
        for n in t.nodes():
            for pid, p in t.ports(n).items():
                back = t.port(p.neighbor, p.neighbor_port)
                assert back.neighbor == n

    def test_distance_is_l1(self):
        t = MeshND((5, 5, 5))
        a = t.node_at((0, 1, 2))
        b = t.node_at((4, 3, 0))
        assert t.distance(a, b) == 4 + 2 + 2

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            MeshND((0, 3))
        with pytest.raises(ValueError):
            MeshND(())


class TestPlanarAdaptive:
    def test_topology_requirements(self):
        with pytest.raises(RoutingError):
            Network(Torus2D(4, 4), PlanarAdaptiveRouting())

    def test_minimal_delivery_3d(self):
        topo = MeshND((4, 4, 4))
        net = Network(topo, PlanarAdaptiveRouting())
        src = topo.node_at((0, 3, 1))
        dst = topo.node_at((3, 0, 2))
        m = net.offer(src, dst, 3)
        net.run_until_drained()
        assert m.hops == topo.distance(src, dst) + 1

    def test_plane_order_in_trace(self):
        """Dimension 0 is fully corrected before dimension 2 moves
        (planes are traversed in order; dim 1 may interleave with
        both as the shared plane edge)."""
        topo = MeshND((4, 4, 4))
        net = Network(topo, PlanarAdaptiveRouting(),
                      config=SimConfig(trace_paths=True))
        src = topo.node_at((0, 0, 0))
        dst = topo.node_at((3, 3, 3))
        m = net.offer(src, dst, 2)
        net.run_until_drained()
        trace = [topo.coords(n) for n in m.header.fields["trace"]]
        moved_dims = []
        for a, b in zip(trace, trace[1:]):
            moved_dims.append(next(i for i in range(3) if a[i] != b[i]))
        first_d2 = moved_dims.index(2)
        assert all(d != 0 for d in moved_dims[first_d2:])

    def test_adaptive_within_plane(self):
        """In the 2-D case PAR offers both minimal directions."""
        from repro.sim.flit import Header
        topo = Mesh2D(5, 5)
        net = Network(topo, PlanarAdaptiveRouting())
        hdr = Header(msg_id=0, src=0, dst=topo.node_at(3, 3), length=2,
                     created=0)
        decision = net.algorithm.route(net.routers[0], hdr, -1, 0)
        assert len(decision.candidates) == 2

    def test_works_on_plain_mesh2d(self):
        net = Network(Mesh2D(5, 5), PlanarAdaptiveRouting())
        net.attach_traffic(TrafficGenerator(net.topology, "uniform",
                                            load=0.15, message_length=4,
                                            seed=5))
        net.run(1000)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()

    def test_heavy_3d_traffic_no_deadlock(self):
        topo = MeshND((3, 3, 3))
        net = Network(topo, PlanarAdaptiveRouting(),
                      config=SimConfig(buffer_depth=2))
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.3,
                                            message_length=4, seed=8))
        net.run(1500)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()

    @pytest.mark.parametrize("topo_factory", [
        lambda: Mesh2D(5, 5), lambda: MeshND((3, 3, 3)),
        lambda: MeshND((4, 4))])
    def test_cdg_acyclic(self, topo_factory):
        r = check_deadlock_free(topo_factory(), PlanarAdaptiveRouting())
        assert r.acyclic, r.cycle

    def test_fault_on_unique_path_is_unroutable(self):
        """PAR's plane discipline cannot misroute: a fault on the only
        in-plane path strands the message (the simplification noted in
        the module docstring)."""
        topo = Mesh2D(4, 4)
        net = Network(topo, PlanarAdaptiveRouting())
        a, b = topo.node_at(1, 0), topo.node_at(2, 0)
        net.schedule_faults(FaultSchedule.static(links=[(a, b)]))
        m = net.offer(a, b, 2)  # row message: single in-plane direction
        net.run_until_drained()
        assert m.delivered is None
        assert net.stats.messages_stuck == 1

    def test_fault_off_plane_is_avoided(self):
        topo = Mesh2D(5, 5)
        net = Network(topo, PlanarAdaptiveRouting())
        net.schedule_faults(FaultSchedule.static(
            links=[(topo.node_at(1, 0), topo.node_at(2, 0))]))
        m = net.offer(topo.node_at(0, 0), topo.node_at(3, 3), 3)
        net.run_until_drained()
        assert m.delivered is not None
        assert m.hops == topo.distance(m.header.src, m.header.dst) + 1

"""Tests for the spanning-tree baseline and the algorithm registry."""

import pytest

from repro.routing import (ALGORITHMS, RoutingError, SpanningTreeRouting,
                           make_algorithm)
from repro.sim import (FaultSchedule, Hypercube, Mesh2D, Network,
                       TrafficGenerator)


class TestSpanningTree:
    def test_delivers_on_mesh(self):
        net = Network(Mesh2D(4, 4), SpanningTreeRouting())
        m = net.offer(5, 10, 3)
        net.run_until_drained()
        assert m.delivered is not None

    def test_delivers_on_hypercube(self):
        net = Network(Hypercube(4), SpanningTreeRouting())
        m = net.offer(3, 12, 3)
        net.run_until_drained()
        assert m.delivered is not None

    def test_paths_far_from_minimal(self):
        """The paper's criticism: 'the shortest ways between two nodes
        are nearly never taken'."""
        topo = Mesh2D(6, 6)
        tree_hops = []
        dist = []
        net = Network(topo, SpanningTreeRouting())
        pairs = [(s, d) for s in range(36) for d in range(36)
                 if s != d and (s + d) % 5 == 0]
        msgs = [net.offer(s, d, 2) for s, d in pairs]
        net.run_until_drained()
        for (s, d), m in zip(pairs, msgs):
            tree_hops.append(m.hops - 1)
            dist.append(topo.distance(s, d))
        assert sum(tree_hops) > 1.3 * sum(dist)

    def test_survives_faults_by_recomputation(self):
        topo = Mesh2D(5, 5)
        net = Network(topo, SpanningTreeRouting())
        sched = FaultSchedule()
        sched.add_node_fault(200, 12)  # the mesh centre
        net.fault_schedule = sched
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.05,
                                            message_length=3, seed=2))
        net.run(800)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()
        assert net.stats.messages_dropped == 0

    def test_refuses_disconnected_destination(self):
        topo = Mesh2D(3, 3)
        net = Network(topo, SpanningTreeRouting())
        # isolate the corner node 8 (coords (2,2))
        net.schedule_faults(FaultSchedule.static(
            links=[(topo.node_at(2, 2), topo.node_at(1, 2)),
                   (topo.node_at(2, 2), topo.node_at(2, 1))]))
        assert net.offer(0, topo.node_at(2, 2), 2) is None

    def test_single_vc_never_deadlocks(self):
        net = Network(Mesh2D(5, 5), SpanningTreeRouting())
        net.attach_traffic(TrafficGenerator(net.topology, "uniform",
                                            load=0.08, message_length=4,
                                            seed=6))
        net.run(1500)
        net.traffic = None
        net.run_until_drained()


class TestRegistry:
    def test_all_names_construct(self):
        for name in ALGORITHMS:
            algo = make_algorithm(name)
            assert algo.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_algorithm("nonsense")

    def test_topology_checks(self):
        with pytest.raises(RoutingError):
            Network(Hypercube(3), make_algorithm("nafta"))
        with pytest.raises(RoutingError):
            Network(Mesh2D(4, 4), make_algorithm("route_c"))

    def test_vc_requirements_match_paper(self):
        assert make_algorithm("nara").n_vcs == 2
        assert make_algorithm("nafta").n_vcs == 2
        assert make_algorithm("route_c").n_vcs == 5   # paper Section 2.2
        assert make_algorithm("route_c_nft").n_vcs == 1
        assert make_algorithm("xy").n_vcs == 1

    def test_step_ranges_match_paper(self):
        assert make_algorithm("nafta").decision_steps_range() == (1, 3)
        assert make_algorithm("route_c").decision_steps_range() == (2, 2)
        assert make_algorithm("nara").decision_steps_range() == (1, 1)
        assert make_algorithm("route_c_nft").decision_steps_range() == (1, 1)

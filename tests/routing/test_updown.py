"""Tests for up*/down* routing (any-topology fault tolerance)."""

import numpy as np
import pytest

from repro.analysis import check_condition1, check_deadlock_free
from repro.routing import SpanningTreeRouting, UpDownRouting
from repro.sim import (FaultSchedule, Hypercube, KAryNCube, Mesh2D, Network,
                       SimConfig, Torus2D, TrafficGenerator,
                       random_link_faults)


class TestConfiguration:
    def test_every_healthy_node_keyed(self):
        net = Network(Mesh2D(4, 4), UpDownRouting())
        algo = net.algorithm
        assert set(algo.key) == set(range(16))
        assert algo.key[0] == (0, 0)  # the root

    def test_root_reaches_everything_downward(self):
        net = Network(Mesh2D(4, 4), UpDownRouting())
        algo = net.algorithm
        assert algo.down_reach[0] == frozenset(range(16))

    def test_everyone_reaches_everything_updown(self):
        net = Network(Torus2D(4, 4), UpDownRouting())
        algo = net.algorithm
        for n in range(16):
            assert algo.updown_reach[n] == frozenset(range(16))

    def test_faults_shrink_key_set(self):
        topo = Mesh2D(3, 1)
        net = Network(topo, UpDownRouting())
        net.schedule_faults(FaultSchedule.static(nodes=[1]))
        algo = net.algorithm
        assert set(algo.key) == {0}  # nodes 2 disconnected from root 0

    def test_dead_root_relocates(self):
        net = Network(Mesh2D(3, 3), UpDownRouting())
        net.schedule_faults(FaultSchedule.static(nodes=[0]))
        algo = net.algorithm
        assert 0 not in algo.key
        assert len(algo.key) == 8


class TestDelivery:
    @pytest.mark.parametrize("topo_factory", [
        lambda: Mesh2D(5, 5), lambda: Torus2D(4, 4),
        lambda: Hypercube(3), lambda: KAryNCube(3, 3)])
    def test_delivers_on_every_topology(self, topo_factory):
        topo = topo_factory()
        net = Network(topo, UpDownRouting())
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.1,
                                            message_length=3, seed=2))
        net.run(800)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()
        assert net.stats.messages_stuck == 0

    def test_uses_cross_links_unlike_tree(self):
        """up*/down* beats pure tree routing on hop counts because it
        may use every healthy link."""
        hops = {}
        for algo_cls in (SpanningTreeRouting, UpDownRouting):
            topo = Mesh2D(5, 5)
            net = Network(topo, algo_cls())
            pairs = [(s, d) for s in range(25) for d in range(25)
                     if s != d and (s + 2 * d) % 7 == 0]
            msgs = [net.offer(s, d, 2) for s, d in pairs]
            net.run_until_drained()
            hops[algo_cls.__name__] = sum(m.hops for m in msgs)
        assert hops["UpDownRouting"] < hops["SpanningTreeRouting"]

    def test_condition3_on_connected_faulty_torus(self):
        topo = Torus2D(4, 4)
        rng = np.random.default_rng(7)
        links = random_link_faults(topo, 6, rng)
        net = Network(topo, UpDownRouting())
        net.schedule_faults(FaultSchedule.static(links=links))
        for s in range(16):
            for d in range(16):
                if s != d:
                    assert net.algorithm.accepts(s, d)
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.08,
                                            message_length=3, seed=9))
        net.run(1000)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()
        assert net.stats.messages_stuck == 0

    def test_phase_is_one_way(self):
        topo = Mesh2D(4, 4)
        net = Network(topo, UpDownRouting(), config=SimConfig(trace_paths=True))
        algo = net.algorithm
        msgs = [net.offer(s, d, 2) for s in (5, 15, 12) for d in (3, 10)
                if s != d]
        net.run_until_drained()
        for m in msgs:
            trace = m.header.fields["trace"]
            keys = [algo.key[n] for n in trace]
            went_down = False
            for a, b in zip(keys, keys[1:]):
                if b > a:
                    went_down = True
                else:
                    assert not went_down, "up move after a down move"


class TestDeadlockAndConditions:
    @pytest.mark.parametrize("topo_factory", [
        lambda: Mesh2D(4, 4), lambda: Torus2D(4, 4), lambda: Hypercube(3)])
    def test_cdg_acyclic(self, topo_factory):
        r = check_deadlock_free(topo_factory(), UpDownRouting())
        assert r.acyclic, r.cycle

    def test_cdg_acyclic_with_faults(self):
        topo = Torus2D(4, 4)
        rng = np.random.default_rng(1)
        links = random_link_faults(topo, 4, rng)
        r = check_deadlock_free(topo, UpDownRouting(),
                                FaultSchedule.static(links=links))
        assert r.acyclic, r.cycle

    def test_not_fully_adaptive(self):
        """up*/down* concentrates traffic near the root: Condition 1
        does not hold (it is the price of topology independence)."""
        net = Network(Mesh2D(4, 4), UpDownRouting())
        res = check_condition1(net, [(15, 0), (12, 3)])
        assert not res.satisfied

"""Tests for the Duato-style dynamic deadlock-avoidance scheme and the
paper's Section-3 claim about its fault vulnerability."""

import networkx as nx

from repro.analysis import build_cdg, check_deadlock_free
from repro.routing import DuatoMeshRouting, NaftaRouting
from repro.sim import (FaultSchedule, Mesh2D, Network, SimConfig,
                       TrafficGenerator)


class TestFaultFreeBehaviour:
    def test_minimal_delivery(self):
        net = Network(Mesh2D(5, 5), DuatoMeshRouting())
        m = net.offer(0, 24, 3)
        net.run_until_drained()
        assert m.hops == net.topology.distance(0, 24) + 1

    def test_heavy_load_no_deadlock(self):
        """Duato's protocol survives loads that would wedge a purely
        adaptive scheme: the escape network drains blocked worms."""
        net = Network(Mesh2D(6, 6), DuatoMeshRouting(),
                      config=SimConfig(buffer_depth=2))
        net.attach_traffic(TrafficGenerator(net.topology, "transpose",
                                            load=0.35, message_length=4,
                                            seed=5))
        net.run(2000)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()

    def test_escape_commitment_is_sticky(self):
        """Once a worm departs on the escape VC it never returns to the
        adaptive network (the conservative Duato variant)."""
        algo = DuatoMeshRouting()
        net = Network(Mesh2D(5, 5), algo)
        from repro.sim.flit import Header
        hdr = Header(msg_id=0, src=0, dst=12, length=2, created=0)
        algo.on_depart(net.routers[0], hdr, 0, 0)  # escape departure
        decision = algo.route(net.routers[1], hdr, 1, 0)
        assert all(vc == 0 for _, vc in decision.candidates)


class TestCdgIsCyclicYetDeadlockFree:
    """The adaptive channels form dependency cycles: this algorithm is
    the living proof that Dally/Seitz acyclicity is sufficient but not
    necessary (Duato's theorem covers it)."""

    def test_cdg_has_cycles(self):
        r = check_deadlock_free(Mesh2D(4, 4), DuatoMeshRouting())
        assert not r.acyclic

    def test_cycles_confined_to_adaptive_channels(self):
        net = Network(Mesh2D(4, 4), DuatoMeshRouting())
        r = build_cdg(net)
        escape_sub = r.graph.subgraph(
            [c for c in r.graph.nodes if c[2] == 0])
        assert nx.is_directed_acyclic_graph(escape_sub)


class TestFaultVulnerability:
    """Paper Section 3: 'the fault of one link can separate several
    node pairs in the statically deadlock-free network which cannot be
    compensated by the dynamic extensions'."""

    def test_single_link_fault_severs_adjacent_pair(self):
        topo = Mesh2D(6, 6)
        net = Network(topo, DuatoMeshRouting())
        a, b = topo.node_at(2, 2), topo.node_at(3, 2)
        net.schedule_faults(FaultSchedule.static(links=[(a, b)]))
        m = net.offer(a, b, 3)
        net.run_until_drained()
        assert m.delivered is None
        assert net.stats.messages_stuck == 1

    def test_nafta_survives_the_same_fault(self):
        topo = Mesh2D(6, 6)
        net = Network(topo, NaftaRouting())
        a, b = topo.node_at(2, 2), topo.node_at(3, 2)
        net.schedule_faults(FaultSchedule.static(links=[(a, b)]))
        m = net.offer(a, b, 3)
        net.run_until_drained()
        assert m.delivered is not None
        assert m.hops == 4  # the 3-hop detour + ejection

    def test_pairs_with_surviving_minimal_path_still_work(self):
        topo = Mesh2D(6, 6)
        net = Network(topo, DuatoMeshRouting())
        net.schedule_faults(FaultSchedule.static(
            links=[(topo.node_at(2, 2), topo.node_at(3, 2))]))
        m = net.offer(topo.node_at(0, 0), topo.node_at(5, 5), 3)
        net.run_until_drained()
        assert m.delivered is not None

    def test_severed_pair_count_single_fault(self):
        """Count how many ordered pairs one central link fault severs
        for the dynamic scheme (> 0) versus NAFTA (0)."""
        topo = Mesh2D(5, 5)
        fault = (topo.node_at(2, 2), topo.node_at(2, 3))
        severed = {}
        for algo_cls in (DuatoMeshRouting, NaftaRouting):
            count = 0
            for s, d in [(fault[0], fault[1]), (fault[1], fault[0])]:
                net = Network(Mesh2D(5, 5), algo_cls())
                net.schedule_faults(FaultSchedule.static(links=[fault]))
                m = net.offer(s, d, 2)
                if m is None:
                    count += 1
                    continue
                net.run_until_drained()
                if m.delivered is None:
                    count += 1
            severed[algo_cls.__name__] = count
        assert severed["DuatoMeshRouting"] == 2
        assert severed["NaftaRouting"] == 0

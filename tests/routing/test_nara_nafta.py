"""Tests for NARA and NAFTA on 2-D meshes."""

import numpy as np
import pytest

from repro.routing import NaftaRouting, NaraRouting, assign_virtual_network
from repro.routing.nafta import VN_TERMINAL
from repro.sim import (EAST, FaultSchedule, Mesh2D, NORTH, Network, SOUTH,
                       SimConfig, TrafficGenerator, WEST, random_link_faults)


def mesh_net(algo, w=8, h=8, **cfg):
    return Network(Mesh2D(w, h), algo, config=SimConfig(**cfg))


class TestVirtualNetworkAssignment:
    def test_northbound_gets_vc1(self):
        topo = Mesh2D(8, 8)
        assert assign_virtual_network(topo, topo.node_at(3, 1),
                                      topo.node_at(5, 6)) == 1

    def test_southbound_gets_vc0(self):
        topo = Mesh2D(8, 8)
        assert assign_virtual_network(topo, topo.node_at(3, 6),
                                      topo.node_at(5, 1)) == 0

    def test_row_message_gets_vc0(self):
        topo = Mesh2D(8, 8)
        assert assign_virtual_network(topo, topo.node_at(0, 4),
                                      topo.node_at(7, 4)) == 0


class TestNaraFaultFree:
    def test_all_delivered(self):
        net = mesh_net(NaraRouting())
        net.attach_traffic(TrafficGenerator(net.topology, "uniform",
                                            load=0.2, message_length=4,
                                            seed=1))
        net.run(1500)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()
        assert net.stats.messages_stuck == 0

    def test_minimal_paths_only(self):
        """NARA never misroutes: hops == distance + 1 (ejection)."""
        net = mesh_net(NaraRouting())
        topo = net.topology
        pairs = [(0, 63), (7, 56), (9, 54), (16, 23)]
        msgs = [net.offer(s, d, 3) for s, d in pairs]
        net.run_until_drained()
        for (s, d), m in zip(pairs, msgs):
            assert m.hops == topo.distance(s, d) + 1

    def test_turn_model_respected(self):
        """Messages in VC1 never turn off a south move; in VC0 never
        off a north move."""
        net = mesh_net(NaraRouting(), trace_paths=True)
        topo = net.topology
        for s in range(0, 64, 5):
            for d in range(3, 64, 7):
                if s != d:
                    net.offer(s, d, 2)
        net.run_until_drained()
        for m in net.messages.values():
            trace = m.header.fields.get("trace", [])
            vn = m.header.fields.get("vn")
            if vn is None or len(trace) < 3:
                continue
            term = VN_TERMINAL[vn]
            moved_term = False
            for a, b in zip(trace, trace[1:]):
                ax, ay = topo.coords(a)
                bx, by = topo.coords(b)
                move = (NORTH if by > ay else SOUTH if by < ay
                        else EAST if bx > ax else WEST)
                if moved_term:
                    assert move == term, \
                        f"msg {m.header.msg_id} broke the turn model"
                if move == term:
                    moved_term = True

    def test_steps_always_one(self):
        net = mesh_net(NaraRouting())
        net.offer(0, 63, 4)
        net.run_until_drained()
        assert net.stats.max_decision_steps == 1


class TestNaftaFaultFree:
    def test_behaves_like_nara(self):
        """The paper defines the nft variant by identical fault-free
        behaviour; our NAFTA reduces to NARA without faults: same
        delivery set, same minimal hop counts, 1 step per decision."""
        results = {}
        for algo in (NaraRouting(), NaftaRouting()):
            net = mesh_net(algo)
            topo = net.topology
            pairs = [(s, d) for s in range(0, 64, 3) for d in (5, 42)
                     if s != d]
            msgs = [net.offer(s, d, 3) for s, d in pairs]
            net.run_until_drained()
            results[algo.name] = [(m.hops, m.latency) for m in msgs]
        assert results["nara"] == results["nafta"]

    def test_fault_free_single_step(self):
        net = mesh_net(NaftaRouting())
        net.offer(0, 63, 4)
        net.run_until_drained()
        assert net.stats.max_decision_steps == 1


class TestNaftaWithFaults:
    def test_routes_around_fault_block(self):
        net = mesh_net(NaftaRouting(), trace_paths=True)
        topo = net.topology
        net.schedule_faults(FaultSchedule.static(
            nodes=[topo.node_at(3, 3), topo.node_at(4, 3)]))
        m = net.offer(topo.node_at(0, 3), topo.node_at(7, 3), 4)
        net.run_until_drained()
        assert m.delivered is not None
        assert m.header.misrouted
        assert m.hops > topo.distance(m.header.src, m.header.dst) + 1
        trace = {topo.coords(n) for n in m.header.fields["trace"]}
        assert not trace & {(3, 3), (4, 3)}

    def test_worst_case_three_steps(self):
        net = mesh_net(NaftaRouting())
        topo = net.topology
        net.schedule_faults(FaultSchedule.static(
            nodes=[topo.node_at(3, 3), topo.node_at(4, 3)]))
        net.offer(topo.node_at(0, 3), topo.node_at(7, 3), 4)
        net.run_until_drained()
        assert net.stats.max_decision_steps == 3

    def test_deactivated_destination_refused(self):
        net = mesh_net(NaftaRouting())
        topo = net.topology
        # diagonal pair deactivates (3,4) and (4,3)
        net.schedule_faults(FaultSchedule.static(
            nodes=[topo.node_at(3, 3), topo.node_at(4, 4)]))
        assert net.offer(0, topo.node_at(3, 4), 4) is None
        assert net.stats.messages_unroutable == 1

    @pytest.mark.parametrize("fseed", [0, 1, 2, 3, 4])
    def test_no_deadlock_random_link_faults(self, fseed):
        rng = np.random.default_rng(fseed)
        topo = Mesh2D(8, 8)
        links = random_link_faults(topo, 8, rng)
        net = Network(topo, NaftaRouting())
        net.schedule_faults(FaultSchedule.static(links=links))
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.15,
                                            message_length=4,
                                            seed=fseed + 50))
        net.run(1500)
        net.traffic = None
        net.run_until_drained()   # raises DeadlockError on failure
        assert not net.undelivered()

    @pytest.mark.parametrize("pattern", ["transpose", "bit_complement",
                                         "hotspot"])
    def test_no_deadlock_adversarial_patterns(self, pattern):
        topo = Mesh2D(8, 8)
        net = Network(topo, NaftaRouting())
        net.schedule_faults(FaultSchedule.static(
            nodes=[topo.node_at(2, 2), topo.node_at(5, 5)]))
        net.attach_traffic(TrafficGenerator(topo, pattern, load=0.2,
                                            message_length=4, seed=5))
        net.run(1200)
        net.traffic = None
        net.run_until_drained()

    def test_dynamic_fault_with_quiesce(self):
        net = mesh_net(NaftaRouting())
        topo = net.topology
        sched = FaultSchedule()
        sched.add_node_fault(300, topo.node_at(3, 3))
        net.fault_schedule = sched
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.1,
                                            message_length=4, seed=8))
        net.run(1000)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()
        assert net.stats.messages_dropped == 0  # quiesce: nothing ripped

    def test_livelock_counter_bounds_paths(self):
        net = mesh_net(NaftaRouting())
        topo = net.topology
        net.schedule_faults(FaultSchedule.static(
            nodes=[topo.node_at(3, 3)]))
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.2,
                                            message_length=4, seed=3))
        net.run(2000)
        net.traffic = None
        net.run_until_drained()
        limit = NaftaRouting().livelock_factor * (8 + 8) + 16 + 2
        for m in net.messages.values():
            if m.delivered is not None:
                assert m.hops <= limit


class TestNaftaConditions:
    def test_condition1_all_minimal_paths_usable_fault_free(self):
        """Condition 1: on a fault-free mesh every minimal path can be
        selected.  We check the candidate sets offered at each node
        cover all minimal directions."""
        net = mesh_net(NaftaRouting())
        topo = net.topology
        algo = net.algorithm
        from repro.sim.flit import Header
        for src, dst in [(0, 63), (56, 7), (0, 7), (0, 56)]:
            hdr = Header(msg_id=99999, src=src, dst=dst, length=2, created=0)
            decision = algo.route(net.routers[src], hdr, -1, 0)
            minimal = set(topo.minimal_ports(src, dst))
            offered = {p for p, _ in decision.candidates}
            assert offered == minimal

    def test_condition2_minimal_path_used_when_available(self):
        """If a minimal path survives the faults, NAFTA should use a
        minimal route (it only misroutes when blocked)."""
        net = mesh_net(NaftaRouting())
        topo = net.topology
        # fault off the minimal rectangle of (0,0) -> (7,2)
        net.schedule_faults(FaultSchedule.static(
            nodes=[topo.node_at(2, 6)]))
        m = net.offer(topo.node_at(0, 0), topo.node_at(7, 2), 3)
        net.run_until_drained()
        assert m.hops == topo.distance(m.header.src, m.header.dst) + 1

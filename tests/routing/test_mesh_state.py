"""Tests for the mesh fault-state machine (NAFTA's knowledge layer)."""

from repro.routing.mesh_state import MeshFaultMap
from repro.sim import EAST, FaultState, Mesh2D, NORTH, SOUTH, WEST


def make_map(w=8, h=8, dead_nodes=(), dead_links=()):
    topo = Mesh2D(w, h)
    faults = FaultState(topo)
    for c in dead_nodes:
        faults.fail_node(topo.node_at(*c))
    for a, b in dead_links:
        faults.fail_link(topo.node_at(*a), topo.node_at(*b))
    return topo, MeshFaultMap(topo, faults)


class TestDeactivation:
    def test_no_faults_nothing_blocked(self):
        _, fmap = make_map()
        assert fmap.n_deactivated() == 0
        assert not fmap.blocked_nodes()

    def test_single_fault_deactivates_nothing(self):
        _, fmap = make_map(dead_nodes=[(3, 3)])
        assert fmap.n_deactivated() == 0

    def test_diagonal_pair_fills_square(self):
        topo, fmap = make_map(dead_nodes=[(3, 3), (4, 4)])
        blocked = {topo.coords(n) for n in fmap.blocked_nodes()}
        assert blocked == {(3, 3), (4, 4), (3, 4), (4, 3)}
        assert fmap.n_deactivated() == 2

    def test_l_shape_completes_to_rectangle(self):
        topo, fmap = make_map(dead_nodes=[(2, 2), (3, 3), (2, 4)])
        blocked = {topo.coords(n) for n in fmap.blocked_nodes()}
        # the three faults span columns 2-3, rows 2-4 -> 2x3 rectangle
        assert blocked == {(x, y) for x in (2, 3) for y in (2, 3, 4)}

    def test_border_chain_deactivates_shadow(self):
        # the paper's Figure 2 motif: a diagonal chain near the border
        topo, fmap = make_map(dead_nodes=[(0, 4), (1, 5), (2, 6)])
        blocked = {topo.coords(n) for n in fmap.blocked_nodes()}
        # the diagonal's bounding box fills in completely (borders
        # themselves do not count as blocked, so row 7 stays usable)
        assert blocked == {(x, y) for x in (0, 1, 2) for y in (4, 5, 6)}

    def test_isolated_dead_link_blocks_nothing(self):
        _, fmap = make_map(dead_links=[((3, 3), (4, 3))])
        assert not fmap.blocked_nodes()

    def test_two_crossing_dead_links_deactivate_corner(self):
        topo, fmap = make_map(dead_links=[((3, 3), (4, 3)), ((3, 3), (3, 4))])
        blocked = {topo.coords(n) for n in fmap.blocked_nodes()}
        assert blocked == {(3, 3)}


class TestClearRuns:
    def test_full_runs_without_faults(self):
        topo, fmap = make_map(4, 4)
        origin = topo.node_at(0, 0)
        assert fmap.clear_run(origin, EAST) == 3
        assert fmap.clear_run(origin, NORTH) == 3
        assert fmap.clear_run(origin, WEST) == 0
        assert fmap.clear_run(origin, SOUTH) == 0

    def test_run_stops_at_fault(self):
        topo, fmap = make_map(8, 8, dead_nodes=[(5, 0)])
        origin = topo.node_at(0, 0)
        assert fmap.clear_run(origin, EAST) == 4  # nodes 1..4 usable

    def test_run_stops_at_dead_link(self):
        topo, fmap = make_map(8, 8, dead_links=[((2, 0), (3, 0))])
        origin = topo.node_at(0, 0)
        assert fmap.clear_run(origin, EAST) == 2

    def test_run_reaches(self):
        topo, fmap = make_map(8, 8, dead_nodes=[(0, 5)])
        origin = topo.node_at(0, 0)
        assert fmap.run_reaches(origin, NORTH, 4)
        assert not fmap.run_reaches(origin, NORTH, 5)

    def test_runs_account_for_deactivation(self):
        topo, fmap = make_map(8, 8, dead_nodes=[(3, 3), (4, 4)])
        # (3,4) is deactivated, so a northward run in column 3 stops early
        start = topo.node_at(3, 0)
        assert fmap.clear_run(start, NORTH) == 2  # rows 1,2 usable


class TestDeadEnds:
    def test_no_dead_ends_without_faults(self):
        topo, fmap = make_map(4, 4)
        for n in topo.nodes():
            st = fmap.state(n)
            # border nodes trivially have "all columns beyond" empty,
            # which counts as dead-end (vacuous truth)
            x, y = topo.coords(n)
            if x < 3:
                assert not st.dead_end[EAST]

    def test_dead_end_east_when_every_east_column_faulty(self):
        topo, fmap = make_map(4, 4, dead_nodes=[(2, 0), (3, 2)])
        st = fmap.state(topo.node_at(1, 1))
        assert st.dead_end[EAST]
        assert not st.dead_end[WEST]

    def test_not_dead_end_with_one_clear_column(self):
        topo, fmap = make_map(4, 4, dead_nodes=[(3, 2)])
        st = fmap.state(topo.node_at(1, 1))
        assert not st.dead_end[EAST]  # column 2 has no fault


class TestRecompute:
    def test_recompute_after_new_fault(self):
        topo = Mesh2D(6, 6)
        faults = FaultState(topo)
        fmap = MeshFaultMap(topo, faults)
        assert not fmap.blocked_nodes()
        faults.fail_node(topo.node_at(2, 2))
        faults.fail_node(topo.node_at(3, 3))
        fmap.recompute()
        assert len(fmap.blocked_nodes()) == 4

    def test_propagation_settles(self):
        _, fmap = make_map(8, 8, dead_nodes=[(1, 1), (2, 2), (3, 3)])
        assert fmap.propagation_rounds < 8 * 8

"""Output-selection policies (repro.routing.select).

Three layers of guarantees:

* policy unit behaviour — every policy returns a permutation of the
  legal candidate list (never a different set), the hash is stable
  across processes, flowlet re-hashes only after the idle gap;
* network integration — the default ``deterministic`` policy is
  bit-identical to a network built with no policy at all (the pinned
  digests hold), non-default policies are reproducible from
  (spec, seed) and actually change the decision stream;
* engine contract — the batched engine declines non-deterministic
  policies with an explicit reason and ``build_network`` falls back.
"""

import types

import pytest

from repro.routing import make_algorithm
from repro.routing.select import (POLICIES, CreditPolicy, DeterministicPolicy,
                                  EcmpPolicy, FlowletPolicy, _mix,
                                  make_policy)
from repro.sim import Mesh2D, Network, SimConfig, TrafficGenerator
from repro.sim.batched import (BatchedNetwork, batched_fallback_reason,
                               build_network)
from repro.sim.stats import DecisionDigest


def _header(src=0, dst=5, msg_id=3):
    return types.SimpleNamespace(src=src, dst=dst, msg_id=msg_id)


def _router(cycle=0, credits=None):
    net = types.SimpleNamespace(cycle=cycle)
    r = types.SimpleNamespace(network=net, node=0)
    r.credits = credits or (lambda port, vc: 4)
    return r


CANDS = [(0, 0), (1, 0), (2, 1), (3, 0)]


class TestMix:
    def test_stable_values(self):
        # cross-process stability is the whole point of a hand-rolled
        # mix (builtin hash is salted); pin a couple of values
        assert _mix(0) == _mix(0)
        assert _mix(1, 2, 3) == _mix(1, 2, 3)
        assert _mix(1, 2, 3) != _mix(1, 3, 2)
        assert 0 <= _mix(7, 1 << 40) <= 0xFFFFFFFF

    def test_seed_changes_hash(self):
        vals = {_mix(seed, 4, 9, 2) for seed in range(16)}
        assert len(vals) > 8


class TestPolicyUnit:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_permutation_only(self, name):
        policy = make_policy(name, seed=3)
        out = policy.select(_router(), _header(), list(CANDS))
        assert sorted(out) == sorted(CANDS)

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_short_lists_untouched(self, name):
        policy = make_policy(name, seed=3)
        assert policy.select(_router(), _header(), []) == []
        assert policy.select(_router(), _header(), [(2, 1)]) == [(2, 1)]

    def test_deterministic_is_identity(self):
        policy = DeterministicPolicy()
        assert policy.batched_compatible
        cands = list(CANDS)
        assert policy.select(_router(), _header(), cands) == CANDS

    def test_ecmp_rotates_by_message(self):
        policy = EcmpPolicy(seed=1)
        a = policy.select(_router(), _header(msg_id=0), list(CANDS))
        # same message identity -> same rotation, every time
        assert a == policy.select(_router(), _header(msg_id=0), list(CANDS))
        # rotation preserves the algorithm's cyclic fallback order
        i = CANDS.index(a[0])
        assert a == CANDS[i:] + CANDS[:i]
        # some message id lands on a different rotation
        assert any(policy.select(_router(), _header(msg_id=m),
                                 list(CANDS)) != a for m in range(1, 16))

    def test_ecmp_not_batched_compatible(self):
        assert not EcmpPolicy().batched_compatible

    def test_flowlet_stable_within_gap(self):
        policy = FlowletPolicy(seed=2, gap=10)
        first = policy.select(_router(cycle=0), _header(), list(CANDS))
        for cycle in (3, 9, 19, 29):  # each decision re-arms the timer
            assert policy.select(_router(cycle=cycle), _header(),
                                 list(CANDS)) == first

    def test_flowlet_rehashes_after_idle_gap(self):
        # pick a flow whose salt-0 and salt-1 rotations differ so the
        # re-hash is observable (no fragile hex constants)
        seed = 2
        h = _header()
        n = len(CANDS)
        assert _mix(seed, h.src, h.dst, 0) % n != \
            _mix(seed, h.src, h.dst, 1) % n
        policy = FlowletPolicy(seed=seed, gap=10)
        first = policy.select(_router(cycle=0), _header(), list(CANDS))
        # idle for gap+1 cycles: the flowlet moves
        moved = policy.select(_router(cycle=11), _header(), list(CANDS))
        assert moved != first
        # exactly at the gap boundary it would NOT have moved
        policy2 = FlowletPolicy(seed=seed, gap=10)
        policy2.select(_router(cycle=0), _header(), list(CANDS))
        assert policy2.select(_router(cycle=10), _header(),
                              list(CANDS)) == first

    def test_flowlet_flows_independent(self):
        policy = FlowletPolicy(seed=2, gap=10)
        policy.select(_router(cycle=0), _header(src=0, dst=5), list(CANDS))
        # a different flow deciding late must not re-arm the first one
        policy.select(_router(cycle=50), _header(src=1, dst=6), list(CANDS))
        assert policy._flows[(0, 5)][0] == 0
        assert policy._flows[(1, 6)][0] == 50

    def test_flowlet_rejects_bad_gap(self):
        with pytest.raises(ValueError):
            FlowletPolicy(gap=0)

    def test_credit_prefers_most_credits(self):
        credits = {(0, 0): 1, (1, 0): 4, (2, 1): 4, (3, 0): 2}
        policy = CreditPolicy()
        out = policy.select(_router(credits=lambda p, v: credits[(p, v)]),
                            _header(), list(CANDS))
        # most credits first; the 4-credit tie breaks on (port, vc)
        assert out == [(1, 0), (2, 1), (3, 0), (0, 0)]

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown selection policy"):
            make_policy("nope")

    def test_registry_names_match(self):
        for name, cls in POLICIES.items():
            assert cls.name == name


def _digest_run(policy="deterministic", policy_seed=0, seed=7,
                cycles=260, config=None):
    topo = Mesh2D(4, 4)
    cfg = config or SimConfig(policy=policy, policy_seed=policy_seed)
    net = Network(topo, make_algorithm("nafta"), config=cfg)
    net.stats.digest = DecisionDigest()
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.2,
                                        message_length=4, seed=seed))
    net.run(cycles)
    return net.stats.digest.hexdigest(), net.stats.digest.count


class TestNetworkIntegration:
    def test_deterministic_bit_identical_to_no_policy(self):
        # the acceptance bar: the default policy must not perturb a
        # single decision relative to a config that predates the
        # policy field entirely
        base = _digest_run(config=SimConfig())
        assert _digest_run("deterministic") == base
        # and the network skips the hook outright (hot-path contract)
        net = Network(Mesh2D(3, 3), make_algorithm("nafta"),
                      config=SimConfig())
        assert net.policy is None

    @pytest.mark.parametrize("policy", ["ecmp", "flowlet", "credit"])
    def test_policy_runs_reproducible(self, policy):
        a = _digest_run(policy, policy_seed=5)
        b = _digest_run(policy, policy_seed=5)
        assert a == b
        assert a[1] > 0

    def test_ecmp_changes_decision_stream(self):
        base = _digest_run("deterministic")
        ecmp = _digest_run("ecmp", policy_seed=5)
        assert ecmp[0] != base[0]
        # same decision sites, different candidate orderings
        assert ecmp[1] == base[1]

    def test_policy_seed_matters(self):
        assert _digest_run("ecmp", policy_seed=1)[0] != \
            _digest_run("ecmp", policy_seed=2)[0]

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown selection policy"):
            SimConfig(policy="nope")


class TestBatchedContract:
    def test_fallback_reason_names_policy(self):
        reason = batched_fallback_reason(config=SimConfig(policy="ecmp"))
        assert reason is not None and "ecmp" in reason

    def test_deterministic_has_no_policy_fallback(self):
        reason = batched_fallback_reason(config=SimConfig())
        assert reason is None or "policy" not in reason

    def test_batched_network_refuses_policy(self):
        with pytest.raises(ValueError, match="policy"):
            BatchedNetwork(Mesh2D(4, 4), make_algorithm("nafta"),
                           config=SimConfig(policy="credit"))

    def test_build_network_falls_back(self):
        net = build_network(Mesh2D(4, 4), make_algorithm("nafta"),
                            SimConfig(engine="batched", policy="flowlet"))
        assert isinstance(net, Network)
        assert not isinstance(net, BatchedNetwork)
        assert net.engine_name == "object"
        assert "flowlet" in net.stats.engine_fallback

"""Chaos campaign engine: scenario generation, reliability report,
and the no-silent-loss guarantee on connected fault patterns."""

import json

from repro.experiments import (WorkloadSpec, campaign_table, make_scenario,
                               run_campaign, run_workload)
from repro.sim import Mesh2D


CAMPAIGN_KW = dict(width=6, height=6, n_link_faults=2, cycles=1000,
                   warmup=200, load=0.15, message_length=8, seed=1)


class TestScenarioGeneration:
    def test_deterministic_per_index(self):
        a = make_scenario(3, **CAMPAIGN_KW)
        b = make_scenario(3, **CAMPAIGN_KW)
        assert a.to_dict() == b.to_dict()
        assert a.spec_key("t") == b.spec_key("t")

    def test_scenarios_differ(self):
        keys = {make_scenario(i, **CAMPAIGN_KW).spec_key("t")
                for i in range(5)}
        assert len(keys) == 5

    def test_faults_strike_mid_window(self):
        spec = make_scenario(0, **CAMPAIGN_KW)
        assert spec.fault_mode == "harsh"
        assert spec.retry_limit > 0
        assert len(spec.timed_faults) == 2
        for cycle, kind, target in spec.timed_faults:
            assert kind == "link"
            assert CAMPAIGN_KW["warmup"] < cycle < CAMPAIGN_KW["cycles"]

    def test_spec_round_trips_with_reliability_fields(self):
        spec = make_scenario(1, **CAMPAIGN_KW)
        d = spec.to_dict()
        json.dumps(d)                               # JSON-able
        rebuilt = WorkloadSpec.from_dict(d)
        assert rebuilt.to_dict() == d
        assert rebuilt.spec_key("t") == spec.spec_key("t")
        assert rebuilt.timed_faults == spec.timed_faults
        assert rebuilt.diagnosis_hop_delay == spec.diagnosis_hop_delay


class TestCampaignReliability:
    def test_no_silent_loss_and_full_routable_delivery(self):
        report = run_campaign(3, **CAMPAIGN_KW)
        assert report["n_scenarios"] == 3
        assert report["silent_loss"] == 0
        assert not report["deadlocked_scenarios"]
        # connected faults + retries: every routable message arrives
        assert report["delivered_logical"] + report["dead_lettered"] \
            == report["created_logical"]
        for s in report["scenarios"]:
            assert s["silent_loss"] == 0
            assert s["created_logical"] > 0

    def test_updown_delivers_everything(self):
        # up*/down* accepts every pair on a connected network, so with
        # retries the campaign must deliver 100% — no dead letters
        report = run_campaign(3, algorithm="updown", **CAMPAIGN_KW)
        assert report["delivery_rate"] == 1.0
        assert report["dead_lettered"] == 0
        assert report["silent_loss"] == 0

    def test_report_is_reproducible(self):
        a = run_campaign(2, **CAMPAIGN_KW)
        b = run_campaign(2, **CAMPAIGN_KW)
        assert a == b

    def test_table_renders(self):
        report = run_campaign(2, **CAMPAIGN_KW)
        text = campaign_table(report)
        assert "logical messages" in text
        assert str(report["created_logical"]) in text


class TestLogicalAccounting:
    def test_quiesce_run_has_no_loss_classes(self):
        spec = WorkloadSpec(topology=Mesh2D(4, 4), algorithm="nafta",
                            load=0.1, cycles=600, warmup=100, seed=5)
        res = run_workload(spec)
        assert res["messages_created_logical"] \
            == res["messages_delivered_logical"]
        assert res["silent_loss"] == 0
        assert res["messages_retried"] == 0
        assert res["messages_dead_lettered"] == 0

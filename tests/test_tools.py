"""Tests for the command-line tools (rulec, simulate)."""

import pytest

from repro.tools.rulec import main as rulec_main, parse_params
from repro.tools.simulate import main as simulate_main, parse_topology
from repro.sim import Hypercube, Mesh2D, Torus2D


class TestRulec:
    def test_compile_shipped_ruleset(self, capsys):
        assert rulec_main(["--ruleset", "route_c", "-p", "d=4"]) == 0
        out = capsys.readouterr().out
        assert "decide_dir" in out
        assert "total rule-table memory" in out

    def test_compile_file(self, tmp_path, capsys):
        f = tmp_path / "tiny.rules"
        f.write_text("""
        VARIABLE x IN 0 TO 3
        ON tick()
          IF x < 3 THEN x <- x + 1;
        END tick;
        """)
        assert rulec_main([str(f)]) == 0
        out = capsys.readouterr().out
        assert "rule base tick" in out
        # x <- x + 1 guarded by a premise compiles to the paper's
        # "conditional increment" FCFB
        assert "conditional increment" in out

    def test_registers_flag(self, capsys):
        assert rulec_main(["--ruleset", "nafta", "--registers"]) == 0
        out = capsys.readouterr().out
        assert "usable_set" in out

    def test_verify_flag(self, capsys):
        assert rulec_main(["--ruleset", "route_c", "-p", "d=3",
                           "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verify decide_dir" in out
        assert "OK" in out

    def test_no_table_flag(self, capsys):
        assert rulec_main(["--ruleset", "route_c_merged", "-p", "d=8",
                           "--no-table"]) == 0
        out = capsys.readouterr().out
        assert "decide_all" in out

    def test_syntax_error_reported(self, tmp_path, capsys):
        f = tmp_path / "broken.rules"
        f.write_text("ON f( garbage")
        assert rulec_main([str(f)]) == 1
        assert "rulec:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert rulec_main(["/nonexistent/x.rules"]) == 2

    def test_parse_params(self):
        assert parse_params(["d=6", "name=mesh"]) == {"d": 6, "name": "mesh"}
        with pytest.raises(SystemExit):
            parse_params(["bad"])


class TestSimulateCli:
    def test_parse_topology(self):
        assert isinstance(parse_topology("mesh4x6"), Mesh2D)
        assert isinstance(parse_topology("torus4x4"), Torus2D)
        assert isinstance(parse_topology("cube3"), Hypercube)
        with pytest.raises(SystemExit):
            parse_topology("ring9")

    def test_torus_is_not_plain_mesh(self):
        t = parse_topology("torus4x4")
        assert isinstance(t, Torus2D)

    def test_small_run(self, capsys):
        rc = simulate_main(["--topology", "mesh4x4", "--algorithm", "xy",
                            "--load", "0.05", "--cycles", "300",
                            "--warmup", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean_latency" in out
        assert "deadlocked" in out

    def test_run_with_faults(self, capsys):
        rc = simulate_main(["--topology", "mesh5x5", "--algorithm", "nafta",
                            "--load", "0.08", "--cycles", "400",
                            "--warmup", "100", "--link-faults", "2",
                            "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 link faults" in out

    def test_cube_run(self, capsys):
        rc = simulate_main(["--topology", "cube3", "--algorithm", "route_c",
                            "--load", "0.08", "--cycles", "400",
                            "--node-faults", "1", "--seed", "2"])
        assert rc == 0

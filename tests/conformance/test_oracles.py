"""Each oracle must fire on hand-built bad evidence and stay silent on
clean evidence — judged through ``check_case`` so the dispatch
(universal vs metadata-gated oracles) is exercised too."""

from repro.conformance import ConformanceCase, check_case
from repro.conformance.oracles import oracles_for
from repro.routing.registry import ALGORITHM_META

MESH = {"kind": "mesh2d", "width": 3, "height": 3}
CUBE = {"kind": "hypercube", "dimension": 3}


def _msg(msg_id=0, src=0, dst=8, trace=None, hops=None, *,
         refused=False, delivered=True, dropped=False):
    trace = [0, 1, 2, 5, 8] if trace is None else trace
    return {
        "msg_id": msg_id, "src": src, "dst": dst, "refused": refused,
        "delivered": delivered, "dropped": dropped,
        "hops": len(trace) if hops is None else hops, "trace": trace,
    }


def _result(messages, **extra):
    return {"messages": messages, "deadlock": None, **extra}


def _fired(case, result):
    return {v.oracle for v in check_case(case, result)}


def _xy_case(**over):
    base = dict(algorithm="xy", topology=MESH, messages=[(0, 0, 8, 3)])
    base.update(over)
    return ConformanceCase(**base)


class TestCleanEvidencePasses:
    def test_minimal_legal_delivery(self):
        # 0->8 on a 3x3 mesh: distance 4, trace of 5 nodes, hops 5
        assert _fired(_xy_case(), _result([_msg()])) == set()


class TestLegalPath:
    def test_non_link_hop(self):
        bad = _msg(trace=[0, 1, 5, 8])  # 1->5 is not a mesh link
        assert "legal_path" in _fired(_xy_case(), _result([bad]))

    def test_endpoint_mismatch(self):
        bad = _msg(trace=[1, 2, 5, 8])  # starts at 1, src is 0
        assert "legal_path" in _fired(_xy_case(), _result([bad]))

    def test_faulty_link_transit(self):
        case = ConformanceCase(algorithm="nafta", topology=MESH,
                               messages=[(0, 0, 8, 3)],
                               fault_links=[(1, 2)])
        bad = _msg(trace=[0, 1, 2, 5, 8])
        assert "legal_path" in _fired(case, _result([bad]))

    def test_faulty_node_transit(self):
        case = ConformanceCase(algorithm="nafta", topology=MESH,
                               messages=[(0, 0, 8, 3)],
                               fault_nodes=[4])
        bad = _msg(trace=[0, 1, 4, 5, 8])
        assert "legal_path" in _fired(case, _result([bad]))


class TestMinimality:
    def test_detour_fires(self):
        detour = _msg(trace=[0, 1, 4, 1, 2, 5, 8])
        assert "minimality" in _fired(_xy_case(), _result([detour]))

    def test_skipped_for_faulted_case(self):
        case = ConformanceCase(algorithm="nafta", topology=MESH,
                               messages=[(0, 0, 8, 3)],
                               fault_links=[(0, 1)])
        detour = _msg(trace=[0, 3, 4, 1, 2, 5, 8])
        assert "minimality" not in _fired(case, _result([detour]))

    def test_skipped_for_non_minimal_algorithm(self):
        case = ConformanceCase(algorithm="updown", topology=MESH,
                               messages=[(0, 0, 8, 3)])
        detour = _msg(trace=[0, 1, 4, 1, 2, 5, 8])
        assert "minimality" not in _fired(case, _result([detour]))


class TestDelivery:
    def test_fault_free_refusal_fires(self):
        refused = _msg(refused=True, delivered=False, trace=[])
        assert "delivery" in _fired(_xy_case(), _result([refused]))

    def test_faulted_refusal_allowed_when_metadata_says_so(self):
        case = ConformanceCase(algorithm="nafta", topology=MESH,
                               messages=[(0, 0, 8, 3)],
                               fault_links=[(0, 1)])
        assert ALGORITHM_META["nafta"].may_refuse_under_faults
        refused = _msg(refused=True, delivered=False, trace=[])
        assert "delivery" not in _fired(case, _result([refused]))

    def test_undelivered_message_fires(self):
        stuck = _msg(delivered=False, dropped=True, trace=[0, 1])
        assert "delivery" in _fired(_xy_case(), _result([stuck]))


class TestLiveness:
    def test_deadlock_always_fires(self):
        res = _result([_msg()],
                      deadlock={"cycle": 900, "blocking_cycle": [1, 2],
                                "holding_nodes": [1, 2]})
        assert "liveness" in _fired(_xy_case(), res)


class TestRouteCSafeNodes:
    def _case(self):
        # nodes 1 and 2 faulty => nodes 0 and 3 are strongly unsafe
        return ConformanceCase(algorithm="route_c", topology=CUBE,
                               messages=[(0, 4, 5, 1)],
                               fault_nodes=[1, 2])

    def test_oracle_registered_via_metadata(self):
        assert "route_c_safe_nodes" in oracles_for(
            ALGORITHM_META["route_c"])

    def test_sunsafe_transit_fires(self):
        bad = _msg(src=4, dst=5, trace=[4, 0, 1, 5])
        fired = _fired(self._case(), _result([bad]))
        assert "route_c_safe_nodes" in fired

    def test_sunsafe_endpoint_allowed(self):
        # delivering *to* an unsafe node is legal; only transit is not
        ok = _msg(src=4, dst=0, trace=[4, 0])
        fired = _fired(ConformanceCase(
            algorithm="route_c", topology=CUBE,
            messages=[(0, 4, 0, 1)], fault_nodes=[1, 2]),
            _result([ok]))
        assert "route_c_safe_nodes" not in fired


class TestShadowAndInterp:
    def test_shadow_mismatch_fires(self):
        case = ConformanceCase(algorithm="nafta", topology=MESH,
                               messages=[(0, 0, 8, 3)])
        mismatch = {"node": 1, "msg_id": 0,
                    "primary": {"ports": [[0, 0]], "deliver": False,
                                "stuck": False},
                    "shadow": {"ports": [[2, 0]], "deliver": False,
                               "stuck": False}}
        res = _result([_msg()], shadow={"against": "nara",
                                        "mismatches": [mismatch]})
        assert "ft_nft_shadow" in _fired(case, res)

    def test_interp_digest_divergence_fires(self):
        case = ConformanceCase(algorithm="nafta_rules", topology=MESH,
                               messages=[(0, 0, 8, 1)])
        runs = {
            "table+fastpath": {"digest": "aa", "decisions": 4,
                               "summary": {}},
            "table": {"digest": "aa", "decisions": 4, "summary": {}},
            "ast": {"digest": "bb", "decisions": 4, "summary": {}},
        }
        assert "interp_agreement" in _fired(
            case, _result([_msg()], interp=runs))

    def test_interp_agreement_silent_when_identical(self):
        case = ConformanceCase(algorithm="nafta_rules", topology=MESH,
                               messages=[(0, 0, 8, 1)])
        run = {"digest": "aa", "decisions": 4, "summary": {"x": 1}}
        runs = {k: dict(run) for k in ("table+fastpath", "table", "ast")}
        assert "interp_agreement" not in _fired(
            case, _result([_msg()], interp=runs))

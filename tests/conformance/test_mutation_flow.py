"""The acceptance loop: an injected bug is caught by an oracle, shrunk
to a minimal case, serialized to the corpus, and replays
deterministically.

The ROUTE_C mutation removes the safe-node check (and the preference
ranking that hides it), so worms transit strongly-unsafe nodes — the
exact class of bug the ``route_c_safe_nodes`` oracle exists for.  The
catching coordinates (seed=1, index=39) are pinned: generation is
deterministic, so this is a regression test, not a fuzz run.
"""

import pytest

from repro.conformance import (ConformanceCase, load_entry,
                               run_case_payload, save_entry, shrink_case)
from repro.conformance.generate import generate_case
from repro.conformance.mutations import MUTATIONS, apply_mutation

CATCH_SEED, CATCH_INDEX = 1, 39


def _violations(case):
    return run_case_payload(case.to_dict())["violations"]


@pytest.fixture(scope="module")
def caught():
    case = generate_case("route_c", CATCH_SEED, CATCH_INDEX,
                         mutation="route_c_skip_safe_check")
    violations = _violations(case)
    assert violations, "pinned catching case no longer fails"
    return case, violations


class TestMutationRegistry:
    def test_known_mutations(self):
        assert "route_c_skip_safe_check" in MUTATIONS
        assert "xy_wrong_first_hop" in MUTATIONS

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            with apply_mutation("no_such_mutation"):
                pass

    def test_none_is_a_no_op(self):
        with apply_mutation(None):
            pass


class TestCatch:
    def test_route_c_bug_caught_by_safe_node_oracle(self, caught):
        _, violations = caught
        assert any(v["oracle"] == "route_c_safe_nodes"
                   for v in violations)

    def test_pristine_twin_is_clean(self, caught):
        case, _ = caught
        pristine = ConformanceCase.from_dict(
            {**case.to_dict(), "mutation": None})
        assert _violations(pristine) == []

    def test_xy_wrong_first_hop_caught_by_minimality(self):
        case = generate_case("xy", seed=0, index=0,
                             mutation="xy_wrong_first_hop")
        violations = _violations(case)
        assert any(v["oracle"] == "minimality" for v in violations)


class TestShrink:
    def test_shrunk_case_still_fails_and_is_smaller(self, caught):
        case, _ = caught
        small = shrink_case(case, max_evals=60)
        assert any(v["oracle"] == "route_c_safe_nodes"
                   for v in _violations(small))
        assert len(small.messages) <= len(case.messages)
        assert len(small.fault_links) <= len(case.fault_links)
        assert small.build_topology().n_nodes \
            <= case.build_topology().n_nodes

    def test_clean_case_shrinks_to_itself(self):
        case = generate_case("xy", seed=0, index=0)
        stats = {}
        assert shrink_case(case, max_evals=10, stats=stats) == case
        assert stats["target"] == []
        assert stats["evals"] == 1


class TestCorpusReplay:
    def test_save_load_replay_roundtrip(self, caught, tmp_path):
        case, violations = caught
        small = shrink_case(case, max_evals=60)
        small_violations = _violations(small)
        path = save_entry(small, small_violations, tmp_path,
                          original=case)
        assert path.parent == tmp_path
        assert path.name.startswith("route_c_safe_nodes_")

        loaded, expected = load_entry(path)
        assert loaded == small
        assert expected == small_violations

        # replay determinism: two fresh runs, bit-identical evidence
        a = run_case_payload(loaded.to_dict())
        b = run_case_payload(loaded.to_dict())
        assert a["digest"] == b["digest"]
        assert a["violations"] == b["violations"] == expected

    def test_committed_corpus_entries_replay(self):
        # every entry committed under conformance/corpus/ must still
        # reproduce its recorded violations on this checkout
        from repro.conformance.corpus import default_corpus_dir

        entries = sorted(default_corpus_dir().glob("*.json"))
        assert entries, "committed corpus is empty"
        for path in entries:
            case, expected = load_entry(path)
            got = _violations(case)
            assert {v["oracle"] for v in got} \
                == {v["oracle"] for v in expected}, path.name

"""The ``python -m repro.tools.conform`` CLI: exit codes and corpus
side effects for run / replay / shrink."""

import json

import pytest

from repro.tools.conform import main


def test_run_clean_slice_exits_zero(capsys):
    rc = main(["run", "--cases", "6", "--seed", "0",
               "--algorithms", "xy,nara"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "6 cases, 0 violations" in out


def test_run_rejects_unknown_algorithm():
    with pytest.raises(SystemExit):
        main(["run", "--cases", "2", "--algorithms", "nonesuch"])


def test_run_rejects_unknown_mutation():
    with pytest.raises(SystemExit):
        main(["run", "--cases", "2", "--mutate", "nonesuch"])


@pytest.fixture(scope="module")
def caught_corpus(tmp_path_factory):
    """A mutated run that catches the ROUTE_C bug and writes a shrunk
    corpus entry (the pinned catching case is index 39 of seed 1, so
    40 cases suffice)."""
    corpus = tmp_path_factory.mktemp("corpus")
    rc = main(["run", "--cases", "40", "--seed", "1",
               "--algorithms", "route_c",
               "--mutate", "route_c_skip_safe_check",
               "--corpus-dir", str(corpus),
               "--shrink-evals", "60"])
    entries = sorted(corpus.glob("*.json"))
    return rc, entries


def test_mutated_run_fails_and_saves_shrunk_entry(caught_corpus):
    rc, entries = caught_corpus
    assert rc >= 1  # exit code = number of failing cases
    assert entries, "no corpus entry written"
    assert entries[0].name.startswith("route_c_safe_nodes_")
    blob = json.loads(entries[0].read_text())
    assert blob["case"]["mutation"] == "route_c_skip_safe_check"
    assert blob["original"] is not None
    # shrunk: no bigger than the generator's tiniest faulted scenarios
    assert len(blob["case"]["messages"]) <= 2


def test_replay_reproduces_entry(caught_corpus, capsys):
    _, entries = caught_corpus
    rc = main(["replay", str(entries[0])])
    out = capsys.readouterr().out
    assert rc == 0
    assert "reproduced" in out


def test_replay_expect_clean_fails_on_failing_entry(caught_corpus,
                                                    capsys):
    _, entries = caught_corpus
    rc = main(["replay", str(entries[0]), "--expect-clean"])
    assert rc == 1
    assert "oracles fired" in capsys.readouterr().out


def test_replay_json_dumps_evidence(caught_corpus, capsys):
    _, entries = caught_corpus
    rc = main(["replay", str(entries[0]), "--json"])
    out = capsys.readouterr().out
    assert rc == 0
    payload = json.loads(out[:out.rindex("}") + 1])
    assert payload["violations"]


def test_shrink_command_writes_entry(caught_corpus, tmp_path, capsys):
    _, entries = caught_corpus
    rc = main(["shrink", str(entries[0]), "--out", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "shrunk in" in out
    assert list(tmp_path.glob("route_c_safe_nodes_*.json"))

"""Serialization and identity of ConformanceCase."""

import pytest

from repro.conformance import ConformanceCase
from repro.conformance.case import CASE_SCHEMA


def _case(**over):
    base = dict(
        algorithm="nafta",
        topology={"kind": "mesh2d", "width": 4, "height": 3},
        messages=[(0, 0, 11, 3), (2, 5, 1, 1)],
        fault_links=[(0, 1)],
        fault_nodes=[6],
        buffer_depth=2,
        seed=7,
    )
    base.update(over)
    return ConformanceCase(**base)


class TestRoundTrip:
    def test_dict_roundtrip_is_identity(self):
        case = _case()
        again = ConformanceCase.from_dict(case.to_dict())
        assert again == case
        assert again.to_dict() == case.to_dict()

    def test_json_tuples_normalized(self):
        # JSON turns tuples into lists; from_dict must restore tuples
        # so equality and hashing keys stay stable
        import json

        d = json.loads(json.dumps(_case().to_dict()))
        again = ConformanceCase.from_dict(d)
        assert again == _case()
        assert all(isinstance(m, tuple) for m in again.messages)

    def test_schema_recorded_and_guarded(self):
        d = _case().to_dict()
        assert d["schema"] == CASE_SCHEMA
        d["schema"] = CASE_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            ConformanceCase.from_dict(d)

    def test_mutation_survives_roundtrip(self):
        case = _case(mutation="route_c_skip_safe_check")
        assert ConformanceCase.from_dict(
            case.to_dict()).mutation == "route_c_skip_safe_check"


class TestCaseKey:
    def test_key_is_stable(self):
        assert _case().case_key() == _case().case_key()

    def test_key_ignores_provenance_seed_only_behaviour(self):
        # the seed is provenance, but it is serialized, so it is part
        # of the key; behavioural fields definitely must change it
        k = _case().case_key()
        assert _case(buffer_depth=4).case_key() != k
        assert _case(fault_nodes=[]).case_key() != k
        assert _case(messages=[(0, 0, 11, 3)]).case_key() != k

    def test_key_shape(self):
        key = _case().case_key()
        assert len(key) == 16
        int(key, 16)  # hex


class TestAccessors:
    def test_build_topology(self):
        topo = _case().build_topology()
        assert topo.n_nodes == 12

    def test_has_faults(self):
        assert _case().has_faults()
        assert not _case(fault_links=[], fault_nodes=[]).has_faults()

    def test_involved_nodes(self):
        nodes = _case().involved_nodes()
        assert {0, 11, 5, 1, 6} <= nodes

"""The case generator: determinism and metadata discipline."""

from itertools import islice

from repro.conformance import generate_cases
from repro.conformance.generate import generate_case
from repro.routing.registry import ALGORITHM_META


class TestDeterminism:
    def test_same_coordinates_same_case(self):
        for algo in ("xy", "nafta", "route_c", "updown", "nafta_rules"):
            a = generate_case(algo, seed=3, index=17)
            b = generate_case(algo, seed=3, index=17)
            assert a == b, algo

    def test_indices_are_independent(self):
        # adding cases must never reshuffle earlier ones: case i depends
        # only on (algorithm, seed, i), not on how many were drawn before
        direct = generate_case("nafta", seed=5, index=2)
        streamed = list(islice(generate_cases(["nafta"], seed=5), 3))[2]
        assert direct == streamed

    def test_different_seeds_differ(self):
        cases_a = [generate_case("nafta", 0, i) for i in range(6)]
        cases_b = [generate_case("nafta", 1, i) for i in range(6)]
        assert cases_a != cases_b


class TestMetadataDiscipline:
    def test_every_algorithm_generates(self):
        for algo in ALGORITHM_META:
            case = generate_case(algo, seed=0, index=0)
            assert case.algorithm == algo
            case.build_topology()  # recipe must be valid

    def test_non_ft_algorithms_get_no_faults(self):
        for algo, meta in ALGORITHM_META.items():
            if meta.max_link_faults or meta.max_node_faults:
                continue
            for i in range(10):
                assert not generate_case(algo, 0, i).has_faults(), algo

    def test_fault_budgets_respected(self):
        for algo, meta in ALGORITHM_META.items():
            for i in range(20):
                case = generate_case(algo, 2, i)
                assert len(case.fault_links) <= meta.max_link_faults
                assert len(case.fault_nodes) <= meta.max_node_faults

    def test_topology_kind_from_metadata(self):
        for algo, meta in ALGORITHM_META.items():
            for i in range(8):
                case = generate_case(algo, 4, i)
                assert case.topology["kind"] in meta.topologies, algo

    def test_messages_avoid_faulty_endpoints(self):
        for i in range(30):
            case = generate_case("nafta", 6, i)
            for _, src, dst, _ in case.messages:
                assert src not in case.fault_nodes
                assert dst not in case.fault_nodes
                assert src != dst

    def test_rule_driven_cases_stay_tiny(self):
        for i in range(10):
            case = generate_case("route_c_rules", 0, i)
            assert case.build_topology().n_nodes <= 8
            assert len(case.messages) <= 4

    def test_ft_stream_mixes_faulty_and_clean(self):
        cases = [generate_case("nafta", 0, i) for i in range(24)]
        faulted = sum(c.has_faults() for c in cases)
        assert 0 < faulted < len(cases)

    def test_round_robin_covers_all_algorithms(self):
        algos = ["xy", "nara", "route_c_nft"]
        first = list(islice(generate_cases(algos, 0), 6))
        assert [c.algorithm for c in first] == algos * 2

    def test_mutation_is_recorded(self):
        case = generate_case("route_c", 1, 0,
                             mutation="route_c_skip_safe_check")
        assert case.mutation == "route_c_skip_safe_check"

"""End-to-end case execution: clean generated cases pass every oracle,
payload runs are deterministic, and the evidence attachments (shadow
differential, interpreter comparison) appear when metadata asks."""

import pytest

from repro.conformance import generate_cases, run_case, run_case_payload
from repro.conformance.generate import generate_case

# a representative slice of the registry: dimension-ordered baseline,
# both paper ft algorithms, a graph-based one, and one rule-driven
# variant (kept to a single tiny case — it simulates 4x per case)
CLEAN_SLICE = [
    *[("xy", i) for i in range(3)],
    *[("nafta", i) for i in range(3)],
    *[("route_c", i) for i in range(2)],
    *[("updown", i) for i in range(2)],
    ("nafta_rules", 0),
]


@pytest.mark.parametrize("algo,index", CLEAN_SLICE,
                         ids=[f"{a}-{i}" for a, i in CLEAN_SLICE])
def test_generated_cases_are_conformant(algo, index):
    case = generate_case(algo, seed=0, index=index)
    out = run_case_payload(case.to_dict())
    assert out["violations"] == [], out["violations"]
    assert out["case_key"] == case.case_key()
    assert out["decisions"] > 0


def test_payload_runs_are_deterministic():
    case = generate_case("nafta", seed=9, index=1)
    a = run_case_payload(case.to_dict())
    b = run_case_payload(case.to_dict())
    assert a["digest"] == b["digest"]
    assert a["decisions"] == b["decisions"]
    assert a == b


def test_shadow_attached_on_fault_free_ft_case():
    case = next(c for c in generate_cases(["nafta"], seed=0)
                if not c.has_faults())
    result = run_case(case)
    assert result["shadow"]["against"] == "nara"
    assert result["shadow"]["mismatches"] == []


def test_shadow_skipped_on_faulted_case():
    case = next(c for c in generate_cases(["nafta"], seed=0)
                if c.has_faults())
    result = run_case(case)
    assert "shadow" not in result


def test_interp_comparison_attached_for_rule_driven():
    case = generate_case("route_c_rules", seed=0, index=0)
    result = run_case(case)
    runs = result["interp"]
    assert set(runs) == {"table+fastpath", "table", "ast"}
    digests = {r["digest"] for r in runs.values()}
    assert len(digests) == 1, "interpreters disagreed"


def test_interp_comparison_absent_for_compiled_algorithms():
    result = run_case(generate_case("xy", seed=0, index=0))
    assert "interp" not in result

"""End-to-end case execution: clean generated cases pass every oracle,
payload runs are deterministic, and the evidence attachments (shadow
differential, interpreter comparison) appear when metadata asks."""

import pytest

from repro.conformance import generate_cases, run_case, run_case_payload
from repro.conformance.generate import generate_case

# a representative slice of the registry: dimension-ordered baseline,
# both paper ft algorithms, a graph-based one, and one rule-driven
# variant (kept to a single tiny case — it simulates 4x per case)
CLEAN_SLICE = [
    *[("xy", i) for i in range(3)],
    *[("nafta", i) for i in range(3)],
    *[("route_c", i) for i in range(2)],
    *[("updown", i) for i in range(2)],
    ("nafta_rules", 0),
]


@pytest.mark.parametrize("algo,index", CLEAN_SLICE,
                         ids=[f"{a}-{i}" for a, i in CLEAN_SLICE])
def test_generated_cases_are_conformant(algo, index):
    case = generate_case(algo, seed=0, index=index)
    out = run_case_payload(case.to_dict())
    assert out["violations"] == [], out["violations"]
    assert out["case_key"] == case.case_key()
    assert out["decisions"] > 0


def test_payload_runs_are_deterministic():
    case = generate_case("nafta", seed=9, index=1)
    a = run_case_payload(case.to_dict())
    b = run_case_payload(case.to_dict())
    assert a["digest"] == b["digest"]
    assert a["decisions"] == b["decisions"]
    assert a == b


def test_shadow_attached_on_fault_free_ft_case():
    case = next(c for c in generate_cases(["nafta"], seed=0)
                if not c.has_faults())
    result = run_case(case)
    assert result["shadow"]["against"] == "nara"
    assert result["shadow"]["mismatches"] == []


def test_shadow_skipped_on_faulted_case():
    case = next(c for c in generate_cases(["nafta"], seed=0)
                if c.has_faults())
    result = run_case(case)
    assert "shadow" not in result


def test_interp_comparison_attached_for_rule_driven():
    case = generate_case("route_c_rules", seed=0, index=0)
    result = run_case(case)
    runs = result["interp"]
    assert set(runs) == {"table+fastpath", "table", "ast"}
    digests = {r["digest"] for r in runs.values()}
    assert len(digests) == 1, "interpreters disagreed"


def test_interp_comparison_absent_for_compiled_algorithms():
    result = run_case(generate_case("xy", seed=0, index=0))
    assert "interp" not in result


def test_frr_is_transparent_and_stripped_from_identity():
    # conformance faults are static and never *confirmed*, so the
    # FastReroute wrapper stays unarmed: compiling and carrying the
    # backup tables must not change a single decision
    for case in (generate_case("nafta", seed=4, index=0),
                 next(c for c in generate_cases(["nafta"], seed=4)
                      if c.has_faults())):
        plain = run_case_payload(case.to_dict())
        frr = run_case_payload({**case.to_dict(), "frr": True})
        assert frr["digest"] == plain["digest"]
        assert frr["decisions"] == plain["decisions"]
        # frr is a run property: same case key, no leak into the
        # reconstructed case dict
        assert frr["case_key"] == plain["case_key"]
        assert "frr" not in frr["case"]
        assert frr["violations"] == []


def test_policy_run_property_stripped_and_fuzzable():
    case = generate_case("nafta", seed=4, index=1)
    plain = run_case_payload(case.to_dict())
    ecmp = run_case_payload({**case.to_dict(),
                             "policy": "ecmp", "policy_seed": 5})
    assert ecmp["case_key"] == plain["case_key"]
    assert "policy" not in ecmp["case"]
    # the policy re-orders legal candidates only, so the oracles still
    # hold — but the decision stream genuinely changes
    assert ecmp["violations"] == []
    assert ecmp["decisions"] == plain["decisions"]
    assert ecmp["digest"] != plain["digest"]
    # reproducible: same policy + seed, same digest
    again = run_case_payload({**case.to_dict(),
                              "policy": "ecmp", "policy_seed": 5})
    assert again["digest"] == ecmp["digest"]

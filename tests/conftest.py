"""Shared test configuration: hypothesis profiles.

CI runs must be deterministic — a property-based failure on a PR has
to reproduce on the next push and on a maintainer's machine.  The
``ci`` profile therefore derandomizes example generation and pins a
generous fixed deadline (CI machines are noisy; per-test
``@settings(deadline=None)`` overrides still win).  Locally the
``dev`` profile keeps hypothesis' randomized search so new examples
are still being explored where it matters: on developer machines and
in the nightly fuzz lane.

Select explicitly with ``HYPOTHESIS_PROFILE=ci|dev``; otherwise the
``CI`` environment variable (set by GitHub Actions) picks ``ci``.
"""

import os
from datetime import timedelta

from hypothesis import settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=timedelta(milliseconds=2000),
    print_blob=True,
)
settings.register_profile("dev", settings.default)

settings.load_profile(os.environ.get(
    "HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev"))

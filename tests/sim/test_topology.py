"""Unit and property tests for topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import (EAST, NORTH, SOUTH, WEST, Hypercube, KAryNCube,
                       Mesh2D, Torus2D, link_key)


class TestMesh2D:
    def test_node_count(self):
        assert Mesh2D(4, 3).n_nodes == 12

    def test_coords_roundtrip(self):
        m = Mesh2D(5, 4)
        for n in m.nodes():
            x, y = m.coords(n)
            assert m.node_at(x, y) == n

    def test_corner_has_two_ports(self):
        m = Mesh2D(4, 4)
        assert set(m.ports(0)) == {EAST, NORTH}
        assert set(m.ports(15)) == {WEST, SOUTH}

    def test_interior_has_four_ports(self):
        m = Mesh2D(4, 4)
        assert set(m.ports(m.node_at(1, 1))) == {EAST, WEST, NORTH, SOUTH}

    def test_ports_are_symmetric(self):
        m = Mesh2D(4, 4)
        for n in m.nodes():
            for pid, p in m.ports(n).items():
                back = m.port(p.neighbor, p.neighbor_port)
                assert back is not None
                assert back.neighbor == n
                assert back.neighbor_port == pid

    def test_distance_is_manhattan(self):
        m = Mesh2D(6, 6)
        assert m.distance(m.node_at(0, 0), m.node_at(3, 4)) == 7

    def test_minimal_ports(self):
        m = Mesh2D(4, 4)
        assert set(m.minimal_ports(m.node_at(1, 1), m.node_at(3, 0))) == \
            {EAST, SOUTH}
        assert m.minimal_ports(5, 5) == []

    def test_link_count(self):
        m = Mesh2D(4, 4)
        assert len(m.links()) == 2 * 4 * 3  # 24 links in a 4x4 mesh

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 3)


class TestTorus2D:
    def test_every_node_has_four_ports(self):
        t = Torus2D(4, 4)
        for n in t.nodes():
            assert len(t.ports(n)) == 4

    def test_wraparound_neighbor(self):
        t = Torus2D(4, 4)
        east_of_edge = t.ports(t.node_at(3, 0))[EAST]
        assert east_of_edge.neighbor == t.node_at(0, 0)

    def test_distance_uses_wraparound(self):
        t = Torus2D(8, 8)
        assert t.distance(t.node_at(0, 0), t.node_at(7, 0)) == 1
        assert t.distance(t.node_at(0, 0), t.node_at(4, 4)) == 8

    def test_minimal_ports_both_ways_at_half(self):
        t = Torus2D(4, 4)
        ports = t.minimal_ports(t.node_at(0, 0), t.node_at(2, 0))
        assert set(ports) == {EAST, WEST}


class TestHypercube:
    def test_node_count(self):
        assert Hypercube(6).n_nodes == 64

    def test_ports_flip_one_bit(self):
        h = Hypercube(4)
        for n in h.nodes():
            for pid, p in h.ports(n).items():
                assert p.neighbor == n ^ (1 << pid)
                assert p.neighbor_port == pid

    def test_distance_is_hamming(self):
        h = Hypercube(5)
        assert h.distance(0b00000, 0b10101) == 3

    def test_differing_dimensions(self):
        h = Hypercube(4)
        assert h.differing_dimensions(0b0000, 0b1010) == [1, 3]

    def test_link_count(self):
        h = Hypercube(4)
        assert len(h.links()) == 16 * 4 // 2


class TestKAryNCube:
    def test_node_count(self):
        assert KAryNCube(4, 3).n_nodes == 64

    def test_coords_roundtrip(self):
        t = KAryNCube(3, 3)
        for n in t.nodes():
            assert t.node_at(t.coords(n)) == n

    def test_ports_symmetric(self):
        t = KAryNCube(4, 2)
        for n in t.nodes():
            for pid, p in t.ports(n).items():
                back = t.port(p.neighbor, p.neighbor_port)
                assert back.neighbor == n

    def test_distance_wraps(self):
        t = KAryNCube(5, 2)
        a = t.node_at((0, 0))
        b = t.node_at((4, 3))
        assert t.distance(a, b) == 1 + 2


class TestLinkKey:
    def test_canonical_order(self):
        assert link_key(5, 2) == (2, 5)
        assert link_key(2, 5) == (2, 5)


# -- property-based --------------------------------------------------------

mesh_sizes = st.tuples(st.integers(2, 8), st.integers(2, 8))


@given(mesh_sizes, st.data())
def test_mesh_distance_triangle_inequality(size, data):
    m = Mesh2D(*size)
    a = data.draw(st.integers(0, m.n_nodes - 1))
    b = data.draw(st.integers(0, m.n_nodes - 1))
    c = data.draw(st.integers(0, m.n_nodes - 1))
    assert m.distance(a, c) <= m.distance(a, b) + m.distance(b, c)


@given(mesh_sizes, st.data())
def test_mesh_neighbors_at_distance_one(size, data):
    m = Mesh2D(*size)
    n = data.draw(st.integers(0, m.n_nodes - 1))
    for nb in m.neighbors(n):
        assert m.distance(n, nb) == 1


@given(st.integers(1, 7), st.data())
def test_hypercube_distance_symmetric(d, data):
    h = Hypercube(d)
    a = data.draw(st.integers(0, h.n_nodes - 1))
    b = data.draw(st.integers(0, h.n_nodes - 1))
    assert h.distance(a, b) == h.distance(b, a)
    assert (h.distance(a, b) == 0) == (a == b)

"""Edge cases of the stall watchdog (``repro.sim.watchdog``).

The happy-path deadlock tests live in test_reliability.py (a four-worm
circular wait with a full blocking cycle).  Here we pin the corners:

* ``_find_cycle`` on degenerate graphs, including the single-node cycle
  (a worm recorded as waiting on itself);
* a real single-worm stall where the worm chases its own tail around a
  ring — self-waits are excluded from the wait-for graph, so the
  diagnosis must report *no* cycle (starvation), not a bogus one;
* a stall that resolves before the watchdog window closes: a worm
  parked on a dying link while the fault detection is outstanding is an
  excused stall, and the run completes with no DeadlockError.
"""

import pytest

from repro.routing import make_algorithm
from repro.routing.base import RouteDecision, RoutingAlgorithm
from repro.sim import topology as T
from repro.sim.config import SimConfig
from repro.sim.faults import FaultSchedule
from repro.sim.network import DeadlockError, Network
from repro.sim.topology import Mesh2D
from repro.sim.watchdog import _find_cycle, diagnose_stall


class TestFindCycle:
    def test_single_node_cycle(self):
        # a self-loop is the smallest cycle the detector can report
        assert _find_cycle({1: [1]}) == [1]

    def test_two_node_cycle(self):
        cyc = _find_cycle({1: [2], 2: [1]})
        assert sorted(cyc) == [1, 2]

    def test_cycle_behind_prefix(self):
        # the cycle is only reachable through an acyclic tail
        cyc = _find_cycle({0: [1], 1: [2], 2: [3], 3: [1]})
        assert sorted(cyc) == [1, 2, 3]
        assert 0 not in cyc

    def test_acyclic_graph(self):
        assert _find_cycle({1: [2], 2: [3], 3: []}) is None

    def test_empty_graph(self):
        assert _find_cycle({}) is None

    def test_self_loop_among_others(self):
        cyc = _find_cycle({0: [1], 1: [], 2: [2]})
        assert cyc == [2]


class _RingForever(RoutingAlgorithm):
    """Clockwise ring on a 2x2 mesh that never delivers: the worm laps
    the ring until its head runs into its own tail."""

    name = "ring_forever"
    n_vcs = 1
    adaptive = False
    _next = {0: T.EAST, 1: T.NORTH, 3: T.WEST, 2: T.SOUTH}

    def route(self, router, header, in_port, in_vc):
        return RouteDecision(candidates=[(self._next[router.node], 0)])


class TestSingleWormSelfStall:
    """A worm waiting only on itself must not be reported as a wait-for
    cycle: diagnose_stall filters self-waits, so the diagnosis falls
    through to the starvation branch."""

    def _stall(self):
        net = Network(Mesh2D(2, 2), _RingForever(),
                      config=SimConfig(deadlock_threshold=50,
                                       buffer_depth=2))
        net.offer(0, 3, 20)  # 20 flits >> ring buffer capacity
        with pytest.raises(DeadlockError) as exc:
            net.run(2000)
        return exc.value.diagnosis

    def test_no_bogus_blocking_cycle(self):
        diag = self._stall()
        assert diag.blocking_cycle is None
        assert "no wait-for cycle" in diag.describe()

    def test_single_worm_merged_across_segments(self):
        # the worm occupies several channels; the diagnosis merges the
        # segments into one StalledWorm entry with the flits summed
        diag = self._stall()
        assert len(diag.worms) == 1
        worm = diag.worms[0]
        assert worm.src == 0 and worm.dst == 3
        assert worm.flits_here > 1
        assert diag.flits_in_flight == worm.flits_here


class TestStallResolvesBeforeWindow:
    """Harsh mode with a slow heartbeat: the worm parks on the dying
    link for much longer than deadlock_threshold, but the stall is
    excused while the detection is pending, the fault is confirmed, the
    worm is ripped and retried, and the run drains deadlock-free."""

    def _net(self):
        cfg = SimConfig(fault_mode="harsh", detection_delay=120,
                        deadlock_threshold=40, buffer_depth=2,
                        retry_limit=3)
        net = Network(Mesh2D(4, 2), make_algorithm("nafta"), config=cfg)
        sched = FaultSchedule()
        sched.add_link_fault(5, 1, 2)  # mid-flight, on the 0->3 path
        net.schedule_faults(sched)
        return net

    def test_excused_stall_then_recovery(self):
        net = self._net()
        net.offer(0, 3, 24)
        # cycle 80 is 35 cycles past detection start and ~74 cycles
        # past the last flit movement — well over the threshold
        for _ in range(81):
            net.step()
        diag = diagnose_stall(net)
        assert diag.pending_detections == 1
        assert diag.cycle - diag.last_progress > 40
        assert "fault detections" in diag.describe()
        # the watchdog never fires: the detection confirms at cycle
        # 125, the parked worm is ripped and source-retried around the
        # fault, and the network drains
        net.run_until_drained(max_cycles=3000)
        s = net.stats.summary(net.topology.n_nodes)
        assert s["messages_delivered"] == 1
        assert s["messages_dropped"] == 1

    def test_sub_threshold_contention_is_silent(self):
        # ordinary contention: two worms share a column, one waits a
        # few cycles — far below the threshold, no watchdog, no drops
        net = Network(Mesh2D(3, 3), make_algorithm("xy"),
                      config=SimConfig(deadlock_threshold=30,
                                       buffer_depth=2))
        net.offer(0, 8, 12)
        net.offer(1, 8, 12)
        net.run_until_drained(max_cycles=500)
        s = net.stats.summary(net.topology.n_nodes)
        assert s["messages_delivered"] == 2
        assert s["messages_dropped"] == 0

"""Fast reroute: precompiled backup subbases, activation edge cases,
and the recovery-gap accounting the chaos-recovery CI lane asserts on.

The backup table is a build-time artifact, so the tests hold it to the
compiler's own promises: every entry reproduces the live algorithm's
faulted-configuration decision (candidates *and* header-field writes),
no entry routes into the link it protects, and every protected link's
shadow configuration has an acyclic channel dependency graph.  The
dispatch tests cover the activation edge cases: substitution only at
injection with a neutral header, fall-through when the backup link is
itself dead, and the batched engine declaring an explicit fallback
instead of silently mis-modelling per-flit healing.
"""

import json

import pytest

from repro.core.compiler.backup import BackupTable, build_backup_table_for
from repro.experiments import run_workload
from repro.experiments.campaign import make_scenario
from repro.routing import FastReroute, make_algorithm
from repro.sim import Mesh2D, Network, SimConfig
from repro.sim.batched import batched_fallback_reason
from repro.sim.flit import Header
from repro.sim.router import LOCAL


def _fresh_header(src: int, dst: int, fields=None) -> Header:
    return Header(msg_id=-1, src=src, dst=dst, length=2, created=0,
                  fields=dict(fields or {}))


@pytest.fixture(scope="module")
def built():
    """(topology, algorithm, table) with every link deadlock-checked."""
    topo = Mesh2D(4, 4)
    algo = make_algorithm("updown")
    table = build_backup_table_for(topo, algo, verify_deadlock=-1)
    return topo, algo, table


class TestBackupTableBuild:
    def test_every_link_deadlock_verified(self, built):
        topo, _algo, table = built
        assert table.n_entries() > 0
        assert sorted(table.verified_links) == sorted(topo.links())

    def test_entries_never_use_the_protected_link(self, built):
        topo, _algo, table = built
        for (a, b), per_link in table.entries.items():
            for node, per_node in per_link.items():
                far = b if node == a else a
                lost = next(pid for pid, p in topo.ports(node).items()
                            if p.neighbor == far)
                for dst, (cands, _fields) in per_node.items():
                    assert all(p != lost for p, _vc in cands), \
                        (node, dst, (a, b), cands)

    def test_entries_match_live_faulted_decisions(self, built):
        """Probe-verification holds outside the build: re-running the
        live algorithm with the protected link dead reproduces each
        stored entry — candidate set and header-field writes."""
        topo, algo, table = built
        net = Network(topo, algo)       # rebinds algo to this network
        checked = 0
        for link, per_link in sorted(table.entries.items()):
            net.faults.fail_link(*link)
            algo.on_fault_update(net)
            try:
                for node, per_node in sorted(per_link.items()):
                    for dst, (cands, fields) in sorted(per_node.items()):
                        h = _fresh_header(node, dst)
                        dec = algo.route(net.routers[node], h, LOCAL, 0)
                        assert tuple((int(p), int(v))
                                     for p, v in dec.candidates) == cands
                        assert dict(h.fields) == fields
                        checked += 1
            finally:
                net.faults.repair_link(*link)
                algo.on_fault_update(net)
        assert checked == table.n_entries()

    def test_json_roundtrip_preserves_int_keyed_fields(self, built):
        _topo, _algo, table = built
        wire = json.loads(json.dumps(table.to_dict(), sort_keys=True))
        back = BackupTable.from_dict(wire)
        assert back.entries == table.entries
        assert sorted(back.verified_links) == sorted(table.verified_links)
        # updown's move map is keyed by int port id; a naive JSON dump
        # would stringify it and break on_depart's phase commit
        some_fields = [f for per_link in back.entries.values()
                       for per_node in per_link.values()
                       for _c, f in per_node.values() if f]
        assert some_fields, "updown writes a move map on every decision"
        for fields in some_fields:
            moves = fields.get("_ud_moves")
            if moves:
                assert all(isinstance(k, int) for k in moves)

    def test_non_fault_tolerant_algorithms_refused(self):
        with pytest.raises(ValueError, match="not fault-tolerant"):
            build_backup_table_for(Mesh2D(3, 3), make_algorithm("xy"),
                                   verify_deadlock=0)


def _armed_case(fr: FastReroute):
    """Pick any (link, node, dst, entry) present in the wrapper's
    table; deterministic because iteration is sorted."""
    link = sorted(fr.table.entries)[0]
    node = sorted(fr.table.entries[link])[0]
    dst = sorted(fr.table.entries[link][node])[0]
    return link, node, dst, fr.table.entries[link][node][dst]


class TestDispatchEdgeCases:
    @pytest.fixture()
    def net(self):
        topo = Mesh2D(4, 4)
        fr = make_algorithm("updown+frr", topology=topo)
        network = Network(topo, fr)
        network.stats.reroute = {"worms_healed": 0, "worms_absorbed": 0,
                                 "backup_route_decisions": 0}
        return network

    def test_substitution_only_when_armed_at_injection(self, net):
        fr = net.algorithm
        link, node, dst, (cands, _fields) = _armed_case(fr)
        router = net.routers[node]
        counter = net.stats.reroute

        # not armed: transparent delegation
        dec = fr.route(router, _fresh_header(node, dst), LOCAL, 0)
        assert counter["backup_route_decisions"] == 0

        fr.arm(link)
        dec = fr.route(router, _fresh_header(node, dst), LOCAL, 0)
        assert counter["backup_route_decisions"] == 1
        assert dec.steps == 1
        assert set(dec.candidates) == set(cands)

        # mid-flight arrivals keep the inner algorithm's decision
        in_port = next(iter(net.topology.ports(node)))
        fr.route(router, _fresh_header(node, dst), in_port, 0)
        assert counter["backup_route_decisions"] == 1

        # a header carrying committed routing state is not
        # injection-equivalent: the certified entry must not apply
        fr.route(router, _fresh_header(node, dst, {"ud_phase": "down"}),
                 LOCAL, 0)
        assert counter["backup_route_decisions"] == 1

        # "_"-prefixed per-decision scratch is recomputed anyway and
        # must not block substitution; stale scratch is dropped
        h = _fresh_header(node, dst, {"_ud_moves": {99: "up"}})
        dec = fr.route(router, h, LOCAL, 0)
        assert counter["backup_route_decisions"] == 2
        assert h.fields.get("_ud_moves") != {99: "up"}

        fr.disarm(link)
        fr.route(router, _fresh_header(node, dst), LOCAL, 0)
        assert counter["backup_route_decisions"] == 2

    def test_fault_on_backup_link_falls_through(self, net):
        """When the precomputed backup's own port is dead the wrapper
        must not dispatch a worm into it: it falls through to the inner
        algorithm (whose converged state the slow path will fix)."""
        fr = net.algorithm
        link, node, dst, (cands, _fields) = _armed_case(fr)
        router = net.routers[node]
        fr.arm(link)
        router.port_alive = lambda pid: False
        inner_dec = fr.inner.route(router, _fresh_header(node, dst),
                                   LOCAL, 0)
        dec = fr.route(router, _fresh_header(node, dst), LOCAL, 0)
        assert net.stats.reroute["backup_route_decisions"] == 0
        assert dec.candidates == inner_dec.candidates

    def test_reset_disarms(self, net):
        fr = net.algorithm
        link, _node, _dst, _entry = _armed_case(fr)
        fr.arm(link)
        fr.reset(net)
        assert not fr.armed


class TestEndToEndRecovery:
    def test_no_retransmission_zero_loss_and_smaller_gaps(self):
        """The chaos-recovery lane's property on one scenario: with
        retry_limit=0, backups recover everything the slow path loses,
        and every fault's loss window shrinks to the detection delay."""
        kw = dict(width=6, height=6, algorithm="updown", n_link_faults=2,
                  load=0.12, message_length=6, cycles=1200, warmup=200,
                  seed=7, detection_delay=40, diagnosis_hop_delay=2,
                  retry_limit=0)
        off = run_workload(make_scenario(0, backup_routes=False, **kw))
        on = run_workload(make_scenario(0, backup_routes=True, **kw))

        assert on["messages_dead_lettered"] == 0
        assert on["silent_loss"] == 0
        assert on["messages_delivered_logical"] == \
            on["messages_created_logical"]
        # the slow path alone loses mid-flight worms with retries off
        assert off["silent_loss"] > 0
        assert "reroute" in on and "reroute" not in off

        # recovery gap: local confirmation vs flood convergence,
        # per fault event and strictly
        assert len(on["fault_events"]) == len(off["fault_events"]) == 2
        for ev_on, ev_off in zip(on["fault_events"],
                                 off["fault_events"]):
            assert ev_on["target"] == ev_off["target"]
            assert ev_on["fast_reroute"] and not ev_off["fast_reroute"]
            assert ev_on["loss_window"] < ev_off["loss_window"]
        assert on["cycles_of_loss"] < off["cycles_of_loss"]

    def test_batched_engine_declares_explicit_fallback(self):
        cfg = SimConfig(fault_mode="harsh", backup_routes=True)
        reason = batched_fallback_reason(config=cfg)
        assert reason is not None and "backup_routes" in reason
        # the batched-parity CI lane's availability probe (no config)
        # and plain harsh configs stay batched
        assert batched_fallback_reason() is None
        assert batched_fallback_reason(
            config=SimConfig(fault_mode="harsh")) is None


class TestConfigSurface:
    def test_backup_routes_requires_harsh_mode(self):
        with pytest.raises(ValueError, match="backup_routes"):
            SimConfig(backup_routes=True)

    def test_summary_neutral_without_backups(self):
        topo = Mesh2D(3, 3)
        plain = Network(topo, make_algorithm("updown"))
        assert "reroute" not in plain.stats.summary(topo.n_nodes)
        cfg = SimConfig(fault_mode="harsh", backup_routes=True)
        armed = Network(topo, make_algorithm("updown"), config=cfg)
        assert isinstance(armed.algorithm, FastReroute)
        assert "reroute" in armed.stats.summary(topo.n_nodes)

    def test_spec_key_stable_for_legacy_workloads(self):
        spec_off = make_scenario(0, backup_routes=False)
        spec_on = make_scenario(0, backup_routes=True)
        assert "backup_routes" not in spec_off.to_dict()
        assert spec_on.to_dict()["backup_routes"] is True
        assert type(spec_on).from_dict(spec_on.to_dict()).backup_routes

"""End-to-end reliability layer: per-node diagnosis, source
retransmission, the health watchdog, and the harsh-mode fault path.

The digest tests pin fixed-seed runs byte-for-byte: the reliability
knobs all default to off, and enabling none of them must reproduce the
legacy simulator exactly (the acceptance bar for the diagnosis
refactor — existing benchmarks and paper tables are unaffected).
"""

import hashlib
import json

import pytest

from repro.routing.base import RouteDecision, RoutingAlgorithm
from repro.routing.registry import make_algorithm
from repro.sim import (EAST, NORTH, SOUTH, WEST, DeadlockError,
                       DiagnosisEngine, FaultEvent, FaultSchedule,
                       FaultState, Hypercube, Mesh2D, Network, SimConfig,
                       TrafficGenerator, diagnose_stall, link_key,
                       random_node_faults)


def _run_digest(algo, topo, cfg, seed=11, cycles=1200, faults=None,
                with_drops=False):
    net = Network(topo, make_algorithm(algo), config=cfg)
    if faults:
        net.schedule_faults(faults)
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.12,
                                        message_length=4, seed=seed))
    net.set_warmup(200)
    net.run(cycles)
    net.traffic = None
    net.run_until_drained()
    if with_drops:
        order = [(m.header.msg_id, m.injected, m.delivered, m.hops,
                  m.dropped) for m in net.messages.values()]
    else:
        order = [(m.header.msg_id, m.injected, m.delivered, m.hops)
                 for m in net.messages.values()]
    blob = json.dumps({"stats": net.stats.summary(topo.n_nodes),
                       "order": order}, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class TestNeutralityDigests:
    """Default-off knobs leave fixed-seed runs bit-identical."""

    def test_nafta_quiesce(self):
        assert _run_digest("nafta", Mesh2D(6, 6),
                           SimConfig()) == "39e1be944b8f9354"

    def test_nafta_quiesce_boot_faults(self):
        assert _run_digest(
            "nafta", Mesh2D(6, 6), SimConfig(),
            faults=FaultSchedule.static(links=[(14, 15)])
        ) == "0554db33d1a21ada"

    def test_route_c_quiesce(self):
        assert _run_digest("route_c", Hypercube(4),
                           SimConfig()) == "3455ac1deea910df"

    def test_nafta_harsh_midflight(self):
        topo = Mesh2D(6, 6)
        s = FaultSchedule()
        s.add_link_fault(300, topo.node_at(2, 2), topo.node_at(3, 2))
        net = Network(topo, make_algorithm("nafta"),
                      config=SimConfig(fault_mode="harsh",
                                       detection_delay=60))
        net.schedule_faults(s)
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.10,
                                            message_length=4, seed=13))
        net.run(1500)
        net.traffic = None
        net.run_until_drained()
        order = [(m.header.msg_id, m.injected, m.delivered, m.hops,
                  m.dropped) for m in net.messages.values()]
        blob = json.dumps({"stats": net.stats.summary(36), "order": order},
                          sort_keys=True)
        assert hashlib.sha256(
            blob.encode()).hexdigest()[:16] == "b2f9f732cf19efb0"


class TestDiagnosisEngine:
    def test_eta_scales_with_hop_distance(self):
        topo = Mesh2D(5, 1)   # path 0-1-2-3-4
        truth = FaultState(topo)
        eng = DiagnosisEngine(topo, truth, hop_delay=5)
        ev = FaultEvent(100, "link", link_key(0, 1))
        truth.apply(ev)
        done = eng.start_flood(ev, 100)
        # sites are the endpoints; node 4 is 3 healthy hops from node 1
        assert eng.eta(0, ev) == 100
        assert eng.eta(1, ev) == 100
        assert eng.eta(2, ev) == 105
        assert eng.eta(3, ev) == 110
        assert eng.eta(4, ev) == 115
        assert done == 115

    def test_views_update_progressively(self):
        topo = Mesh2D(5, 1)
        truth = FaultState(topo)
        eng = DiagnosisEngine(topo, truth, hop_delay=5)
        ev = FaultEvent(100, "link", link_key(0, 1))
        truth.apply(ev)
        eng.start_flood(ev, 100)
        assert eng.deliver_due(104) == []      # only sites notified so far
        assert not eng.view(2).dead_links
        assert eng.view(0).dead_links == {(0, 1)}
        assert eng.deliver_due(110) == []      # node 4 still pending
        assert eng.view(3).dead_links == {(0, 1)}
        assert not eng.view(4).dead_links
        completed = eng.deliver_due(115)
        assert len(completed) == 1
        event, reached = completed[0]
        assert event is ev
        assert sorted(reached) == [0, 1, 2, 3, 4]
        assert not eng.pending()

    def test_partitioned_node_never_learns(self):
        topo = Mesh2D(3, 1)   # path 0-1-2
        truth = FaultState(topo)
        truth.fail_node(1)    # already dead: 0 and 2 are partitioned
        eng = DiagnosisEngine(topo, truth, hop_delay=1)
        ev = FaultEvent(50, "link", link_key(1, 2))
        truth.apply(ev)
        eng.start_flood(ev, 50)
        eng.deliver_due(10_000)
        assert eng.eta(2, ev) == 50       # live endpoint detects
        assert eng.eta(0, ev) is None     # cut off: never notified
        assert not eng.view(0).dead_links

    def test_boot_faults_prediagnosed_everywhere(self):
        topo = Mesh2D(3, 3)
        truth = FaultState(topo)
        eng = DiagnosisEngine(topo, truth, hop_delay=7)
        ev = FaultEvent(0, "node", 4)
        eng.seed_boot(ev)
        for node in topo.nodes():
            assert eng.eta(node, ev) == 0
            assert not eng.view(node).node_ok(4)

    def test_hop_delay_must_be_positive(self):
        topo = Mesh2D(2, 2)
        with pytest.raises(ValueError):
            DiagnosisEngine(topo, FaultState(topo), hop_delay=0)


def _harsh_retry_net(retry_limit=4, hop_delay=3, detection_delay=40,
                     load=0.30, length=12, seed=13):
    topo = Mesh2D(6, 6)
    cfg = SimConfig(fault_mode="harsh", detection_delay=detection_delay,
                    diagnosis_hop_delay=hop_delay,
                    retry_limit=retry_limit, retry_backoff=8)
    net = Network(topo, make_algorithm("nafta"), config=cfg)
    s = FaultSchedule()
    s.add_link_fault(300, topo.node_at(2, 2), topo.node_at(3, 2))
    net.schedule_faults(s)
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=load,
                                        message_length=length, seed=seed))
    return net, topo


class TestSourceRetransmission:
    def test_ripped_up_worms_recover(self):
        net, topo = _harsh_retry_net()
        net.run(1500)
        net.traffic = None
        net.run_until_drained()
        st = net.stats
        assert st.messages_dropped >= 1            # rip-up happened
        assert st.messages_retried >= 1
        assert st.messages_recovered >= 1
        assert st.messages_dead_lettered == 0
        assert st.mean_time_to_recover > 0
        assert st.max_time_to_recover >= st.mean_time_to_recover
        # every retransmitted copy records its lineage
        retries = [m for m in net.messages.values()
                   if "retry_of" in m.header.fields]
        assert len(retries) == st.messages_retried
        for m in retries:
            f = m.header.fields
            assert f["root_id"] in net.messages
            assert f["attempt"] >= 1
            assert f["first_dropped"] <= m.header.created

    def test_release_waits_for_source_view_plus_backoff(self):
        net, topo = _harsh_retry_net()
        net.run(1500)
        net.traffic = None
        net.run_until_drained()
        assert net.diagnosis is not None
        for m in net.messages.values():
            f = m.header.fields
            if "retry_of" not in f:
                continue
            # re-injected no earlier than the source's view could have
            # confirmed the killing fault
            etas = [net.diagnosis.eta(m.header.src, ev)
                    for ev in net.fault_schedule.events]
            known = [e for e in etas if e is not None]
            if known:
                assert m.header.created >= min(known)

    def test_retry_cap_dead_letters(self):
        net, topo = _harsh_retry_net(retry_limit=2)
        # a message whose attempt count is already at the cap is not
        # retried again but accounted as a dead letter
        msg = net.offer(0, 35, 4, attempt=2, root_id=999, first_dropped=10)
        assert msg is not None
        before = net.stats.messages_dead_lettered
        net._schedule_retry(msg)
        assert net.stats.messages_dead_lettered == before + 1
        assert 999 in net.dead_letters

    def test_dead_destination_dead_letters_at_release(self):
        topo = Mesh2D(4, 4)
        cfg = SimConfig(fault_mode="harsh", retry_limit=3)
        net = Network(topo, make_algorithm("nafta"), config=cfg)
        msg = net.offer(0, 15, 4)
        assert msg is not None
        net.faults.fail_node(15)
        net.known_faults.fail_node(15)
        before = net.stats.messages_dead_lettered
        net._release_retry(0, 15, 4, {"root_id": msg.header.msg_id,
                                      "retry_of": msg.header.msg_id,
                                      "attempt": 1, "first_dropped": 0,
                                      "orig_created": 0})
        assert net.stats.messages_dead_lettered == before + 1
        assert net.stats.messages_retried == 0

    def test_exponential_backoff_schedule(self):
        net, topo = _harsh_retry_net(retry_limit=4)
        msg = net.offer(0, 35, 4)
        net._schedule_retry(msg)                 # attempt 1, no event
        release1 = net._pending_retries[0][0]
        assert release1 == net.cycle + net.config.retry_backoff
        msg2 = net.offer(1, 34, 4, attempt=2)    # next try: attempt 3
        net._schedule_retry(msg2)
        release3 = max(r[0] for r in net._pending_retries)
        assert release3 == net.cycle + net.config.retry_backoff * 4


class _RingRouting(RoutingAlgorithm):
    """Deliberately deadlocks on a 2x2 mesh: every message follows the
    clockwise ring 0 -> 1 -> 3 -> 2 -> 0 on one VC."""

    name = "test_ring"
    n_vcs = 1
    adaptive = False
    _next_port = {0: EAST, 1: NORTH, 3: WEST, 2: SOUTH}

    def route(self, router, header, in_port, in_vc):
        if router.node == header.dst:
            return RouteDecision.delivery()
        return RouteDecision(candidates=[(self._next_port[router.node], 0)])


class TestWatchdog:
    def _deadlocked_net(self):
        topo = Mesh2D(2, 2)
        cfg = SimConfig(deadlock_threshold=60, buffer_depth=2)
        net = Network(topo, _RingRouting(), config=cfg)
        # four 2-hop worms, injected together, each long enough to span
        # both of its links: a guaranteed circular wait
        for src, dst in ((0, 3), (1, 2), (3, 0), (2, 1)):
            net.offer(src, dst, 12)
        return net

    def test_deadlock_error_carries_structured_diagnosis(self):
        net = self._deadlocked_net()
        with pytest.raises(DeadlockError) as ei:
            net.run(2000)
        diag = ei.value.diagnosis
        assert diag is not None
        assert diag.flits_in_flight > 0
        assert len(diag.worms) >= 2
        assert diag.holding_nodes
        # the circular wait is real and reported as a cycle of channels
        assert diag.blocking_cycle
        summary = diag.summary()
        assert summary["stalled_worms"] == len(diag.worms)
        text = diag.describe()
        assert "worm" in text
        assert "blocking cycle" in text

    def test_run_until_drained_diagnosis(self):
        net = self._deadlocked_net()
        with pytest.raises(DeadlockError) as ei:
            net.run_until_drained(max_cycles=500)
        assert ei.value.diagnosis is not None

    def test_diagnose_stall_on_healthy_net_is_benign(self):
        topo = Mesh2D(4, 4)
        net = Network(topo, make_algorithm("xy"))
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.1,
                                            message_length=4, seed=3))
        net.run(50)
        diag = diagnose_stall(net)
        assert diag.cycle == net.cycle
        assert diag.flits_in_flight == net._flits_in_flight()

    def test_hop_budget_drops_livelocked_messages(self):
        topo = Mesh2D(4, 4)
        cfg = SimConfig(fault_mode="harsh", hop_budget=3,
                        deadlock_threshold=200)
        net = Network(topo, _SpiralRouting(), config=cfg)
        net.offer(0, 15, 4)
        net.run(600)
        assert net.stats.messages_stuck == 1
        assert not net._flits_in_flight()


class _SpiralRouting(RoutingAlgorithm):
    """Never delivers: pushes everything around the mesh perimeter so
    the hop budget is the only thing that stops it."""

    name = "test_spiral"
    n_vcs = 1
    adaptive = False

    def route(self, router, header, in_port, in_vc):
        topo = router.topology
        x, y = topo.coords(router.node)
        w, h = topo.width - 1, topo.height - 1
        if y == 0 and x < w:
            port = EAST
        elif x == w and y < h:
            port = NORTH
        elif y == h and x > 0:
            port = WEST
        else:
            port = SOUTH
        return RouteDecision(candidates=[(port, 0)])


class TestHarshFaultPath:
    def test_detection_delay_stall_then_rip_up(self):
        net, topo = _harsh_retry_net(hop_delay=2, detection_delay=50)
        link = link_key(topo.node_at(2, 2), topo.node_at(3, 2))
        net.run(320)                       # physical fault hit at 300
        assert link in net.faults.dead_links
        assert link not in net.known_faults.dead_links   # heartbeat lag
        assert net.stats.messages_dropped == 0           # worms stalled
        net.run(400)                       # detection + flood complete
        assert link in net.known_faults.dead_links
        net.traffic = None
        net.run_until_drained()
        assert net.stats.messages_dropped >= 1

    def test_quiesce_vs_harsh_same_seed_both_complete(self):
        results = {}
        for mode, kw in (("quiesce", {}),
                         ("harsh", {"detection_delay": 30})):
            topo = Mesh2D(6, 6)
            cfg = SimConfig(fault_mode=mode, **kw)
            net = Network(topo, make_algorithm("nafta"), config=cfg)
            s = FaultSchedule()
            s.add_link_fault(300, topo.node_at(2, 2), topo.node_at(3, 2))
            net.schedule_faults(s)
            net.attach_traffic(TrafficGenerator(
                topo, "uniform", load=0.25, message_length=8, seed=21))
            net.run(1200)
            net.traffic = None
            net.run_until_drained()
            results[mode] = net.stats
        # quiesce never kills a worm; harsh may
        assert results["quiesce"].messages_dropped == 0
        assert results["harsh"].messages_delivered \
            + results["harsh"].messages_dropped \
            >= results["quiesce"].messages_delivered

    def test_boot_vs_midflight_confirmation(self):
        topo = Mesh2D(4, 4)
        link = link_key(topo.node_at(1, 1), topo.node_at(2, 1))
        cfg = SimConfig(fault_mode="harsh", detection_delay=20,
                        diagnosis_hop_delay=2)
        # boot fault: pre-diagnosed, no detection machinery involved
        net = Network(topo, make_algorithm("nafta"), config=cfg)
        net.schedule_faults(FaultSchedule.static(links=[link]))
        assert link in net.known_faults.dead_links
        for node in topo.nodes():
            assert link in net.fault_view(node).dead_links
        assert not net._pending_detections
        # mid-flight fault: ground truth leads, views lag hop by hop
        net2 = Network(topo, make_algorithm("nafta"), config=cfg)
        s = FaultSchedule()
        s.add_link_fault(10, *link)
        net2.schedule_faults(s)
        net2.run(11)
        assert link in net2.faults.dead_links
        assert link not in net2.known_faults.dead_links
        assert net2._pending_detections
        net2.run(60)
        assert link in net2.known_faults.dead_links
        for node in topo.nodes():
            assert link in net2.fault_view(node).dead_links


class TestFaultScheduleIndex:
    def test_due_matches_linear_scan_and_tracks_growth(self):
        s = FaultSchedule()
        s.add_link_fault(5, 0, 1)
        s.add_node_fault(5, 3)
        s.add_link_fault(9, 1, 2)
        assert [e.cycle for e in s.due(5)] == [5, 5]
        assert s.due(6) == []
        s.add_node_fault(5, 7)            # grow after first index build
        assert len(s.due(5)) == 3
        assert len(s.due(9)) == 1

    def test_validate_rejects_bad_targets(self):
        topo = Mesh2D(3, 3)
        bad_link = FaultSchedule().add_link_fault(0, 0, 8)  # not adjacent
        with pytest.raises(ValueError, match="link"):
            bad_link.validate(topo)
        bad_node = FaultSchedule().add_node_fault(0, 99)
        with pytest.raises(ValueError, match="node"):
            bad_node.validate(topo)
        bad_cycle = FaultSchedule()
        bad_cycle.events.append(FaultEvent(-1, "node", 0))
        with pytest.raises(ValueError, match="negative"):
            bad_cycle.validate(topo)
        ok = FaultSchedule().add_link_fault(4, 0, 1).add_node_fault(9, 8)
        ok.validate(topo)                  # no raise

    def test_network_schedule_faults_validates(self):
        topo = Mesh2D(3, 3)
        net = Network(topo, make_algorithm("xy"))
        with pytest.raises(ValueError):
            net.schedule_faults(FaultSchedule().add_node_fault(0, 99))


class TestRandomNodeFaults:
    def test_count_distinct_and_connected(self):
        import numpy as np
        topo = Mesh2D(6, 6)
        rng = np.random.default_rng(42)
        nodes = random_node_faults(topo, 4, rng)
        assert len(nodes) == len(set(nodes)) == 4
        state = FaultState(topo)
        for n in nodes:
            state.fail_node(n)
        alive = [n for n in topo.nodes() if state.node_ok(n)]
        assert all(state.connected(alive[0], n) for n in alive[1:])

    def test_deterministic_per_seed(self):
        import numpy as np
        topo = Mesh2D(6, 6)
        a = random_node_faults(topo, 3, np.random.default_rng(7))
        b = random_node_faults(topo, 3, np.random.default_rng(7))
        assert a == b

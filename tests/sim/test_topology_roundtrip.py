"""``topology_from_dict`` round-trip for every registered topology.

Topology *descriptions* — not live objects — are what crosses process
boundaries (sweep workers, the result cache, conformance corpus
entries), so describe() -> topology_from_dict() must reconstruct an
isomorphic instance for every kind in the registry.  The registry
completeness test fails loudly when a new kind is added without a
sample here.
"""

import pytest

from repro.sim.topology import (Hypercube, KAryNCube, Mesh2D, MeshND,
                                Torus2D, _TOPOLOGY_KINDS,
                                topology_from_dict)

# at least one representative instance per registered kind, including
# non-square / non-power-of-two shapes where the kind allows them
SAMPLES = {
    "mesh2d": [Mesh2D(2, 2), Mesh2D(5, 3)],
    "torus2d": [Torus2D(3, 3), Torus2D(4, 6)],
    "hypercube": [Hypercube(1), Hypercube(4)],
    "meshnd": [MeshND((3,)), MeshND((2, 3, 4))],
    "karyncube": [KAryNCube(4, 2), KAryNCube(3, 3)],
}


def _all_samples():
    for kind, topos in sorted(SAMPLES.items()):
        for topo in topos:
            yield pytest.param(topo, id=f"{kind}-{topo.n_nodes}n")


def test_every_registered_kind_is_sampled():
    assert set(SAMPLES) == set(_TOPOLOGY_KINDS), (
        "add a SAMPLES entry for every kind registered in "
        "_TOPOLOGY_KINDS (and vice versa)")


@pytest.mark.parametrize("topo", _all_samples())
def test_roundtrip_is_isomorphic(topo):
    desc = topo.describe()
    rebuilt = topology_from_dict(desc)
    assert type(rebuilt) is type(topo)
    assert rebuilt.describe() == desc
    assert rebuilt.n_nodes == topo.n_nodes
    assert sorted(rebuilt.links()) == sorted(topo.links())
    for n in topo.nodes():
        assert rebuilt.ports(n) == topo.ports(n)
        assert list(rebuilt.neighbors(n)) == list(topo.neighbors(n))


@pytest.mark.parametrize("topo", _all_samples())
def test_roundtrip_preserves_distances(topo):
    rebuilt = topology_from_dict(topo.describe())
    nodes = list(topo.nodes())
    probes = nodes[:: max(1, len(nodes) // 6)]
    for a in probes:
        for b in probes:
            assert rebuilt.distance(a, b) == topo.distance(a, b)


def test_describe_is_json_clean():
    import json
    for topos in SAMPLES.values():
        for topo in topos:
            desc = json.loads(json.dumps(topo.describe()))
            assert topology_from_dict(desc).describe() == topo.describe()


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown topology kind"):
        topology_from_dict({"kind": "klein_bottle"})


def test_non_description_rejected():
    with pytest.raises(ValueError, match="not a topology description"):
        topology_from_dict(None)
    with pytest.raises(ValueError, match="not a topology description"):
        topology_from_dict({"width": 3})

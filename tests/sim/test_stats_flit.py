"""Unit tests for messages/flits and the statistics collector."""

import math

import warnings

import pytest

from repro.sim import FlitKind, Message, StatsCollector, reset_message_ids
from repro.sim.config import SimConfig


class TestMessage:
    def setup_method(self):
        # the shim warns by design; these tests exercise the bare-Message
        # fallback counter it still resets
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            reset_message_ids()

    def test_single_flit_message(self):
        m = Message.create(0, 5, 1, cycle=10)
        flits = m.flits()
        assert len(flits) == 1
        assert flits[0].kind == FlitKind.HEAD_TAIL
        assert flits[0].is_head and flits[0].is_tail

    def test_worm_structure(self):
        m = Message.create(0, 5, 5, cycle=0)
        flits = m.flits()
        kinds = [f.kind for f in flits]
        assert kinds == [FlitKind.HEAD, FlitKind.BODY, FlitKind.BODY,
                         FlitKind.BODY, FlitKind.TAIL]
        assert [f.seq for f in flits] == [0, 1, 2, 3, 4]
        assert flits[0].header is m.header
        assert all(f.header is None for f in flits[1:])

    def test_msg_ids_unique_and_resettable(self):
        a = Message.create(0, 1, 2, 0)
        b = Message.create(0, 1, 2, 0)
        assert a.header.msg_id != b.header.msg_id
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            reset_message_ids()
        c = Message.create(0, 1, 2, 0)
        assert c.header.msg_id == 0

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            Message.create(0, 1, 0, 0)

    def test_latency_accounting(self):
        m = Message.create(0, 1, 2, cycle=10)
        assert m.latency is None
        m.injected = 15
        m.delivered = 40
        assert m.latency == 30
        assert m.network_latency == 25

    def test_header_helpers(self):
        m = Message.create(0, 1, 2, 0)
        h = m.header
        assert not h.misrouted and h.path_len == 0
        h.mark_misrouted()
        h.bump_path_len()
        h.bump_path_len()
        assert h.misrouted and h.path_len == 2


class TestStatsCollector:
    def make_delivered(self, created, injected, delivered, hops=3,
                       misrouted=False):
        m = Message.create(0, 1, 4, created)
        m.injected = injected
        m.delivered = delivered
        m.hops = hops
        if misrouted:
            m.header.mark_misrouted()
        return m

    def test_warmup_excludes_early_messages(self):
        s = StatsCollector(warmup=100)
        s.count_message(self.make_delivered(50, 55, 80))
        s.count_message(self.make_delivered(150, 155, 190))
        assert s.measured_messages() == 1
        assert s.mean_latency == 40

    def test_latency_percentile(self):
        s = StatsCollector()
        for lat in range(1, 101):
            s.count_message(self.make_delivered(0, 0, lat))
        assert s.p99_latency == pytest.approx(99.01, abs=0.5)

    def test_empty_stats_are_nan(self):
        s = StatsCollector()
        assert math.isnan(s.mean_latency)
        assert math.isnan(s.mean_hops)

    def test_throughput_window(self):
        s = StatsCollector(warmup=100)
        s.now = 50
        for _ in range(10):
            s.count_delivered_flit()   # before warmup: not measured
        s.now = 200
        for _ in range(100):
            s.count_delivered_flit()
        assert s.throughput(n_nodes=10) == pytest.approx(100 / (100 * 10))

    def test_misrouted_fraction(self):
        s = StatsCollector()
        s.count_message(self.make_delivered(0, 0, 10))
        s.count_message(self.make_delivered(0, 0, 10, misrouted=True))
        assert s.misrouted_fraction == 0.5

    def test_decision_steps(self):
        s = StatsCollector()
        s.count_decision(1)
        s.count_decision(3)
        assert s.decisions == 2
        assert s.mean_decision_steps == 2.0
        assert s.max_decision_steps == 3

    def test_summary_keys(self):
        s = StatsCollector()
        keys = set(s.summary(4))
        assert {"mean_latency", "throughput_flits_node_cycle",
                "messages_stuck", "max_decision_steps"} <= keys


class TestSimConfig:
    def test_defaults_valid(self):
        cfg = SimConfig()
        assert cfg.buffer_depth == 4

    @pytest.mark.parametrize("kw", [
        {"buffer_depth": 0},
        {"cycles_per_step": -1},
        {"fault_mode": "optimistic"},
    ])
    def test_invalid_configs_rejected(self, kw):
        with pytest.raises(ValueError):
            SimConfig(**kw)

"""Integration tests of the wormhole network with oblivious baselines."""

import pytest

from repro.routing.dimension_order import ECubeRouting, TorusDatelineXY, XYRouting
from repro.sim import (FaultSchedule, Hypercube, Mesh2D, Network, SimConfig,
                       Torus2D, TrafficGenerator)


def drain(net, max_cycles=100_000):
    net.run_until_drained(max_cycles)


class TestSingleMessage:
    def test_mesh_delivery(self):
        net = Network(Mesh2D(4, 4), XYRouting())
        m = net.offer(0, 15, 4)
        drain(net)
        assert m.delivered is not None
        assert m.hops == 7  # 6 router-to-router + ejection

    def test_zero_hop_to_self_adjacent(self):
        net = Network(Mesh2D(4, 4), XYRouting())
        m = net.offer(0, 1, 2)
        drain(net)
        assert m.delivered is not None
        assert m.hops == 2

    def test_latency_grows_with_length(self):
        lat = {}
        for length in (1, 8):
            net = Network(Mesh2D(4, 4), XYRouting())
            m = net.offer(0, 15, length)
            drain(net)
            lat[length] = m.latency
        assert lat[8] == lat[1] + 7  # pipelined worm: +1 cycle per flit

    def test_xy_path_is_x_first(self):
        net = Network(Mesh2D(4, 4), XYRouting(),
                      config=SimConfig(trace_paths=True))
        m = net.offer(0, 15, 2)
        drain(net)
        topo = net.topology
        trace = m.header.fields["trace"]
        xs = [topo.coords(n)[0] for n in trace]
        ys = [topo.coords(n)[1] for n in trace]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        # x is fully corrected before y moves
        assert ys[: xs.index(3) + 1] == [0] * (xs.index(3) + 1)

    def test_hypercube_delivery(self):
        net = Network(Hypercube(4), ECubeRouting())
        m = net.offer(0b0000, 0b1011, 4)
        drain(net)
        assert m.delivered is not None
        assert m.hops == 4  # 3 dimensions + ejection

    def test_unroutable_to_dead_destination(self):
        net = Network(Mesh2D(4, 4), XYRouting())
        net.schedule_faults(FaultSchedule.static(nodes=[15]))
        assert net.offer(0, 15, 4) is None
        assert net.stats.messages_unroutable == 1


class TestWormholeInvariants:
    def test_no_buffer_overflow_under_load(self):
        cfg = SimConfig(buffer_depth=2)
        net = Network(Mesh2D(4, 4), XYRouting(), config=cfg)
        net.attach_traffic(TrafficGenerator(net.topology, "uniform",
                                            load=0.4, message_length=6,
                                            seed=11))
        for _ in range(800):
            net.step()
            for r in net.routers:
                for vcs in r.input_vcs.values():
                    for iv in vcs:
                        assert len(iv.buffer) + len(iv.incoming) <= iv.capacity

    def test_flit_conservation(self):
        net = Network(Mesh2D(4, 4), XYRouting())
        net.attach_traffic(TrafficGenerator(net.topology, "uniform",
                                            load=0.3, message_length=4,
                                            seed=5))
        net.run(500)
        net.traffic = None
        drain(net)
        created = sum(m.header.length for m in net.messages.values())
        assert net.stats.flits_delivered == created

    def test_worms_do_not_interleave(self):
        """All flits of a message arrive contiguously per message id."""
        seen_order = []
        net = Network(Mesh2D(4, 4), XYRouting())
        orig_eject = net.eject

        def spy(node, flit, cycle):
            seen_order.append((node, flit.msg_id, flit.seq))
            orig_eject(node, flit, cycle)

        net.eject = spy
        net.offer(0, 5, 6)
        net.offer(3, 5, 6)
        net.offer(12, 5, 6)
        drain(net)
        per_node: dict = {}
        for node, msg_id, seq in seen_order:
            per_node.setdefault(node, []).append((msg_id, seq))
        for flits in per_node.values():
            # sequence numbers per message strictly increase
            last = {}
            for msg_id, seq in flits:
                assert seq == last.get(msg_id, -1) + 1
                last[msg_id] = seq

    def test_messages_all_delivered_moderate_load(self):
        net = Network(Mesh2D(6, 6), XYRouting())
        net.attach_traffic(TrafficGenerator(net.topology, "uniform",
                                            load=0.15, message_length=4,
                                            seed=9))
        net.run(1000)
        net.traffic = None
        drain(net)
        assert not net.undelivered()
        assert net.stats.messages_dropped == 0


class TestDecisionLatency:
    def test_slower_decisions_increase_latency(self):
        lat = {}
        for cps in (1, 3):
            net = Network(Mesh2D(4, 4), XYRouting(),
                          config=SimConfig(cycles_per_step=cps))
            m = net.offer(0, 15, 4)
            drain(net)
            lat[cps] = m.latency
        # 7 decisions on the path, each 2 cycles slower
        assert lat[3] - lat[1] == 7 * 2


class TestTorus:
    def test_dateline_delivery(self):
        net = Network(Torus2D(4, 4), TorusDatelineXY())
        m = net.offer(net.topology.node_at(3, 3), net.topology.node_at(0, 0), 4)
        drain(net)
        assert m.delivered is not None
        assert m.hops == 3  # one wrap hop per dimension + ejection

    def test_torus_uniform_load_delivers(self):
        net = Network(Torus2D(4, 4), TorusDatelineXY())
        net.attach_traffic(TrafficGenerator(net.topology, "uniform",
                                            load=0.2, message_length=4,
                                            seed=3))
        net.run(800)
        net.traffic = None
        drain(net)
        assert not net.undelivered()


class TestHarshFaults:
    def test_worm_ripped_up_on_link_fault(self):
        cfg = SimConfig(fault_mode="harsh")
        net = Network(Mesh2D(4, 4), XYRouting(), config=cfg)
        # long worm crossing the (1,0)-(2,0) link
        m = net.offer(0, 3, 30)
        for _ in range(8):
            net.step()
        sched = FaultSchedule()
        sched.add_link_fault(net.cycle, 1, 2)
        net.fault_schedule = sched
        net.step()
        assert m.dropped
        assert net.in_flight() == 0  # all flits purged

    def test_retransmit_after_drop(self):
        cfg = SimConfig(fault_mode="harsh", retransmit_dropped=True)
        net = Network(Mesh2D(4, 4), XYRouting(), config=cfg)
        m = net.offer(0, 3, 30)
        for _ in range(8):
            net.step()
        sched = FaultSchedule()
        sched.add_link_fault(net.cycle, 1, 2)
        net.fault_schedule = sched
        net.step()
        assert m.dropped
        # a retransmitted copy exists... but XY cannot route around the
        # dead link, so it is refused only if disconnected; here an
        # alternative path exists yet XY would still use the x-first
        # path: the copy stays queued/blocked. Just check it was created.
        assert any(mm is not m and mm.header.dst == 3
                   for mm in net.messages.values())


class TestStats:
    def test_throughput_matches_offered_load_below_saturation(self):
        net = Network(Mesh2D(6, 6), XYRouting())
        net.attach_traffic(TrafficGenerator(net.topology, "uniform",
                                            load=0.1, message_length=4,
                                            seed=2))
        net.set_warmup(300)
        net.run(2500)
        thr = net.stats.throughput(net.topology.n_nodes)
        assert thr == pytest.approx(0.1, rel=0.2)

    def test_decision_steps_counted(self):
        net = Network(Mesh2D(4, 4), XYRouting())
        net.offer(0, 15, 2)
        drain(net)
        assert net.stats.decisions == 7
        assert net.stats.mean_decision_steps == 1.0

"""Unit tests for switch arbitration policies (the paper's Scheduling
and Fairness subgoal)."""

import pytest

from repro.sim.arbiter import (Arbiter, MisroutedFirstArbiter,
                               OldestFirstArbiter, Request, make_arbiter)
from repro.sim.flit import Header


def req(in_port, in_vc, msg_id=0, created=0, misrouted=False):
    hdr = Header(msg_id=msg_id, src=0, dst=1, length=2, created=created)
    if misrouted:
        hdr.mark_misrouted()
    return Request(in_port, in_vc, 0, 0, hdr, True)


class TestRoundRobin:
    def test_single_request(self):
        a = Arbiter()
        r = req(0, 0)
        assert a.choose(0, [r]) is r

    def test_rotation(self):
        a = Arbiter()
        r0, r1, r2 = req(0, 0), req(1, 0), req(2, 0)
        picks = [a.choose(0, [r0, r1, r2]).in_port for _ in range(6)]
        # pointer advances past each grant: no requester starves
        assert set(picks) == {0, 1, 2}
        assert picks[0] != picks[1]

    def test_pointer_is_per_output(self):
        a = Arbiter()
        r0, r1 = req(0, 0), req(1, 0)
        first_on_out0 = a.choose(0, [r0, r1])
        first_on_out1 = a.choose(1, [r0, r1])
        assert first_on_out0.in_port == first_on_out1.in_port == 0

    def test_no_starvation_under_contention(self):
        a = Arbiter()
        requests = [req(p, v) for p in range(4) for v in range(2)]
        grants = {(r.in_port, r.in_vc): 0 for r in requests}
        for _ in range(80):
            chosen = a.choose(0, requests)
            grants[(chosen.in_port, chosen.in_vc)] += 1
        assert min(grants.values()) >= 8  # fair share ~10 each

    def test_empty_requests_rejected(self):
        with pytest.raises(ValueError):
            Arbiter().choose(0, [])


class TestMisroutedFirst:
    def test_prefers_misrouted(self):
        a = MisroutedFirstArbiter()
        normal = req(0, 0, msg_id=1)
        detoured = req(3, 1, msg_id=2, misrouted=True)
        assert a.choose(0, [normal, detoured]) is detoured

    def test_falls_back_to_round_robin(self):
        a = MisroutedFirstArbiter()
        r0, r1 = req(0, 0), req(1, 0)
        assert a.choose(0, [r0, r1]) in (r0, r1)

    def test_round_robin_among_misrouted(self):
        a = MisroutedFirstArbiter()
        m0 = req(0, 0, misrouted=True)
        m1 = req(1, 0, misrouted=True)
        picks = {a.choose(0, [m0, m1]).in_port for _ in range(4)}
        assert picks == {0, 1}


class TestOldestFirst:
    def test_prefers_oldest(self):
        a = OldestFirstArbiter()
        young = req(0, 0, msg_id=5, created=100)
        old = req(1, 0, msg_id=3, created=10)
        assert a.choose(0, [young, old]) is old

    def test_ties_break_by_msg_id(self):
        a = OldestFirstArbiter()
        r1 = req(0, 0, msg_id=7, created=10)
        r2 = req(1, 0, msg_id=3, created=10)
        assert a.choose(0, [r1, r2]) is r2


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_arbiter("round_robin"), Arbiter)
        assert isinstance(make_arbiter("misrouted_first"),
                          MisroutedFirstArbiter)
        assert isinstance(make_arbiter("oldest_first"), OldestFirstArbiter)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_arbiter("coin_flip")

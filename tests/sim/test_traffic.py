"""Unit tests for traffic patterns and generators."""

import numpy as np
import pytest

from repro.sim import Hypercube, Mesh2D, TrafficGenerator, Torus2D
from repro.sim.traffic import (PATTERNS, bit_complement_pattern,
                               bit_reverse_pattern,
                               dimension_reverse_pattern, hotspot_pattern,
                               neighbor_pattern, permutation_pattern,
                               transpose_pattern, uniform_pattern)


class TestPatterns:
    def test_uniform_never_self(self):
        topo = Mesh2D(4, 4)
        rng = np.random.default_rng(0)
        dest = uniform_pattern(topo, rng)
        for src in topo.nodes():
            for _ in range(20):
                assert dest(src) != src

    def test_uniform_covers_all_destinations(self):
        topo = Mesh2D(4, 4)
        rng = np.random.default_rng(1)
        dest = uniform_pattern(topo, rng)
        seen = {dest(0) for _ in range(600)}
        assert seen == set(range(1, 16))

    def test_transpose(self):
        topo = Mesh2D(4, 4)
        dest = transpose_pattern(topo)
        assert dest(topo.node_at(1, 3)) == topo.node_at(3, 1)
        assert dest(topo.node_at(2, 2)) == topo.node_at(2, 2)

    def test_transpose_requires_square(self):
        with pytest.raises(ValueError):
            transpose_pattern(Mesh2D(4, 3))

    def test_bit_complement(self):
        topo = Mesh2D(4, 4)
        dest = bit_complement_pattern(topo)
        assert dest(0) == 15
        assert dest(0b0101) == 0b1010

    def test_bit_complement_needs_power_of_two(self):
        with pytest.raises(ValueError):
            bit_complement_pattern(Mesh2D(3, 4))

    def test_bit_reverse(self):
        topo = Mesh2D(4, 4)  # 16 nodes, 4 bits
        dest = bit_reverse_pattern(topo)
        assert dest(0b0001) == 0b1000
        assert dest(0b1100) == 0b0011

    def test_hotspot_bias(self):
        topo = Mesh2D(4, 4)
        rng = np.random.default_rng(2)
        dest = hotspot_pattern(topo, rng, hotspot=5, fraction=0.5)
        hits = sum(1 for _ in range(1000) if dest(0) == 5)
        assert hits > 350  # ~50% + uniform share

    def test_neighbor_pattern_distance_one(self):
        topo = Mesh2D(5, 5)
        rng = np.random.default_rng(3)
        dest = neighbor_pattern(topo, rng)
        for src in topo.nodes():
            assert topo.distance(src, dest(src)) == 1

    def test_permutation_is_derangement(self):
        topo = Mesh2D(4, 4)
        rng = np.random.default_rng(4)
        dest = permutation_pattern(topo, rng)
        targets = [dest(s) for s in topo.nodes()]
        assert sorted(targets) == list(topo.nodes())
        assert all(t != s for s, t in enumerate(targets))

    def test_dimension_reverse_on_cube(self):
        topo = Hypercube(4)
        dest = dimension_reverse_pattern(topo)
        assert dest(0b0011) == 0b1100

    def test_pattern_registry_complete(self):
        topo = Mesh2D(4, 4)
        rng = np.random.default_rng(5)
        for name, factory in PATTERNS.items():
            if name == "dimension_reverse":
                continue  # cube only
            if name == "trace_replay":
                continue  # schedule-driven; no destination function
            fn = factory(topo, rng)
            d = fn(0)
            assert 0 <= d < 16


class TestGenerator:
    def test_rate_close_to_load(self):
        topo = Mesh2D(4, 4)
        gen = TrafficGenerator(topo, "uniform", load=0.2, message_length=4,
                               seed=6)
        msgs = sum(len(gen.tick(c)) for c in range(2000))
        flits = msgs * 4
        offered = flits / (2000 * 16)
        assert offered == pytest.approx(0.2, rel=0.1)

    def test_seeded_reproducibility(self):
        topo = Mesh2D(4, 4)
        a = TrafficGenerator(topo, "uniform", load=0.3, seed=7)
        b = TrafficGenerator(topo, "uniform", load=0.3, seed=7)
        for c in range(50):
            assert a.tick(c) == b.tick(c)

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            TrafficGenerator(Mesh2D(2, 2), "uniform", load=1.5)

    def test_invalid_pattern_rejected(self):
        with pytest.raises(ValueError):
            TrafficGenerator(Mesh2D(2, 2), "nope")

    def test_zero_load_generates_nothing(self):
        gen = TrafficGenerator(Mesh2D(4, 4), "uniform", load=0.0, seed=1)
        assert all(not gen.tick(c) for c in range(100))

    def test_bursty_mean_rate_close_to_load(self):
        topo = Mesh2D(4, 4)
        gen = TrafficGenerator(topo, "bursty", load=0.2, message_length=4,
                               seed=6, pattern_kwargs={"duty": 0.25,
                                                       "burst_len": 20})
        msgs = sum(len(gen.tick(c)) for c in range(8000))
        offered = msgs * 4 / (8000 * 16)
        # the Markov gating redistributes injections into bursts but
        # must keep the mean offered load of the Bernoulli model
        assert offered == pytest.approx(0.2, rel=0.15)

    def test_bursty_is_actually_bursty(self):
        # a node that just injected is very likely still inside its
        # on-stretch, so its next-cycle injection probability must sit
        # far above the marginal rate (for plain Bernoulli the two are
        # equal — cycles are independent)
        topo = Mesh2D(4, 4)
        gen = TrafficGenerator(topo, "bursty", load=0.2, message_length=4,
                               seed=6, pattern_kwargs={"duty": 0.1,
                                                       "burst_len": 30})
        injected = [{m[0] for m in gen.tick(c)} for c in range(6000)]
        node0 = [0 in s for s in injected]
        marginal = sum(node0) / len(node0)
        follow = [b for a, b in zip(node0, node0[1:]) if a]
        conditional = sum(follow) / len(follow)
        assert conditional > 3 * marginal

    def test_bursty_seeded_reproducibility(self):
        topo = Mesh2D(4, 4)
        kw = {"duty": 0.3, "burst_len": 10}
        a = TrafficGenerator(topo, "bursty", load=0.3, seed=7,
                             pattern_kwargs=dict(kw))
        b = TrafficGenerator(topo, "bursty", load=0.3, seed=7,
                             pattern_kwargs=dict(kw))
        for c in range(200):
            assert a.tick(c) == b.tick(c)

    def test_bursty_validation(self):
        topo = Mesh2D(2, 2)
        with pytest.raises(ValueError, match="duty"):
            TrafficGenerator(topo, "bursty", pattern_kwargs={"duty": 0.0})
        with pytest.raises(ValueError, match="burst_len"):
            TrafficGenerator(topo, "bursty",
                             pattern_kwargs={"burst_len": 0})
        with pytest.raises(ValueError, match="stack"):
            TrafficGenerator(topo, "bursty",
                             pattern_kwargs={"base": "bursty"})

    def test_trace_replay_exact_schedule(self):
        topo = Mesh2D(4, 4)
        trace = [(0, 1, 2), (0, 3, 4, 6), (5, 2, 9)]
        gen = TrafficGenerator(topo, "trace_replay", message_length=4,
                               pattern_kwargs={"trace": trace})
        assert sorted(gen.tick(0)) == [(1, 2, 4), (3, 4, 6)]
        assert gen.tick(1) == []
        assert gen.tick(5) == [(2, 9, 4)]
        assert gen.tick(6) == []

    def test_trace_replay_repeat_period(self):
        topo = Mesh2D(4, 4)
        gen = TrafficGenerator(topo, "trace_replay", message_length=2,
                               pattern_kwargs={"trace": [(1, 0, 5)],
                                               "repeat": 4})
        hits = [c for c in range(12) if gen.tick(c)]
        assert hits == [1, 5, 9]

    def test_trace_replay_validation(self):
        topo = Mesh2D(4, 4)
        with pytest.raises(ValueError, match="trace"):
            TrafficGenerator(topo, "trace_replay")
        with pytest.raises(ValueError, match="non-empty"):
            TrafficGenerator(topo, "trace_replay",
                             pattern_kwargs={"trace": []})
        with pytest.raises(ValueError, match="entry 0"):
            TrafficGenerator(topo, "trace_replay",
                             pattern_kwargs={"trace": [(0, 1)]})
        with pytest.raises(ValueError, match="unknown"):
            TrafficGenerator(topo, "trace_replay",
                             pattern_kwargs={"trace": [(0, 1, 2)],
                                             "oops": 1})

    def test_torus_patterns_work(self):
        gen = TrafficGenerator(Torus2D(4, 4), "transpose", load=0.5, seed=2)
        out = []
        for c in range(50):
            out.extend(gen.tick(c))
        assert out
        topo = gen.topology
        for src, dst, length in out:
            x, y = topo.coords(src)
            assert topo.coords(dst) == (y, x)

"""Unit tests for the fault model."""

import numpy as np
import pytest

from repro.sim import (FaultEvent, FaultSchedule, FaultState, Hypercube,
                       Mesh2D, link_key, random_link_faults)


class TestFaultState:
    def test_initially_everything_ok(self):
        topo = Mesh2D(4, 4)
        f = FaultState(topo)
        assert f.n_faults() == 0
        assert all(f.node_ok(n) for n in topo.nodes())
        assert all(f.link_ok(a, b) for a, b in topo.links())

    def test_link_fault_is_bidirectional(self):
        topo = Mesh2D(4, 4)
        f = FaultState(topo)
        f.fail_link(5, 6)
        assert not f.link_ok(5, 6)
        assert not f.link_ok(6, 5)

    def test_node_fault_kills_its_links(self):
        topo = Mesh2D(4, 4)
        f = FaultState(topo)
        f.fail_node(5)
        for nb in topo.neighbors(5):
            assert not f.link_ok(5, nb)

    def test_invalid_link_rejected(self):
        topo = Mesh2D(4, 4)
        f = FaultState(topo)
        with pytest.raises(ValueError):
            f.fail_link(0, 5)  # not adjacent

    def test_invalid_node_rejected(self):
        f = FaultState(Mesh2D(4, 4))
        with pytest.raises(ValueError):
            f.fail_node(99)

    def test_alive_ports(self):
        topo = Mesh2D(4, 4)
        f = FaultState(topo)
        f.fail_link(0, 1)
        from repro.sim import NORTH
        assert f.alive_ports(0) == [NORTH]

    def test_connectivity(self):
        topo = Mesh2D(3, 1)  # path 0-1-2
        f = FaultState(topo)
        assert f.connected(0, 2)
        f.fail_node(1)
        assert not f.connected(0, 2)
        assert f.connected(0, 0)

    def test_connected_to_dead_node_false(self):
        topo = Mesh2D(3, 1)
        f = FaultState(topo)
        f.fail_node(2)
        assert not f.connected(0, 2)

    def test_snapshot(self):
        topo = Mesh2D(4, 4)
        f = FaultState(topo)
        f.fail_link(0, 1)
        f.fail_node(9)
        links, nodes = f.snapshot()
        assert links == frozenset({link_key(0, 1)})
        assert nodes == frozenset({9})


class TestFaultSchedule:
    def test_static_applies_at_zero(self):
        s = FaultSchedule.static(links=[(0, 1)], nodes=[5])
        assert len(s.due(0)) == 2
        assert s.due(1) == []

    def test_add_and_due(self):
        s = FaultSchedule()
        s.add_link_fault(100, 3, 4).add_node_fault(200, 7)
        assert [e.kind for e in s.due(100)] == ["link"]
        assert [e.kind for e in s.due(200)] == ["node"]
        assert s.last_cycle() == 200

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(0, "gamma_ray", 3)


class TestRandomLinkFaults:
    @pytest.mark.parametrize("n", [1, 4, 8])
    def test_preserves_connectivity(self, n):
        topo = Mesh2D(6, 6)
        rng = np.random.default_rng(n)
        links = random_link_faults(topo, n, rng)
        assert len(links) == n
        assert len(set(links)) == n
        f = FaultState(topo)
        for a, b in links:
            f.fail_link(a, b)
        alive = list(topo.nodes())
        for dst in alive[1:]:
            assert f.connected(alive[0], dst)

    def test_works_on_hypercube(self):
        topo = Hypercube(4)
        rng = np.random.default_rng(1)
        links = random_link_faults(topo, 6, rng)
        assert len(links) == 6

    def test_impossible_request_raises(self):
        topo = Mesh2D(2, 1)  # a single link
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError):
            random_link_faults(topo, 1, rng, keep_connected=True,
                               max_tries=50)

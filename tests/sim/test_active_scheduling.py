"""Active-router scheduling (``SimConfig.active_scheduling``) is a
pure iteration-order optimization: the network only visits routers that
hold flits (plus sources with pending worms), in the same ascending
node order the full scan uses.  Every observable — stats summary and
each message's full lifecycle — must be bit-identical with the flag on
and off, including across fault events in both fault modes.
"""

import pytest

from repro.routing.registry import make_algorithm
from repro.sim.config import SimConfig
from repro.sim.faults import FaultSchedule
from repro.sim.network import Network
from repro.sim.topology import Hypercube, Mesh2D, Torus2D
from repro.sim.traffic import TrafficGenerator


def _run(algo_name, topo_factory, active, faulty=False, harsh=False,
         cycles=600):
    topo = topo_factory()
    algo = make_algorithm(algo_name)
    kw = dict(fault_mode="harsh", detection_delay=5) if harsh else {}
    net = Network(topo, algo, config=SimConfig(active_scheduling=active,
                                               **kw))
    if faulty:
        fs = FaultSchedule()
        fs.add_link_fault(200, 5, 11)
        fs.add_node_fault(350, 27)
        net.schedule_faults(fs)
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.25,
                                        message_length=6, seed=7))
    for _ in range(cycles):
        net.step()
    messages = [(m.header.src, m.header.dst, m.header.created,
                 m.injected, m.delivered, m.dropped, m.header.path_len)
                for m in net.messages.values()]
    return net.stats.summary(topo.n_nodes), messages


SCENARIOS = [
    ("xy", lambda: Mesh2D(6, 6), False, False),
    ("nara", lambda: Mesh2D(6, 6), False, False),
    ("nafta", lambda: Mesh2D(6, 6), False, False),
    ("torus_xy", lambda: Torus2D(6, 6), False, False),
    ("ecube", lambda: Hypercube(5), False, False),
    ("spanning_tree", lambda: Mesh2D(6, 6), True, False),
    ("nafta", lambda: Mesh2D(6, 6), True, False),
    ("nafta", lambda: Mesh2D(6, 6), True, True),
]


@pytest.mark.parametrize("algo,topo_factory,faulty,harsh", SCENARIOS,
                         ids=[f"{a}{'-faults' if f else ''}"
                              f"{'-harsh' if h else ''}"
                              for a, _, f, h in SCENARIOS])
def test_active_scheduling_is_invisible(algo, topo_factory, faulty, harsh):
    active = _run(algo, topo_factory, True, faulty, harsh)
    full = _run(algo, topo_factory, False, faulty, harsh)
    assert active[0] == full[0]   # stats summary
    assert active[1] == full[1]   # per-message lifecycle


def test_active_set_drains_to_empty():
    """After the network drains, lazy pruning must leave no live
    routers in the active scan (stale entries are allowed in the set
    but must be pruned on the next pass)."""
    topo = Mesh2D(4, 4)
    net = Network(topo, make_algorithm("xy"),
                  config=SimConfig(active_scheduling=True))
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.1,
                                        message_length=4, seed=3))
    net.run(100)
    net.traffic = None
    net.run_until_drained()
    assert net._live_routers() == []
    assert all(r.n_flits == 0 for r in net.routers)

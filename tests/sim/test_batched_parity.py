"""Batched-vs-object engine parity: the struct-of-arrays engine must be
an invisible optimization.

Every algorithm in the registry runs the same workload on both engines
— small meshes, tori, hypercubes and k-ary n-cubes, fault-free and with
static and timed (mid-run) fault schedules in both fault modes — and
the complete ``SimStats.summary`` must match bit-for-bit, per-decision
SHA-256 digest included.  A digest mismatch localizes to the first
differing routing decision; a summary mismatch to the first differing
counter.

The conformance hook rides along: ``run_case_payload`` with an
``engine: batched`` key (what ``conform run --engine batched`` sends)
must reproduce the object engine's digests on generated cases.
"""

import itertools

import pytest

from repro.conformance.generate import generate_cases
from repro.conformance.runner import run_case_payload
from repro.routing.registry import ALGORITHM_META, make_algorithm
from repro.sim.batched import (BatchedNetwork, batched_fallback_reason,
                               build_network)
from repro.sim.config import SimConfig
from repro.sim.faults import FaultSchedule
from repro.sim.network import Network
from repro.sim.stats import DecisionDigest
from repro.sim.topology import Hypercube, KAryNCube, Mesh2D, Torus2D
from repro.sim.traffic import TrafficGenerator

pytestmark = pytest.mark.skipif(
    batched_fallback_reason() is not None,
    reason=f"batched engine unavailable: {batched_fallback_reason()}")

#: one small topology per kind the registry metadata names
TOPOLOGIES = {
    "mesh2d": lambda: Mesh2D(5, 4),
    "torus2d": lambda: Torus2D(4, 4),
    "hypercube": lambda: Hypercube(3),
    "karyncube": lambda: KAryNCube(3, 2),
}


def _fault_plan(topo, meta):
    """Deterministic links/nodes within the algorithm's declared fault
    budget (an empty plan means fault-free cases only)."""
    links = sorted(topo.links())
    picked_links = []
    for i in range(meta.max_link_faults):
        picked_links.append(links[(i + 1) * len(links) // 4])
    picked_nodes = []
    for i in range(meta.max_node_faults):
        picked_nodes.append((i + 1) * topo.n_nodes // 3)
    return picked_links, picked_nodes


def _scenarios(algo):
    """(scenario-id, schedule builder, config kwargs) per algorithm."""
    meta = ALGORITHM_META[algo]
    out = [("clean", None, {})]
    if not (meta.max_link_faults or meta.max_node_faults):
        return out
    out.append(("static", "static", {}))
    out.append(("timed-quiesce", "timed", {"fault_mode": "quiesce"}))
    out.append(("timed-harsh", "timed", {"fault_mode": "harsh",
                                         "retry_limit": 2,
                                         "retry_backoff": 8}))
    if algo == "nafta":
        # delayed detection + hop-by-hop diagnosis flood, the richest
        # fault-knowledge path the reliability layer has
        out.append(("timed-diagnosis", "timed",
                    {"fault_mode": "harsh", "detection_delay": 5,
                     "diagnosis_hop_delay": 1, "retry_limit": 2,
                     "retry_backoff": 8}))
    return out


def _run(engine_cls, algo, topo_kind, schedule_kind, cfg_kwargs):
    rule_driven = ALGORITHM_META[algo].rule_driven
    cycles = 120 if rule_driven else 260
    topo = TOPOLOGIES[topo_kind]()
    net = engine_cls(topo, make_algorithm(algo),
                     config=SimConfig(**cfg_kwargs))
    net.stats.digest = DecisionDigest()
    if schedule_kind is not None:
        links, nodes = _fault_plan(topo, ALGORITHM_META[algo])
        if schedule_kind == "static":
            sched = FaultSchedule.static(links=links, nodes=nodes)
        else:
            sched = FaultSchedule()
            for i, (a, b) in enumerate(links):
                sched.add_link_fault(50 + 25 * i, a, b)
            for i, n in enumerate(nodes):
                sched.add_node_fault(80 + 25 * i, n)
        net.schedule_faults(sched)
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.15,
                                        message_length=4, seed=7))
    net.run(cycles)
    return net.stats.summary(topo.n_nodes)


def _parity_params():
    for algo, meta in sorted(ALGORITHM_META.items()):
        for topo_kind in meta.topologies:
            for scenario, schedule_kind, cfg in _scenarios(algo):
                yield pytest.param(algo, topo_kind, schedule_kind, cfg,
                                   id=f"{algo}-{topo_kind}-{scenario}")


@pytest.mark.parametrize("algo,topo_kind,schedule_kind,cfg",
                         list(_parity_params()))
def test_summary_and_digest_parity(algo, topo_kind, schedule_kind, cfg):
    obj = _run(Network, algo, topo_kind, schedule_kind, cfg)
    bat = _run(BatchedNetwork, algo, topo_kind, schedule_kind, cfg)
    assert obj["decision_digest_count"] > 0
    diffs = {k: (obj.get(k), bat.get(k))
             for k in sorted(set(obj) | set(bat))
             if obj.get(k) != bat.get(k)}
    assert not diffs, f"engine divergence on {algo}: {diffs}"


def test_build_network_selects_and_falls_back():
    topo = Mesh2D(4, 4)
    cfg = SimConfig(engine="batched")
    net = build_network(topo, make_algorithm("xy"), cfg)
    assert isinstance(net, BatchedNetwork)
    assert net.engine_name == "batched"
    # a tracer forces the documented fallback to the object oracle —
    # and the summary says so, so sweep outputs record which engine ran
    class _Tracer:
        enabled = True
    fell_back = build_network(topo, make_algorithm("xy"), cfg,
                              tracer=_Tracer())
    assert type(fell_back) is Network
    assert fell_back.engine_name == "object"
    summary = fell_back.stats.summary(topo.n_nodes)
    assert "tracing" in summary["engine_fallback"]
    # engines that never fell back must not carry the key at all
    assert "engine_fallback" not in net.stats.summary(topo.n_nodes)


def test_build_network_with_metrics_stays_batched():
    """Metrics no longer force the object engine: the batched build
    keeps the timeseries and fills it natively."""
    from repro.obs import MetricsTimeseries
    topo = Mesh2D(4, 4)
    net = build_network(topo, make_algorithm("nafta"),
                        SimConfig(engine="batched"),
                        metrics=MetricsTimeseries(stride=1))
    assert isinstance(net, BatchedNetwork)
    assert net.engine_name == "batched"
    assert net.metrics is not None


# ---------------------------------------------------------------------------
# array-native metrics: gauge columns and link counters must match the
# object engine sample-for-sample
# ---------------------------------------------------------------------------

def _run_with_metrics(engine_cls, algo, schedule=None, cfg_kwargs=None,
                      cycles=220):
    from repro.obs import MetricsTimeseries
    topo = Mesh2D(5, 4)
    metrics = MetricsTimeseries(stride=1)
    net = engine_cls(topo, make_algorithm(algo),
                     config=SimConfig(**(cfg_kwargs or {})),
                     metrics=metrics)
    net.stats.digest = DecisionDigest()
    if schedule is not None:
        net.schedule_faults(schedule())
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.15,
                                        message_length=4, seed=7))
    net.run(cycles)
    return net.stats.summary(topo.n_nodes), metrics.to_dict()


@pytest.mark.parametrize("algo,cfg", [
    ("nafta", {}),
    ("nafta", {"active_scheduling": True}),
    ("nara", {}),
    ("xy", {}),
], ids=["nafta", "nafta-active-sched", "nara", "xy"])
def test_metrics_parity_clean(algo, cfg):
    obj_s, obj_m = _run_with_metrics(Network, algo, cfg_kwargs=cfg)
    bat_s, bat_m = _run_with_metrics(BatchedNetwork, algo, cfg_kwargs=cfg)
    assert obj_s == bat_s
    assert obj_m == bat_m       # columns, link_flits, everything


def test_metrics_parity_under_timed_faults():
    """Fault arrival prunes worms and rebuilds the active set; gauges
    and link counters must stay in lockstep through it."""
    def schedule():
        sched = FaultSchedule()
        sched.add_link_fault(60, 0, 1)
        sched.add_node_fault(90, 7)
        return sched
    kw = {"fault_mode": "harsh", "retry_limit": 2, "retry_backoff": 8}
    obj_s, obj_m = _run_with_metrics(Network, "nafta", schedule, kw)
    bat_s, bat_m = _run_with_metrics(BatchedNetwork, "nafta", schedule, kw)
    assert obj_s == bat_s
    assert obj_m == bat_m
    assert obj_m["link_flits"]  # the run actually moved flits


# ---------------------------------------------------------------------------
# active-set edge cases: the compact occupied-node list must survive
# worm death, source re-entry and full quiesce/refill without skipping
# (or double-scanning) a node — divergence shows up in the digest
# ---------------------------------------------------------------------------

def _digest_run(engine_cls, algo, cfg_kwargs, schedule=None, cycles=300,
                load=0.15, topo=None):
    topo = topo or Mesh2D(5, 4)
    net = engine_cls(topo, make_algorithm(algo),
                     config=SimConfig(**cfg_kwargs))
    net.stats.digest = DecisionDigest()
    if schedule is not None:
        net.schedule_faults(schedule())
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=load,
                                        message_length=4, seed=23))
    net.run(cycles)
    return net.stats.summary(topo.n_nodes)


def test_active_set_worm_death_mid_route():
    """Harsh node faults kill worms mid-flight: their nodes must leave
    the active list exactly when the object engine forgets them."""
    def schedule():
        sched = FaultSchedule()
        sched.add_node_fault(70, 9)
        sched.add_node_fault(110, 12)
        sched.add_link_fault(140, 2, 3)
        return sched
    kw = {"fault_mode": "harsh", "retry_limit": 2, "retry_backoff": 8}
    obj = _digest_run(Network, "nafta", kw, schedule)
    bat = _digest_run(BatchedNetwork, "nafta", kw, schedule)
    assert obj == bat


def test_active_set_retransmission_reentry():
    """Source retry re-activates a node whose queue had drained; the
    legacy retransmit_dropped path re-offers in the same cycle."""
    def schedule():
        sched = FaultSchedule()
        sched.add_node_fault(60, 9)
        return sched
    kw = {"fault_mode": "harsh", "retransmit_dropped": True}
    obj = _digest_run(Network, "nafta", kw, schedule)
    bat = _digest_run(BatchedNetwork, "nafta", kw, schedule)
    assert obj == bat


def test_active_set_quiesce_empty_then_refill():
    """A timed fault under quiesce drains the network to empty, then
    traffic refills it: the active list must rebuild from zero."""
    def schedule():
        sched = FaultSchedule()
        sched.add_link_fault(100, 5, 6)
        return sched
    kw = {"fault_mode": "quiesce"}
    # low load so the quiesce drain genuinely empties the mesh
    obj = _digest_run(Network, "nafta", kw, schedule, cycles=400,
                      load=0.05)
    bat = _digest_run(BatchedNetwork, "nafta", kw, schedule, cycles=400,
                      load=0.05)
    assert obj == bat


# ---------------------------------------------------------------------------
# build-time clean tables: bit-exact with the table disabled, and
# correctly bypassed the moment faults are known
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("algo", ["nafta", "nara"])
def test_clean_table_ab_digest_equality(algo, monkeypatch):
    """REPRO_BATCHED_NO_TABLE must be behaviorally invisible."""
    def one(disabled):
        if disabled:
            monkeypatch.setenv("REPRO_BATCHED_NO_TABLE", "1")
        else:
            monkeypatch.delenv("REPRO_BATCHED_NO_TABLE", raising=False)
        return _digest_run(BatchedNetwork, algo, {}, cycles=260)
    assert one(False) == one(True)


def test_clean_table_bypassed_under_known_faults(monkeypatch):
    """With faults known from cycle 0, table and no-table runs must
    still agree (the table never fires on fault-epoch decisions)."""
    def schedule():
        return FaultSchedule.static(links=[(5, 6)])
    def one(disabled):
        if disabled:
            monkeypatch.setenv("REPRO_BATCHED_NO_TABLE", "1")
        else:
            monkeypatch.delenv("REPRO_BATCHED_NO_TABLE", raising=False)
        return _digest_run(BatchedNetwork, "nafta", {}, schedule,
                           cycles=260)
    base = one(False)
    assert base == one(True)
    # and both match the oracle
    assert base == _digest_run(Network, "nafta", {}, schedule,
                               cycles=260)


# ---------------------------------------------------------------------------
# the conformance hook: `conform run --engine batched`
# ---------------------------------------------------------------------------

def test_conform_payload_engine_parity():
    """The payload-level hook the conform CLI uses: same case, both
    engines, identical digests and case keys — and the engine key must
    not leak into the scenario identity."""
    cases = itertools.islice(
        generate_cases(["nafta", "route_c", "xy"], 5), 6)
    checked = 0
    for case in cases:
        obj = run_case_payload(case.to_dict())
        bat = run_case_payload({**case.to_dict(), "engine": "batched"})
        assert bat["digest"] == obj["digest"]
        assert bat["decisions"] == obj["decisions"]
        assert bat["case_key"] == obj["case_key"]
        assert "engine" not in bat["case"]
        assert bat["violations"] == obj["violations"] == []
        checked += 1
    assert checked == 6


def test_conform_cli_engine_flag(capsys):
    from repro.tools.conform import main as conform_main
    rc = conform_main(["run", "--cases", "4", "--seed", "1",
                       "--engine", "batched", "--no-shrink"])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "engine batched" in out


def test_conform_payload_metrics_invisible():
    """A stride-1 metrics observer attached via the payload's
    ``metrics_stride`` key must not perturb digests, and batched runs
    with metrics must actually run batched (no fallback)."""
    case = next(iter(generate_cases(["nafta"], 3)))
    plain = run_case_payload(case.to_dict())
    sampled = run_case_payload({**case.to_dict(), "metrics_stride": 1})
    batched = run_case_payload({**case.to_dict(), "engine": "batched",
                                "metrics_stride": 1})
    assert sampled["digest"] == plain["digest"]
    assert batched["digest"] == plain["digest"]
    assert "metrics_stride" not in sampled["case"]
    assert sampled["metrics"]["rows"] > 0
    assert batched["metrics"]["engine"] == "batched"

"""Batched-vs-object engine parity: the struct-of-arrays engine must be
an invisible optimization.

Every algorithm in the registry runs the same workload on both engines
— small meshes, tori, hypercubes and k-ary n-cubes, fault-free and with
static and timed (mid-run) fault schedules in both fault modes — and
the complete ``SimStats.summary`` must match bit-for-bit, per-decision
SHA-256 digest included.  A digest mismatch localizes to the first
differing routing decision; a summary mismatch to the first differing
counter.

The conformance hook rides along: ``run_case_payload`` with an
``engine: batched`` key (what ``conform run --engine batched`` sends)
must reproduce the object engine's digests on generated cases.
"""

import itertools

import pytest

from repro.conformance.generate import generate_cases
from repro.conformance.runner import run_case_payload
from repro.routing.registry import ALGORITHM_META, make_algorithm
from repro.sim.batched import (BatchedNetwork, batched_fallback_reason,
                               build_network)
from repro.sim.config import SimConfig
from repro.sim.faults import FaultSchedule
from repro.sim.network import Network
from repro.sim.stats import DecisionDigest
from repro.sim.topology import Hypercube, KAryNCube, Mesh2D, Torus2D
from repro.sim.traffic import TrafficGenerator

pytestmark = pytest.mark.skipif(
    batched_fallback_reason() is not None,
    reason=f"batched engine unavailable: {batched_fallback_reason()}")

#: one small topology per kind the registry metadata names
TOPOLOGIES = {
    "mesh2d": lambda: Mesh2D(5, 4),
    "torus2d": lambda: Torus2D(4, 4),
    "hypercube": lambda: Hypercube(3),
    "karyncube": lambda: KAryNCube(3, 2),
}


def _fault_plan(topo, meta):
    """Deterministic links/nodes within the algorithm's declared fault
    budget (an empty plan means fault-free cases only)."""
    links = sorted(topo.links())
    picked_links = []
    for i in range(meta.max_link_faults):
        picked_links.append(links[(i + 1) * len(links) // 4])
    picked_nodes = []
    for i in range(meta.max_node_faults):
        picked_nodes.append((i + 1) * topo.n_nodes // 3)
    return picked_links, picked_nodes


def _scenarios(algo):
    """(scenario-id, schedule builder, config kwargs) per algorithm."""
    meta = ALGORITHM_META[algo]
    out = [("clean", None, {})]
    if not (meta.max_link_faults or meta.max_node_faults):
        return out
    out.append(("static", "static", {}))
    out.append(("timed-quiesce", "timed", {"fault_mode": "quiesce"}))
    out.append(("timed-harsh", "timed", {"fault_mode": "harsh",
                                         "retry_limit": 2,
                                         "retry_backoff": 8}))
    if algo == "nafta":
        # delayed detection + hop-by-hop diagnosis flood, the richest
        # fault-knowledge path the reliability layer has
        out.append(("timed-diagnosis", "timed",
                    {"fault_mode": "harsh", "detection_delay": 5,
                     "diagnosis_hop_delay": 1, "retry_limit": 2,
                     "retry_backoff": 8}))
    return out


def _run(engine_cls, algo, topo_kind, schedule_kind, cfg_kwargs):
    rule_driven = ALGORITHM_META[algo].rule_driven
    cycles = 120 if rule_driven else 260
    topo = TOPOLOGIES[topo_kind]()
    net = engine_cls(topo, make_algorithm(algo),
                     config=SimConfig(**cfg_kwargs))
    net.stats.digest = DecisionDigest()
    if schedule_kind is not None:
        links, nodes = _fault_plan(topo, ALGORITHM_META[algo])
        if schedule_kind == "static":
            sched = FaultSchedule.static(links=links, nodes=nodes)
        else:
            sched = FaultSchedule()
            for i, (a, b) in enumerate(links):
                sched.add_link_fault(50 + 25 * i, a, b)
            for i, n in enumerate(nodes):
                sched.add_node_fault(80 + 25 * i, n)
        net.schedule_faults(sched)
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.15,
                                        message_length=4, seed=7))
    net.run(cycles)
    return net.stats.summary(topo.n_nodes)


def _parity_params():
    for algo, meta in sorted(ALGORITHM_META.items()):
        for topo_kind in meta.topologies:
            for scenario, schedule_kind, cfg in _scenarios(algo):
                yield pytest.param(algo, topo_kind, schedule_kind, cfg,
                                   id=f"{algo}-{topo_kind}-{scenario}")


@pytest.mark.parametrize("algo,topo_kind,schedule_kind,cfg",
                         list(_parity_params()))
def test_summary_and_digest_parity(algo, topo_kind, schedule_kind, cfg):
    obj = _run(Network, algo, topo_kind, schedule_kind, cfg)
    bat = _run(BatchedNetwork, algo, topo_kind, schedule_kind, cfg)
    assert obj["decision_digest_count"] > 0
    diffs = {k: (obj.get(k), bat.get(k))
             for k in sorted(set(obj) | set(bat))
             if obj.get(k) != bat.get(k)}
    assert not diffs, f"engine divergence on {algo}: {diffs}"


def test_build_network_selects_and_falls_back():
    topo = Mesh2D(4, 4)
    cfg = SimConfig(engine="batched")
    net = build_network(topo, make_algorithm("xy"), cfg)
    assert isinstance(net, BatchedNetwork)
    assert net.engine_name == "batched"
    # a tracer forces the documented fallback to the object oracle
    class _Tracer:
        enabled = True
    fell_back = build_network(topo, make_algorithm("xy"), cfg,
                              tracer=_Tracer())
    assert type(fell_back) is Network
    assert fell_back.engine_name == "object"


# ---------------------------------------------------------------------------
# the conformance hook: `conform run --engine batched`
# ---------------------------------------------------------------------------

def test_conform_payload_engine_parity():
    """The payload-level hook the conform CLI uses: same case, both
    engines, identical digests and case keys — and the engine key must
    not leak into the scenario identity."""
    cases = itertools.islice(
        generate_cases(["nafta", "route_c", "xy"], 5), 6)
    checked = 0
    for case in cases:
        obj = run_case_payload(case.to_dict())
        bat = run_case_payload({**case.to_dict(), "engine": "batched"})
        assert bat["digest"] == obj["digest"]
        assert bat["decisions"] == obj["decisions"]
        assert bat["case_key"] == obj["case_key"]
        assert "engine" not in bat["case"]
        assert bat["violations"] == obj["violations"] == []
        checked += 1
    assert checked == 6


def test_conform_cli_engine_flag(capsys):
    from repro.tools.conform import main as conform_main
    rc = conform_main(["run", "--cases", "4", "--seed", "1",
                       "--engine", "batched", "--no-shrink"])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "engine batched" in out

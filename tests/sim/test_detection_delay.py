"""Tests for heartbeat-style fault detection latency (the Information
Units of paper Figure 3)."""

import pytest

from repro.routing import NaftaRouting, XYRouting
from repro.sim import (FaultSchedule, Mesh2D, Network, SimConfig,
                       TrafficGenerator)


def harsh_net(delay, topo=None, algo=None):
    topo = topo or Mesh2D(6, 6)
    return Network(topo, algo or NaftaRouting(),
                   config=SimConfig(fault_mode="harsh",
                                    detection_delay=delay))


class TestConfig:
    def test_delay_requires_harsh_mode(self):
        with pytest.raises(ValueError):
            SimConfig(fault_mode="quiesce", detection_delay=10)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(fault_mode="harsh", detection_delay=-1)

    def test_zero_delay_aliases_fault_state(self):
        net = Network(Mesh2D(4, 4), XYRouting(),
                      config=SimConfig(fault_mode="harsh"))
        assert net.known_faults is net.faults

    def test_positive_delay_separates_fault_state(self):
        net = harsh_net(50)
        assert net.known_faults is not net.faults


class TestDetectionWindow:
    def _run_with_fault(self, delay, fault_cycle=100, cycles=800):
        topo = Mesh2D(6, 6)
        net = harsh_net(delay, topo)
        a, b = topo.node_at(2, 2), topo.node_at(3, 2)
        sched = FaultSchedule()
        sched.add_link_fault(fault_cycle, a, b)
        net.fault_schedule = sched
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.08,
                                            message_length=4, seed=11))
        net.run(cycles)
        net.traffic = None
        net.run_until_drained()
        return net

    def test_knowledge_lags_ground_truth(self):
        topo = Mesh2D(6, 6)
        net = harsh_net(200, topo)
        sched = FaultSchedule()
        sched.add_link_fault(50, topo.node_at(2, 2), topo.node_at(3, 2))
        net.fault_schedule = sched
        net.run(100)
        assert net.faults.n_faults() == 1       # physically dead
        assert net.known_faults.n_faults() == 0  # not yet detected
        net.run(200)
        assert net.known_faults.n_faults() == 1  # heartbeat timed out

    def test_rip_up_deferred_to_confirmation(self):
        topo = Mesh2D(6, 6)
        net = harsh_net(300, topo)
        # a worm long enough to still be crossing the link at the fault
        m = net.offer(topo.node_at(0, 2), topo.node_at(5, 2), 40)
        for _ in range(12):
            net.step()
        sched = FaultSchedule()
        sched.add_link_fault(net.cycle, topo.node_at(2, 2),
                             topo.node_at(3, 2))
        net.fault_schedule = sched
        net.run(100)            # within the detection window
        assert not m.dropped    # the worm stalls, it is not ripped yet
        net.run(300)
        assert m.dropped        # confirmation ripped it up

    def test_longer_detection_worsens_tail_latency(self):
        fast = self._run_with_fault(0)
        slow = self._run_with_fault(400)
        assert slow.stats.p99_latency > fast.stats.p99_latency
        # both account for every message
        for net in (fast, slow):
            lost = sum(1 for m in net.messages.values()
                       if m.dropped and m.delivered is None)
            assert (net.stats.messages_delivered + lost
                    == len(net.messages))

    def test_network_recovers_after_confirmation(self):
        net = self._run_with_fault(150, fault_cycle=100, cycles=1200)
        assert net.in_flight() == 0
        # traffic created well after detection routes around the fault
        assert net.stats.messages_delivered > 0


class TestRuleDrivenWithDelay:
    def test_rule_machine_learns_late(self):
        """The rule-driven router's engines read the *known* fault set,
        so their registers update only at confirmation time."""
        from repro.routing import RuleDrivenNafta
        topo = Mesh2D(4, 4)
        algo = RuleDrivenNafta()
        net = Network(topo, algo,
                      config=SimConfig(fault_mode="harsh",
                                       detection_delay=150))
        sched = FaultSchedule()
        a, b = topo.node_at(1, 1), topo.node_at(2, 1)
        sched.add_link_fault(20, a, b)
        net.fault_schedule = sched
        net.run(50)   # fault happened, not yet detected
        usable = algo.engines[a].registers.read("usable_set")
        assert 0 in usable  # east still believed usable
        net.run(150)  # detection confirmed
        usable = algo.engines[a].registers.read("usable_set")
        assert 0 not in usable

"""Granular unit tests of the router mechanics (flow control, VC
allocation, crossbar constraints)."""

from repro.routing import XYRouting
from repro.sim import EAST, LOCAL, Mesh2D, Network, SimConfig
from repro.sim.router import ACTIVE, IDLE


def two_node_net(buffer_depth=2):
    """A 2x1 mesh: node 0 --- node 1."""
    return Network(Mesh2D(2, 1), XYRouting(),
                   config=SimConfig(buffer_depth=buffer_depth))


class TestFlowControl:
    def test_credits_reflect_downstream_space(self):
        net = two_node_net(buffer_depth=3)
        r0 = net.routers[0]
        assert r0.credits(EAST, 0) == 3
        # stage a flit into node 1's west input buffer
        net.offer(0, 1, 1)
        net.step()  # inject
        net.step()  # head moves into node 0's local buffer; decision
        # run until the flit sits in node 1's buffer
        net.run_until_drained()
        assert r0.credits(EAST, 0) == 3  # drained again

    def test_local_credits_unbounded(self):
        net = two_node_net()
        assert net.routers[0].credits(LOCAL, 0) > 10 ** 6

    def test_output_free_checks_owner_and_credit(self):
        net = two_node_net()
        r0 = net.routers[0]
        assert r0.output_free(EAST, 0)
        r0.output_vcs[EAST][0].owner = (LOCAL, 0)
        assert not r0.output_free(EAST, 0)

    def test_buffer_never_exceeds_capacity_under_pressure(self):
        net = Network(Mesh2D(3, 1), XYRouting(),
                      config=SimConfig(buffer_depth=1))
        # many worms all heading east through the middle node
        for _ in range(5):
            net.offer(0, 2, 4)
        for _ in range(60):
            net.step()
            for r in net.routers:
                for vcs in r.input_vcs.values():
                    for iv in vcs:
                        assert len(iv.buffer) + len(iv.incoming) <= 1
        net.run_until_drained()


class TestVcAllocation:
    def test_worm_holds_vc_until_tail(self):
        net = two_node_net(buffer_depth=8)
        net.offer(0, 1, 4)
        r0 = net.routers[0]
        held_cycles = 0
        for _ in range(20):
            net.step()
            if r0.output_vcs[EAST][0].owner is not None:
                held_cycles += 1
        assert held_cycles >= 3  # held while body/tail streamed
        assert r0.output_vcs[EAST][0].owner is None  # released by tail

    def test_second_worm_waits_for_vc(self):
        net = two_node_net(buffer_depth=8)
        m1 = net.offer(0, 1, 6)
        m2 = net.offer(0, 1, 2)
        net.run_until_drained()
        assert m1.delivered < m2.delivered  # strictly after

    def test_input_vc_state_machine(self):
        net = two_node_net(buffer_depth=8)
        net.offer(0, 1, 3)
        r0 = net.routers[0]
        iv = r0.input_vcs[LOCAL][0]
        assert iv.state == IDLE
        seen = set()
        for _ in range(15):
            net.step()
            seen.add(iv.state)
        assert ACTIVE in seen
        assert iv.state == IDLE  # back to idle after the tail left


class TestCrossbarConstraints:
    def test_one_flit_per_output_per_cycle(self):
        # two worms from opposite sides both ejecting at the middle node
        net = Network(Mesh2D(3, 1), XYRouting(),
                      config=SimConfig(buffer_depth=4))
        ejected_per_cycle = []
        orig = net.eject

        def spy(node, flit, cycle):
            ejected_per_cycle.append(cycle)
            orig(node, flit, cycle)

        net.eject = spy
        net.offer(0, 1, 5)
        net.offer(2, 1, 5)
        net.run_until_drained()
        from collections import Counter
        per_cycle = Counter(ejected_per_cycle)
        assert max(per_cycle.values()) == 1  # the local port serializes

    def test_purge_message_resets_state(self):
        net = two_node_net(buffer_depth=8)
        m = net.offer(0, 1, 10)
        for _ in range(4):
            net.step()
        total_before = sum(r.occupancy() for r in net.routers)
        assert total_before > 0
        for r in net.routers:
            r.purge_message(m.header.msg_id)
        assert all(r.occupancy() == 0 for r in net.routers)
        for r in net.routers:
            for vcs in r.input_vcs.values():
                for iv in vcs:
                    assert iv.state == IDLE
            for vcs in r.output_vcs.values():
                for ov in vcs:
                    assert ov.owner is None

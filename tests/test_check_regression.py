"""benchmarks/check_regression.py: direction-aware gating.

The checker mixes higher-is-better rates and lower-is-better gap /
imbalance metrics in one TRACKED table; these tests drive one
invocation over a report containing both directions and check each
regression class fires (and only fires) on its own side.
"""

import importlib.util
import json
import pathlib

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks" /
    "check_regression.py")
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


BASELINE = {
    "decision_throughput": {"fastpath_decisions_per_sec": 100_000.0},
    "reroute": {"cycles_of_loss": 0.0,
                "time_to_recover_cycles": 40.0},
    "loadbalance": {"ecmp_throughput": 0.25,
                    "mean_imbalance": 2.0},
}


def _write(tmp_path, name, report):
    p = tmp_path / name
    p.write_text(json.dumps(report))
    return str(p)


def _run(tmp_path, current, threshold=0.30):
    base = _write(tmp_path, "baseline.json", BASELINE)
    cur = _write(tmp_path, "current.json", current)
    return check_regression.main([cur, "--baseline", base,
                                  "--threshold", str(threshold)])


def test_mixed_directions_all_within_threshold(tmp_path, capsys):
    # one invocation covering both directions: a slightly slower rate,
    # a slightly larger gap and a slightly larger imbalance all pass
    current = {
        "decision_throughput": {"fastpath_decisions_per_sec": 90_000.0},
        "reroute": {"cycles_of_loss": 0.0,
                    "time_to_recover_cycles": 48.0},
        "loadbalance": {"ecmp_throughput": 0.22,
                        "mean_imbalance": 2.3},
    }
    assert _run(tmp_path, current) == 0
    out = capsys.readouterr().out
    assert "within threshold" in out


def test_higher_is_better_drop_fails(tmp_path, capsys):
    current = {
        "decision_throughput": {"fastpath_decisions_per_sec": 60_000.0},
        "loadbalance": {"ecmp_throughput": 0.25,
                        "mean_imbalance": 2.0},
    }
    assert _run(tmp_path, current) == 1
    err = capsys.readouterr().err
    assert "fastpath decisions/sec" in err
    assert "below the baseline" in err


def test_lower_is_better_rise_fails(tmp_path, capsys):
    # the rate metrics are fine; only the lower-is-better imbalance
    # regressed — the direction flip must catch the *rise*
    current = {
        "decision_throughput": {"fastpath_decisions_per_sec": 100_000.0},
        "loadbalance": {"ecmp_throughput": 0.30,
                        "mean_imbalance": 3.5},
    }
    assert _run(tmp_path, current) == 1
    err = capsys.readouterr().err
    assert "imbalance" in err
    assert "above the baseline" in err


def test_lower_is_better_improvement_passes(tmp_path):
    current = {"loadbalance": {"mean_imbalance": 1.0,
                               "ecmp_throughput": 0.50}}
    assert _run(tmp_path, current) == 0


def test_zero_baseline_held_exactly(tmp_path, capsys):
    current = {"reroute": {"cycles_of_loss": 1.0,
                           "time_to_recover_cycles": 40.0}}
    assert _run(tmp_path, current) == 1
    err = capsys.readouterr().err
    assert "zero baseline" in err


def test_both_directions_fail_in_one_invocation(tmp_path, capsys):
    current = {
        "decision_throughput": {"fastpath_decisions_per_sec": 50_000.0},
        "loadbalance": {"mean_imbalance": 4.0},
    }
    assert _run(tmp_path, current) == 1
    err = capsys.readouterr().err
    assert "fastpath decisions/sec" in err and "imbalance" in err


def test_missing_metrics_skipped(tmp_path, capsys):
    assert _run(tmp_path, {"unrelated": 1}) == 0
    out = capsys.readouterr().out
    assert "missing" in out


def test_quick_report_uses_quick_reference(tmp_path, capsys):
    baseline = {
        "loadbalance": {"ecmp_throughput": 0.10},
        "quick_reference": {"loadbalance": {"ecmp_throughput": 0.30}},
    }
    current = {"quick": True, "loadbalance": {"ecmp_throughput": 0.29}}
    base = _write(tmp_path, "baseline.json", baseline)
    cur = _write(tmp_path, "current.json", current)
    assert check_regression.main([cur, "--baseline", base]) == 0
    assert "quick_reference" in capsys.readouterr().out
    # ... and a quick report that only beats the *full* numbers fails
    current["loadbalance"]["ecmp_throughput"] = 0.11
    cur = _write(tmp_path, "current2.json", current)
    assert check_regression.main([cur, "--baseline", base]) == 1


@pytest.mark.parametrize("value,expect", [
    (123456.0, "123,456"), (0.2749, "0.2749"), (2.6789, "2.679"),
])
def test_fmt_keeps_small_values_readable(value, expect):
    assert check_regression._fmt(value) == expect

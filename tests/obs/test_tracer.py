"""Unit tests for the ring tracer, the null tracer and the metrics
timeseries (repro.obs)."""

import pytest

from repro.obs import (
    ALL_KINDS,
    GAUGES,
    NULL_TRACER,
    MetricsTimeseries,
    NullTracer,
    RingTracer,
    TraceEvent,
    events,
)


class TestEventTaxonomy:
    def test_all_kinds_covers_the_constants(self):
        assert events.WORM_DELIVER in ALL_KINDS
        assert events.FAULT_FLOOD_START in ALL_KINDS
        assert events.RULE_INVOKE in ALL_KINDS
        assert events.SIM_DEADLOCK in ALL_KINDS
        assert all(isinstance(k, str) and "." in k for k in ALL_KINDS)

    def test_trace_event_round_trip(self):
        ev = TraceEvent(42, events.WORM_INJECT, {"msg_id": 7, "node": 3})
        assert TraceEvent.from_list(ev.to_list()) == ev


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("worm.inject", msg_id=1)
        assert NULL_TRACER.drain() == []

    def test_ring_tracer_is_a_null_tracer(self):
        # call sites type only against the null interface
        assert isinstance(RingTracer(), NullTracer)


class TestRingTracer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)

    def test_records_in_order(self):
        tr = RingTracer(capacity=8)
        for cycle in range(3):
            tr.now = cycle
            tr.emit("worm.inject", msg_id=cycle)
        got = tr.drain()
        assert [e.cycle for e in got] == [0, 1, 2]
        assert [e.data["msg_id"] for e in got] == [0, 1, 2]
        assert tr.dropped == 0
        assert len(tr) == 3

    def test_wraps_oldest_first(self):
        tr = RingTracer(capacity=3)
        for i in range(5):
            tr.now = i
            tr.emit("worm.inject", msg_id=i)
        got = tr.drain()
        assert [e.data["msg_id"] for e in got] == [2, 3, 4]
        assert tr.dropped == 2
        assert len(tr) == 3

    def test_to_dict_shape(self):
        tr = RingTracer(capacity=4)
        tr.now = 9
        tr.emit("fault.inject", fault="link", target=[1, 2])
        blob = tr.to_dict()
        assert blob["capacity"] == 4
        assert blob["dropped"] == 0
        assert blob["events"] == [[9, "fault.inject", {"fault": "link", "target": [1, 2]}]]


class TestMetricsTimeseries:
    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsTimeseries(stride=0)

    def test_gauge_columns_exist(self):
        m = MetricsTimeseries()
        assert set(m.columns) == set(GAUGES)

    def test_link_counter(self):
        m = MetricsTimeseries()
        m.count_link(0, 1)
        m.count_link(0, 1)
        m.count_link(1, 0)
        assert m.link_flits == {(0, 1): 2, (1, 0): 1}
        assert m.to_dict()["link_flits"] == {"0->1": 2, "1->0": 1}

    def test_series_and_rates(self):
        m = MetricsTimeseries(stride=2)
        m.columns["cycle"] = [0, 2, 4]
        m.columns["messages_delivered"] = [0, 4, 10]
        assert m.series("messages_delivered") == [(0, 0), (2, 4), (4, 10)]
        assert m.rate_series("messages_delivered") == [(2, 2.0), (4, 3.0)]
        assert m.n_samples() == 3

    def test_round_trip(self):
        m = MetricsTimeseries(stride=3)
        m.columns["cycle"] = [0, 3]
        m.columns["in_flight_flits"] = [1, 5]
        m.count_link(2, 6)
        back = MetricsTimeseries.from_dict(m.to_dict())
        assert back.stride == 3
        assert back.columns["cycle"] == [0, 3]
        assert back.columns["in_flight_flits"] == [1, 5]
        assert back.link_flits == {(2, 6): 1}
        assert back.to_dict() == m.to_dict()

"""Tracing wired through the live simulator: event coverage on a
faulted run, rule-machine emissions, and neutrality when disabled."""

import hashlib
import json

from repro.obs import MetricsTimeseries, RingTracer, events
from repro.routing.registry import make_algorithm
from repro.sim import FaultSchedule, Mesh2D, Network, SimConfig, TrafficGenerator


def _faulted_run(tracer=None, metrics=None, cycles=900):
    topo = Mesh2D(4, 4)
    cfg = SimConfig(
        fault_mode="harsh",
        detection_delay=20,
        diagnosis_hop_delay=2,
        retry_limit=4,
        retry_backoff=8,
    )
    net = Network(topo, make_algorithm("nafta"), cfg, tracer=tracer, metrics=metrics)
    sched = FaultSchedule()
    sched.add_link_fault(200, topo.node_at(1, 1), topo.node_at(2, 1))
    net.schedule_faults(sched)
    net.attach_traffic(
        TrafficGenerator(topo, "uniform", load=0.12, message_length=4, seed=5)
    )
    net.run(cycles)
    net.traffic = None
    net.run_until_drained()
    return net


def _digest(net):
    order = [
        (m.header.msg_id, m.injected, m.delivered, m.hops, m.dropped)
        for m in net.messages.values()
    ]
    stats = net.stats.summary(16)
    # neutrality is about the simulated dynamics; the summary gaining a
    # "metrics" payload when a timeseries is attached is the feature
    stats.pop("metrics", None)
    blob = json.dumps({"stats": stats, "order": order}, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


class TestEventCoverage:
    def test_faulted_run_emits_the_taxonomy(self):
        tr = RingTracer(capacity=1 << 16)
        _faulted_run(tracer=tr)
        kinds = {e.kind for e in tr.drain()}
        assert events.WORM_CREATED in kinds
        assert events.WORM_INJECT in kinds
        assert events.WORM_DELIVER in kinds
        assert events.WORM_DROP in kinds
        assert events.WORM_RETRY in kinds
        assert events.LINK_ARB in kinds
        assert events.RULE_DECISION in kinds
        assert events.FAULT_INJECT in kinds
        assert events.FAULT_DETECT in kinds
        assert events.FAULT_FLOOD_START in kinds
        assert events.FAULT_FLOOD_NODE in kinds
        assert events.FAULT_CONVERGED in kinds
        assert kinds <= events.ALL_KINDS

    def test_cycle_stamps_are_monotonic(self):
        tr = RingTracer(capacity=1 << 16)
        _faulted_run(tracer=tr)
        cycles = [e.cycle for e in tr.drain()]
        assert cycles == sorted(cycles)

    def test_deliver_carries_the_worm_lifetime(self):
        tr = RingTracer(capacity=1 << 16)
        _faulted_run(tracer=tr)
        delivers = [e for e in tr.drain() if e.kind == events.WORM_DELIVER]
        assert delivers
        for e in delivers:
            assert e.data["injected"] <= e.cycle
            assert e.data["hops"] >= 1

    def test_decision_events_carry_step_counts(self):
        tr = RingTracer(capacity=1 << 16)
        _faulted_run(tracer=tr)
        steps = [
            e.data["steps"] for e in tr.drain() if e.kind == events.RULE_DECISION
        ]
        assert steps and all(s >= 1 for s in steps)


class TestMetricsCoverage:
    def test_timeseries_sampled_on_stride(self):
        m = MetricsTimeseries(stride=4)
        net = _faulted_run(metrics=m)
        cycles = m.columns["cycle"]
        assert cycles and all(c % 4 == 0 for c in cycles)
        delivered = m.columns["messages_delivered"]
        # cumulative, and the last sample may precede the final cycle
        assert delivered == sorted(delivered)
        assert delivered[-1] <= net.stats.messages_delivered
        assert net.stats.messages_delivered - delivered[-1] < 8
        assert sum(m.link_flits.values()) == net.stats.flit_hops
        # the summary carries the timeseries only when attached
        assert "metrics" in net.stats.summary(16)

    def test_summary_has_no_metrics_key_when_unobserved(self):
        net = _faulted_run()
        assert "metrics" not in net.stats.summary(16)


class TestNeutrality:
    def test_tracing_does_not_perturb_the_run(self):
        bare = _digest(_faulted_run())
        traced = _digest(
            _faulted_run(tracer=RingTracer(capacity=1 << 16))
        )
        assert bare == traced

    def test_metrics_do_not_perturb_the_run(self):
        bare = _digest(_faulted_run())
        observed = _digest(_faulted_run(metrics=MetricsTimeseries(stride=3)))
        assert bare == observed


class TestRuleMachineEvents:
    def test_rule_driven_router_emits_invocations(self):
        topo = Mesh2D(3, 3)
        tr = RingTracer(capacity=1 << 16)
        net = Network(topo, make_algorithm("nafta_rules"), SimConfig(), tracer=tr)
        net.attach_traffic(
            TrafficGenerator(topo, "uniform", load=0.08, message_length=3, seed=3)
        )
        net.run(120)
        net.traffic = None
        net.run_until_drained()
        invokes = [e for e in tr.drain() if e.kind == events.RULE_INVOKE]
        assert invokes
        bases = {e.data["base"] for e in invokes}
        assert "incoming_message" in bases
        nodes = {e.data["node"] for e in invokes}
        assert nodes <= set(range(9))
        assert len(nodes) > 1

    def test_rule_driven_traced_matches_untraced(self):
        def run(tracer):
            topo = Mesh2D(3, 3)
            net = Network(
                topo, make_algorithm("nafta_rules"), SimConfig(), tracer=tracer
            )
            net.attach_traffic(
                TrafficGenerator(
                    topo, "uniform", load=0.08, message_length=3, seed=3
                )
            )
            net.run(120)
            net.traffic = None
            net.run_until_drained()
            return json.dumps(net.stats.summary(9), sort_keys=True)

        assert run(None) == run(RingTracer(capacity=1 << 16))

"""Trace determinism: the same spec + seed must produce byte-identical
trace JSON — serially, across repeated runs, and through the sweep
engine's worker processes (the PR 2 process pool)."""

import json
from dataclasses import replace

from repro.experiments import WorkloadSpec, run_sweep, run_workload
from repro.obs import chrome_trace
from repro.sim import Mesh2D


def _spec(seed=9):
    return WorkloadSpec(
        topology=Mesh2D(4, 4),
        algorithm="nafta",
        load=0.12,
        message_length=4,
        cycles=500,
        warmup=100,
        seed=seed,
        fault_mode="harsh",
        detection_delay=20,
        diagnosis_hop_delay=2,
        retry_limit=4,
        retry_backoff=8,
        timed_faults=[(150, "link", (5, 6))],
        trace=True,
        trace_capacity=1 << 16,
        metrics_stride=2,
    )


def _blob(result):
    return json.dumps(
        {"trace": result["trace"], "metrics": result["metrics"]},
        sort_keys=True,
    )


class TestSerialDeterminism:
    def test_same_spec_same_bytes(self):
        a = run_workload(_spec())
        b = run_workload(_spec())
        assert _blob(a) == _blob(b)

    def test_different_seeds_differ(self):
        a = run_workload(_spec(seed=9))
        b = run_workload(_spec(seed=10))
        assert _blob(a) != _blob(b)

    def test_chrome_export_is_deterministic(self):
        a = run_workload(_spec())
        b = run_workload(_spec())
        da = chrome_trace(a["trace"], a["metrics"])
        db = chrome_trace(b["trace"], b["metrics"])
        assert json.dumps(da, sort_keys=True) == json.dumps(db, sort_keys=True)


class TestPoolDeterminism:
    def test_worker_processes_reproduce_serial_traces(self):
        specs = [_spec(seed=9), _spec(seed=10)]
        serial = [run_workload(s) for s in specs]
        pooled = run_sweep(
            [replace(s) for s in specs], workers=2, cache=False
        )
        for s, p in zip(serial, pooled):
            assert _blob(s) == _blob(p)

    def test_trace_blobs_are_plain_json(self):
        # the pool ships results over pickle and the cache over JSON;
        # a trace must survive a JSON round-trip unchanged
        res = run_workload(_spec())
        assert json.loads(_blob(res)) == {
            "trace": res["trace"],
            "metrics": res["metrics"],
        }


class TestCampaignPassthrough:
    def test_campaign_scenarios_carry_traces(self):
        from repro.experiments import run_campaign

        report = run_campaign(
            2,
            workers=0,
            cache=False,
            width=4,
            height=4,
            n_link_faults=1,
            cycles=500,
            warmup=100,
            trace=True,
            metrics_stride=4,
        )
        for s in report["scenarios"]:
            assert s["trace"]["events"]
            assert s["metrics"]["columns"]["cycle"]

"""Chrome trace_event export and the ASCII timeline."""

import json

from repro.obs import ascii_timeline, chrome_trace
from repro.obs.export import PID_NETWORK, PID_RULES, PID_WORMS


def _trace(events):
    return {"capacity": 1024, "dropped": 0, "events": events}


class TestChromeTrace:
    def test_process_metadata(self):
        doc = chrome_trace(_trace([]))
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert names == {PID_NETWORK: "network", PID_WORMS: "worms", PID_RULES: "rules"}

    def test_delivered_worm_becomes_complete_slice(self):
        doc = chrome_trace(
            _trace(
                [
                    [
                        120,
                        "worm.deliver",
                        {"msg_id": 5, "src": 2, "dst": 9, "injected": 100, "hops": 4},
                    ]
                ]
            )
        )
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1
        (s,) = slices
        assert s["pid"] == PID_WORMS
        assert s["tid"] == 2  # one thread row per source node
        assert s["ts"] == 100 and s["dur"] == 20
        assert "msg 5" in s["name"]

    def test_rule_events_go_to_the_rules_process(self):
        doc = chrome_trace(
            _trace([[7, "rule.decision", {"node": 3, "steps": 2, "msg_id": 1}]])
        )
        (inst,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert inst["pid"] == PID_RULES
        assert inst["tid"] == 3
        assert inst["args"]["steps"] == 2

    def test_network_events_are_instants(self):
        doc = chrome_trace(
            _trace([[50, "fault.inject", {"fault": "link", "target": [1, 2]}]])
        )
        (inst,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert inst["pid"] == PID_NETWORK
        assert inst["ts"] == 50
        assert inst["name"] == "fault.inject"

    def test_metrics_become_counters(self):
        metrics = {
            "stride": 2,
            "samples": 2,
            "columns": {"cycle": [0, 2], "in_flight_flits": [3, 7]},
            "link_flits": {},
        }
        doc = chrome_trace(_trace([]), metrics)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert [(c["ts"], c["args"]["value"]) for c in counters] == [(0, 3), (2, 7)]

    def test_dropped_count_surfaces(self):
        doc = chrome_trace({"capacity": 2, "dropped": 9, "events": []})
        assert doc["otherData"]["dropped_events"] == 9

    def test_document_is_json_serializable(self):
        doc = chrome_trace(
            _trace([[1, "worm.inject", {"msg_id": 0, "node": 0}]]),
            {
                "stride": 1,
                "samples": 1,
                "columns": {"cycle": [1], "in_flight_flits": [1]},
                "link_flits": {"0->1": 1},
            },
        )
        json.dumps(doc)


class TestAsciiTimeline:
    def test_charts_from_metrics(self):
        metrics = {
            "stride": 1,
            "samples": 4,
            "columns": {
                "cycle": [0, 1, 2, 3],
                "in_flight_flits": [0, 4, 6, 2],
                "source_backlog": [1, 1, 0, 0],
                "retry_queue": [0, 0, 1, 0],
                "messages_delivered": [0, 1, 3, 6],
            },
            "link_flits": {},
        }
        out = ascii_timeline(metrics)
        assert "occupancy over time" in out
        assert "cumulative deliveries" in out

    def test_empty_metrics(self):
        out = ascii_timeline({"columns": {}})
        assert out == "(no metrics samples)"

"""Unit tests for DSL semantic analysis."""

import pytest

from repro.core.dsl import (BOOL, IntRange, SemanticError,
                            SymbolDomain, analyze_source)

from .test_parser import ROUTE_C_EXCERPT


class TestConstantsAndTypes:
    def test_integer_constant_folds(self):
        a = analyze_source("CONSTANT n = 2 * 8 + 1")
        assert a.constants["n"] == 17

    def test_enum_constant_becomes_type(self):
        a = analyze_source("CONSTANT st = {safe, faulty}")
        assert isinstance(a.types["st"], SymbolDomain)
        assert a.types["st"].symbols == ("safe", "faulty")

    def test_symbols_register_owner(self):
        a = analyze_source("CONSTANT st = {safe, faulty}")
        assert a.symbol_owner["safe"] is a.types["st"]

    def test_param_overrides_constant(self):
        a = analyze_source("CONSTANT dirs = 4", params={"dirs": 8})
        assert a.constants["dirs"] == 8

    def test_param_without_declaration(self):
        a = analyze_source("VARIABLE x IN 0 TO d - 1", params={"d": 4})
        assert a.variables["x"].domain == IntRange(0, 3)

    def test_constant_referencing_constant(self):
        a = analyze_source("CONSTANT a = 3\nCONSTANT b = a * 2")
        assert a.constants["b"] == 6

    def test_symbol_collision_across_domains_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source("CONSTANT s1 = {x, y}\nCONSTANT s2 = {y, z}")

    def test_identical_enum_reused(self):
        a = analyze_source(
            "CONSTANT s1 = {x, y}\nVARIABLE v IN {x, y}")
        assert a.variables["v"].domain.symbols == ("x", "y")

    def test_duplicate_name_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source("CONSTANT a = 1\nVARIABLE a IN 0 TO 3")

    def test_bool_is_predeclared(self):
        a = analyze_source("VARIABLE flag IN bool")
        assert a.variables["flag"].domain is BOOL


class TestVariables:
    def test_scalar_register_bits(self):
        a = analyze_source("VARIABLE x IN 0 TO 7")
        assert a.variables["x"].total_bits == 3

    def test_array_register_bits(self):
        # 4 cells x 3 bits (range 0..4 needs 3 bits)
        a = analyze_source("VARIABLE q(0 TO 3) IN 0 TO 4")
        assert a.variables["q"].n_cells == 4
        assert a.variables["q"].total_bits == 12

    def test_set_variable_bits(self):
        a = analyze_source("VARIABLE s IN SET OF 0 TO 3")
        assert a.variables["s"].total_bits == 4

    def test_init_checked_against_domain(self):
        with pytest.raises(SemanticError):
            analyze_source("VARIABLE x IN 0 TO 3 INIT 9")

    def test_init_default_is_domain_default(self):
        a = analyze_source("CONSTANT st = {safe, faulty}\nVARIABLE s IN st")
        assert a.variables["s"].init == "safe"

    def test_program_register_bits_sum(self):
        a = analyze_source("VARIABLE x IN 0 TO 7\nVARIABLE y IN 0 TO 1")
        assert a.register_bits() == 4


class TestRuleChecking:
    def test_route_c_excerpt_analyzes(self):
        a = analyze_source(ROUTE_C_EXCERPT)
        rb = a.rulebases["update_state"]
        assert rb.params[0][0] == "dir"
        assert rb.params[0][1] == IntRange(0, 3)
        assert len(rb.rules) == 2

    def test_unknown_variable_in_premise(self):
        with pytest.raises(SemanticError):
            analyze_source("ON f() IF nosuch = 1 THEN RETURN(0); END f;")

    def test_return_without_returns_type(self):
        with pytest.raises(SemanticError):
            analyze_source("VARIABLE x IN 0 TO 1\n"
                           "ON f() IF x = 0 THEN RETURN(1); END f;")

    def test_return_value_domain_mismatch(self):
        with pytest.raises(SemanticError):
            analyze_source(
                "CONSTANT st = {a, b}\nVARIABLE x IN 0 TO 1\n"
                "ON f() RETURNS st IF x = 0 THEN RETURN(5); END f;")

    def test_symbol_int_comparison_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source(
                "CONSTANT st = {a, b}\nVARIABLE s IN st\n"
                "ON f() IF s < 2 THEN s <- a; END f;")

    def test_assignment_to_input_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source(
                "INPUT load IN 0 TO 3\n"
                "ON f() IF load = 0 THEN load <- 1; END f;")

    def test_event_arity_checked(self):
        with pytest.raises(SemanticError):
            analyze_source(
                "EVENT ping(0 TO 3)\nVARIABLE x IN 0 TO 3\n"
                "ON f() IF x = 0 THEN !ping(); END f;")

    def test_array_needs_indices(self):
        with pytest.raises(SemanticError):
            analyze_source(
                "VARIABLE q(0 TO 3) IN 0 TO 1\n"
                "ON f() IF q = 0 THEN q <- 1; END f;")

    def test_nonboolean_premise_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source(
                "VARIABLE x IN 0 TO 3\nON f() IF x + 1 THEN x <- 0; END f;")

    def test_function_use(self):
        a = analyze_source("""
        FUNCTION minimal(0 TO 15, 0 TO 15) IN SET OF 0 TO 3 FCFB "mesh distance computation"
        INPUT dx IN 0 TO 15
        INPUT dy IN 0 TO 15
        ON pick() RETURNS 0 TO 3
          IF EXISTS i IN minimal(dx, dy): i >= 0 THEN RETURN(0);
        END pick;
        """)
        assert a.functions["minimal"].fcfb == "mesh distance computation"

    def test_subbase_return_used_in_expression(self):
        a = analyze_source("""
        SUBBASE inc(x IN 0 TO 6) RETURNS 0 TO 7
          IF x >= 0 THEN RETURN(x + 1);
        END inc;
        VARIABLE v IN 0 TO 7
        ON f()
          IF inc(3) = 4 THEN v <- inc(v - 1);
        END f;
        """)
        assert "inc" in a.subbases

    def test_quantifier_over_named_constant(self):
        a = analyze_source("""
        CONSTANT dirs = 4
        INPUT busy(0 TO 3) IN bool
        ON f() RETURNS bool
          IF FORALL i IN dirs: busy(i) = true THEN RETURN(true);
        END f;
        """)
        assert "f" in a.rulebases

    def test_quantifier_over_type(self):
        a = analyze_source("""
        CONSTANT st = {a, b, c}
        VARIABLE cur IN st
        ON f() RETURNS bool
          IF EXISTS s IN st: cur = s THEN RETURN(true);
        END f;
        """)
        assert "f" in a.rulebases

    def test_forall_command_checked(self):
        a = analyze_source(ROUTE_C_EXCERPT)
        # the FORALL command in rule 2 emits send_newmessage(i, ounsafe)
        assert "send_newmessage" in a.events

    def test_interval_arithmetic_plus(self):
        # number + 1 stays int-typed and assignable to a wider register
        a = analyze_source(
            "VARIABLE x IN 0 TO 3\nVARIABLE y IN 0 TO 7\n"
            "ON f() IF x < 3 THEN y <- x + 1; END f;")
        assert "f" in a.rulebases

    def test_disjoint_symbol_comparison_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source(
                "CONSTANT s1 = {a, b}\nCONSTANT s2 = {c, d}\n"
                "VARIABLE x IN s1\nVARIABLE y IN s2\n"
                "ON f() IF x = y THEN x <- a; END f;")

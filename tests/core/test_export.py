"""Tests for configuration-data export (the Rule Compiler's output)."""

import json

import pytest

from repro.core.compiler import (compile_program, export_program,
                                 export_rulebase, import_check,
                                 pack_bitstream, table_words,
                                 unpack_bitstream)
from repro.core.dsl import CompileError
from repro.routing.rulesets import compile_ruleset

SRC = """
CONSTANT st = {idle, work, done}
VARIABLE mode IN st
VARIABLE count IN 0 TO 3
ON tick()
  IF mode = idle THEN mode <- work;
  IF mode = work AND count < 3 THEN count <- count + 1;
  IF mode = work AND count = 3 THEN mode <- done;
END tick;
"""


class TestBitstream:
    def test_pack_unpack_roundtrip(self):
        words = [0b101, 0b010, 0b111, 0b000]
        blob = pack_bitstream(words, 3)
        assert unpack_bitstream(blob, 3, 4) == words

    def test_width_one(self):
        words = [1, 0, 1, 1, 0]
        blob = pack_bitstream(words, 1)
        assert unpack_bitstream(blob, 1, 5) == words

    def test_overflow_rejected(self):
        with pytest.raises(CompileError):
            pack_bitstream([0b1000], 3)


class TestExport:
    def test_rulebase_record_fields(self):
        cp = compile_program(SRC)
        rec = export_rulebase(cp.rulebases["tick"])
        assert rec["name"] == "tick"
        assert rec["entries"] == cp.rulebases["tick"].n_entries
        assert rec["size_bits"] == rec["entries"] * rec["width"]
        assert len(rec["index_plan"]) == len(
            cp.rulebases["tick"].analysis.features)
        assert rec["table_words"] == rec["entries"]

    def test_record_is_json_serializable(self):
        cp = compile_program(SRC)
        rec = export_program(cp)
        blob = json.dumps(rec)
        back = json.loads(blob)
        assert back["total_table_bits"] == cp.total_table_bits

    def test_roundtrip_guard(self):
        cp = compile_program(SRC)
        rec = export_rulebase(cp.rulebases["tick"])
        assert import_check(rec, cp.rulebases["tick"])

    def test_tampered_table_detected(self):
        cp = compile_program(SRC)
        rec = export_rulebase(cp.rulebases["tick"])
        blob = bytearray(bytes.fromhex(rec["table"]))
        blob[0] ^= 0xFF
        rec["table"] = bytes(blob).hex()
        assert not import_check(rec, cp.rulebases["tick"])

    def test_gap_entries_are_all_zero_words(self):
        cp = compile_program("""
        VARIABLE v IN 0 TO 3
        VARIABLE out IN 0 TO 1
        ON go()
          IF v = 1 THEN out <- 1;
        END go;
        """)
        rb = cp.rulebases["go"]
        words = table_words(rb)
        zeros = sum(1 for w in words if w == 0)
        assert zeros == rb.stats()["gap_entries"]

    def test_unmaterialized_table_rejected(self):
        cp = compile_program(SRC, materialize=False)
        with pytest.raises(CompileError):
            table_words(cp.rulebases["tick"])

    @pytest.mark.parametrize("ruleset,params", [
        ("nafta", None),
        ("route_c", {"d": 4, "a": 2}),
    ])
    def test_shipped_rulesets_export_cleanly(self, ruleset, params):
        cp = compile_ruleset(ruleset, params)
        rec = export_program(cp)
        json.dumps(rec)  # must be serializable
        for name, rb in cp.rulebases.items():
            assert import_check(rec["rulebases"][name], rb), name

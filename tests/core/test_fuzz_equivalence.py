"""Fuzzing the compiler: randomly generated (but well-formed) rule
programs must behave identically under the compiled-table interpreter
and the reference AST interpreter, for random register states and
inputs.

This complements the hand-written equivalence tests with breadth: the
generator covers comparisons against constants and between signals,
membership tests, boolean structure, saturating counter updates,
symbol-state transitions and multi-rule priority interaction.
"""

from hypothesis import given, settings, strategies as st

from repro.core import RuleEngine
from repro.core.compiler import compile_program

STATES = ("alpha", "beta", "gamma", "delta")
INT_VARS = ("v0", "v1")
INT_MAX = 7


@st.composite
def atoms(draw):
    kind = draw(st.sampled_from(
        ["var_cmp_const", "var_cmp_var", "var_in_set", "state_eq",
         "state_in", "input_cmp_const", "var_cmp_input"]))
    if kind == "var_cmp_const":
        v = draw(st.sampled_from(INT_VARS))
        op = draw(st.sampled_from(["=", "/=", "<", "<=", ">", ">="]))
        c = draw(st.integers(0, INT_MAX))
        return f"{v} {op} {c}"
    if kind == "var_cmp_var":
        op = draw(st.sampled_from(["=", "<", ">="]))
        return f"v0 {op} v1"
    if kind == "var_in_set":
        v = draw(st.sampled_from(INT_VARS))
        members = draw(st.sets(st.integers(0, INT_MAX), min_size=1,
                               max_size=4))
        return f"{v} IN {{{', '.join(map(str, sorted(members)))}}}"
    if kind == "state_eq":
        s = draw(st.sampled_from(STATES))
        return f"mode = {s}"
    if kind == "state_in":
        members = draw(st.sets(st.sampled_from(STATES), min_size=1,
                               max_size=3))
        return f"mode IN {{{', '.join(sorted(members))}}}"
    if kind == "input_cmp_const":
        op = draw(st.sampled_from(["=", "<", ">"]))
        c = draw(st.integers(0, INT_MAX))
        return f"sensor {op} {c}"
    return f"v0 {draw(st.sampled_from(['<', '=', '>=']))} sensor"


@st.composite
def premises(draw):
    n = draw(st.integers(1, 3))
    parts = [draw(atoms()) for _ in range(n)]
    if n == 1:
        p = parts[0]
    else:
        joiner = draw(st.sampled_from([" AND ", " OR "]))
        p = joiner.join(parts)
    if draw(st.booleans()):
        p = f"NOT ({p})"
    return p


@st.composite
def commands(draw):
    kind = draw(st.sampled_from(
        ["assign_const", "assign_inc", "assign_var", "assign_state",
         "assign_from_input", "assign_cell", "emit"]))
    if kind == "assign_const":
        v = draw(st.sampled_from(INT_VARS))
        return f"{v} <- {draw(st.integers(0, INT_MAX))}"
    if kind == "assign_inc":
        v = draw(st.sampled_from(INT_VARS))
        op = draw(st.sampled_from(["+", "-"]))
        return f"{v} <- {v} {op} {draw(st.integers(1, 2))}"
    if kind == "assign_var":
        a, b = draw(st.permutations(list(INT_VARS)))
        return f"{a} <- {b}"
    if kind == "assign_state":
        return f"mode <- {draw(st.sampled_from(STATES))}"
    if kind == "assign_cell":
        cell = draw(st.integers(0, 1))
        return f"arr({cell}) <- {draw(st.sampled_from(list(INT_VARS)))}"
    if kind == "emit":
        return f"!ping({draw(st.sampled_from(list(INT_VARS)))})"
    return "v1 <- sensor"


@st.composite
def programs(draw):
    n_rules = draw(st.integers(1, 4))
    rules = []
    for _ in range(n_rules):
        prem = draw(premises())
        cmds = [draw(commands())
                for _ in range(draw(st.integers(1, 2)))]
        rules.append(f"  IF {prem}\n  THEN {', '.join(cmds)};")
    return (
        "CONSTANT modes = {alpha, beta, gamma, delta}\n"
        f"VARIABLE v0 IN 0 TO {INT_MAX}\n"
        f"VARIABLE v1 IN 0 TO {INT_MAX}\n"
        f"VARIABLE arr(0 TO 1) IN 0 TO {INT_MAX}\n"
        "VARIABLE mode IN modes\n"
        f"INPUT sensor IN 0 TO {INT_MAX}\n"
        f"EVENT ping(0 TO {INT_MAX})\n"
        "ON step()\n" + "\n".join(rules) + "\nEND step;\n")


@settings(max_examples=120, deadline=None)
@given(source=programs(),
       v0=st.integers(0, INT_MAX), v1=st.integers(0, INT_MAX),
       mode=st.sampled_from(STATES), sensor=st.integers(0, INT_MAX),
       rounds=st.integers(1, 3))
def test_fuzzed_programs_agree(source, v0, v1, mode, sensor, rounds):
    compiled = compile_program(source)
    table = RuleEngine(compiled, mode="table")
    ast = RuleEngine(compiled, mode="ast")
    for eng in (table, ast):
        eng.registers.write("v0", v0)
        eng.registers.write("v1", v1)
        eng.registers.write("mode", mode)
        eng.set_inputs({"sensor": sensor})
    for _ in range(rounds):
        rt = table.call("step")
        ra = ast.call("step")
        assert rt.fired_source_rule == ra.fired_source_rule, source
        assert rt.writes == ra.writes, source
        assert rt.emissions == ra.emissions, source
        assert table.registers.snapshot() == ast.registers.snapshot(), source
        table.drain_external()
        ast.drain_external()


@settings(max_examples=60, deadline=None)
@given(source=programs())
def test_fuzzed_programs_export_roundtrip(source):
    from repro.core.compiler import export_rulebase, import_check
    compiled = compile_program(source)
    rb = compiled.rulebases["step"]
    rec = export_rulebase(rb)
    assert import_check(rec, rb)
    assert rec["size_bits"] == rb.size_bits


@settings(max_examples=40, deadline=None)
@given(source=programs(),
       v0=st.integers(0, INT_MAX), v1=st.integers(0, INT_MAX),
       mode=st.sampled_from(STATES), sensor=st.integers(0, INT_MAX))
def test_fuzzed_programs_survive_optimizer(source, v0, v1, mode, sensor):
    """The transformation pipeline must preserve behaviour on arbitrary
    generated programs, not just the curated examples."""
    from repro.core.compiler import CompiledProgram, optimize_base
    from repro.core.dsl import analyze_source
    a = analyze_source(source)
    after, _ = optimize_base(a.analyzer, a.rulebases["step"])
    original = RuleEngine(compile_program(source))
    optimized = RuleEngine(CompiledProgram(
        analyzed=a, rulebases={"step": after}, subbases={}))
    for eng in (original, optimized):
        eng.registers.write("v0", v0)
        eng.registers.write("v1", v1)
        eng.registers.write("mode", mode)
        eng.set_inputs({"sensor": sensor})
    ro = original.call("step")
    rp = optimized.call("step")
    assert ro.writes == rp.writes, source
    assert original.registers.snapshot() == optimized.registers.snapshot()

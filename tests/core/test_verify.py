"""Tests for the table-vs-semantics verification utility."""

import pytest

from repro.core.compiler import (compile_program, collect_axes,
                                 verify_equivalence)
from repro.routing.rulesets import RULESETS, compile_ruleset

SMALL = """
CONSTANT st = {idle, work, done}
VARIABLE mode IN st
VARIABLE count IN 0 TO 3
INPUT go IN bool
ON tick()
  IF mode = idle AND go = true THEN mode <- work;
  IF mode = work AND count < 3 THEN count <- count + 1;
  IF mode = work AND count = 3 THEN mode <- done;
  IF mode = done THEN mode <- idle, count <- 0;
END tick;
"""


class TestAxes:
    def test_axes_cover_registers_and_inputs(self):
        cp = compile_program(SMALL)
        axes = collect_axes(cp, cp.rulebases["tick"])
        kinds = {(a.kind, a.name) for a in axes}
        assert kinds == {("register", "mode"), ("register", "count"),
                         ("input", "go")}

    def test_array_registers_expand_to_cells(self):
        cp = compile_program("""
        VARIABLE arr(0 TO 2) IN 0 TO 1
        ON f(i IN 0 TO 2)
          IF arr(i) = 0 THEN arr(i) <- 1;
        END f;
        """)
        axes = collect_axes(cp, cp.rulebases["f"])
        cells = [a for a in axes if a.kind == "register"]
        assert len(cells) == 3

    def test_params_are_axes(self):
        cp = compile_program("""
        VARIABLE x IN 0 TO 1
        ON f(a IN 0 TO 4)
          IF a = 2 THEN x <- 1;
        END f;
        """)
        axes = collect_axes(cp, cp.rulebases["f"])
        assert any(a.kind == "param" for a in axes)


class TestVerification:
    def test_small_base_exhaustive_ok(self):
        cp = compile_program(SMALL)
        rep = verify_equivalence(cp, "tick")
        assert rep.exhaustive
        assert rep.space_size == 3 * 4 * 2
        assert rep.checked == rep.space_size
        assert rep.ok

    def test_large_space_sampled(self):
        cp = compile_program("""
        VARIABLE a IN 0 TO 255
        VARIABLE b IN 0 TO 255
        VARIABLE c IN 0 TO 255
        ON f()
          IF a < b AND b < c THEN a <- c;
          IF a >= b THEN b <- a;
        END f;
        """)
        rep = verify_equivalence(cp, "f", max_exhaustive=1000, samples=300)
        assert not rep.exhaustive
        assert rep.checked == 300
        assert rep.ok

    def test_sampling_deterministic(self):
        cp = compile_program("""
        VARIABLE a IN 0 TO 255
        VARIABLE b IN 0 TO 255
        VARIABLE c IN 0 TO 255
        ON f()
          IF a < b AND b < c THEN a <- c;
        END f;
        """)
        r1 = verify_equivalence(cp, "f", max_exhaustive=10, samples=50,
                                seed=7)
        r2 = verify_equivalence(cp, "f", max_exhaustive=10, samples=50,
                                seed=7)
        assert r1.checked == r2.checked == 50
        assert r1.ok and r2.ok

    @pytest.mark.parametrize("base", ["decide_dir", "decide_vc",
                                      "update_state", "adaptivity"])
    def test_route_c_ruleset_verifies(self, base):
        cp = compile_ruleset("route_c", {"d": 3, "a": 2})
        rep = verify_equivalence(cp, base,
                                 functions=RULESETS["route_c"].functions,
                                 samples=400)
        assert rep.ok, rep.mismatches[:1]

    @pytest.mark.parametrize("base", ["test_exception", "update_dir_table",
                                      "fault_occured",
                                      "consider_neighbor_state",
                                      "flit_finished", "message_finished"])
    def test_nafta_ruleset_verifies(self, base):
        cp = compile_ruleset("nafta")
        rep = verify_equivalence(cp, base,
                                 functions=RULESETS["nafta"].functions,
                                 samples=300, seed=3)
        assert rep.ok, rep.mismatches[:1]

    def test_summary_text(self):
        cp = compile_program(SMALL)
        rep = verify_equivalence(cp, "tick")
        assert "OK" in rep.summary()
        assert "exhaustively" in rep.summary()

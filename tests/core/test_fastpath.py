"""The compiled decision fast path (``fastpath=True``) must be an
invisible optimization: identical InvocationResults to the interpreted
table pipeline and the reference AST interpreter on arbitrary programs,
and zero ``eval_expr`` AST walks on the hot decision path.

Also covers the ``make_input_reader`` normalization contract the fast
path leans on: scalar index keys canonicalize to 1-tuples exactly once,
conflicting spellings are rejected, and ``trusted=True`` adopts a
canonical mapping as-is.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RuleEngine
from repro.core.compiler import compile_program
from repro.core.dsl.errors import EvalError
from repro.core.interpreter import evaluator
from repro.core.interpreter.evaluator import make_input_reader

INT_MAX = 7
STATES = ("alpha", "beta", "gamma", "delta")


# ---------------------------------------------------------------------------
# property-style equivalence: fastpath == legacy table == ast
# ---------------------------------------------------------------------------

@st.composite
def decision_premises(draw):
    kind = draw(st.sampled_from(
        ["param_cmp", "sensor_cmp", "indexed_cmp", "var_cmp", "state_eq",
         "membership", "mixed"]))
    if kind == "param_cmp":
        op = draw(st.sampled_from(["=", "/=", "<", "<=", ">", ">="]))
        return f"a {op} {draw(st.integers(0, 3))}"
    if kind == "sensor_cmp":
        op = draw(st.sampled_from(["=", "<", ">"]))
        return f"sensor {op} {draw(st.integers(0, INT_MAX))}"
    if kind == "indexed_cmp":
        op = draw(st.sampled_from(["=", "<", ">="]))
        return f"q(a) {op} {draw(st.integers(0, INT_MAX))}"
    if kind == "var_cmp":
        op = draw(st.sampled_from(["=", "<", ">"]))
        return f"v0 {op} {draw(st.integers(0, INT_MAX))}"
    if kind == "state_eq":
        return f"mode = {draw(st.sampled_from(STATES))}"
    if kind == "membership":
        members = draw(st.sets(st.integers(0, INT_MAX), min_size=1,
                               max_size=4))
        return f"sensor IN {{{', '.join(map(str, sorted(members)))}}}"
    return (f"a < {draw(st.integers(1, 3))} AND "
            f"sensor >= {draw(st.integers(0, INT_MAX))}")


@st.composite
def return_exprs(draw):
    kind = draw(st.sampled_from(
        ["const", "var", "sensor", "indexed", "arith"]))
    if kind == "const":
        return str(draw(st.integers(0, INT_MAX)))
    if kind == "var":
        return "v0"
    if kind == "sensor":
        return "sensor"
    if kind == "indexed":
        return "q(a)"
    op = draw(st.sampled_from(["+", "-"]))
    e = f"v0 {op} {draw(st.integers(0, 2))}"
    return f"({e}) MOD {INT_MAX + 1}" if op == "+" else \
        f"(v0 + {INT_MAX + 1} {op} {draw(st.integers(0, 2))}) " \
        f"MOD {INT_MAX + 1}"


@st.composite
def step_commands(draw):
    kind = draw(st.sampled_from(
        ["assign_const", "assign_sensor", "assign_state", "emit",
         "emit_two"]))
    if kind == "assign_const":
        return f"v0 <- {draw(st.integers(0, INT_MAX))}"
    if kind == "assign_sensor":
        return "v0 <- sensor"
    if kind == "assign_state":
        return f"mode <- {draw(st.sampled_from(STATES))}"
    if kind == "emit":
        return "!ping(v0)"
    return "!ping(sensor), !ping(v0)"


@st.composite
def fastpath_programs(draw):
    decide_rules = []
    for _ in range(draw(st.integers(1, 4))):
        prem = draw(decision_premises())
        decide_rules.append(
            f"  IF {prem}\n  THEN RETURN({draw(return_exprs())});")
    step_rules = []
    for _ in range(draw(st.integers(1, 3))):
        prem = draw(decision_premises())
        cmds = [draw(step_commands())
                for _ in range(draw(st.integers(1, 2)))]
        step_rules.append(f"  IF {prem}\n  THEN {', '.join(cmds)};")
    return (
        "CONSTANT modes = {alpha, beta, gamma, delta}\n"
        f"VARIABLE v0 IN 0 TO {INT_MAX}\n"
        "VARIABLE mode IN modes\n"
        f"INPUT sensor IN 0 TO {INT_MAX}\n"
        f"INPUT q(0 TO 3) IN 0 TO {INT_MAX}\n"
        f"EVENT ping(0 TO {INT_MAX})\n"
        f"ON decide(a IN 0 TO 3) RETURNS 0 TO {INT_MAX}\n"
        + "\n".join(decide_rules) + "\nEND decide;\n"
        "ON step(a IN 0 TO 3)\n"
        + "\n".join(step_rules) + "\nEND step;\n")


@settings(max_examples=100, deadline=None)
@given(source=fastpath_programs(),
       v0=st.integers(0, INT_MAX), mode=st.sampled_from(STATES),
       sensor=st.integers(0, INT_MAX),
       q=st.lists(st.integers(0, INT_MAX), min_size=4, max_size=4),
       a=st.integers(0, 3), rounds=st.integers(1, 3))
def test_fastpath_equivalence(source, v0, mode, sensor, q, a, rounds):
    """table+fastpath, table+legacy and ast must produce identical
    InvocationResults — fired rule index, return value, writes and
    emissions (order included) — from identical states."""
    compiled = compile_program(source)
    engines = [RuleEngine(compiled, mode="table", fastpath=True),
               RuleEngine(compiled, mode="table", fastpath=False),
               RuleEngine(compiled, mode="ast")]
    inputs = {"sensor": sensor, "q": {(i,): val for i, val in enumerate(q)}}
    for eng in engines:
        eng.registers.write("v0", v0)
        eng.registers.write("mode", mode)
        eng.set_inputs(inputs, trusted=True)
    for _ in range(rounds):
        results = [eng.call("decide", a) for eng in engines]
        ref = results[-1]
        for res in results[:-1]:
            assert res.fired_source_rule == ref.fired_source_rule, source
            assert res.has_return == ref.has_return, source
            assert res.returned == ref.returned, source
        results = [eng.call("step", a) for eng in engines]
        ref = results[-1]
        for res in results[:-1]:
            assert res.fired_source_rule == ref.fired_source_rule, source
            assert res.writes == ref.writes, source
            assert res.emissions == ref.emissions, source
        snaps = [eng.registers.snapshot() for eng in engines]
        assert snaps[0] == snaps[1] == snaps[2], source
        for eng in engines:
            eng.drain_external()


# ---------------------------------------------------------------------------
# make_input_reader normalization
# ---------------------------------------------------------------------------

def test_input_reader_canonicalizes_scalar_keys():
    reader = make_input_reader({"q": {0: 5, (1,): 6}, "s": 3})
    assert reader("q", (0,)) == 5
    assert reader("q", (1,)) == 6
    assert reader("s", ()) == 3
    # the exposed mapping is fully canonical: tuple keys only
    assert set(reader.mapping["q"]) == {(0,), (1,)}


def test_input_reader_rejects_conflicting_spellings():
    with pytest.raises(EvalError, match="conflicting values"):
        make_input_reader({"q": {0: 5, (0,): 6}})


def test_input_reader_accepts_agreeing_spellings():
    reader = make_input_reader({"q": {0: 5, (0,): 5}})
    assert reader("q", (0,)) == 5


def test_input_reader_trusted_adopts_mapping():
    table = {(0,): 1, (1,): 2}
    source = {"q": table, "s": 9}
    reader = make_input_reader(source, trusted=True)
    assert reader.mapping is source
    assert reader.mapping["q"] is table
    assert reader("q", (1,)) == 2
    assert reader("s", ()) == 9


def test_input_reader_shares_already_canonical_tables():
    table = {(0,): 1, (1,): 2}
    reader = make_input_reader({"q": table})
    assert reader.mapping["q"] is table  # no copy when already canonical


# ---------------------------------------------------------------------------
# batched premise processing: decide_batch == entry, element for element
# ---------------------------------------------------------------------------

BATCH_PROGRAM = f"""
VARIABLE v0 IN 0 TO {INT_MAX}
INPUT sensor IN 0 TO {INT_MAX}
INPUT q(0 TO 3) IN 0 TO {INT_MAX}
ON decide(a IN 0 TO 3) RETURNS 0 TO {INT_MAX}
  IF q(a) < 4 AND sensor > 2 THEN RETURN(q(a));
  IF v0 >= 3 THEN RETURN(v0);
  IF sensor <= 2 THEN RETURN(1);
END decide;
"""


def _batch_kernel_and_rows():
    """One kernel plus (codes row, scalar entry) pairs swept over real
    environments — including gap entries (sensor > 2, q(a) >= 4,
    v0 < 3 fires no rule)."""
    compiled = compile_program(BATCH_PROGRAM)
    engine = RuleEngine(compiled, mode="table", fastpath=True)
    kern = engine._rbr.kernel(compiled.base("decide"))
    rows, refs = [], []
    for sensor in range(INT_MAX + 1):
        for v0 in range(0, INT_MAX + 1, 3):
            engine.registers.write("v0", v0)
            engine.set_inputs(
                {"sensor": sensor,
                 "q": {(i,): (sensor + 3 * i) % (INT_MAX + 1)
                       for i in range(4)}}, trusted=True)
            for a in range(4):
                env = engine._env().bind({"a": a})
                rows.append(kern.codes(env))
                refs.append(kern.entry(env))
    return kern, rows, refs


def test_decide_batch_matches_scalar_entries():
    """The vectorized gather must agree with the memoised scalar path
    on every environment, gap entries (NO_RULE) included."""
    from repro.core.compiler.tablegen import NO_RULE

    kern, rows, refs = _batch_kernel_and_rows()
    got = kern.decide_batch(*zip(*rows))
    assert got.tolist() == refs
    assert NO_RULE in refs  # the sweep really exercises table gaps


def test_decide_batch_rejects_bad_shapes_and_codes():
    kern, rows, _ = _batch_kernel_and_rows()
    cols = list(zip(*rows))
    with pytest.raises(EvalError, match="premise features"):
        kern.decide_batch(*cols[:-1])
    bad = list(cols)
    bad[0] = tuple(c + 10_000 for c in bad[0])
    with pytest.raises(EvalError, match="out of range"):
        kern.decide_batch(*bad)
    bad[0] = tuple(-1 for _ in cols[0])
    with pytest.raises(EvalError, match="out of range"):
        kern.decide_batch(*bad)


def test_decide_batch_empty_batch():
    kern, rows, _ = _batch_kernel_and_rows()
    got = kern.decide_batch(*([[]] * len(rows[0])))
    assert len(got) == 0


# ---------------------------------------------------------------------------
# the hot path performs no AST interpretation
# ---------------------------------------------------------------------------

PERF_PROGRAM = f"""
VARIABLE v0 IN 0 TO {INT_MAX}
INPUT sensor IN 0 TO {INT_MAX}
INPUT q(0 TO 3) IN 0 TO {INT_MAX}
ON decide(a IN 0 TO 3) RETURNS 0 TO {INT_MAX}
  IF q(a) < 4 AND sensor > 2 THEN RETURN(q(a));
  IF v0 >= 3 THEN RETURN(v0);
  IF sensor <= 2 THEN RETURN(1);
END decide;
"""


def _counting_eval_expr(counter):
    real = evaluator.eval_expr

    def counted(expr, env):
        counter["calls"] += 1
        return real(expr, env)

    return counted


@pytest.mark.perf
def test_hot_decision_makes_zero_eval_expr_calls(monkeypatch):
    """After warmup, a fast-path decision must never fall back to the
    AST walker — the whole point of the compiled kernel."""
    from repro.core.interpreter import rbr

    engine = RuleEngine(compile_program(PERF_PROGRAM), fastpath=True)
    inputs = {"sensor": 5, "q": {(i,): i for i in range(4)}}
    engine.set_inputs(inputs, trusted=True)
    engine.call("decide", 2)  # warmup: build the kernel and its memos

    counter = {"calls": 0}
    counted = _counting_eval_expr(counter)
    # patch every module-level reference the interpreter stack holds
    monkeypatch.setattr(evaluator, "eval_expr", counted)
    monkeypatch.setattr(rbr, "eval_expr", counted)
    for a in (0, 1, 2, 3, 2, 0):
        res = engine.call("decide", a)
        assert res.has_return
    assert counter["calls"] == 0
    engine.events.log.clear()


@pytest.mark.perf
def test_legacy_path_exercises_eval_expr(monkeypatch):
    """Control for the zero-calls assertion above: with the fast path
    off, the same decisions DO walk ASTs — proving the counter is wired
    to the real entry point."""
    from repro.core.interpreter import rbr

    engine = RuleEngine(compile_program(PERF_PROGRAM), fastpath=False)
    inputs = {"sensor": 5, "q": {(i,): i for i in range(4)}}
    engine.set_inputs(inputs, trusted=True)
    engine.call("decide", 2)

    counter = {"calls": 0}
    counted = _counting_eval_expr(counter)
    monkeypatch.setattr(evaluator, "eval_expr", counted)
    monkeypatch.setattr(rbr, "eval_expr", counted)
    engine.call("decide", 1)
    assert counter["calls"] > 0
    engine.events.log.clear()

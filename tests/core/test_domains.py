"""Unit and property-based tests for finite value domains."""

import pytest
from hypothesis import given, strategies as st

from repro.core.dsl import (IntRange, SetDomain, SymbolDomain, UnionDomain,
                            SemanticError, bits_for)


class TestBitsFor:
    @pytest.mark.parametrize("n,expected", [
        (1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10),
    ])
    def test_values(self, n, expected):
        assert bits_for(n) == expected


class TestIntRange:
    def test_size_and_values(self):
        d = IntRange(2, 5)
        assert d.size == 4
        assert list(d.values()) == [2, 3, 4, 5]

    def test_contains(self):
        d = IntRange(0, 3)
        assert d.contains(0) and d.contains(3)
        assert not d.contains(4)
        assert not d.contains(-1)
        assert not d.contains("0")
        assert not d.contains(True)  # bools are not DSL integers

    def test_empty_range_rejected(self):
        with pytest.raises(SemanticError):
            IntRange(3, 2)

    def test_bit_width(self):
        assert IntRange(0, 3).bit_width == 2
        assert IntRange(0, 4).bit_width == 3
        assert IntRange(5, 5).bit_width == 1

    def test_negative_range(self):
        d = IntRange(-2, 1)
        assert d.size == 4
        assert d.encode(-2) == 0
        assert d.decode(3) == 1


class TestSymbolDomain:
    def test_roundtrip(self):
        d = SymbolDomain(("safe", "faulty", "ounsafe"))
        for s in d.values():
            assert d.decode(d.encode(s)) == s

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(SemanticError):
            SymbolDomain(("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(SemanticError):
            SymbolDomain(())

    def test_default_is_first(self):
        assert SymbolDomain(("safe", "faulty")).default() == "safe"


class TestUnionDomain:
    def test_int_plus_symbols(self):
        d = UnionDomain((IntRange(0, 3), SymbolDomain(("none",))))
        assert d.size == 5
        assert d.contains(2) and d.contains("none")
        assert d.encode("none") == 4
        assert d.decode(4) == "none"

    def test_overlapping_parts_rejected(self):
        with pytest.raises(SemanticError):
            UnionDomain((IntRange(0, 3), IntRange(2, 5)))


class TestSetDomain:
    def test_bit_width_is_base_size(self):
        d = SetDomain(IntRange(0, 3))
        assert d.bit_width == 4
        assert d.size == 16

    def test_encode_is_bitmask(self):
        d = SetDomain(IntRange(0, 3))
        assert d.encode(frozenset({0, 2})) == 0b101
        assert d.decode(0b1010) == frozenset({1, 3})

    def test_default_is_empty_set(self):
        assert SetDomain(IntRange(0, 1)).default() == frozenset()

    def test_contains_checks_members(self):
        d = SetDomain(IntRange(0, 1))
        assert d.contains(frozenset({0, 1}))
        assert not d.contains(frozenset({2}))


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

int_ranges = st.integers(-50, 50).flatmap(
    lambda lo: st.integers(lo, lo + 60).map(lambda hi: IntRange(lo, hi)))


@given(int_ranges)
def test_intrange_encode_decode_roundtrip(d):
    for v in d.values():
        assert d.decode(d.encode(v)) == v


@given(int_ranges)
def test_intrange_codes_are_dense(d):
    codes = [d.encode(v) for v in d.values()]
    assert codes == list(range(d.size))


@given(int_ranges)
def test_bit_width_sufficient(d):
    assert d.size <= 2 ** d.bit_width


symbol_domains = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    min_size=1, max_size=8, unique=True,
).map(lambda syms: SymbolDomain(tuple(syms)))


@given(symbol_domains)
def test_symbol_encode_decode_roundtrip(d):
    for v in d.values():
        assert d.decode(d.encode(v)) == v


@given(st.integers(0, 6), st.sets(st.integers(0, 6)))
def test_setdomain_mask_roundtrip(hi, members):
    d = SetDomain(IntRange(0, hi))
    value = frozenset(m for m in members if m <= hi)
    assert d.decode(d.encode(value)) == value


@given(st.integers(0, 5))
def test_setdomain_enumerates_powerset(hi):
    d = SetDomain(IntRange(0, hi))
    vals = list(d.values())
    assert len(vals) == 2 ** (hi + 1)
    assert len(set(vals)) == len(vals)

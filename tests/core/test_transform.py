"""Tests for the semantics-preserving rule-base transformations."""

from hypothesis import given, settings, strategies as st

from repro.core import RuleEngine
from repro.core.compiler import CompiledProgram, compile_program
from repro.core.compiler.transform import (TRUE, fold_premise,
                                           fold_rules, merge_adjacent_rules,
                                           optimize_base)
from repro.core.dsl import analyze_source
from repro.core.dsl import nodes as N


def analyzed(src, params=None):
    a = analyze_source(src, params)
    return a.analyzer, a


class TestFolding:
    SRC = """
    CONSTANT limit = 4
    VARIABLE x IN 0 TO 7
    ON go()
      IF limit = 4 AND x < 3 THEN x <- x + 1;
      IF limit = 5 AND x = 7 THEN x <- 0;
      IF limit > 2 OR x = 6 THEN x <- 2;
    END go;
    """

    def test_true_atom_disappears(self):
        analyzer, a = analyzed(self.SRC)
        base = fold_rules(analyzer, a.rulebases["go"])
        # rule 1: "limit = 4" folds true, leaving only "x < 3"
        assert isinstance(base.rules[0].premise, N.Compare)

    def test_false_rule_removed(self):
        analyzer, a = analyzed(self.SRC)
        base = fold_rules(analyzer, a.rulebases["go"])
        assert len(base.rules) == 2  # the limit=5 rule can never fire

    def test_true_or_collapses(self):
        analyzer, a = analyzed(self.SRC)
        base = fold_rules(analyzer, a.rulebases["go"])
        # rule 3's premise "limit > 2 OR ..." folds to TRUE
        assert base.rules[-1].premise == TRUE

    def test_double_negation(self):
        analyzer, a = analyzed("VARIABLE x IN 0 TO 3\n"
                               "ON f() IF NOT (NOT x = 1) THEN x <- 0; END f;")
        prem = fold_premise(analyzer, a.rulebases["f"].rules[0].premise)
        assert isinstance(prem, N.Compare)


class TestMerging:
    def test_adjacent_same_conclusion_merged(self):
        _, a = analyzed("""
        VARIABLE x IN 0 TO 7
        ON f()
          IF x = 1 THEN x <- 0;
          IF x = 2 THEN x <- 0;
          IF x = 3 THEN x <- 5;
        END f;
        """)
        base = merge_adjacent_rules(a.rulebases["f"])
        assert len(base.rules) == 2
        assert isinstance(base.rules[0].premise, N.Or)

    def test_non_adjacent_not_merged(self):
        """Merging across an intervening rule would change priority."""
        _, a = analyzed("""
        VARIABLE x IN 0 TO 7
        ON f()
          IF x < 4 THEN x <- 0;
          IF x = 2 THEN x <- 7;
          IF x < 6 THEN x <- 0;
        END f;
        """)
        base = merge_adjacent_rules(a.rulebases["f"])
        assert len(base.rules) == 3


class TestOptimizeEquivalence:
    SRC = """
    CONSTANT mode = 1
    VARIABLE x IN 0 TO 7
    VARIABLE y IN 0 TO 7
    ON go()
      IF mode = 0 AND x = 0 THEN y <- 7;
      IF mode = 1 AND x < 2 THEN y <- 1;
      IF x = 2 THEN y <- 1;
      IF x = 3 THEN y <- 1;
      IF x > 5 AND x > 4 THEN y <- x - 1;
    END go;
    """

    def _optimized_pair(self):
        analyzer, a = analyzed(self.SRC)
        base = a.rulebases["go"]
        after, report = optimize_base(analyzer, base)
        return analyzer, a, base, after, report

    def test_report_counts(self):
        _, _, base, after, report = self._optimized_pair()
        assert report.rules_before == 5
        assert report.rules_after < 5
        assert report.steps

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 7), st.integers(0, 7))
    def test_behaviour_unchanged(self, x, y):
        analyzer, a, base, after, report = self._optimized_pair()
        from repro.core.compiler.compile import CompiledProgram
        original = compile_program(self.SRC)
        optimized = CompiledProgram(analyzed=a,
                                    rulebases={"go": after}, subbases={})
        eng_a = RuleEngine(original)
        eng_b = RuleEngine(optimized)
        for eng in (eng_a, eng_b):
            eng.registers.write("x", x)
            eng.registers.write("y", y)
        ra = eng_a.call("go")
        rb = eng_b.call("go")
        assert ra.writes == rb.writes
        assert eng_a.registers.snapshot() == eng_b.registers.snapshot()

    def test_table_never_grows(self):
        _, _, _, _, report = self._optimized_pair()
        assert report.size_bits_after <= report.size_bits_before


class TestDeadRuleElimination:
    def test_shadowed_rule_removed(self):
        analyzer, a = analyzed("""
        VARIABLE x IN 0 TO 3
        VARIABLE y IN 0 TO 3
        ON f()
          IF x < 4 THEN y <- 1;
          IF x = 2 THEN y <- 3;
        END f;
        """)
        after, report = optimize_base(analyzer, a.rulebases["f"])
        # rule 2 is fully shadowed by rule 1 (x<4 is always true)
        assert report.rules_after == 1

    def test_optimizing_shipped_rulesets_is_safe(self):
        from repro.routing.rulesets import ruleset_source
        src = ruleset_source("route_c")
        a = analyze_source(src, {"d": 4, "a": 2})
        for name, base in a.rulebases.items():
            after, report = optimize_base(a.analyzer, base)
            assert report.size_bits_after <= report.size_bits_before, name

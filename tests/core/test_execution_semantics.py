"""Fine-grained semantics tests: parallel conclusions, write conflicts,
event manager mechanics, evaluator corner cases."""

import pytest

from repro.core import RuleEngine
from repro.core.dsl import EvalError
from repro.core.dsl.semantics import analyze_source
from repro.core.interpreter import (Env, RegisterFile, eval_expr,
                                    iteration_values, make_input_reader)
from repro.core.dsl.parser import Parser


def expr(src):
    return Parser(src).parse_premise()


def make_env(decls, params=None, inputs=None):
    a = analyze_source(decls)
    return Env(a, RegisterFile(a), params or {},
               make_input_reader(inputs or {}))


@pytest.fixture(params=["table", "ast"])
def mode(request):
    return request.param


class TestParallelConclusions:
    def test_rotation_of_three(self, mode):
        eng = RuleEngine("""
        VARIABLE a IN 0 TO 9 INIT 1
        VARIABLE b IN 0 TO 9 INIT 2
        VARIABLE c IN 0 TO 9 INIT 3
        ON rot()
          IF a >= 0 THEN a <- b, b <- c, c <- a;
        END rot;
        """, mode=mode)
        eng.call("rot")
        assert (eng.registers.read("a"), eng.registers.read("b"),
                eng.registers.read("c")) == (2, 3, 1)

    def test_conflicting_writes_last_wins(self, mode):
        eng = RuleEngine("""
        VARIABLE x IN 0 TO 9
        ON f()
          IF x = 0 THEN x <- 3, x <- 7;
        END f;
        """, mode=mode)
        eng.call("f")
        assert eng.registers.read("x") == 7

    def test_index_evaluated_against_prestate(self, mode):
        eng = RuleEngine("""
        VARIABLE i IN 0 TO 3 INIT 1
        VARIABLE arr(0 TO 3) IN 0 TO 9
        ON f()
          IF i = 1 THEN i <- 2, arr(i) <- 9;
        END f;
        """, mode=mode)
        eng.call("f")
        # arr index used the pre-state i = 1, not the new i = 2
        assert eng.registers.read("arr", (1,)) == 9
        assert eng.registers.read("arr", (2,)) == 0

    def test_forall_expands_with_snapshot(self, mode):
        eng = RuleEngine("""
        CONSTANT n = 4
        VARIABLE arr(0 TO 3) IN 0 TO 9
        VARIABLE base IN 0 TO 9 INIT 5
        ON f()
          IF base = 5 THEN base <- 0, FORALL i IN n: arr(i) <- base + i;
        END f;
        """, mode=mode)
        eng.call("f")
        assert [eng.registers.read("arr", (i,)) for i in range(4)] == \
            [5, 6, 7, 8]
        assert eng.registers.read("base") == 0


class TestEventMechanics:
    def test_events_fifo_order(self, mode):
        eng = RuleEngine("""
        VARIABLE log IN 0 TO 99
        ON a()
          IF log < 90 THEN log <- log * 10 + 1;
        END a;
        ON b()
          IF log < 90 THEN log <- log * 10 + 2;
        END b;
        """, mode=mode)
        eng.post("a")
        eng.post("b")
        eng.run()
        assert eng.registers.read("log") == 12

    def test_external_events_preserve_args(self, mode):
        eng = RuleEngine("""
        CONSTANT st = {go, stop}
        EVENT out(0 TO 7, st)
        VARIABLE x IN 0 TO 7
        ON f(v IN 0 TO 7)
          IF v > 0 THEN !out(v, go), x <- v;
        END f;
        """, mode=mode)
        eng.call("f", 5)
        ext = eng.drain_external()
        assert len(ext) == 1
        assert ext[0].event == "out"
        assert ext[0].args == (5, "go")

    def test_reset_state_clears_everything(self, mode):
        eng = RuleEngine("""
        VARIABLE x IN 0 TO 7
        ON f() IF x < 7 THEN x <- x + 1, !f(); END f;
        """, mode=mode)
        eng.post("f")
        eng.run()
        assert eng.registers.read("x") == 7
        eng.reset_state()
        assert eng.registers.read("x") == 0
        assert eng.steps == 0
        assert not eng.events.queue

    def test_step_counter_per_base(self, mode):
        eng = RuleEngine("""
        VARIABLE x IN 0 TO 7
        ON a() IF x < 7 THEN x <- x + 1, !b(); END a;
        ON b() IF x < 7 THEN x <- x + 1; END b;
        """, mode=mode)
        eng.post("a")
        eng.run()
        assert eng.events.counter.per_base == {"a": 1, "b": 1}


class TestEvaluatorCorners:
    def test_type_name_as_value_is_full_set(self):
        env = make_env("CONSTANT st = {a, b, c}\nVARIABLE cur IN st")
        v = eval_expr(expr("st"), env)
        assert v == frozenset({"a", "b", "c"})

    def test_membership_in_type(self):
        env = make_env("CONSTANT st = {a, b, c}\nVARIABLE cur IN st")
        assert eval_expr(expr("cur IN st"), env) is True

    def test_set_operations(self):
        env = make_env("VARIABLE s IN SET OF 0 TO 3")
        env.registers.write("s", frozenset({0, 1, 2}))
        assert eval_expr(expr("s DIFF {1}"), env) == frozenset({0, 2})
        assert eval_expr(expr("s INTER {1, 3}"), env) == frozenset({1})
        assert eval_expr(expr("s UNION {3}"), env) == frozenset({0, 1, 2, 3})

    def test_iteration_order_symbols_declared_order(self):
        env = make_env("CONSTANT st = {zeta, alpha, mid}\nVARIABLE cur IN st")
        vals = iteration_values(expr("st"), env)
        assert vals == ["zeta", "alpha", "mid"]  # declared, not sorted

    def test_mod_by_zero_raises(self):
        env = make_env("VARIABLE x IN 0 TO 3")
        with pytest.raises(EvalError):
            eval_expr(expr("x MOD 0"), env)

    def test_input_reader_rejects_shape_mismatch(self):
        env = make_env("INPUT a(0 TO 3) IN 0 TO 7",
                       inputs={"a": 5})  # scalar for an indexed input
        with pytest.raises(EvalError):
            eval_expr(expr("a(1)"), env)

    def test_callable_input_source(self):
        env = make_env("INPUT a(0 TO 3) IN 0 TO 7",
                       inputs=lambda name, idx: idx[0] * 2)
        assert eval_expr(expr("a(3)"), env) == 6

"""Unit tests for the rule interpreter stack (registers, engine,
event manager, timing)."""

import pytest

from repro.core import RuleEngine
from repro.core.dsl import EvalError
from repro.core.interpreter import DelayModel, RegisterFile
from repro.core.dsl.semantics import analyze_source

from .test_parser import ROUTE_C_EXCERPT


class TestRegisterFile:
    def make(self, coerce="saturate"):
        a = analyze_source("""
        CONSTANT st = {safe, faulty}
        VARIABLE counter IN 0 TO 4
        VARIABLE state IN st
        VARIABLE arr(0 TO 2) IN 0 TO 7
        VARIABLE flags IN SET OF 0 TO 3
        """)
        return RegisterFile(a, coerce=coerce)

    def test_initial_values(self):
        r = self.make()
        assert r.read("counter") == 0
        assert r.read("state") == "safe"
        assert r.read("arr", (1,)) == 0
        assert r.read("flags") == frozenset()

    def test_write_read(self):
        r = self.make()
        r.write("counter", 3)
        r.write("arr", 5, (2,))
        assert r.read("counter") == 3
        assert r.read("arr", (2,)) == 5
        assert r.read("arr", (0,)) == 0

    def test_saturate_clamps_integer(self):
        r = self.make()
        r.write("counter", 99)
        assert r.read("counter") == 4
        r.write("counter", -5)
        assert r.read("counter") == 0

    def test_strict_raises_on_overflow(self):
        r = self.make(coerce="strict")
        with pytest.raises(EvalError):
            r.write("counter", 99)

    def test_symbol_out_of_domain_always_raises(self):
        r = self.make()
        with pytest.raises(EvalError):
            r.write("state", "ounsafe")

    def test_set_saturate_filters_members(self):
        r = self.make()
        r.write("flags", frozenset({1, 2, 9}))
        assert r.read("flags") == frozenset({1, 2})

    def test_bad_index_raises(self):
        r = self.make()
        with pytest.raises(EvalError):
            r.read("arr", (7,))

    def test_unknown_register_raises(self):
        r = self.make()
        with pytest.raises(EvalError):
            r.read("nope")

    def test_reset_restores_init(self):
        r = self.make()
        r.write("counter", 3)
        r.reset()
        assert r.read("counter") == 0

    def test_snapshot_roundtrip(self):
        r = self.make()
        r.write("counter", 2)
        r.write("arr", 7, (0,))
        snap = r.snapshot()
        r.reset()
        r.load(snap)
        assert r.read("counter") == 2
        assert r.read("arr", (0,)) == 7


@pytest.fixture(params=["table", "ast"])
def mode(request):
    return request.param


class TestEngineDecisions:
    SRC = """
    CONSTANT dirs = {north, east, south, west}
    INPUT xpos IN 0 TO 7
    INPUT xdes IN 0 TO 7
    INPUT ypos IN 0 TO 7
    INPUT ydes IN 0 TO 7
    ON decide() RETURNS dirs
      IF xpos < xdes THEN RETURN(east);
      IF xpos > xdes THEN RETURN(west);
      IF xpos = xdes AND ypos < ydes THEN RETURN(north);
      IF xpos = xdes AND ypos > ydes THEN RETURN(south);
    END decide;
    """

    def test_decision(self, mode):
        e = RuleEngine(self.SRC, mode=mode)
        e.set_inputs({"xpos": 1, "xdes": 6, "ypos": 0, "ydes": 0})
        assert e.decide("decide") == "east"

    def test_no_rule_applies(self, mode):
        e = RuleEngine(self.SRC, mode=mode)
        e.set_inputs({"xpos": 3, "xdes": 3, "ypos": 2, "ydes": 2})
        res = e.call("decide")
        assert res.fired_source_rule is None
        assert not res.has_return

    def test_decide_raises_without_decision(self, mode):
        e = RuleEngine(self.SRC, mode=mode)
        e.set_inputs({"xpos": 3, "xdes": 3, "ypos": 2, "ydes": 2})
        with pytest.raises(EvalError):
            e.decide("decide")

    def test_steps_counted(self, mode):
        e = RuleEngine(self.SRC, mode=mode)
        e.set_inputs({"xpos": 0, "xdes": 1, "ypos": 0, "ydes": 0})
        e.decide("decide")
        e.decide("decide")
        assert e.steps == 2
        e.reset_steps()
        assert e.steps == 0


class TestEngineStateUpdate:
    def test_route_c_excerpt_state_machine(self, mode):
        e = RuleEngine(ROUTE_C_EXCERPT, mode=mode)
        # first faulty neighbour: counters move, no propagation
        e.set_inputs({"new_state": {(0,): "faulty", (1,): "safe",
                                    (2,): "safe", (3,): "safe"}})
        e.post("update_state", 0)
        e.run()
        assert e.registers.read("number_faulty") == 1
        assert e.registers.read("number_unsafe") == 1
        assert e.registers.read("state") == "safe"
        assert e.registers.read("neighb_state", (0,)) == "faulty"

    def test_unsafe_threshold_triggers_propagation(self, mode):
        e = RuleEngine(ROUTE_C_EXCERPT, mode=mode)
        e.registers.write("number_unsafe", 2)
        e.set_inputs({"new_state": {(1,): "ounsafe", (0,): "safe",
                                    (2,): "safe", (3,): "safe"}})
        e.post("update_state", 1)
        e.run()
        assert e.registers.read("state") == "ounsafe"
        assert e.registers.read("number_unsafe") == 3
        # 4 outgoing notifications, one per direction, leave the machine
        ext = e.drain_external()
        assert len(ext) == 4
        assert {em.args[0] for em in ext} == {0, 1, 2, 3}
        assert all(em.event == "send_newmessage" for em in ext)
        assert all(em.args[1] == "ounsafe" for em in ext)

    def test_parallel_conclusion_snapshot_semantics(self, mode):
        # swap two registers in one conclusion: only correct if all RHS
        # are read before any write is applied
        e = RuleEngine("""
        VARIABLE a IN 0 TO 7 INIT 1
        VARIABLE b IN 0 TO 7 INIT 5
        ON swap()
          IF a /= b THEN a <- b, b <- a;
        END swap;
        """, mode=mode)
        e.call("swap")
        assert e.registers.read("a") == 5
        assert e.registers.read("b") == 1

    def test_internal_event_cascade(self, mode):
        e = RuleEngine("""
        VARIABLE n IN 0 TO 10
        ON start()
          IF n = 0 THEN n <- 1, !step();
        END start;
        ON step()
          IF n < 3 THEN n <- n + 1, !step();
        END step;
        """, mode=mode)
        e.post("start")
        e.run()
        assert e.registers.read("n") == 3
        # start + step(1->2) + step(2->3) + final step (no rule fires)
        assert e.steps == 4

    def test_livelock_guard(self, mode):
        e = RuleEngine("""
        VARIABLE n IN 0 TO 1
        ON loop()
          IF n = 0 THEN !loop();
        END loop;
        """, mode=mode)
        e.events.max_cascade = 50
        e.post("loop")
        with pytest.raises(EvalError):
            e.run()

    def test_witness_used_in_conclusion(self, mode):
        e = RuleEngine("""
        CONSTANT dirs = 4
        INPUT busy(0 TO 3) IN bool
        ON pick() RETURNS 0 TO 3
          IF EXISTS i IN dirs: busy(i) = false THEN RETURN(i);
        END pick;
        """, mode=mode)
        e.set_inputs({"busy": {(0,): "true", (1,): "true",
                               (2,): "false", (3,): "false"}})
        # lowest free index wins in both engines
        assert e.decide("pick") == 2

    def test_subbase_in_expression(self, mode):
        e = RuleEngine("""
        SUBBASE clamp(x IN 0 TO 15) RETURNS 0 TO 7
          IF x <= 7 THEN RETURN(x);
          IF x > 7 THEN RETURN(7);
        END clamp;
        INPUT raw IN 0 TO 15
        VARIABLE v IN 0 TO 7
        ON take()
          IF raw >= 0 THEN v <- clamp(raw);
        END take;
        """, mode=mode)
        e.set_inputs({"raw": 12})
        e.call("take")
        assert e.registers.read("v") == 7

    def test_function_registration(self, mode):
        e = RuleEngine("""
        FUNCTION plus2(0 TO 5) IN 0 TO 7 FCFB "adder"
        INPUT x IN 0 TO 5
        VARIABLE v IN 0 TO 7
        ON go()
          IF x >= 0 THEN v <- plus2(x);
        END go;
        """, mode=mode, functions={"plus2": lambda x: x + 2})
        e.set_inputs({"x": 3})
        e.call("go")
        assert e.registers.read("v") == 5

    def test_unregistered_function_raises(self, mode):
        e = RuleEngine("""
        FUNCTION f(0 TO 5) IN 0 TO 7
        INPUT x IN 0 TO 5
        VARIABLE v IN 0 TO 7
        ON go()
          IF f(x) = 3 THEN v <- 1;
        END go;
        """, mode=mode)
        e.set_inputs({"x": 1})
        with pytest.raises(EvalError):
            e.call("go")


class TestTiming:
    def test_step_latency_formula(self):
        d = DelayModel(wiring_ns=0.5, fcfb_ns=2.0, ram_access_ns=5.0,
                       cycle_ns=10.0)
        assert d.step_ns() == pytest.approx(0.5 + 4.0 + 5.0)
        assert d.step_cycles() == 1

    def test_slow_clock_needs_more_cycles(self):
        d = DelayModel(wiring_ns=1.0, fcfb_ns=4.0, ram_access_ns=8.0,
                       cycle_ns=5.0)
        assert d.step_ns() == pytest.approx(17.0)
        assert d.step_cycles() == 4

    def test_decision_cycles_scale_with_steps(self):
        d = DelayModel()
        assert d.decision_cycles(3) == 3 * d.step_cycles()

    def test_pipeline_stage_is_the_slowest(self):
        d = DelayModel(wiring_ns=0.5, fcfb_ns=2.0, ram_access_ns=5.0)
        assert d.pipeline_stage_ns() == 5.0  # the RAM access dominates

    def test_pipelined_throughput_beats_sequential(self):
        d = DelayModel()
        sequential_per_us = 1000.0 / d.step_ns()
        assert d.pipelined_throughput_per_us() > sequential_per_us

    def test_pipelined_latency_at_least_unpipelined(self):
        d = DelayModel()
        assert d.pipelined_latency_ns() >= d.step_ns()

"""Differential tests: compiled rule tables (RBR-kernel model) must
agree bit-for-bit with the reference AST interpreter.

This is the keystone correctness property of the whole compiler stack:
the paper's claim that rule-table execution "is able to outperform
software solutions" only matters if the table computes the same
function as the rule semantics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RuleEngine
from repro.core.compiler import compile_program

from .test_parser import ROUTE_C_EXCERPT

DECIDER = """
CONSTANT dirs = {north, east, south, west}
INPUT xpos IN 0 TO 7
INPUT xdes IN 0 TO 7
INPUT ypos IN 0 TO 7
INPUT ydes IN 0 TO 7
INPUT load(0 TO 3) IN 0 TO 15
ON decide() RETURNS dirs
  IF xpos < xdes AND load(1) <= load(3) THEN RETURN(east);
  IF xpos > xdes AND load(3) <= load(1) THEN RETURN(west);
  IF xpos < xdes THEN RETURN(east);
  IF xpos > xdes THEN RETURN(west);
  IF ypos < ydes THEN RETURN(north);
  IF ypos > ydes THEN RETURN(south);
END decide;
"""

PICKER = """
CONSTANT n = 5
INPUT busy(0 TO 4) IN bool
INPUT q(0 TO 4) IN 0 TO 3
ON pick() RETURNS 0 TO 4
  IF EXISTS i IN n: busy(i) = false AND q(i) = 0 THEN RETURN(i);
  IF EXISTS i IN n: busy(i) = false THEN RETURN(i);
END pick;
"""


def results_equal(a, b):
    return (a.fired_source_rule == b.fired_source_rule
            and a.returned == b.returned
            and a.has_return == b.has_return
            and a.emissions == b.emissions
            and a.writes == b.writes)


def make_pair(src):
    compiled = compile_program(src)
    table = RuleEngine(compiled, mode="table")
    ast = RuleEngine(compiled, mode="ast")
    return table, ast


class TestDeciderEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7),
           st.integers(0, 7), st.lists(st.integers(0, 15), min_size=4,
                                       max_size=4))
    def test_same_decision(self, xpos, xdes, ypos, ydes, loads):
        table, ast = make_pair(DECIDER)
        inputs = {"xpos": xpos, "xdes": xdes, "ypos": ypos, "ydes": ydes,
                  "load": {(i,): v for i, v in enumerate(loads)}}
        table.set_inputs(inputs)
        ast.set_inputs(inputs)
        assert results_equal(table.call("decide"), ast.call("decide"))


class TestWitnessEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.booleans(), min_size=5, max_size=5),
           st.lists(st.integers(0, 3), min_size=5, max_size=5))
    def test_same_witness(self, busy, q):
        table, ast = make_pair(PICKER)
        inputs = {
            "busy": {(i,): ("true" if b else "false")
                     for i, b in enumerate(busy)},
            "q": {(i,): v for i, v in enumerate(q)},
        }
        table.set_inputs(inputs)
        ast.set_inputs(inputs)
        assert results_equal(table.call("pick"), ast.call("pick"))


class TestStatefulEquivalence:
    states = st.sampled_from(["safe", "faulty", "ounsafe", "sunsafe", "lfault"])

    @settings(max_examples=150, deadline=None)
    @given(dir_=st.integers(0, 3),
           new_states=st.lists(states, min_size=4, max_size=4),
           number_unsafe=st.integers(0, 4),
           number_faulty=st.integers(0, 4),
           state=states)
    def test_update_state_same_effects(self, dir_, new_states,
                                       number_unsafe, number_faulty, state):
        table, ast = make_pair(ROUTE_C_EXCERPT)
        for e in (table, ast):
            e.registers.write("number_unsafe", number_unsafe)
            e.registers.write("number_faulty", number_faulty)
            e.registers.write("state", state)
            e.set_inputs({"new_state": {(i,): s
                                        for i, s in enumerate(new_states)}})
        rt = table.call("update_state", dir_)
        ra = ast.call("update_state", dir_)
        assert results_equal(rt, ra)
        assert table.registers.snapshot() == ast.registers.snapshot()


class TestExhaustiveEquivalence:
    """Small enough rule bases are checked over their entire input space."""

    SRC = """
    CONSTANT st = {idle, work, done}
    VARIABLE mode IN st
    VARIABLE count IN 0 TO 3
    ON tick()
      IF mode = idle AND count = 0 THEN mode <- work;
      IF mode = work AND count < 3 THEN count <- count + 1;
      IF mode = work AND count = 3 THEN mode <- done;
      IF mode = done THEN mode <- idle, count <- 0;
    END tick;
    """

    @pytest.mark.parametrize("mode_v", ["idle", "work", "done"])
    @pytest.mark.parametrize("count", [0, 1, 2, 3])
    def test_all_states(self, mode_v, count):
        table, ast = make_pair(self.SRC)
        for e in (table, ast):
            e.registers.write("mode", mode_v)
            e.registers.write("count", count)
        rt = table.call("tick")
        ra = ast.call("tick")
        assert results_equal(rt, ra)
        assert table.registers.snapshot() == ast.registers.snapshot()

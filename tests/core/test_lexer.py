"""Unit tests for the DSL tokenizer."""

import pytest

from repro.core.dsl import LexError, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


class TestBasicTokens:
    def test_empty_source_gives_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "EOF"

    def test_keywords_are_case_insensitive(self):
        assert kinds("IF if If") == [("KW", "IF")] * 3

    def test_identifiers_keep_case(self):
        assert kinds("xpos Xdes number_unsafe") == [
            ("IDENT", "xpos"), ("IDENT", "Xdes"), ("IDENT", "number_unsafe")]

    def test_numbers(self):
        assert kinds("0 42 1024") == [("NUM", "0"), ("NUM", "42"), ("NUM", "1024")]

    def test_identifier_with_digits(self):
        assert kinds("route_c2") == [("IDENT", "route_c2")]

    def test_arrow_is_one_token(self):
        assert kinds("x<-1") == [("IDENT", "x"), ("OP", "<-"), ("NUM", "1")]

    def test_relational_operators(self):
        assert [t for _, t in kinds("< <= > >= = /=")] == \
            ["<", "<=", ">", ">=", "=", "/="]

    def test_maximal_munch_prefers_le_over_lt(self):
        assert kinds("a<=b") == [("IDENT", "a"), ("OP", "<="), ("IDENT", "b")]

    def test_bang_for_event_generation(self):
        assert kinds("!send(i)")[0] == ("OP", "!")

    def test_braces_commas_semicolons(self):
        assert [t for _, t in kinds("{a, b};")] == ["{", "a", ",", "b", "}", ";"]


class TestCommentsAndLayout:
    def test_comment_to_end_of_line(self):
        assert kinds("a -- this is a comment\nb") == [
            ("IDENT", "a"), ("IDENT", "b")]

    def test_comment_only_line(self):
        assert kinds("-- nothing here\n") == []

    def test_single_minus_is_operator_not_comment(self):
        assert kinds("a - b") == [("IDENT", "a"), ("OP", "-"), ("IDENT", "b")]

    def test_line_numbers_advance(self):
        toks = tokenize("a\nb\n  c")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]

    def test_column_numbers(self):
        toks = tokenize("ab cd")
        assert toks[0].col == 1
        assert toks[1].col == 4

    def test_string_literal(self):
        toks = tokenize('FCFB "minimum selection"')
        assert toks[1].kind == "STRING"
        assert toks[1].text == "minimum selection"


class TestLexErrors:
    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('FCFB "oops')

    def test_error_carries_location(self):
        with pytest.raises(LexError) as exc:
            tokenize("ab\ncd @")
        assert exc.value.line == 2


class TestPaperExcerptTokens:
    def test_figure4_style_line_tokenizes(self):
        src = ("IF new_state(dir) IN {faulty,lfault} AND number_faulty=0\n"
               "THEN neighb_state(dir)<-new_state(dir),\n"
               "     number_faulty<-number_faulty+1;")
        toks = tokenize(src)
        texts = [t.text for t in toks if t.kind == "KW"]
        assert texts == ["IF", "IN", "AND", "THEN"]

    def test_quantifier_tokens(self):
        src = "FORALL i IN dirs: !send_newmessage(i,ounsafe)"
        toks = tokenize(src)
        assert toks[0].text == "FORALL"
        assert any(t.text == "!" for t in toks)

"""Unit tests for the rule compiler (expansion, atoms, encoding, FCFBs,
table generation)."""

import pytest

from repro.core.compiler import compile_program
from repro.core.dsl import CompileError

from .test_parser import ROUTE_C_EXCERPT


def compile_one(src, name=None, **params):
    cp = compile_program(src, params=params or None)
    if name is None:
        name = next(iter(cp.rulebases))
    return cp, cp.rulebases[name]


class TestExpansion:
    def test_forall_command_unrolls(self):
        _, rb = compile_one("""
        CONSTANT dirs = 3
        VARIABLE x IN 0 TO 1
        EVENT ping(0 TO 2)
        ON go()
          IF x = 0 THEN FORALL i IN dirs: !ping(i);
        END go;
        """)
        cmds = rb.ground_rules[0].commands
        assert len(cmds) == 3
        assert [c.args[0].value for c in cmds] == [0, 1, 2]

    def test_exists_expands_to_or(self):
        _, rb = compile_one("""
        CONSTANT dirs = 4
        INPUT busy(0 TO 3) IN bool
        VARIABLE x IN 0 TO 1
        ON go()
          IF EXISTS i IN dirs: busy(i) = true THEN x <- 1;
        END go;
        """)
        # one ground rule (no witness use), OR of 4 atoms -> 4 bit features
        assert len(rb.ground_rules) == 1
        assert rb.n_entries == 16

    def test_witness_splitting(self):
        _, rb = compile_one("""
        CONSTANT dirs = 4
        INPUT busy(0 TO 3) IN bool
        ON pick() RETURNS 0 TO 3
          IF EXISTS i IN dirs: busy(i) = false THEN RETURN(i);
        END pick;
        """)
        # witness used in conclusion -> one ground rule per candidate
        assert len(rb.ground_rules) == 4
        assert [g.witness for g in rb.ground_rules] == [
            (("i", 0),), (("i", 1),), (("i", 2),), (("i", 3),)]

    def test_forall_over_computed_set_in_conclusion_rejected(self):
        with pytest.raises(CompileError):
            compile_one("""
            FUNCTION minimal(0 TO 3) IN SET OF 0 TO 3
            INPUT d IN 0 TO 3
            EVENT ping(0 TO 3)
            VARIABLE x IN 0 TO 1
            ON go()
              IF x = 0 THEN FORALL i IN minimal(d): !ping(i);
            END go;
            """)

    def test_computed_set_quantifier_gets_guards(self):
        _, rb = compile_one("""
        FUNCTION minimal(0 TO 7, 0 TO 7) IN SET OF 0 TO 3 FCFB "mesh distance computation"
        INPUT dx IN 0 TO 7
        INPUT dy IN 0 TO 7
        INPUT busy(0 TO 3) IN bool
        ON pick() RETURNS 0 TO 3
          IF EXISTS i IN minimal(dx, dy): busy(i) = false THEN RETURN(i);
        END pick;
        """)
        assert len(rb.ground_rules) == 4
        # the computed set is used by 4 membership guards, so its 4-bit
        # mask feeds the index directly (no per-guard membership FCFB);
        # the block computing the set itself is still required
        assert "mesh distance computation" in rb.fcfb_kinds
        # 16 set masks x 2^4 busy bits
        assert rb.n_entries == 256


class TestFeatures:
    def test_frequently_compared_signal_goes_direct(self):
        _, rb = compile_one("""
        CONSTANT st = {a, b, c, d}
        VARIABLE s IN st
        VARIABLE out IN 0 TO 3
        ON go()
          IF s = a THEN out <- 0;
          IF s = b THEN out <- 1;
          IF s = c THEN out <- 2;
          IF s = d THEN out <- 3;
        END go;
        """)
        # 4 atoms on a 2-bit signal -> direct (4 entries, not 16)
        assert rb.n_entries == 4

    def test_rarely_compared_signal_stays_bit(self):
        _, rb = compile_one("""
        VARIABLE v IN 0 TO 255
        VARIABLE out IN 0 TO 1
        ON go()
          IF v = 17 THEN out <- 1;
        END go;
        """)
        # one atom on an 8-bit signal -> 1-bit feature
        assert rb.n_entries == 2
        assert "compare with constant" in rb.fcfb_kinds

    def test_two_signal_compare_is_magnitude_comparator(self):
        _, rb = compile_one("""
        INPUT a IN 0 TO 255
        INPUT b IN 0 TO 255
        VARIABLE out IN 0 TO 1
        ON go()
          IF a < b THEN out <- 1;
        END go;
        """)
        assert rb.n_entries == 2
        assert "magnitude comparator" in rb.fcfb_kinds

    def test_derived_atoms_need_no_fcfb(self):
        _, rb = compile_one("""
        VARIABLE s IN 0 TO 3
        VARIABLE out IN 0 TO 3
        ON go()
          IF s = 0 THEN out <- 1;
          IF s = 1 THEN out <- 2;
          IF s = 2 THEN out <- 3;
          IF s > 2 THEN out <- 0;
        END go;
        """)
        # all atoms fold into the direct value: no premise FCFBs at all
        premise_kinds = {"compare with constant", "magnitude comparator",
                         "membership testing", "equality comparator"}
        assert not premise_kinds & set(rb.fcfb_kinds)

    def test_duplicate_atoms_share_one_feature(self):
        _, rb = compile_one("""
        INPUT a IN 0 TO 255
        INPUT b IN 0 TO 255
        VARIABLE out IN 0 TO 3
        ON go()
          IF a < b THEN out <- 1;
          IF a < b OR a = 0 THEN out <- 2;
        END go;
        """)
        # 'a < b' appears twice but is one feature; 'a = 0' is another
        assert rb.n_entries == 4


class TestTable:
    def test_first_applicable_rule_wins(self):
        cp, rb = compile_one("""
        VARIABLE v IN 0 TO 3
        VARIABLE out IN 0 TO 3
        ON go()
          IF v < 2 THEN out <- 1;
          IF v < 3 THEN out <- 2;
        END go;
        """)
        # overlapping premises: entries where both hold pick rule 0
        stats = rb.stats()
        assert stats["rules_used"] == 2

    def test_gaps_map_to_no_rule(self):
        _, rb = compile_one("""
        VARIABLE v IN 0 TO 3
        VARIABLE out IN 0 TO 1
        ON go()
          IF v = 1 THEN out <- 1;
        END go;
        """)
        stats = rb.stats()
        assert stats["gap_entries"] == stats["entries"] - 1

    def test_table_completely_filled(self):
        _, rb = compile_one(ROUTE_C_EXCERPT)
        assert rb.table is not None
        assert rb.table.size == rb.n_entries

    def test_materialize_false_skips_table(self):
        cp = compile_program("""
        VARIABLE v IN 0 TO 3
        VARIABLE out IN 0 TO 1
        ON go()
          IF v = 1 THEN out <- 1;
        END go;
        """, materialize=False)
        rb = cp.rulebases["go"]
        assert rb.table is None
        assert rb.size_bits > 0  # cost figures still available

    def test_oversized_table_rejected(self):
        with pytest.raises(CompileError):
            compile_one("""
            INPUT a IN 0 TO 4095
            INPUT b IN 0 TO 4095
            INPUT c IN 0 TO 4095
            VARIABLE out IN 0 TO 1
            ON go()
              IF a = 0 AND a = 1 AND a = 2 AND a = 3 AND a = 4 AND a = 5
                 AND a = 6 AND a = 7 AND a = 8 AND a = 9 AND a = 10 AND a = 11
                 AND b = 0 AND b = 1 AND b = 2 AND b = 3 AND b = 4 AND b = 5
                 AND b = 6 AND b = 7 AND b = 8 AND b = 9 AND b = 10 AND b = 11
                 AND c = 0 AND c = 1 AND c = 2 AND c = 3 AND c = 4 AND c = 5
                 AND c = 6 AND c = 7 AND c = 8 AND c = 9 AND c = 10 AND c = 11
              THEN out <- 1;
            END go;
            """)


class TestEncoding:
    def test_width_counts_slots(self):
        _, rb = compile_one("""
        VARIABLE a IN 0 TO 1
        VARIABLE b IN 0 TO 1
        ON go()
          IF a = 0 THEN a <- 1;
          IF a = 1 AND b = 0 THEN a <- 0, b <- 1;
        END go;
        """)
        # slots: assign a (2 variants -> 1+1), assign b (1 variant -> 1)
        assert rb.width == 3

    def test_const_return_stores_value_directly(self):
        _, rb = compile_one("""
        CONSTANT dirs = {n, e, s, w}
        VARIABLE v IN 0 TO 3
        ON go() RETURNS dirs
          IF v = 0 THEN RETURN(n);
          IF v = 1 THEN RETURN(e);
          IF v = 2 THEN RETURN(s);
          IF v = 3 THEN RETURN(w);
        END go;
        """)
        # return slot: 1 valid bit + 2 value bits
        assert rb.width == 3

    def test_identical_conclusions_dedup(self):
        _, rb = compile_one("""
        VARIABLE v IN 0 TO 3
        VARIABLE out IN 0 TO 1
        ON go()
          IF v = 0 THEN out <- 1;
          IF v = 3 THEN out <- 1;
        END go;
        """)
        assert len(rb.encoding.conclusion_words) == 1
        assert rb.width == 1  # single enable bit, one variant

    def test_paper_excerpt_compiles_with_expected_shape(self):
        cp, rb = compile_one(ROUTE_C_EXCERPT, name="update_state")
        stats = rb.stats()
        assert stats["dead_rules"] == []
        assert rb.writes == frozenset(
            {"neighb_state", "number_faulty", "number_unsafe", "state"})
        assert rb.emits == frozenset({"send_newmessage"})


class TestRegisterAccounting:
    def test_register_bits(self):
        cp, _ = compile_one(ROUTE_C_EXCERPT)
        # number_unsafe (3) + number_faulty (3) + state (3) + neighb 4x3
        assert cp.register_bits() == 21

    def test_register_report_writers(self):
        cp, _ = compile_one(ROUTE_C_EXCERPT)
        rep = {r["name"]: r for r in cp.register_report()}
        assert rep["state"]["writers"] == ["update_state"]
        assert rep["state"]["readers"] == ["update_state"]


class TestSubbaseCompilation:
    def test_subbase_compiled_separately(self):
        cp = compile_program("""
        SUBBASE inc(x IN 0 TO 6) RETURNS 0 TO 7
          IF x >= 0 THEN RETURN(x + 1);
        END inc;
        VARIABLE v IN 0 TO 7
        ON go()
          IF v < 7 THEN v <- inc(v);
        END go;
        """)
        assert "inc" in cp.subbases
        assert cp.rulebases["go"].calls == frozenset({"inc"})
        assert "subbase lookup" in cp.rulebases["go"].fcfb_kinds

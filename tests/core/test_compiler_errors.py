"""Error-path and diagnostic tests for the compiler stack."""

import pytest

from repro.core import RuleEngine
from repro.core.compiler import compile_program
from repro.core.dsl import EvalError, LexError, ParseError, SemanticError


class TestFrontEndErrors:
    def test_lex_error_propagates(self):
        with pytest.raises(LexError):
            compile_program("VARIABLE x IN 0 TO 3 @")

    def test_parse_error_propagates(self):
        with pytest.raises(ParseError):
            compile_program("ON f() IF THEN RETURN(1); END f;")

    def test_semantic_error_propagates(self):
        with pytest.raises(SemanticError):
            compile_program("ON f() IF nothing = 1 THEN RETURN(1); END f;")

    def test_missing_param_reported(self):
        with pytest.raises(SemanticError):
            compile_program("VARIABLE x IN 0 TO d - 1")  # d undefined

    def test_param_fixes_it(self):
        cp = compile_program("VARIABLE x IN 0 TO d - 1\n"
                             "ON f() IF x = 0 THEN x <- 1; END f;",
                             params={"d": 4})
        assert cp.rulebases["f"].n_entries >= 2


class TestRuntimeErrors:
    def test_missing_input_raises_at_runtime(self):
        eng = RuleEngine("INPUT a IN 0 TO 3\nVARIABLE x IN 0 TO 3\n"
                         "ON f() IF a = 1 THEN x <- 1; END f;")
        with pytest.raises(EvalError):
            eng.call("f")

    def test_wrong_arity_call(self):
        eng = RuleEngine("ON f(a IN 0 TO 3) IF a = 0 THEN !g(); END f;\n"
                         "EVENT g()")
        with pytest.raises(EvalError):
            eng.call("f")  # missing argument
        with pytest.raises(EvalError):
            eng.call("f", 1, 2)  # too many

    def test_argument_domain_checked(self):
        eng = RuleEngine("VARIABLE x IN 0 TO 1\n"
                         "ON f(a IN 0 TO 3) IF a = 0 THEN x <- 1; END f;")
        with pytest.raises(SemanticError):
            eng.call("f", 9)

    def test_unknown_base(self):
        eng = RuleEngine("VARIABLE x IN 0 TO 1\n"
                         "ON f() IF x = 0 THEN x <- 1; END f;")
        with pytest.raises((EvalError, KeyError)):
            eng.call("nope")

    def test_post_unknown_event(self):
        eng = RuleEngine("VARIABLE x IN 0 TO 1\n"
                         "ON f() IF x = 0 THEN x <- 1; END f;")
        with pytest.raises(EvalError):
            eng.post("nothing")

    def test_strict_mode_overflow(self):
        eng = RuleEngine("VARIABLE x IN 0 TO 3\n"
                         "ON f() IF x >= 0 THEN x <- x + 1; END f;",
                         coerce="strict")
        for _ in range(3):
            eng.call("f")
        with pytest.raises(EvalError):
            eng.call("f")  # 3 + 1 overflows 0..3

    def test_saturate_mode_clamps(self):
        eng = RuleEngine("VARIABLE x IN 0 TO 3\n"
                         "ON f() IF x >= 0 THEN x <- x + 1; END f;")
        for _ in range(6):
            eng.call("f")
        assert eng.registers.read("x") == 3

    def test_impure_subbase_in_expression_rejected(self):
        eng = RuleEngine("""
        VARIABLE y IN 0 TO 3
        SUBBASE sneaky(a IN 0 TO 3) RETURNS 0 TO 3
          IF a >= 0 THEN RETURN(a), y <- 1;
        END sneaky;
        VARIABLE x IN 0 TO 3
        ON f() IF sneaky(1) = 1 THEN x <- 1; END f;
        """)
        with pytest.raises(EvalError):
            eng.call("f")


class TestDeterminism:
    def test_compilation_is_deterministic(self):
        src = """
        CONSTANT st = {a, b, c}
        VARIABLE s IN st
        VARIABLE n IN 0 TO 7
        ON f()
          IF s = a AND n < 3 THEN n <- n + 1;
          IF s = b OR n = 7 THEN s <- c;
        END f;
        """
        cp1 = compile_program(src)
        cp2 = compile_program(src)
        rb1, rb2 = cp1.rulebases["f"], cp2.rulebases["f"]
        assert (rb1.table == rb2.table).all()
        assert rb1.width == rb2.width
        assert [repr(f) for f in rb1.analysis.features] == \
            [repr(f) for f in rb2.analysis.features]

    def test_ruleset_compilation_stable_across_params(self):
        from repro.routing.rulesets import compile_ruleset
        a = compile_ruleset("route_c", {"d": 5, "a": 2})
        b = compile_ruleset("route_c", {"d": 5, "a": 2})
        assert a.total_table_bits == b.total_table_bits

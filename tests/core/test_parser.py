"""Unit tests for the DSL parser."""

import pytest

from repro.core.dsl import ParseError, parse
from repro.core.dsl import nodes as N

ROUTE_C_EXCERPT = """
-- excerpt of ROUTE_C state update, paper Figure 4
CONSTANT fault_states = {safe, faulty, ounsafe, sunsafe, lfault}
CONSTANT dirs = 4
VARIABLE number_unsafe IN 0 TO dirs
VARIABLE number_faulty IN 0 TO dirs
VARIABLE state IN fault_states
VARIABLE neighb_state(0 TO dirs - 1) IN fault_states
INPUT new_state(0 TO dirs - 1) IN fault_states
EVENT send_newmessage(0 TO dirs - 1, fault_states)

ON update_state(dir IN 0 TO dirs - 1)
  IF new_state(dir) IN {faulty, lfault} AND number_faulty = 0
  THEN neighb_state(dir) <- new_state(dir),
       number_faulty <- number_faulty + 1,
       number_unsafe <- number_unsafe + 1;
  IF new_state(dir) IN {sunsafe, ounsafe} AND state = safe AND number_unsafe = 2
  THEN state <- ounsafe,
       number_unsafe <- number_unsafe + 1,
       FORALL i IN dirs: !send_newmessage(i, ounsafe),
       neighb_state(dir) <- new_state(dir);
END update_state;
"""


class TestDeclarations:
    def test_constant_enum(self):
        prog = parse("CONSTANT states = {safe, faulty}")
        decl = prog.decls[0]
        assert isinstance(decl, N.ConstDecl)
        assert isinstance(decl.value, N.EnumType)
        assert decl.value.symbols == ("safe", "faulty")

    def test_constant_number(self):
        prog = parse("CONSTANT dirs = 4")
        assert isinstance(prog.decls[0].value, N.Num)

    def test_constant_expression(self):
        prog = parse("CONSTANT n = 2 * 8 + 1")
        assert isinstance(prog.decls[0].value, N.BinOp)

    def test_scalar_variable(self):
        prog = parse("VARIABLE x IN 0 TO 7")
        decl = prog.decls[0]
        assert isinstance(decl, N.VarDecl)
        assert decl.indices == ()
        assert isinstance(decl.type, N.RangeType)

    def test_array_variable(self):
        prog = parse("VARIABLE q(0 TO 3, 0 TO 1) IN 0 TO 255")
        decl = prog.decls[0]
        assert len(decl.indices) == 2

    def test_variable_with_init(self):
        prog = parse("VARIABLE x IN 0 TO 7 INIT 3")
        assert isinstance(prog.decls[0].init, N.Num)

    def test_input_declaration(self):
        prog = parse("INPUT outchan(0 TO 3) IN {free, busy}")
        decl = prog.decls[0]
        assert isinstance(decl, N.InputDecl)

    def test_function_with_fcfb(self):
        prog = parse("FUNCTION minimal(0 TO 15, 0 TO 15) IN SET OF 0 TO 3 "
                     'FCFB "mesh distance computation"')
        decl = prog.decls[0]
        assert isinstance(decl, N.FunctionDecl)
        assert decl.fcfb == "mesh distance computation"
        assert isinstance(decl.type, N.SetOfType)

    def test_event_declaration(self):
        prog = parse("EVENT send(0 TO 3, {safe, faulty})")
        decl = prog.decls[0]
        assert isinstance(decl, N.EventDecl)
        assert len(decl.arg_types) == 2

    def test_set_of_named_type(self):
        prog = parse("CONSTANT st = {a, b}\nVARIABLE s IN SET OF st")
        decl = prog.decls[1]
        assert isinstance(decl.type, N.SetOfType)
        assert isinstance(decl.type.base, N.NamedType)

    def test_union_type(self):
        prog = parse("VARIABLE v IN 0 TO 3 UNION {none}")
        assert isinstance(prog.decls[0].type, N.UnionType)


class TestRules:
    def test_simple_return_rule(self):
        prog = parse("""
        INPUT xpos IN 0 TO 3
        INPUT xdes IN 0 TO 3
        ON decide() RETURNS {east, west}
          IF xpos < xdes THEN RETURN(east);
          IF xpos > xdes THEN RETURN(west);
        END decide;
        """)
        rb = prog.rulebases[0]
        assert rb.name == "decide"
        assert len(rb.rules) == 2
        assert isinstance(rb.rules[0].premise, N.Compare)
        assert isinstance(rb.rules[0].conclusion[0], N.Return)

    def test_route_c_excerpt_parses(self):
        prog = parse(ROUTE_C_EXCERPT)
        rb = prog.rulebases[0]
        assert rb.name == "update_state"
        assert len(rb.rules) == 2
        second = rb.rules[1]
        kinds = [type(c).__name__ for c in second.conclusion]
        assert kinds == ["Assign", "Assign", "ForallCmd", "Assign"]

    def test_forall_command_single_body(self):
        prog = parse(ROUTE_C_EXCERPT)
        fc = prog.rulebases[0].rules[1].conclusion[2]
        assert isinstance(fc, N.ForallCmd)
        assert fc.var == "i"
        assert len(fc.body) == 1
        assert isinstance(fc.body[0], N.Emit)

    def test_forall_command_grouped_body(self):
        prog = parse("""
        CONSTANT dirs = 4
        VARIABLE a(0 TO 3) IN 0 TO 1
        EVENT ping(0 TO 3)
        ON go()
          IF 1 = 1 THEN FORALL i IN dirs: (a(i) <- 1, !ping(i));
        END go;
        """)
        fc = prog.rulebases[0].rules[0].conclusion[0]
        assert isinstance(fc, N.ForallCmd)
        assert len(fc.body) == 2

    def test_quantified_premise_swallows_and_chain(self):
        # paper's NARA rule: the EXISTS body extends across AND
        prog = parse("""
        CONSTANT dirs = 4
        INPUT outchan(0 TO 3) IN {free, busy}
        ON pick() RETURNS 0 TO 3
          IF EXISTS i IN dirs: outchan(i) = free AND i > 0
          THEN RETURN(1);
        END pick;
        """)
        prem = prog.rulebases[0].rules[0].premise
        assert isinstance(prem, N.Quant)
        assert isinstance(prem.body, N.And)

    def test_nested_quantifiers(self):
        prog = parse("""
        CONSTANT dirs = 4
        INPUT q(0 TO 3) IN 0 TO 15
        ON pick() RETURNS 0 TO 3
          IF EXISTS i IN dirs: (FORALL j IN dirs: q(i) <= q(j))
          THEN RETURN(0);
        END pick;
        """)
        prem = prog.rulebases[0].rules[0].premise
        assert prem.kind == "EXISTS"
        assert isinstance(prem.body, N.Quant)
        assert prem.body.kind == "FORALL"

    def test_subbase(self):
        prog = parse("""
        SUBBASE double(x IN 0 TO 7) RETURNS 0 TO 14
          IF x >= 0 THEN RETURN(x + x);
        END double;
        """)
        assert prog.subbases[0].name == "double"
        assert prog.subbases[0].returns is not None

    def test_membership_of_set_literal(self):
        prog = parse("""
        CONSTANT st = {safe, bad}
        VARIABLE s IN st
        ON f()
          IF s IN {bad} THEN s <- safe;
        END f;
        """)
        prem = prog.rulebases[0].rules[0].premise
        assert isinstance(prem, N.InSet)

    def test_parenthesized_bool_in_expression_position(self):
        prog = parse("""
        VARIABLE x IN 0 TO 3
        ON f()
          IF (x = 1 OR x = 2) AND x < 3 THEN x <- 0;
        END f;
        """)
        prem = prog.rulebases[0].rules[0].premise
        assert isinstance(prem, N.And)
        assert isinstance(prem.terms[0], N.Or)


class TestParseErrors:
    def test_end_name_mismatch(self):
        with pytest.raises(ParseError):
            parse("ON f() IF 1 = 1 THEN RETURN(1); END g;")

    def test_missing_then(self):
        with pytest.raises(ParseError):
            parse("ON f() IF 1 = 1 RETURN(1); END f;")

    def test_missing_semicolon_after_rule(self):
        with pytest.raises(ParseError):
            parse("VARIABLE x IN 0 TO 1\nON f() IF x = 1 THEN x <- 0 END f;")

    def test_garbage_toplevel(self):
        with pytest.raises(ParseError):
            parse("HELLO world")

    def test_error_has_line_number(self):
        with pytest.raises(ParseError) as exc:
            parse("CONSTANT a = 1\nON f( IF")
        assert exc.value.line == 2

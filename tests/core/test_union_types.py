"""End-to-end tests for UNION domains (paper: "the union of these two")
and SET-typed registers flowing through compile + both interpreters."""

import pytest

from repro.core import RuleEngine

UNION_SRC = """
-- a register that is either a direction index or the symbol 'none'
CONSTANT dirs = 4
VARIABLE last_dir IN 0 TO 3 UNION {none} INIT none
VARIABLE count IN 0 TO 7
ON took(d IN 0 TO 3)
  IF last_dir = none THEN last_dir <- d, count <- 1;
  IF NOT last_dir = none AND last_dir = d THEN count <- count + 1;
  IF NOT last_dir = none AND NOT last_dir = d THEN last_dir <- d, count <- 1;
END took;
"""


@pytest.fixture(params=["table", "ast"])
def mode(request):
    return request.param


class TestUnionDomains:
    def test_initial_symbol_value(self, mode):
        eng = RuleEngine(UNION_SRC, mode=mode)
        assert eng.registers.read("last_dir") == "none"

    def test_symbol_to_int_transition(self, mode):
        eng = RuleEngine(UNION_SRC, mode=mode)
        eng.call("took", 2)
        assert eng.registers.read("last_dir") == 2
        assert eng.registers.read("count") == 1

    def test_repeat_counting(self, mode):
        eng = RuleEngine(UNION_SRC, mode=mode)
        for _ in range(3):
            eng.call("took", 1)
        assert eng.registers.read("count") == 3
        eng.call("took", 3)
        assert eng.registers.read("last_dir") == 3
        assert eng.registers.read("count") == 1

    def test_union_register_width(self):
        eng = RuleEngine(UNION_SRC)
        var = eng.analyzed.variables["last_dir"]
        assert var.domain.size == 5
        assert var.total_bits == 3

    def test_table_ast_equivalent_over_sequences(self):
        table = RuleEngine(UNION_SRC, mode="table")
        ast = RuleEngine(UNION_SRC, mode="ast")
        import itertools
        for seq in itertools.product(range(4), repeat=3):
            for eng in (table, ast):
                eng.reset_state()
                for d in seq:
                    eng.call("took", d)
            assert table.registers.snapshot() == ast.registers.snapshot(), seq


SET_SRC = """
CONSTANT dirs = 4
VARIABLE seen IN SET OF 0 TO 3
VARIABLE done IN bool
ON mark(d IN 0 TO 3)
  IF NOT d IN seen AND NOT seen UNION {d} = {0, 1, 2, 3}
  THEN seen <- seen UNION {d};
  IF NOT d IN seen AND seen UNION {d} = {0, 1, 2, 3}
  THEN seen <- seen UNION {d}, done <- true;
END mark;
"""


class TestSetRegisters:
    def test_accumulation_and_completion(self, mode):
        eng = RuleEngine(SET_SRC, mode=mode)
        for d in (2, 0, 3):
            eng.call("mark", d)
        assert eng.registers.read("seen") == frozenset({0, 2, 3})
        assert eng.registers.read("done") == "false"
        eng.call("mark", 1)
        assert eng.registers.read("seen") == frozenset({0, 1, 2, 3})
        assert eng.registers.read("done") == "true"

    def test_duplicate_marks_ignored(self, mode):
        eng = RuleEngine(SET_SRC, mode=mode)
        eng.call("mark", 2)
        res = eng.call("mark", 2)
        assert res.fired_source_rule is None

"""Tests for the hardware-cost reporting layer."""

import pytest

from repro.experiments import PAPER_TABLE1
from repro.hwcost import (cost_report, render_registers,
                          render_table1, render_table2)


@pytest.fixture(scope="module")
def nafta_report():
    return cost_report("nafta")


@pytest.fixture(scope="module")
def route_c_report():
    return cost_report("route_c", {"d": 6, "a": 2})


class TestCostReport:
    def test_rows_sorted_by_size(self, nafta_report):
        sizes = [r.size_bits for r in nafta_report.rows]
        assert sizes == sorted(sizes, reverse=True)

    def test_row_inventory_matches_paper(self, nafta_report):
        assert {r.name for r in nafta_report.rows} == set(PAPER_TABLE1)

    def test_totals_consistent(self, nafta_report):
        assert nafta_report.total_table_bits == sum(
            r.size_bits for r in nafta_report.rows)
        assert (nafta_report.nft_table_bits
                + nafta_report.ft_only_table_bits
                == nafta_report.total_table_bits)

    def test_ft_fraction_bounds(self, nafta_report, route_c_report):
        for rep in (nafta_report, route_c_report):
            assert 0.0 < rep.ft_overhead_fraction() < 1.0

    def test_register_ft_classification(self, route_c_report):
        regs = {r.name: r for r in route_c_report.registers}
        assert regs["state"].ft_only          # only update_state touches it
        assert not regs["adapt_reg"].ft_only  # the nft adaptivity base writes

    def test_materialize_false_still_reports(self):
        rep = cost_report("route_c_merged", {"d": 8}, materialize=False)
        assert rep.total_table_bits > 0

    def test_fcfb_text(self, nafta_report):
        row = {r.name: r for r in nafta_report.rows}["tell_my_neighbors"]
        assert row.fcfb_text() == "no FCFB needed"
        inc = {r.name: r for r in nafta_report.rows}["incoming_message"]
        assert "magnitude comparator" in inc.fcfb_text()


class TestFcfbPool:
    def test_pool_is_per_kind_max(self, nafta_report):
        pool = nafta_report.fcfb_pool()
        for row in nafta_report.rows:
            for kind, n in row.fcfbs.items():
                assert pool[kind] >= n

    def test_pool_smaller_than_unshared(self, nafta_report):
        assert (sum(nafta_report.fcfb_pool().values())
                < nafta_report.fcfb_unshared_total())

    def test_pool_rendered(self, nafta_report):
        from repro.hwcost import render_table1
        assert "shared FCFB pool" in render_table1(nafta_report)


class TestRendering:
    def test_table1_mentions_paper_sizes(self, nafta_report):
        text = render_table1(nafta_report)
        assert "1024 x 8" in text       # the paper's incoming_message
        assert "ft share" in text

    def test_table2_quotes_paper_total(self, route_c_report):
        text = render_table2(route_c_report)
        assert "2960" in text
        assert "decide_dir" in text

    def test_register_rendering(self, nafta_report):
        text = render_registers(nafta_report)
        assert "usable_set" in text
        assert "only for fault tolerance" in text

    def test_table2_nondefault_params_no_paper_note(self):
        rep = cost_report("route_c", {"d": 4, "a": 1})
        text = render_table2(rep)
        assert "2960" not in text  # the quote applies to d=6, a=2 only

"""The README's code blocks must run verbatim (documentation that
executes)."""


def test_simulation_quickstart_snippet():
    from repro.sim import Mesh2D, Network, TrafficGenerator, FaultSchedule
    from repro.routing import NaftaRouting

    topo = Mesh2D(8, 8)
    net = Network(topo, NaftaRouting())
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.15,
                                        message_length=4, seed=42))
    net.schedule_faults(FaultSchedule.static(nodes=[topo.node_at(3, 3)]))
    net.run(1000)  # shortened from the README's 3000 for test speed
    summary = net.stats.summary(topo.n_nodes)
    assert summary["messages_delivered"] > 0
    assert summary["max_decision_steps"] <= 3


def test_rule_engine_snippet():
    from repro.core import RuleEngine

    engine = RuleEngine("""
    CONSTANT dirs = {east, west, north, south}
    INPUT xpos IN 0 TO 7
    INPUT xdes IN 0 TO 7
    ON decide() RETURNS dirs
      IF xpos < xdes THEN RETURN(east);
      IF xpos > xdes THEN RETURN(west);
    END decide;
    """)
    engine.set_inputs({"xpos": 2, "xdes": 5})
    assert engine.decide("decide") == "east"
    description = engine.base("decide").describe()
    assert "decide" in description and "bit" in description

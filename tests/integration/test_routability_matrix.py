"""Exhaustive routability matrices: for whole fault patterns, every
source/destination pair is classified and must land in exactly one of
the legitimate outcomes — delivered (minimal or detoured), refused at
the source (deactivated endpoint / disconnection), or declared
unroutable in flight.  Nothing may be silently lost.

This is the strongest end-to-end correctness evidence for the NAFTA and
ROUTE_C reconstructions short of a proof: it exercises every pair on
the topology, not a traffic sample.
"""

import pytest

from repro.routing import NaftaRouting, RouteCRouting
from repro.routing.mesh_state import MeshFaultMap
from repro.sim import (FaultSchedule, FaultState, Hypercube, Mesh2D,
                       Network)


def classify_mesh_pairs(fault_coords, fault_links=(), size=6):
    topo = Mesh2D(size, size)
    sched = FaultSchedule.static(
        nodes=[topo.node_at(*c) for c in fault_coords],
        links=[(topo.node_at(*a), topo.node_at(*b)) for a, b in fault_links])
    faults = FaultState(topo)
    for ev in sched.events:
        faults.apply(ev)
    fmap = MeshFaultMap(topo, faults)
    outcomes = {"delivered_minimal": 0, "delivered_detour": 0,
                "refused": 0, "stuck": 0, "lost": 0}
    pairs = 0
    for src in topo.nodes():
        for dst in topo.nodes():
            if src == dst:
                continue
            if not (faults.node_ok(src) and faults.node_ok(dst)):
                continue
            pairs += 1
            net = Network(Mesh2D(size, size), NaftaRouting())
            net.schedule_faults(sched)
            m = net.offer(src, dst, 2)
            if m is None:
                outcomes["refused"] += 1
                # refusals must be explainable: a blocked endpoint or a
                # physical disconnection
                assert (fmap.blocked(src) or fmap.blocked(dst)
                        or not faults.connected(src, dst)), (src, dst)
                continue
            net.run_until_drained()
            if m.delivered is not None:
                if m.hops == topo.distance(src, dst) + 1:
                    outcomes["delivered_minimal"] += 1
                else:
                    outcomes["delivered_detour"] += 1
            elif m.header.fields.get("stuck"):
                outcomes["stuck"] += 1
            else:
                outcomes["lost"] += 1
    return pairs, outcomes


class TestNaftaMatrix:
    @pytest.mark.parametrize("fault_coords,fault_links", [
        ([(2, 2)], []),
        ([(2, 2), (3, 3)], []),
        ([], [((2, 2), (3, 2)), ((2, 3), (3, 3))]),   # a wall segment
        ([(0, 3)], [((4, 4), (4, 5))]),
    ])
    def test_every_pair_accounted(self, fault_coords, fault_links):
        pairs, out = classify_mesh_pairs(fault_coords, fault_links)
        total = sum(out.values())
        assert total == pairs
        assert out["lost"] == 0                      # nothing vanishes
        delivered = out["delivered_minimal"] + out["delivered_detour"]
        assert delivered / pairs > 0.85              # vast majority served
        # minimal routing dominates when faults are few (Condition 2)
        assert out["delivered_minimal"] > out["delivered_detour"]


class TestRouteCMatrix:
    @pytest.mark.parametrize("dead", [[5], [5, 10], [1, 2, 4]])
    def test_every_pair_accounted(self, dead):
        topo = Hypercube(4)
        outcomes = {"delivered": 0, "minimal": 0, "refused": 0,
                    "stuck": 0, "lost": 0}
        pairs = 0
        for src in range(16):
            for dst in range(16):
                if src == dst or src in dead or dst in dead:
                    continue
                pairs += 1
                net = Network(Hypercube(4), RouteCRouting())
                net.schedule_faults(FaultSchedule.static(nodes=dead))
                m = net.offer(src, dst, 2)
                if m is None:
                    outcomes["refused"] += 1
                    continue
                net.run_until_drained()
                if m.delivered is not None:
                    outcomes["delivered"] += 1
                    if m.hops == topo.distance(src, dst) + 1:
                        outcomes["minimal"] += 1
                elif m.header.fields.get("stuck"):
                    outcomes["stuck"] += 1
                else:
                    outcomes["lost"] += 1
        assert outcomes["lost"] == 0
        assert outcomes["refused"] == 0   # healthy cube pairs all accepted
        assert outcomes["delivered"] == pairs - outcomes["stuck"]
        # with <= 3 faults on a 4-cube everything is deliverable
        assert outcomes["stuck"] == 0
        # and most pairs still travel minimally
        assert outcomes["minimal"] / pairs > 0.8

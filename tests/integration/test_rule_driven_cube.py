"""Integration: the ROUTE_C rule program driving hypercube routers,
differential against the native Python ROUTE_C."""

from repro.routing import RouteCRouting, RuleDrivenRouteC
from repro.sim import (FaultSchedule, Hypercube, Network, SimConfig,
                       TrafficGenerator)


class TestRuleDrivenRouteC:
    def test_fault_free_minimal_two_steps(self):
        net = Network(Hypercube(3), RuleDrivenRouteC())
        m = net.offer(0, 0b111, 3)
        net.run_until_drained()
        assert m.hops == 3 + 1
        assert net.stats.max_decision_steps == 2
        assert net.stats.mean_decision_steps == 2.0

    def test_detour_climbs_vc_class(self):
        net = Network(Hypercube(3), RuleDrivenRouteC(),
                      config=SimConfig(trace_paths=True))
        net.schedule_faults(FaultSchedule.static(nodes=[1, 2]))
        m = net.offer(0, 3, 3)
        net.run_until_drained()
        assert m.delivered is not None
        assert m.header.misrouted
        assert m.header.fields.get("vc_class", 0) >= 1
        assert not {1, 2} & set(m.header.fields["trace"])

    def test_engine_states_match_native_map(self):
        from repro.routing.route_c import CubeStateMap
        topo = Hypercube(4)
        algo = RuleDrivenRouteC()
        net = Network(topo, algo)
        net.schedule_faults(FaultSchedule.static(nodes=[1, 2]))
        native = CubeStateMap(topo, net.faults)
        for node in topo.nodes():
            if not net.faults.node_ok(node):
                continue
            assert algo.node_state(node) == native.state(node), node

    def test_two_phase_order_preserved(self):
        net = Network(Hypercube(4), RuleDrivenRouteC(),
                      config=SimConfig(trace_paths=True))
        m = net.offer(0b0011, 0b1100, 2)
        net.run_until_drained()
        trace = m.header.fields["trace"]
        phase = 0
        for a, b in zip(trace, trace[1:]):
            if b > a:
                assert phase == 0  # up-flips first
            else:
                phase = 1

    def test_differential_hops_fault_free(self):
        pairs = [(s, d) for s in range(8) for d in range(8) if s != d]
        hops = {}
        for algo in (RouteCRouting(), RuleDrivenRouteC()):
            net = Network(Hypercube(3), algo)
            msgs = [net.offer(s, d, 2) for s, d in pairs]
            net.run_until_drained()
            hops[algo.name] = [m.hops for m in msgs]
        assert hops["route_c"] == hops["route_c_rules"]

    def test_same_delivery_set_under_faults(self):
        pairs = [(s, d) for s in range(8) for d in range(8) if s != d]
        delivered = {}
        for algo_cls in (RouteCRouting, RuleDrivenRouteC):
            ok = set()
            for s, d in pairs:
                net = Network(Hypercube(3), algo_cls())
                net.schedule_faults(FaultSchedule.static(nodes=[6]))
                m = net.offer(s, d, 2)
                if m is None:
                    continue
                net.run_until_drained()
                if m.delivered is not None:
                    ok.add((s, d))
            delivered[algo_cls.__name__] = ok
        assert delivered["RouteCRouting"] == delivered["RuleDrivenRouteC"]

    def test_traffic_with_fault_completes(self):
        net = Network(Hypercube(3), RuleDrivenRouteC())
        net.schedule_faults(FaultSchedule.static(nodes=[5]))
        net.attach_traffic(TrafficGenerator(net.topology, "uniform",
                                            load=0.1, message_length=3,
                                            seed=4))
        net.run(500)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()

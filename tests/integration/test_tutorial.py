"""The tutorial (docs/TUTORIAL.md) must actually work: this test runs
its west-first walk-through end to end — compile, verify, decide,
simulate, deadlock-check."""

import pytest

from repro.analysis import check_condition1, check_deadlock_free
from repro.core import RuleEngine
from repro.core.compiler import compile_program, verify_equivalence
from repro.routing.base import RouteDecision, RoutingAlgorithm
from repro.sim import Mesh2D, Network, TrafficGenerator

WESTFIRST = """
CONSTANT outs = {east, west, north, south, deliver}

INPUT xpos IN 0 TO xsize - 1
INPUT ypos IN 0 TO ysize - 1
INPUT xdes IN 0 TO xsize - 1
INPUT ydes IN 0 TO ysize - 1
INPUT usable(0 TO 3) IN bool
INPUT load(0 TO 3) IN 0 TO 15

ON decide() RETURNS outs
  IF xpos = xdes AND ypos = ydes
  THEN RETURN(deliver);
  IF xpos > xdes AND usable(1) = true
  THEN RETURN(west);
  IF xpos < xdes AND ypos = ydes AND usable(0) = true THEN RETURN(east);
  IF xpos = xdes AND ypos < ydes AND usable(2) = true THEN RETURN(north);
  IF xpos = xdes AND ypos > ydes AND usable(3) = true THEN RETURN(south);
  IF xpos < xdes AND ypos < ydes AND usable(0) = true
     AND (usable(2) = false OR load(0) <= load(2)) THEN RETURN(east);
  IF xpos < xdes AND ypos < ydes AND usable(2) = true THEN RETURN(north);
  IF xpos < xdes AND ypos > ydes AND usable(0) = true
     AND (usable(3) = false OR load(0) <= load(3)) THEN RETURN(east);
  IF xpos < xdes AND ypos > ydes AND usable(3) = true THEN RETURN(south);
END decide;
"""

PORT = {"east": 0, "west": 1, "north": 2, "south": 3}


class WestFirst(RoutingAlgorithm):
    name = "westfirst"
    n_vcs = 1

    def __init__(self, compiled):
        self.engine = RuleEngine(compiled)

    def check_topology(self, topology):
        pass

    def route(self, router, header, in_port, in_vc):
        topo = router.topology
        x, y = topo.coords(router.node)
        dx, dy = topo.coords(header.dst)
        self.engine.set_inputs({
            "xpos": x, "ypos": y, "xdes": dx, "ydes": dy,
            "usable": {(i,): ("true" if router.port_alive(i) else "false")
                       for i in range(4)},
            "load": {(i,): min(15, router.output_load(i)
                               if i in router.ports else 15)
                     for i in range(4)},
        })
        res = self.engine.call("decide")
        if not res.has_return:
            return RouteDecision(candidates=[])
        if res.returned == "deliver":
            return RouteDecision.delivery()
        return RouteDecision(candidates=[(PORT[res.returned], 0)])


@pytest.fixture(scope="module")
def compiled():
    return compile_program(WESTFIRST, params={"xsize": 8, "ysize": 8})


class TestTutorialFlow:
    def test_step2_compiles_with_cost(self, compiled):
        rb = compiled.rulebases["decide"]
        assert rb.size_bits > 0
        assert "magnitude comparator" in rb.fcfb_kinds

    def test_step3_verifies(self, compiled):
        report = verify_equivalence(compiled, "decide", samples=500)
        assert report.ok

    def test_step4_decision(self, compiled):
        eng = RuleEngine(compiled)
        eng.set_inputs({
            "xpos": 2, "ypos": 5, "xdes": 6, "ydes": 1,
            "usable": {(i,): "true" for i in range(4)},
            "load": {(0,): 7, (1,): 0, (2,): 0, (3,): 2},
        })
        assert eng.decide("decide") == "south"
        assert eng.steps == 1

    def test_step5_network_run(self, compiled):
        net = Network(Mesh2D(8, 8), WestFirst(compiled))
        net.attach_traffic(TrafficGenerator(net.topology, "uniform",
                                            load=0.15, message_length=3,
                                            seed=17))
        net.run(800)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()

    def test_step6_deadlock_free(self, compiled):
        result = check_deadlock_free(Mesh2D(6, 6), WestFirst(compiled))
        assert result.acyclic, result.cycle

    def test_step7_condition1_fails_as_documented(self, compiled):
        net = Network(Mesh2D(6, 6), WestFirst(compiled))
        topo = net.topology
        # a north-west destination: west-first offers only one path
        res = check_condition1(net, [(topo.node_at(4, 0),
                                      topo.node_at(0, 4))])
        assert not res.satisfied

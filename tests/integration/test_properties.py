"""Randomized end-to-end properties of the whole stack (hypothesis).

Invariants, for arbitrary small meshes/cubes, fault patterns and
traffic: no deadlock, no buffer overflow, flit conservation, every
accepted message either delivered at its destination or accounted as
stuck, and path lengths bounded by the livelock guard.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.routing import NaftaRouting, RouteCRouting
from repro.sim import (FaultSchedule, Hypercube, Mesh2D, Network, SimConfig,
                       TrafficGenerator, random_link_faults)


def run_mesh_case(width, height, n_faults, load, seed, buffer_depth):
    topo = Mesh2D(width, height)
    rng = np.random.default_rng(seed)
    links = []
    if n_faults:
        try:
            links = random_link_faults(topo, n_faults, rng, max_tries=400)
        except RuntimeError:
            links = []
    net = Network(topo, NaftaRouting(),
                  config=SimConfig(buffer_depth=buffer_depth))
    if links:
        net.schedule_faults(FaultSchedule.static(links=links))
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=load,
                                        message_length=3, seed=seed + 1))
    net.run(400)
    net.traffic = None
    net.run_until_drained(max_cycles=100_000)
    return net


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(width=st.integers(3, 6), height=st.integers(3, 6),
       n_faults=st.integers(0, 4), load=st.sampled_from([0.05, 0.15, 0.3]),
       seed=st.integers(0, 10_000), buffer_depth=st.integers(1, 4))
def test_mesh_invariants(width, height, n_faults, load, seed, buffer_depth):
    net = run_mesh_case(width, height, n_faults, load, seed, buffer_depth)
    # drained: nothing left anywhere
    assert net.in_flight() == 0
    # accounting closes: every accepted message delivered or stuck
    accepted = len(net.messages)
    delivered = net.stats.messages_delivered
    stuck = net.stats.messages_stuck
    assert delivered + stuck == accepted
    # flit conservation: delivered flits == flits of delivered messages
    delivered_flits = sum(m.header.length for m in net.messages.values()
                          if m.delivered is not None)
    assert net.stats.flits_delivered == delivered_flits
    # livelock guard bounds every completed path
    limit = NaftaRouting().livelock_factor * (width + height) + 16 + 2
    for m in net.messages.values():
        assert m.hops <= limit
    # fault-free runs never strand anything
    if n_faults == 0:
        assert stuck == 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(dim=st.integers(2, 4), n_faults=st.integers(0, 2),
       seed=st.integers(0, 10_000))
def test_cube_invariants(dim, n_faults, seed):
    topo = Hypercube(dim)
    rng = np.random.default_rng(seed)
    nodes = []
    while len(nodes) < min(n_faults, topo.n_nodes - 2):
        cand = int(rng.integers(0, topo.n_nodes))
        if cand not in nodes:
            nodes.append(cand)
    net = Network(topo, RouteCRouting())
    if nodes:
        net.schedule_faults(FaultSchedule.static(nodes=nodes))
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.1,
                                        message_length=3, seed=seed + 1))
    net.run(300)
    net.traffic = None
    net.run_until_drained(max_cycles=100_000)
    assert net.in_flight() == 0
    assert (net.stats.messages_delivered + net.stats.messages_stuck
            == len(net.messages))
    # ROUTE_C's channel classes never exceed the 4 detour VCs
    for m in net.messages.values():
        assert int(m.header.fields.get("vc_class", 0)) <= 4
    # every decision costs exactly two interpretation steps
    if net.stats.decisions:
        assert net.stats.mean_decision_steps == 2.0


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_harsh_dynamic_faults_never_wedge(seed):
    """Dynamic faults in 'harsh' mode rip up worms; the network must
    keep flowing and account every message as delivered, dropped or
    stuck."""
    topo = Mesh2D(5, 5)
    rng = np.random.default_rng(seed)
    net = Network(topo, NaftaRouting(),
                  config=SimConfig(fault_mode="harsh"))
    links = random_link_faults(topo, 2, rng)
    sched = FaultSchedule()
    for i, (a, b) in enumerate(links):
        sched.add_link_fault(150 + 40 * i, a, b)
    net.fault_schedule = sched
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.15,
                                        message_length=4, seed=seed + 2))
    net.run(500)
    net.traffic = None
    net.run_until_drained(max_cycles=100_000)
    assert net.in_flight() == 0
    dropped = sum(1 for m in net.messages.values()
                  if m.dropped and m.delivered is None)
    delivered = net.stats.messages_delivered
    assert delivered + dropped == len(net.messages)

"""Integration: routers driven by the actual compiled rule machine
(the full Figure-3 architecture), differentially checked against the
native Python NAFTA."""

from repro.routing import NaftaRouting, RuleDrivenNafta
from repro.sim import (FaultSchedule, Mesh2D, Network, SimConfig,
                       TrafficGenerator)


def drained_net(algo, topo=None, fault_nodes=(), **cfg):
    topo = topo or Mesh2D(5, 5)
    net = Network(topo, algo, config=SimConfig(**cfg))
    if fault_nodes:
        net.schedule_faults(FaultSchedule.static(
            nodes=[topo.node_at(*c) for c in fault_nodes]))
    return net


class TestRuleDrivenBasics:
    def test_fault_free_delivery_minimal(self):
        net = drained_net(RuleDrivenNafta())
        m = net.offer(0, 24, 3)
        net.run_until_drained()
        assert m.delivered is not None
        assert m.hops == net.topology.distance(0, 24) + 1
        assert net.stats.max_decision_steps == 1

    def test_detour_with_three_steps(self):
        topo = Mesh2D(5, 5)
        net = drained_net(RuleDrivenNafta(), topo, fault_nodes=[(2, 2)],
                          trace_paths=True)
        m = net.offer(topo.node_at(0, 2), topo.node_at(4, 2), 3)
        net.run_until_drained()
        assert m.delivered is not None
        assert m.header.misrouted
        assert net.stats.max_decision_steps == 3
        trace = {topo.coords(n) for n in m.header.fields["trace"]}
        assert (2, 2) not in trace

    def test_engine_state_tracks_deactivation(self):
        topo = Mesh2D(5, 5)
        algo = RuleDrivenNafta()
        net = drained_net(algo, topo, fault_nodes=[(1, 1), (2, 2)])
        # the diagonal pair deactivates (1,2) and (2,1) in the engines
        for coords in [(1, 2), (2, 1)]:
            node = topo.node_at(*coords)
            assert algo.engines[node].registers.read("mystate") == "deact"
        # healthy far nodes stay safe
        assert algo.engines[topo.node_at(4, 4)].registers.read(
            "mystate") == "safe"

    def test_engine_run_counters_match_native_map(self):
        from repro.routing.mesh_state import MeshFaultMap
        topo = Mesh2D(5, 5)
        algo = RuleDrivenNafta()
        net = drained_net(algo, topo, fault_nodes=[(2, 2)])
        fmap = MeshFaultMap(topo, net.faults)
        for node in topo.nodes():
            if not net.faults.node_ok(node):
                continue
            for dir_ in range(4):
                got = algo.engines[node].registers.read("runc", (dir_,))
                want = min(fmap.clear_run(node, dir_), algo._rmax)
                assert got == want, (topo.coords(node), dir_)

    def test_usable_sets_reflect_borders_and_faults(self):
        topo = Mesh2D(4, 4)
        algo = RuleDrivenNafta()
        net = drained_net(algo, topo, fault_nodes=[(1, 1)])
        # corner (0,0): only east(0) and north(2) exist; (1,1) faulty
        # does not remove them
        usable = algo.engines[topo.node_at(0, 0)].registers.read("usable_set")
        assert usable == frozenset({0, 2})
        # (1,0): north neighbour (1,1) is faulty -> north unusable
        usable = algo.engines[topo.node_at(1, 0)].registers.read("usable_set")
        assert 2 not in usable
        assert 0 in usable and 1 in usable

    def test_refuses_deactivated_destinations(self):
        topo = Mesh2D(5, 5)
        net = drained_net(RuleDrivenNafta(), topo,
                          fault_nodes=[(1, 1), (2, 2)])
        assert net.offer(0, topo.node_at(1, 2), 3) is None


class TestRuleDrivenDifferential:
    def test_matches_native_nafta_fault_free(self):
        pairs = [(s, d) for s in range(0, 25, 3) for d in (7, 18) if s != d]
        results = {}
        for algo in (NaftaRouting(), RuleDrivenNafta()):
            net = drained_net(algo)
            msgs = [net.offer(s, d, 3) for s, d in pairs]
            net.run_until_drained()
            results[algo.name] = [m.hops for m in msgs]
        assert results["nafta"] == results["nafta_rules"]

    def test_same_delivery_set_under_faults(self):
        topo = Mesh2D(5, 5)
        pairs = [(s, d) for s in range(25) for d in range(25)
                 if s != d and (s * 25 + d) % 11 == 0]
        delivered = {}
        for algo_cls in (NaftaRouting, RuleDrivenNafta):
            ok = set()
            for s, d in pairs:
                net = drained_net(algo_cls(), Mesh2D(5, 5),
                                  fault_nodes=[(2, 2)])
                m = net.offer(s, d, 2)
                if m is None:
                    continue
                net.run_until_drained()
                if m.delivered is not None:
                    ok.add((s, d))
            delivered[algo_cls.__name__] = ok
        assert delivered["NaftaRouting"] == delivered["RuleDrivenNafta"]

    def test_traffic_run_without_deadlock(self):
        topo = Mesh2D(5, 5)
        net = drained_net(RuleDrivenNafta(), topo, fault_nodes=[(2, 2)])
        net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.1,
                                            message_length=3, seed=4))
        net.run(600)
        net.traffic = None
        net.run_until_drained()
        assert not net.undelivered()
        assert net.stats.mean_decision_steps > 1.0  # ft paths were used

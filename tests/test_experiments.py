"""Tests for the experiments package (runners, harness, paper data)."""

from repro.experiments import (PAPER, PAPER_TABLE1, WorkloadSpec, fmt,
                               latency_vs_load, mesh_fault_sweep,
                               paper_table2_row, run_workload,
                               saturation_throughput, table)
from repro.sim import Mesh2D


class TestRunners:
    def test_run_workload_summary(self):
        spec = WorkloadSpec(topology=Mesh2D(4, 4), algorithm="xy",
                            load=0.05, cycles=300, warmup=50, seed=1)
        res = run_workload(spec)
        assert res["algorithm"] == "xy"
        assert res["messages_delivered"] > 0
        assert not res["deadlocked"]
        assert res["undelivered"] == 0

    def test_run_without_drain(self):
        spec = WorkloadSpec(topology=Mesh2D(4, 4), algorithm="xy",
                            load=0.2, cycles=200, warmup=50, seed=1)
        res = run_workload(spec, drain=False)
        assert res["cycles"] <= 200

    def test_latency_vs_load_monotone_points(self):
        points = latency_vs_load(lambda: Mesh2D(4, 4), "xy",
                                 [0.05, 0.15], cycles=400, warmup=100,
                                 seed=2)
        assert [p["load"] for p in points] == [0.05, 0.15]
        assert saturation_throughput(points) > 0.04

    def test_mesh_fault_sweep_counts(self):
        rows = mesh_fault_sweep("nafta", [0, 2], width=5, height=5,
                                load=0.08, cycles=400, warmup=100)
        assert [r["n_link_faults"] for r in rows] == [0, 2]
        assert rows[1]["n_faults"] == 2

    def test_cycles_per_step_passed_through(self):
        spec = WorkloadSpec(topology=Mesh2D(4, 4), algorithm="xy",
                            load=0.05, cycles=300, warmup=50, seed=1,
                            cycles_per_step=3)
        res = run_workload(spec)
        base = run_workload(WorkloadSpec(topology=Mesh2D(4, 4),
                                         algorithm="xy", load=0.05,
                                         cycles=300, warmup=50, seed=1))
        assert res["mean_latency"] > base["mean_latency"]


class TestHarness:
    def test_fmt(self):
        assert fmt(3) == "3"
        assert fmt(3.14159) == "3.142"
        assert fmt(31.4159) == "31.42"
        assert fmt(float("nan")) == "nan"
        assert fmt("x") == "x"

    def test_table_renders(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": float("nan")}]
        out = table(rows, [("a", "alpha"), ("b", "beta")], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "alpha" in lines[1]
        assert "nan" in lines[-1]

    def test_table_empty_rows(self):
        out = table([], [("a", "alpha")], title="T")
        assert "alpha" in out

    def test_save_report(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.experiments import save_report
        p = save_report("unit_test_report", "hello world")
        assert p.read_text().strip() == "hello world"
        assert "hello world" in capsys.readouterr().out


class TestPaperData:
    def test_table1_totals(self):
        total = sum(e * w for e, w, *_ in PAPER_TABLE1.values())
        # 1024*8 + 256*7 + 64*28 + 64*8 + 64*9 + 32*9 + 16*4 + 4*4
        # + 3*4 + 2*3 + 2*7
        assert total == 13264

    def test_table2_parametric_rows(self):
        e, w, _, _, nft = paper_table2_row("decide_vc", 6, 2)
        assert (e, w) == (24, 3)
        assert not nft
        e, w, _, _, nft = paper_table2_row("decide_dir", 6, 2)
        assert (e, w) == (512, 4)
        assert nft

    def test_register_formulas(self):
        assert PAPER["route_c_register_bits"](6) == 15 * 6 + 2 * 3 + 3
        assert PAPER["route_c_register_bits_nft"](6) == 54
        assert PAPER["merged_entries"](6) == 1024 * 64
        assert PAPER["merged_width"](6, 2) == 9

    def test_step_counts(self):
        assert PAPER["nafta_steps_worst"] == 3
        assert PAPER["route_c_steps"] == 2

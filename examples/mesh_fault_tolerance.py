"""Fault blocks and detours on a 2-D mesh, visualized.

Demonstrates NAFTA's distributed fault knowledge: an L-shaped fault
pattern is completed to a rectangular block (deactivating two healthy
nodes — the paper's Condition-3 concession), and a message crossing the
blocked row takes a clean detour around the block perimeter.

Run:  python examples/mesh_fault_tolerance.py
"""

from repro.routing import NaftaRouting
from repro.sim import FaultSchedule, Mesh2D, Network, SimConfig


def draw_mesh(topo, fmap, trace=()):
    """ASCII map: X faulty, o deactivated, * on the message path."""
    trace = set(trace)
    rows = []
    for y in range(topo.height - 1, -1, -1):
        cells = []
        for x in range(topo.width):
            n = topo.node_at(x, y)
            st = fmap.state(n)
            if st.faulty:
                c = "X"
            elif st.deactivated:
                c = "o"
            elif n in trace:
                c = "*"
            else:
                c = "."
            cells.append(c)
        rows.append(f"  y={y}  " + " ".join(cells))
    return "\n".join(rows)


def main() -> None:
    topo = Mesh2D(8, 8)
    net = Network(topo, NaftaRouting(), config=SimConfig(trace_paths=True))

    # an L-shaped fault pattern: three dead nodes
    faults = [(3, 3), (4, 4), (3, 5)]
    net.schedule_faults(FaultSchedule.static(
        nodes=[topo.node_at(*c) for c in faults]))

    fmap = net.algorithm.fault_map
    print("Fault pattern (X) and convex completion (o):")
    print(draw_mesh(topo, fmap))
    deact = [topo.coords(n) for n in fmap.blocked_nodes()
             if not fmap.state(n).faulty]
    print(f"\nhealthy nodes deactivated by the convex completion: {deact}")
    print("(the paper: 'concave fault patterns are completed to a convex "
          "shape\nexcluding the use of some non-faulty nodes, violating "
          "condition 3')\n")

    # a message that must cross the blocked rows
    src = topo.node_at(0, 4)
    dst = topo.node_at(7, 4)
    msg = net.offer(src, dst, length=4)
    assert msg is not None
    net.run_until_drained()

    trace = msg.header.fields["trace"]
    print(f"message {topo.coords(src)} -> {topo.coords(dst)}:")
    print(f"  delivered at cycle {msg.delivered}, "
          f"{msg.hops} hops (minimal would be "
          f"{topo.distance(src, dst) + 1}), "
          f"misrouted={msg.header.misrouted}")
    print(f"  path: {[topo.coords(n) for n in trace]}\n")
    print("Path around the block (*):")
    print(draw_mesh(topo, fmap, trace))

    # messages to deactivated nodes are refused at the source
    victim = topo.node_at(4, 3)
    refused = net.offer(0, victim, 4)
    print(f"\noffer to deactivated node {topo.coords(victim)}: "
          f"{'refused' if refused is None else 'accepted'} "
          f"(condition 3 traded for constant per-node state)")


if __name__ == "__main__":
    main()

"""Why the rule interpreter must be hardware-fast.

The paper (Section 4.3, citing [DLO97]) argues that software execution
of routing algorithms "would limit the network performance drastically"
and builds the ARON rule interpreter so that a decision costs one
wiring + 2 x FCFB + one RAM access.  This study sweeps the cost of one
interpretation step from 1 cycle (the hardware interpreter) up to 16
(a microcoded/software router) and shows what that does to latency.

Run:  python examples/decision_time_study.py
"""

from repro.core.interpreter import DelayModel
from repro.experiments import decision_time_sweep
from repro.sim import Mesh2D


def main() -> None:
    # the hardware delay model of the paper
    d = DelayModel()
    print("rule interpreter delay model "
          "(wiring + 2 x FCFB + RAM access, Section 4.3):")
    print(f"  one interpretation step: {d.step_ns():.1f} ns "
          f"= {d.step_cycles()} router cycle(s) at {d.cycle_ns:.0f} ns")
    print(f"  NAFTA worst case (3 steps): {d.decision_ns(3):.1f} ns")
    print(f"  ROUTE_C (2 steps): {d.decision_ns(2):.1f} ns")
    print(f"  pipelined (3 stages, clock = slowest stage "
          f"{d.pipeline_stage_ns():.1f} ns): "
          f"{d.pipelined_throughput_per_us():.0f} interpretations/us "
          f"sustained\n")

    print("network impact on an 8x8 mesh, NAFTA, uniform 0.15 "
          "flits/node/cycle:")
    print(f"  {'cycles/step':>12} {'mean latency':>14} {'p99':>8} "
          f"{'throughput':>12}")
    results = decision_time_sweep(
        lambda: Mesh2D(8, 8), "nafta",
        cycles_per_step_list=[1, 2, 4, 8, 16],
        load=0.15, cycles=2200, warmup=500, seed=5)
    base = results[0]["mean_latency"]
    for r in results:
        print(f"  {r['cycles_per_step']:>12} "
              f"{r['mean_latency']:>14.1f} "
              f"{r['p99_latency']:>8.0f} "
              f"{r['throughput_flits_node_cycle']:>12.3f}")
    slow = results[-1]["mean_latency"]
    print(f"\na 16x slower decision multiplies mean latency by "
          f"{slow / base:.1f} — the reason flexible routing needs the "
          f"rule-based hardware interpreter instead of software.")


if __name__ == "__main__":
    main()

"""ROUTE_C on a hypercube: safety states and detour channels.

Shows the distributed safety-state machine (safe / ounsafe / sunsafe /
lfault / faulty), the hops-so-far virtual-channel classes a detouring
worm climbs through, and the "totally unsafe" detection the paper
highlights ("This will only occur if more than n-1 nodes are faulty").

Run:  python examples/hypercube_route_c.py
"""

from repro.routing import RouteCRouting
from repro.routing.route_c import CubeStateMap
from repro.sim import FaultSchedule, FaultState, Hypercube, Network, SimConfig


def show_states(topo, sm):
    by_state: dict[str, list[str]] = {}
    for n in topo.nodes():
        by_state.setdefault(sm.state(n), []).append(format(n, "04b"))
    for state in ("faulty", "lfault", "sunsafe", "ounsafe", "safe"):
        if state in by_state:
            print(f"  {state:8s}: {' '.join(by_state[state])}")


def main() -> None:
    topo = Hypercube(4)

    print("=== safety states after 3 node faults ===")
    net = Network(topo, RouteCRouting(), config=SimConfig(trace_paths=True))
    net.schedule_faults(FaultSchedule.static(nodes=[0b0001, 0b0010, 0b0100]))
    sm = net.algorithm.state_map
    show_states(topo, sm)
    print(f"  totally unsafe: {sm.totally_unsafe()} "
          f"(needs > n-1 = 3 node faults)")

    # a message whose minimal paths all start at faulty neighbours
    msg = net.offer(0b0000, 0b0111, length=4)
    assert msg is not None
    net.run_until_drained()
    print("\nmessage 0000 -> 0111 (all three minimal first hops faulty):")
    print(f"  path: {[format(n, '04b') for n in msg.header.fields['trace']]}")
    print(f"  hops: {msg.hops} (minimal 4), "
          f"misrouted={msg.header.misrouted}, "
          f"highest VC class used: {msg.header.fields.get('vc_class', 0)} "
          f"(VC1..VC4 are the paper's four extra channels)")

    print("\n=== driving the cube toward 'totally unsafe' ===")
    for n_faults in (3, 4, 5):
        faults = FaultState(topo)
        for node in range(1, 1 + n_faults):
            faults.fail_node(node)
        sm = CubeStateMap(topo, faults)
        safe = sum(1 for n in topo.nodes() if sm.state(n) == "safe")
        print(f"  {n_faults} node faults: {safe} safe nodes left, "
              f"totally unsafe: {sm.totally_unsafe()}")

    print("\n=== traffic with 2 node faults ===")
    net = Network(topo, RouteCRouting())
    net.schedule_faults(FaultSchedule.static(nodes=[5, 10]))
    from repro.sim import TrafficGenerator
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.12,
                                        message_length=4, seed=8))
    net.set_warmup(400)
    net.run(2500)
    net.traffic = None
    net.run_until_drained()
    s = net.stats.summary(topo.n_nodes)
    print(f"  delivered {s['messages_delivered']} messages, "
          f"mean latency {s['mean_latency']:.1f}, "
          f"misrouted {s['misrouted_fraction']:.1%}, "
          f"always {s['mean_decision_steps']:.0f} interpretation steps "
          f"(paper: ROUTE_C always needs two)")


if __name__ == "__main__":
    main()

"""Author your own routing algorithm in the rule DSL.

This is the paper's core promise: "The description of a routing
algorithm is compact and intuitive allowing even non-experts to
understand and modify the network behavior."  We write a small
west-first routing algorithm (a turn-model classic) as rules, compile
it to a rule table + FCFB configuration, inspect the hardware cost, and
execute decisions through both the table-based (RBR) interpreter and
the reference AST interpreter.

Run:  python examples/custom_rule_algorithm.py
"""

from repro.core import RuleEngine
from repro.core.compiler import compile_program

WEST_FIRST = """
-- West-first routing on a 2-D mesh (Glass/Ni turn model):
-- a message first makes all its westward moves, then routes fully
-- adaptively among east/north/south.  Deadlock-free with 1 VC.

CONSTANT dirs = {east, west, north, south, deliver}

INPUT xpos IN 0 TO xsize - 1
INPUT ypos IN 0 TO ysize - 1
INPUT xdes IN 0 TO xsize - 1
INPUT ydes IN 0 TO ysize - 1
INPUT free(0 TO 3) IN bool        -- east, west, north, south
INPUT load(0 TO 3) IN 0 TO 15

ON decide() RETURNS dirs
  IF xpos = xdes AND ypos = ydes
  THEN RETURN(deliver);
  -- west first, unconditionally
  IF xpos > xdes
  THEN RETURN(west);
  -- then adaptive among the remaining minimal directions
  IF xpos < xdes AND ypos = ydes
  THEN RETURN(east);
  IF xpos = xdes AND ypos < ydes
  THEN RETURN(north);
  IF xpos = xdes AND ypos > ydes
  THEN RETURN(south);
  IF xpos < xdes AND ypos < ydes AND load(0) <= load(2)
  THEN RETURN(east);
  IF xpos < xdes AND ypos < ydes AND load(0) > load(2)
  THEN RETURN(north);
  IF xpos < xdes AND ypos > ydes AND load(0) <= load(3)
  THEN RETURN(east);
  IF xpos < xdes AND ypos > ydes AND load(0) > load(3)
  THEN RETURN(south);
END decide;
"""


def main() -> None:
    params = {"xsize": 8, "ysize": 8}

    # 1. compile: the off-line "Rule Compiler"
    compiled = compile_program(WEST_FIRST, params=params)
    rb = compiled.rulebases["decide"]
    print("compiled rule base:")
    print(" ", rb.describe())
    print(f"  table: {rb.n_entries} entries x {rb.width} bits "
          f"= {rb.size_bits} bits of rule-table RAM")
    print(f"  coverage: {rb.stats()}")

    # 2. execute through the hardware model (RBR-kernel table lookup)
    #    and the reference AST interpreter — they must agree
    inputs = {
        "xpos": 2, "ypos": 5, "xdes": 6, "ydes": 1,
        "free": {(i,): "true" for i in range(4)},
        "load": {(0,): 7, (1,): 0, (2,): 0, (3,): 2},
    }
    for mode in ("table", "ast"):
        eng = RuleEngine(compiled, mode=mode)
        eng.set_inputs(inputs)
        decision = eng.decide("decide")
        print(f"  {mode:5s} interpreter: message (2,5)->(6,1) goes "
              f"{decision!r}")

    # 3. sweep a few scenarios
    eng = RuleEngine(compiled)
    print("\nscenario sweep (south-east destination, load-adaptive):")
    for east_load in (0, 5, 15):
        eng.set_inputs({**inputs,
                        "load": {(0,): east_load, (1,): 0, (2,): 0,
                                 (3,): 2}})
        print(f"  east queue={east_load:2d} -> {eng.decide('decide')}")


if __name__ == "__main__":
    main()

"""The full Figure-3 architecture, end to end.

Every router in this network is controlled by the actual compiled
``nafta.rules`` program: routing decisions chain the rule bases
``incoming_message`` -> ``in_message_ft`` -> ``test_exception`` (the
paper's 1..3 interpretation steps), and the distributed fault knowledge
lives in each node engine's registers, maintained by the state rule
bases exchanging neighbour events until the waves settle.

The same messages are also routed by the native Python NAFTA for a
side-by-side check — the rule machine and the hand-written algorithm
are the same algorithm in two representations.

Run:  python examples/rule_machine_router.py
"""

import time

from repro.routing import NaftaRouting, RuleDrivenNafta
from repro.sim import FaultSchedule, Mesh2D, Network, SimConfig


def main() -> None:
    topo = Mesh2D(6, 6)
    faults = [(2, 2), (3, 3)]

    print("6x6 mesh, fault pattern:", faults, "(diagonal pair -> the")
    print("convex completion deactivates (2,3) and (3,2))\n")

    algo = RuleDrivenNafta()
    net = Network(topo, algo, config=SimConfig(trace_paths=True))
    net.schedule_faults(FaultSchedule.static(
        nodes=[topo.node_at(*c) for c in faults]))

    # peek into one node engine's registers: this is the distributed
    # state the rule bases maintain
    probe = topo.node_at(2, 4)
    eng = algo.engines[probe]
    print("rule-machine registers at node (2,4):")
    print(f"  mystate    = {eng.registers.read('mystate')}")
    print(f"  usable_set = {sorted(eng.registers.read('usable_set'))} "
          f"(ports: 0=E 1=W 2=N 3=S; south leads into the block)")
    runs = [eng.registers.read("runc", (d,)) for d in range(4)]
    print(f"  runc       = {runs}  (clear runs E/W/N/S)\n")

    pairs = [((0, 2), (5, 2)), ((0, 4), (5, 0)), ((4, 0), (1, 5))]
    print("decisions made by chained rule-base interpretation:")
    for (sx, sy), (dx, dy) in pairs:
        m = net.offer(topo.node_at(sx, sy), topo.node_at(dx, dy), 3)
        net.run_until_drained()
        trace = [topo.coords(n) for n in m.header.fields["trace"]]
        print(f"  ({sx},{sy}) -> ({dx},{dy}): {m.hops} hops, "
              f"misrouted={m.header.misrouted}")
        print(f"    path {trace}")
    print(f"  worst-case interpretation steps: "
          f"{net.stats.max_decision_steps} (paper: NAFTA needs up to 3)\n")

    # side-by-side with the native algorithm
    print("differential check vs the native Python NAFTA:")
    results = {}
    timings = {}
    for algo2 in (NaftaRouting(), RuleDrivenNafta()):
        net2 = Network(Mesh2D(6, 6), algo2)
        net2.schedule_faults(FaultSchedule.static(
            nodes=[Mesh2D(6, 6).node_at(*c) for c in faults]))
        t0 = time.perf_counter()
        msgs = [net2.offer(s, d, 3)
                for s in range(0, 36, 5) for d in (8, 27) if s != d]
        net2.run_until_drained()
        timings[algo2.name] = time.perf_counter() - t0
        results[algo2.name] = [(m.hops, m.header.misrouted) if m else None
                               for m in msgs]
    clean = sum(1 for a, b in zip(results["nafta"], results["nafta_rules"])
                if a and b and not a[1] and not b[1])
    clean_match = all(a == b for a, b in zip(results["nafta"],
                                             results["nafta_rules"])
                      if a and b and not a[1] and not b[1])
    detoured = [(a, b) for a, b in zip(results["nafta"],
                                       results["nafta_rules"])
                if a and b and (a[1] or b[1])]
    print(f"  {clean} unaffected messages: identical hop counts = "
          f"{clean_match}")
    print(f"  {len(detoured)} fault-detoured messages: both delivered "
          f"(detour tie-breaks may differ between the two "
          f"representations): "
          f"{[(a[0], b[0]) for a, b in detoured]}")
    print(f"  native: {timings['nafta'] * 1e3:.0f} ms, rule machine: "
          f"{timings['nafta_rules'] * 1e3:.0f} ms — the software model "
          f"of the hardware interpreter is slower in Python, which is "
          f"precisely why the paper builds it as hardware.")
    assert clean_match
    assert all(a[0] and b[0] for a, b in detoured)


if __name__ == "__main__":
    main()

"""Quickstart: simulate fault-tolerant routing on an 8x8 mesh.

Builds a wormhole network running NAFTA (the paper's fault-tolerant
adaptive mesh algorithm), offers uniform random traffic, kills a link
mid-run, and prints the statistics that matter: latency, throughput,
interpretation steps per routing decision, and how many messages needed
fault detours.

Run:  python examples/quickstart.py
"""

from repro.routing import NaftaRouting
from repro.sim import FaultSchedule, Mesh2D, Network, TrafficGenerator


def main() -> None:
    topo = Mesh2D(8, 8)
    net = Network(topo, NaftaRouting())

    # uniform random traffic: 0.15 flits per node per cycle, 4-flit worms
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.15,
                                        message_length=4, seed=42))
    net.set_warmup(500)

    # two links die at cycle 1000; the network quiesces (paper
    # assumption iv), NAFTA recomputes its fault states and carries on
    sched = FaultSchedule()
    sched.add_link_fault(1000, topo.node_at(3, 3), topo.node_at(4, 3))
    sched.add_link_fault(1000, topo.node_at(3, 4), topo.node_at(4, 4))
    net.fault_schedule = sched

    net.run(3000)
    net.traffic = None
    net.run_until_drained()

    s = net.stats.summary(topo.n_nodes)
    print("8x8 mesh, NAFTA, uniform traffic, 2 link faults at cycle 1000")
    print(f"  messages delivered ........ {s['messages_delivered']}")
    print(f"  mean latency .............. {s['mean_latency']:.1f} cycles")
    print(f"  p99 latency ............... {s['p99_latency']:.0f} cycles")
    print(f"  throughput ................ "
          f"{s['throughput_flits_node_cycle']:.3f} flits/node/cycle")
    print(f"  mean hops ................. {s['mean_hops']:.2f}")
    print(f"  misrouted by faults ....... {s['misrouted_fraction']:.1%}")
    print(f"  decisions made ............ {s['decisions']}")
    print(f"  mean interpretation steps . {s['mean_decision_steps']:.2f} "
          f"(paper: 1 fault-free, up to 3 with faults)")
    print(f"  worst-case steps .......... {s['max_decision_steps']}")
    assert s["max_decision_steps"] <= 3


if __name__ == "__main__":
    main()

"""Engineering benchmarks: wall-clock performance of the hot paths.

Unlike the reproduction benchmarks (which regenerate the paper's tables
and assert shapes), these time the substrate itself over multiple
rounds so simulator/compiler performance regressions show up in the
pytest-benchmark comparison output.
"""

from repro.core.compiler import compile_program
from repro.routing import NaftaRouting, RouteCRouting
from repro.routing.rulesets import ruleset_source
from repro.sim import Hypercube, Mesh2D, Network, TrafficGenerator


def simulate_mesh(cycles=300):
    net = Network(Mesh2D(8, 8), NaftaRouting())
    net.attach_traffic(TrafficGenerator(net.topology, "uniform", load=0.2,
                                        message_length=4, seed=7))
    net.run(cycles)
    return net.stats.messages_delivered


def simulate_cube(cycles=300):
    net = Network(Hypercube(4), RouteCRouting())
    net.attach_traffic(TrafficGenerator(net.topology, "uniform", load=0.2,
                                        message_length=4, seed=7))
    net.run(cycles)
    return net.stats.messages_delivered


def test_perf_mesh_simulation(benchmark):
    delivered = benchmark.pedantic(simulate_mesh, rounds=3, iterations=1,
                                   warmup_rounds=1)
    assert delivered > 0


def test_perf_cube_simulation(benchmark):
    delivered = benchmark.pedantic(simulate_cube, rounds=3, iterations=1,
                                   warmup_rounds=1)
    assert delivered > 0


def test_perf_compile_nafta(benchmark):
    src = ruleset_source("nafta")
    params = {"xsize": 16, "ysize": 16, "qmax": 63, "rmax": 15}
    compiled = benchmark.pedantic(
        lambda: compile_program(src, params=params),
        rounds=3, iterations=1, warmup_rounds=1)
    assert compiled.total_table_bits > 0


def test_perf_rule_engine_decisions(benchmark):
    from repro.routing.rulesets import load_ruleset
    eng = load_ruleset("nafta")
    inputs = {
        "xpos": 2, "ypos": 3, "xdes": 6, "ydes": 7, "vnin": 1,
        "termin": "false", "sdirin": 0, "fault_present": "false",
        "freemask": {(0,): frozenset({0, 1, 2, 3}),
                     (1,): frozenset({0, 1, 2, 3})},
        "oq": {(0,): 5, (1,): 0, (2,): 2, (3,): 0},
        "samecol": "false", "runok": "false", "mlen": 4,
        "info_kind": "load_info", "info_val": 0, "fault_kind": 0,
    }
    eng.set_inputs(inputs)

    def thousand_decisions():
        for _ in range(1000):
            eng.decide("incoming_message", 4, 1)
        return eng.steps

    steps = benchmark.pedantic(thousand_decisions, rounds=3, iterations=1,
                               warmup_rounds=1)
    assert steps >= 1000

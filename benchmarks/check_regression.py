"""Compare a fresh benchmark report against a committed baseline
(``BENCH_engine.json``, ``BENCH_reroute.json``) and fail loudly on a
regression.

CI runs::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --quick --out /tmp/bench_quick.json
    python benchmarks/check_regression.py /tmp/bench_quick.json
    PYTHONPATH=src python benchmarks/bench_reroute.py \
        --quick --out /tmp/bench_reroute.json
    python benchmarks/check_regression.py /tmp/bench_reroute.json \
        --baseline BENCH_reroute.json

Wall-clock totals are never compared — repeat counts differ between
``--quick`` and the full run that produced the baseline. Two metric
directions exist:

* **higher-is-better** (rates: decisions/sec, cycles/sec, speedups) —
  a metric regresses when it drops more than ``--threshold`` (default
  30%) below the baseline; improvements never fail. The wide threshold
  absorbs runner-to-runner variance while still catching the
  "accidentally interpreted the hot loop" class of mistake — a genuine
  2x slowdown trips it with a wide margin.
* **lower-is-better** (recovery gaps: ``reroute.cycles_of_loss``,
  ``reroute.time_to_recover_cycles``) — a metric regresses when it
  *rises* past the threshold; and because these are deterministic
  counts (not noisy rates), a zero baseline is held exactly: any
  nonzero current value fails.

If a regression is intentional (a feature that trades the metric for
capability), refresh the baseline instead of raising the threshold::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_reroute.py

and commit the updated baseline JSON with a note in the PR body
explaining the accepted cost.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: (dotted path into the report, short label, direction) where
#: direction is "higher" (rates) or "lower" (gaps) — see module doc
TRACKED = (
    ("decision_throughput.fastpath_decisions_per_sec",
     "fastpath decisions/sec", "higher"),
    ("decision_throughput.legacy_decisions_per_sec",
     "interpreted decisions/sec", "higher"),
    ("simulation_throughput_low_load.active_cycles_per_sec",
     "sim cycles/sec (low load)", "higher"),
    ("simulation_throughput_moderate_load.active_cycles_per_sec",
     "sim cycles/sec (moderate load)", "higher"),
    ("batched_engine.cycles_per_sec", "batched engine cycles/sec",
     "higher"),
    # large-mesh speedups are ratios, not rates, but regress the same
    # way: a drop means the batched data path lost ground to the object
    # oracle on the fabrics it exists for (64x64 only appears in full
    # reports, so quick runs skip it)
    ("large_mesh.speedup_32x32", "large-mesh 32x32 speedup", "higher"),
    ("large_mesh.speedup_64x64", "large-mesh 64x64 speedup", "higher"),
    ("hypercube.cycles_per_sec", "hypercube batched cycles/sec",
     "higher"),
    # fast-reroute recovery gaps (BENCH_reroute.json): cycles of
    # routing outage per chaos campaign — growth means the backup
    # tables stopped arming (or stopped applying) somewhere
    ("reroute.cycles_of_loss", "reroute loss-window cycles", "lower"),
    ("reroute.time_to_recover_cycles",
     "reroute worst recovery gap (cycles)", "lower"),
    # load-balance sweep (BENCH_loadbalance.json): per-policy mean
    # accepted throughput near saturation (a drop means a policy
    # stopped spreading or started misrouting) and link-imbalance
    # aggregates (growth means the candidate re-ordering stopped
    # reaching the fabric)
    ("loadbalance.deterministic_throughput",
     "loadbalance deterministic throughput", "higher"),
    ("loadbalance.ecmp_throughput", "loadbalance ecmp throughput",
     "higher"),
    ("loadbalance.flowlet_throughput", "loadbalance flowlet throughput",
     "higher"),
    ("loadbalance.credit_throughput", "loadbalance credit throughput",
     "higher"),
    ("loadbalance.mean_imbalance", "loadbalance mean link imbalance",
     "lower"),
    ("loadbalance.ecmp_imbalance", "loadbalance ecmp link imbalance",
     "lower"),
)


def _fmt(v: float) -> str:
    """Rates print as integers; ratios/throughputs (< 100) keep their
    significant digits instead of rounding to zero."""
    return f"{v:,.0f}" if abs(v) >= 100 else f"{v:.4g}"

DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_engine.json"


def lookup(report: dict, dotted: str) -> float | None:
    node = report
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node)


def compare(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Human-readable rows; raises SystemExit(1) after printing if any
    tracked metric regressed past the threshold."""
    rows = []
    failures = []
    for dotted, label, direction in TRACKED:
        base = lookup(baseline, dotted)
        cur = lookup(current, dotted)
        if base is None or cur is None:
            rows.append(f"  {label:<38} (missing — skipped)")
            continue
        mark = "ok"
        if direction == "lower" and base == 0.0:
            # deterministic count with a perfect baseline: hold exactly
            ratio_text = "zero-base"
            if cur > 0.0:
                mark = "REGRESSION"
                failures.append(
                    f"{label}: {_fmt(cur)} vs a zero baseline — any "
                    f"nonzero value is a regression"
                )
        else:
            ratio = cur / base
            ratio_text = f"{ratio:.0%} of baseline"
            if direction == "higher" and ratio < 1.0 - threshold:
                mark = "REGRESSION"
                failures.append(
                    f"{label}: {_fmt(cur)} is {1 - ratio:.0%} below the "
                    f"baseline {_fmt(base)} (allowed: {threshold:.0%})"
                )
            elif direction == "lower" and ratio > 1.0 + threshold:
                mark = "REGRESSION"
                failures.append(
                    f"{label}: {_fmt(cur)} is {ratio - 1:.0%} above the "
                    f"baseline {_fmt(base)} (allowed: {threshold:.0%}; "
                    f"lower is better)"
                )
        rows.append(
            f"  {label:<38} {_fmt(cur):>12}  vs {_fmt(base):>12}  "
            f"({ratio_text})  {mark}"
        )
    print(f"benchmark regression check (threshold {threshold:.0%}):")
    for row in rows:
        print(row)
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="fresh benchmark report JSON to check")
    ap.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                    help="committed baseline (default: BENCH_engine.json)")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="max tolerated fractional drop (default 0.30)")
    args = ap.parse_args(argv)

    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    current = json.loads(pathlib.Path(args.current).read_text())
    if current.get("quick") and "quick_reference" in baseline:
        # quick mode amortizes warmup over far fewer repeats, so its
        # rates sit systematically below the full run — compare against
        # the committed quick-mode reference instead
        print("(--quick report: comparing against the quick_reference "
              "baseline section)")
        baseline = baseline["quick_reference"]
    failures = compare(baseline, current, args.threshold)
    if failures:
        print("\nFAIL: tracked metrics regressed past the tolerated "
              "threshold:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print(
            "\nIf this regression is intentional, regenerate the baseline\n"
            "(PYTHONPATH=src python benchmarks/bench_engine_throughput.py\n"
            "or benchmarks/bench_reroute.py) and commit the updated JSON\n"
            "with a PR note explaining the accepted cost. Do not raise\n"
            "--threshold to make CI pass.",
            file=sys.stderr,
        )
        return 1
    print("all tracked throughput metrics within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

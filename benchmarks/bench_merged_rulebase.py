"""E4 — the merged decide_dir + decide_vc rule base of ROUTE_C.

Paper Section 5: integrating the two interpretation steps into one
"would result in very large rule bases": 1024 * 2^d x (d+1+a) bits.
We compile the actual merged rule program for a sweep of d and verify
the exponential-in-d growth law and the blow-up relative to the split
formulation (whose tables stay flat in d).
"""

from repro.experiments import PAPER, save_report, table
from repro.routing.rulesets import compile_ruleset


def sweep():
    rows = []
    for d in (3, 4, 5, 6, 8, 10):
        merged = compile_ruleset("route_c_merged", {"d": d, "a": 2},
                                 materialize=False)
        split = compile_ruleset("route_c", {"d": d, "a": 2},
                                materialize=False)
        mb = merged.rulebases["decide_all"]
        split_bits = (split.rulebases["decide_dir"].size_bits
                      + split.rulebases["decide_vc"].size_bits)
        rows.append({
            "d": d,
            "paper_entries": PAPER["merged_entries"](d),
            "paper_width": PAPER["merged_width"](d, 2),
            "ours_entries": mb.n_entries,
            "ours_width": mb.width,
            "ours_bits": mb.size_bits,
            "split_bits": split_bits,
            "blowup": mb.size_bits / split_bits,
        })
    return rows


def test_merged_rulebase(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = table(rows, [("d", "d"),
                        ("paper_entries", "paper entries"),
                        ("paper_width", "paper width"),
                        ("ours_entries", "ours entries"),
                        ("ours_width", "ours width"),
                        ("ours_bits", "ours bits"),
                        ("split_bits", "split bits"),
                        ("blowup", "merged/split")],
                 title="Merged decide_dir+decide_vc rule base "
                       "(paper: 1024 * 2^d x (d+1+a) bits)")
    save_report("merged_rulebase", text)

    by = {r["d"]: r for r in rows}
    # exponential law: entries double per added dimension, exactly like
    # the paper's 2^d factor
    for a, b in [(3, 4), (4, 5), (5, 6)]:
        assert by[b]["ours_entries"] == 2 * by[a]["ours_entries"]
    # the width grows roughly linearly in d (paper: d+1+a)
    assert by[10]["ours_width"] > by[3]["ours_width"]
    # the merged base is far larger than the split formulation and the
    # gap explodes with d — the paper's argument for multiple steps
    assert by[6]["blowup"] > 2
    assert by[10]["blowup"] > by[6]["blowup"] > by[3]["blowup"]

"""E1/E2 — register accounting (paper Section 5).

Paper: NAFTA needs 159 bits in 8 registers, of which 47 bits exist only
for fault tolerance; ROUTE_C needs 15d + 2 log d + 3 bits in 9
registers, 9d of which the nft variant needs too.  We regenerate the
same accounting from our compiled rulesets: absolute bit counts are
encoding-dependent, but the structure must match — a handful of
registers, a considerable ft-only share for NAFTA, and linear-in-d
growth with a linear-in-d nft share for ROUTE_C.
"""

from repro.experiments import PAPER, save_report, table
from repro.hwcost import cost_report, render_registers


def build():
    nafta = cost_report("nafta")
    route_c = {d: cost_report("route_c", {"d": d, "a": 2})
               for d in (3, 4, 6, 8, 10)}
    return nafta, route_c


def test_register_accounting(benchmark):
    nafta, route_c = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    for d, rep in sorted(route_c.items()):
        rows.append({
            "d": d,
            "paper_bits": PAPER["route_c_register_bits"](d),
            "ours_bits": rep.total_register_bits,
            "paper_nft": PAPER["route_c_register_bits_nft"](d),
            "ours_nft": rep.total_register_bits - rep.ft_only_register_bits,
            "registers": rep.register_count,
        })
    text = "\n\n".join([
        render_registers(nafta),
        f"(paper: {PAPER['nafta_register_bits']} bits in "
        f"{PAPER['nafta_register_count']} registers, "
        f"{PAPER['nafta_register_bits_ft_only']} bits ft-only)",
        table(rows, [("d", "d"), ("paper_bits", "paper bits"),
                     ("ours_bits", "ours bits"), ("paper_nft", "paper nft"),
                     ("ours_nft", "ours nft"), ("registers", "# regs")],
              title="ROUTE_C register bits vs hypercube dimension "
                    "(paper: 15d + 2 log d + 3; nft: 9d)"),
    ])
    save_report("registers", text)

    # NAFTA: a handful of registers with a considerable ft-only share
    assert 4 <= nafta.register_count <= 12
    frac_ours = nafta.ft_only_register_bits / nafta.total_register_bits
    frac_paper = (PAPER["nafta_register_bits_ft_only"]
                  / PAPER["nafta_register_bits"])
    assert abs(frac_ours - frac_paper) < 0.35
    # ROUTE_C: register bits grow linearly in d (ratio of increments
    # roughly constant), like the paper's 15d + 2 log d + 3
    d_list = sorted(route_c)
    increments = [route_c[b].total_register_bits
                  - route_c[a].total_register_bits
                  for a, b in zip(d_list, d_list[1:])]
    per_dim = [inc / (b - a) for inc, (a, b)
               in zip(increments, zip(d_list, d_list[1:]))]
    # linear growth up to the ceil(log d) width jumps of the counters
    # (the paper's own formula has a 2 log d term)
    assert all(inc > 0 for inc in increments)
    assert max(per_dim) <= 2 * min(per_dim)
    # and the nft (adaptivity) share grows linearly-ish in d, like 9d
    nft_bits = {d: rep.total_register_bits - rep.ft_only_register_bits
                for d, rep in route_c.items()}
    assert 2 <= nft_bits[8] / nft_bits[4] <= 3

"""Ablations of the design choices DESIGN.md calls out (paper
Section 3's subgoal taxonomy made measurable).

* Deadlock avoidance: static (NAFTA's turn-model networks) vs dynamic
  (Duato-style escape channels) under a single link fault — the paper's
  claim that the dynamic scheme "is very vulnerable to faults".
* Scheduling/fairness: round-robin vs misrouted-first arbitration under
  faults ("it may be desirable to favor messages misrouted due to
  faults").
* Adaptivity: NAFTA's load criterion vs a deterministic tie-break
  (adaptivity off) under hotspot traffic.
"""

from repro.experiments import WorkloadSpec, run_workload, save_report, table
from repro.routing import NaftaRouting
from repro.sim import Mesh2D, Network, TrafficGenerator


class NonAdaptiveNafta(NaftaRouting):
    """NAFTA with the adaptivity criterion disabled: candidates keep a
    fixed port order instead of least-committed-output-first."""

    name = "nafta_noadapt"

    @staticmethod
    def _order(candidates, router):
        return sorted(candidates, key=lambda pv: pv[0])


def deadlock_scheme_ablation():
    rows = []
    topo = Mesh2D(6, 6)
    fault = (topo.node_at(2, 2), topo.node_at(3, 2))
    for algo in ("nafta", "duato"):
        spec = WorkloadSpec(topology=Mesh2D(6, 6), algorithm=algo,
                            load=0.12, cycles=2000, warmup=400, seed=17,
                            fault_links=[fault])
        res = run_workload(spec)
        rows.append({"scheme": f"{algo} (static)" if algo == "nafta"
                     else f"{algo} (dynamic)",
                     "delivered": res["messages_delivered"],
                     "stuck": res["messages_stuck"],
                     "latency": res["mean_latency"]})
    return rows


def fairness_ablation():
    rows = []
    topo = Mesh2D(6, 6)
    faults = [(topo.node_at(2, 2), topo.node_at(3, 2)),
              (topo.node_at(2, 3), topo.node_at(3, 3))]
    for arbiter in ("round_robin", "misrouted_first", "oldest_first"):
        spec = WorkloadSpec(topology=Mesh2D(6, 6), algorithm="nafta",
                            load=0.25, cycles=2500, warmup=500, seed=23,
                            fault_links=faults, arbiter=arbiter)
        res = run_workload(spec)
        rows.append({"arbiter": arbiter,
                     "latency": res["mean_latency"],
                     "p99": res["p99_latency"],
                     "misrouted": res["misrouted_fraction"],
                     "throughput": res["throughput_flits_node_cycle"]})
    return rows


def adaptivity_ablation():
    rows = []
    for label, algo in (("load-adaptive", NaftaRouting()),
                        ("fixed order", NonAdaptiveNafta())):
        net = Network(Mesh2D(6, 6), algo)
        net.attach_traffic(TrafficGenerator(
            net.topology, "hotspot", load=0.20, message_length=4, seed=29,
            pattern_kwargs={"fraction": 0.15}))
        net.set_warmup(500)
        net.run(3000)
        s = net.stats.summary(36)
        rows.append({"criterion": label, "latency": s["mean_latency"],
                     "p99": s["p99_latency"],
                     "throughput": s["throughput_flits_node_cycle"]})
    return rows


def test_ablations(benchmark):
    dl, fair, adapt = benchmark.pedantic(
        lambda: (deadlock_scheme_ablation(), fairness_ablation(),
                 adaptivity_ablation()),
        rounds=1, iterations=1)
    text = "\n\n".join([
        table(dl, [("scheme", "deadlock scheme"), ("delivered", "delivered"),
                   ("stuck", "stuck"), ("latency", "latency")],
              title="Static vs dynamic deadlock avoidance, 1 link fault "
                    "(paper Section 3)"),
        table(fair, [("arbiter", "arbiter"), ("latency", "latency"),
                     ("p99", "p99"), ("misrouted", "misrouted"),
                     ("throughput", "throughput")],
              title="Fairness policies under faults"),
        table(adapt, [("criterion", "adaptivity"), ("latency", "latency"),
                      ("p99", "p99"), ("throughput", "throughput")],
              title="Adaptivity criterion under hotspot traffic"),
    ])
    save_report("ablations", text)

    by_scheme = {r["scheme"]: r for r in dl}
    # the dynamic scheme loses messages to the single fault, the static
    # turn-model scheme loses none
    assert by_scheme["nafta (static)"]["stuck"] == 0
    assert by_scheme["duato (dynamic)"]["stuck"] > 0
    # all fairness policies keep the network functional
    assert all(r["throughput"] > 0.05 for r in fair)
    # adaptivity helps (or at least does not hurt) under hotspots
    by_adapt = {r["criterion"]: r for r in adapt}
    assert by_adapt["load-adaptive"]["latency"] <= \
        1.25 * by_adapt["fixed order"]["latency"]

"""F4 (hypercube half) — ROUTE_C vs its stripped variant on the cube.

Fault-free the two behave identically (the paper's definition of the
nft variant) with ROUTE_C paying one extra interpretation step per
decision; under node faults full ROUTE_C keeps the surviving network
connected-and-served while the stripped variant cannot route around
anything.
"""

from repro.experiments import (WorkloadSpec, cube_fault_sweep, run_workload,
                               save_report, table)
from repro.sim import Hypercube


def run():
    rows = []
    for algo in ("route_c_nft", "route_c"):
        spec = WorkloadSpec(topology=Hypercube(4), algorithm=algo,
                            load=0.12, cycles=2500, warmup=500, seed=31)
        res = run_workload(spec)
        rows.append({"algorithm": algo, "node_faults": 0,
                     "latency": res["mean_latency"],
                     "hops": res["mean_hops"],
                     "throughput": res["throughput_flits_node_cycle"],
                     "mean_steps": res["mean_decision_steps"],
                     "undelivered": res["undelivered"],
                     "misrouted": res["misrouted_fraction"]})
    for res in cube_fault_sweep("route_c", [1, 2, 3], dimension=4,
                                load=0.12, cycles=2500, warmup=500):
        rows.append({"algorithm": "route_c",
                     "node_faults": res["n_node_faults"],
                     "latency": res["mean_latency"],
                     "hops": res["mean_hops"],
                     "throughput": res["throughput_flits_node_cycle"],
                     "mean_steps": res["mean_decision_steps"],
                     "undelivered": res["undelivered"],
                     "misrouted": res["misrouted_fraction"]})
    return rows


def test_cube_overhead(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = table(rows, [("algorithm", "algorithm"),
                        ("node_faults", "node faults"),
                        ("latency", "mean latency"), ("hops", "mean hops"),
                        ("throughput", "throughput"),
                        ("mean_steps", "steps/decision"),
                        ("undelivered", "undelivered"),
                        ("misrouted", "misrouted frac")],
                 title="ROUTE_C on a 16-node hypercube, uniform "
                       "0.12 flits/node/cycle")
    save_report("cube_overhead", text)

    by = {(r["algorithm"], r["node_faults"]): r for r in rows}
    # fault-free equivalence in paths; the time overhead is the extra
    # interpretation step (2 vs 1)
    assert abs(by[("route_c", 0)]["hops"] - by[("route_c_nft", 0)]["hops"]) \
        < 0.05
    assert by[("route_c", 0)]["mean_steps"] == 2.0
    assert by[("route_c_nft", 0)]["mean_steps"] == 1.0
    # graceful degradation: everything still delivered with 3 faults
    for f in (1, 2, 3):
        r = by[("route_c", f)]
        assert r["undelivered"] == 0
        assert not r["deadlocked"] if "deadlocked" in r else True
    # detours happen and cost hops, but latency stays bounded
    assert by[("route_c", 3)]["latency"] < \
        2.5 * by[("route_c", 0)]["latency"]

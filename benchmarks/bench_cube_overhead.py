"""F4 (hypercube half) — ROUTE_C vs its stripped variant on the cube.

Fault-free the two behave identically (the paper's definition of the
nft variant) with ROUTE_C paying one extra interpretation step per
decision; under node faults full ROUTE_C keeps the surviving network
connected-and-served while the stripped variant cannot route around
anything.

Run directly for the sweep-engine flags::

    PYTHONPATH=src python benchmarks/bench_cube_overhead.py --workers 4
"""

from repro.experiments import (WorkloadSpec, cube_fault_sweep, run_sweep,
                               save_report, sweep_main, table)
from repro.sim import Hypercube


def _row(algorithm, node_faults, res):
    return {"algorithm": algorithm, "node_faults": node_faults,
            "latency": res["mean_latency"],
            "hops": res["mean_hops"],
            "throughput": res["throughput_flits_node_cycle"],
            "mean_steps": res["mean_decision_steps"],
            "undelivered": res["undelivered"],
            "misrouted": res["misrouted_fraction"]}


def run(workers: int = 0, cache: bool = False):
    algos = ("route_c_nft", "route_c")
    specs = [WorkloadSpec(topology=Hypercube(4), algorithm=algo,
                          load=0.12, cycles=2500, warmup=500, seed=31)
             for algo in algos]
    rows = []
    for algo, res in zip(algos,
                         run_sweep(specs, workers=workers, cache=cache,
                                   progress=bool(workers),
                                   label="cube_overhead[fault-free]")):
        rows.append(_row(algo, 0, res))
    for res in cube_fault_sweep("route_c", [1, 2, 3], dimension=4,
                                load=0.12, cycles=2500, warmup=500,
                                workers=workers, cache=cache,
                                progress=bool(workers)):
        rows.append(_row("route_c", res["n_node_faults"], res))
    return rows


def report(rows) -> str:
    return table(rows, [("algorithm", "algorithm"),
                        ("node_faults", "node faults"),
                        ("latency", "mean latency"), ("hops", "mean hops"),
                        ("throughput", "throughput"),
                        ("mean_steps", "steps/decision"),
                        ("undelivered", "undelivered"),
                        ("misrouted", "misrouted frac")],
                 title="ROUTE_C on a 16-node hypercube, uniform "
                       "0.12 flits/node/cycle")


def test_cube_overhead(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("cube_overhead", report(rows))

    by = {(r["algorithm"], r["node_faults"]): r for r in rows}
    # fault-free equivalence in paths; the time overhead is the extra
    # interpretation step (2 vs 1)
    assert abs(by[("route_c", 0)]["hops"] - by[("route_c_nft", 0)]["hops"]) \
        < 0.05
    assert by[("route_c", 0)]["mean_steps"] == 2.0
    assert by[("route_c_nft", 0)]["mean_steps"] == 1.0
    # graceful degradation: everything still delivered with 3 faults
    for f in (1, 2, 3):
        r = by[("route_c", f)]
        assert r["undelivered"] == 0
        assert not r["deadlocked"] if "deadlocked" in r else True
    # detours happen and cost hops, but latency stays bounded
    assert by[("route_c", 3)]["latency"] < \
        2.5 * by[("route_c", 0)]["latency"]


if __name__ == "__main__":
    sweep_main(lambda **kw: save_report("cube_overhead", report(run(**kw))),
               description=__doc__.splitlines()[0])

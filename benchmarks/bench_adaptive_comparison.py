"""Extension — the adaptivity spectrum the paper's introduction draws:
oblivious routing (XY) vs restricted adaptivity (planar-adaptive, one
of the paper's two named reference routers) vs full minimal adaptivity
(NARA) under adversarial transpose traffic.

Expected shape (and the paper's argument for configurable routing): on
a permutation workload the adaptive schemes sustain far more load than
the oblivious one; on a 2-D mesh PAR's single plane is already fully
adaptive, so it tracks NARA closely — the gap opens on deeper meshes
where PAR's plane discipline bites.
"""

from repro.experiments import (WorkloadSpec, run_sweep, save_report,
                               sweep_main, table)
from repro.sim import Mesh2D

GRID = [(algo, load) for algo in ("xy", "par", "nara")
        for load in (0.15, 0.25, 0.35)]


def run(workers: int = 0, cache: bool = False):
    specs = [WorkloadSpec(topology=Mesh2D(8, 8), algorithm=algo,
                          pattern="transpose", load=load,
                          cycles=2000, warmup=500, seed=19, drain=False)
             for algo, load in GRID]
    rows = []
    for (algo, load), res in zip(
            GRID, run_sweep(specs, workers=workers, cache=cache,
                            progress=bool(workers),
                            label="adaptive_comparison")):
        rows.append({"algorithm": algo, "offered": load,
                     "accepted": res["throughput_flits_node_cycle"],
                     "latency": res["mean_latency"]})
    return rows


def report(rows) -> str:
    return table(rows, [("algorithm", "algorithm"), ("offered", "offered"),
                        ("accepted", "accepted"), ("latency", "latency")],
                 title="Adaptivity spectrum under transpose traffic, "
                       "8x8 mesh")


def test_adaptive_comparison(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("adaptive_comparison", report(rows))

    by = {(r["algorithm"], r["offered"]): r for r in rows}
    # oblivious XY saturates: at 0.35 offered it accepts much less than
    # the adaptive schemes and its latency explodes
    assert by[("xy", 0.35)]["accepted"] < 0.75 * by[("nara", 0.35)]["accepted"]
    assert by[("xy", 0.25)]["latency"] > 2 * by[("nara", 0.25)]["latency"]
    # on a 2-D mesh PAR is fully adaptive in its single plane: within
    # ~15% of NARA everywhere
    for load in (0.15, 0.25, 0.35):
        a = by[("par", load)]["accepted"]
        b = by[("nara", load)]["accepted"]
        assert abs(a - b) <= 0.15 * max(a, b)


if __name__ == "__main__":
    sweep_main(lambda **kw: save_report("adaptive_comparison",
                                        report(run(**kw))),
               description=__doc__.splitlines()[0])

"""Engine and simulator throughput: the compiled fast path vs the
interpreted reference, active-router scheduling vs the full scan, and
the parallel sweep engine vs serial point-by-point execution.

Three layers of the same story (paper Section 4.3, "software solutions
would limit the network performance drastically"):

* **decisions/sec** — the NAFTA ``incoming_message`` rule base invoked
  through the :class:`~repro.core.compiler.fastpath.DecisionKernel`
  (extractor closures + prebaked strides + code-tuple memo) against the
  same table executed by the interpreted pipeline (``fastpath=False``,
  one ``eval_expr`` AST walk per premise);
* **cycles/sec** — a full wormhole simulation with and without
  ``SimConfig.active_scheduling`` (only routers holding flits are
  iterated; both settings are cycle-accurate and bit-identical);
* **points/sec** — the latency/load sweep through
  :func:`repro.experiments.pool.run_sweep`: serial vs ``--workers N``
  process fan-out vs a warm content-addressed cache, all three
  byte-identical.

Run directly::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --quick --workers 2

Results land in ``BENCH_engine.json`` (see ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time

from repro.experiments import WorkloadSpec, add_sweep_args, run_sweep
from repro.routing.registry import make_algorithm
from repro.routing.rulesets.loader import load_ruleset
from repro.sim.batched import batched_fallback_reason, build_network
from repro.sim.config import SimConfig
from repro.sim.network import Network
from repro.sim.topology import Mesh2D
from repro.sim.traffic import TrafficGenerator

WIDTH = HEIGHT = 8
QMAX = 63


# ---------------------------------------------------------------------------
# decision throughput (rule engine)
# ---------------------------------------------------------------------------

def decision_cases() -> list[tuple[dict, int, int]]:
    """(inputs, indir, vn) triples mirroring RuleDrivenNafta's
    ``_decision_inputs``: canonical tuple-keyed dicts, varied positions,
    destinations and loads so the code-tuple memo sees a realistic mix
    rather than one endlessly repeated decision."""
    cases = []
    full = frozenset({0, 1, 2, 3})
    pairs = [((0, 0), (7, 7)), ((3, 4), (3, 0)), ((5, 2), (1, 2)),
             ((7, 7), (0, 0)), ((2, 6), (2, 7)), ((4, 4), (6, 1)),
             ((1, 3), (1, 3)), ((6, 0), (0, 5))]
    for i, ((x, y), (dx, dy)) in enumerate(pairs):
        vn = 1 if dy > y else 0
        for indir in (4, 0, 2):
            load = (7 * i + 3 * indir) % QMAX
            oq = {(d,): (load + d) % QMAX for d in range(4)}
            inputs = {
                "xpos": x, "ypos": y, "xdes": dx, "ydes": dy, "vnin": vn,
                "termin": "false", "sdirin": 0, "fault_present": "false",
                "freemask": {(vc,): full for vc in range(2)}, "oq": oq,
                "samecol": "true" if x == dx else "false",
                "runok": "true", "mlen": 6,
                "info_kind": "load_info", "info_val": 0, "fault_kind": 0,
            }
            cases.append((inputs, indir, vn))
    return cases


def make_engine(fastpath: bool):
    return load_ruleset("nafta", {"xsize": WIDTH, "ysize": HEIGHT,
                                  "qmax": QMAX, "rmax": 7},
                        fastpath=fastpath)


def time_decisions(engine, cases, repeats: int) -> float:
    """Seconds for ``repeats`` passes over the case list."""
    call = engine.call
    set_inputs = engine.set_inputs
    t0 = time.perf_counter()
    for _ in range(repeats):
        for inputs, indir, vn in cases:
            set_inputs(inputs, trusted=True)
            call("incoming_message", indir, vn)
    dt = time.perf_counter() - t0
    engine.events.log.clear()
    return dt


def bench_decisions(repeats: int, rounds: int) -> dict:
    cases = decision_cases()
    fast = make_engine(fastpath=True)
    legacy = make_engine(fastpath=False)
    # warmup: compile kernels / fill memos outside the timed region
    time_decisions(fast, cases, 1)
    time_decisions(legacy, cases, 1)
    best_fast = min(time_decisions(fast, cases, repeats)
                    for _ in range(rounds))
    best_legacy = min(time_decisions(legacy, cases, repeats)
                      for _ in range(rounds))
    n = repeats * len(cases)
    return {
        "decisions": n,
        "fastpath_decisions_per_sec": n / best_fast,
        "legacy_decisions_per_sec": n / best_legacy,
        "decision_speedup": best_legacy / best_fast,
    }


# ---------------------------------------------------------------------------
# simulation throughput (network)
# ---------------------------------------------------------------------------

def time_sim(active: bool, cycles: int, load: float) -> tuple[float, dict]:
    topo = Mesh2D(WIDTH, HEIGHT)
    net = Network(topo, make_algorithm("nafta"),
                  config=SimConfig(active_scheduling=active))
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=load,
                                        message_length=6, seed=11))
    t0 = time.perf_counter()
    net.run(cycles)
    dt = time.perf_counter() - t0
    return dt, net.stats.summary(topo.n_nodes)


def bench_sim(cycles: int, rounds: int, load: float) -> dict:
    runs_on = []
    runs_off = []
    summary_on = summary_off = None
    for _ in range(rounds):
        dt, summary_on = time_sim(True, cycles, load)
        runs_on.append(dt)
        dt, summary_off = time_sim(False, cycles, load)
        runs_off.append(dt)
    assert summary_on == summary_off, \
        "active scheduling changed simulation results"
    best_on, best_off = min(runs_on), min(runs_off)
    return {
        "cycles": cycles,
        "load": load,
        "active_cycles_per_sec": cycles / best_on,
        "full_scan_cycles_per_sec": cycles / best_off,
        "sim_speedup": best_off / best_on,
        "results_identical": True,
    }


# ---------------------------------------------------------------------------
# batched struct-of-arrays engine vs the per-flit object oracle
# ---------------------------------------------------------------------------

def time_engine(engine: str, topo, warmup_cycles: int,
                cycles: int, load: float, seed: int = 11,
                algo: str = "nafta"):
    """Steady-state cycles/sec of one engine on ``topo``.

    The warm-up run is excluded from the timed region: it pays the
    batched engine's one-off costs (C kernel build/load, clean-table
    probe, array growth) and lets both engines reach a steady traffic
    population, so the recorded rate is the sustained one rather than a
    cold-start average."""
    net = build_network(topo, make_algorithm(algo),
                        SimConfig(engine=engine))
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=load,
                                        message_length=6, seed=seed))
    net.run(warmup_cycles)
    t0 = time.perf_counter()
    net.run(cycles)
    dt = time.perf_counter() - t0
    return cycles / dt, net.engine_name, net.stats.summary(topo.n_nodes)


def time_engine_segments(engine: str, warmup_cycles: int, seg_cycles: int,
                         segments: int, load: float, seed: int = 11):
    """Best sustained segment rate of one engine on the 8x8 mesh.

    One network is warmed once, then timed over several consecutive
    segments; the best segment is the sustained rate.  The long warm-up
    matters for the batched engine: its native (dest, state) decision
    cache fills over the first few thousand cycles, and until it does,
    misses detour through the Python route path — timing too early
    reports the fill transient, not the steady state.  Best-of-segments
    also rides out multi-second CPU-throttle windows that a single
    monolithic timing cannot."""
    topo = Mesh2D(WIDTH, HEIGHT)
    net = build_network(topo, make_algorithm("nafta"),
                        SimConfig(engine=engine))
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=load,
                                        message_length=6, seed=seed))
    net.run(warmup_cycles)
    best = 0.0
    for _ in range(segments):
        t0 = time.perf_counter()
        net.run(seg_cycles)
        dt = time.perf_counter() - t0
        best = max(best, seg_cycles / dt)
    return best, net.engine_name, net.stats.summary(topo.n_nodes)


def bench_batched_engine(quick: bool) -> dict:
    """Object vs batched on the standard 8x8 mesh at moderate load.
    The two engines run the identical workload (same warm-up, same
    timed cycles), so their end-of-run summaries must also be
    bit-identical — recorded as ``results_identical``."""
    warmup, seg, segments = (400, 300, 2) if quick else (6000, 2000, 4)
    load = 0.3
    rows = []
    summaries = {}
    for engine in ("object", "batched"):
        rate, ran, summary = time_engine_segments(engine, warmup, seg,
                                                  segments, load)
        summaries[engine] = summary
        rows.append({"engine": engine, "mesh": f"{WIDTH}x{HEIGHT}",
                     "load": load, "cycles_per_sec": rate,
                     "ran_as": ran})
    obj = rows[0]["cycles_per_sec"]
    bat = rows[1]["cycles_per_sec"]
    return {
        "mesh": f"{WIDTH}x{HEIGHT}",
        "load": load,
        "warmup_cycles_excluded": warmup,
        "timed_cycles": seg * segments,
        "segment_cycles": seg,
        "segments": segments,
        "fallback_reason": batched_fallback_reason(),
        "object_cycles_per_sec": obj,
        "cycles_per_sec": bat,
        "speedup": bat / obj,
        "results_identical": summaries["object"] == summaries["batched"],
        "rows": rows,
    }


def bench_large_mesh(quick: bool) -> dict:
    """The ROADMAP-scale fabrics the object engine cannot sweep in
    reasonable wall-clock: 32x32 and (full mode) 64x64, one row per
    (mesh, engine).

    Both engines run the identical workload, so their end-of-run
    summaries must match bit-for-bit (``results_identical``); the
    per-mesh speedups are also flattened to ``speedup_WxH`` keys so the
    regression gate (benchmarks/check_regression.py) can track them
    directly."""
    meshes = [(32, 32)] if quick else [(32, 32), (64, 64)]
    warmup, cycles = (60, 120) if quick else (150, 300)
    load = 0.2
    rows = []
    out = {"load": load, "warmup_cycles_excluded": warmup}
    identical = True
    for w, h in meshes:
        pair = {}
        summaries = {}
        for engine in ("object", "batched"):
            rate, ran, summary = time_engine(engine, Mesh2D(w, h),
                                             warmup, cycles, load)
            pair[engine] = rate
            summaries[engine] = summary
            rows.append({"mesh": f"{w}x{h}", "engine": engine,
                         "load": load, "cycles": cycles,
                         "cycles_per_sec": rate, "ran_as": ran})
        speedup = pair["batched"] / pair["object"]
        rows[-1]["speedup_vs_object"] = speedup
        out[f"speedup_{w}x{h}"] = speedup
        identical &= summaries["object"] == summaries["batched"]
    out["results_identical"] = identical
    out["rows"] = rows
    return out


def bench_hypercube(quick: bool) -> dict:
    """A high-dimensional fabric (paper Section 2: the approach covers
    'all topologies that can be represented by a graph'): e-cube on a
    hypercube — 10 dimensions (1024 nodes) in full mode."""
    from repro.sim.topology import Hypercube
    dims = 7 if quick else 10
    warmup, cycles = (60, 120) if quick else (150, 300)
    load = 0.2
    pair = {}
    summaries = {}
    rows = []
    for engine in ("object", "batched"):
        rate, ran, summary = time_engine(engine, Hypercube(dims),
                                         warmup, cycles, load,
                                         algo="ecube")
        pair[engine] = rate
        summaries[engine] = summary
        rows.append({"topology": f"hypercube-{dims}", "engine": engine,
                     "load": load, "cycles": cycles,
                     "cycles_per_sec": rate, "ran_as": ran})
    return {
        "dimensions": dims,
        "n_nodes": 2 ** dims,
        "load": load,
        "warmup_cycles_excluded": warmup,
        "cycles_per_sec": pair["batched"],
        "object_cycles_per_sec": pair["object"],
        "speedup": pair["batched"] / pair["object"],
        "results_identical": summaries["object"] == summaries["batched"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# end-to-end latency/load sweep vs the seed implementation
# ---------------------------------------------------------------------------

#: wall-clock of benchmarks/bench_latency_load.py run() at the growth
#: seed (commit 2f8009c), measured on the reference machine the current
#: number is measured on — the denominator of the tracked speedup
SEED_LATENCY_SWEEP_S = 28.70


def bench_latency_sweep(rounds: int = 3) -> dict:
    try:
        from benchmarks.bench_latency_load import run as sweep
    except ImportError:  # executed as a script: benchmarks/ is sys.path[0]
        from bench_latency_load import run as sweep
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        sweep()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return {
        "seed_wallclock_s": SEED_LATENCY_SWEEP_S,
        "current_wallclock_s": best,
        "speedup_vs_seed": SEED_LATENCY_SWEEP_S / best,
    }


# ---------------------------------------------------------------------------
# parallel sweep engine: serial vs N workers vs warm cache
# ---------------------------------------------------------------------------

def sweep_specs(quick: bool) -> list[WorkloadSpec]:
    """The latency/load grid as independent sweep points (the full grid
    mirrors benchmarks/bench_latency_load.py)."""
    if quick:
        algos, loads, cycles = ("xy", "nara"), (0.05, 0.15), 600
    else:
        algos = ("xy", "nara", "spanning_tree")
        loads, cycles = (0.05, 0.10, 0.20, 0.30, 0.40), 2200
    return [WorkloadSpec(topology=Mesh2D(WIDTH, HEIGHT), algorithm=algo,
                         load=load, cycles=cycles, warmup=600, seed=13,
                         drain=False)
            for algo in algos for load in loads]


def bench_parallel_sweep(workers: int, quick: bool,
                         cache: bool = True) -> dict:
    """Three passes over the same grid: serial in-process, ``workers``
    processes (cold cache), and a warm-cache replay — results must be
    byte-identical across all three.

    Quick mode uses the persistent default cache directory so a second
    quick invocation (CI runs the smoke twice) sees cross-process cache
    hits; full mode uses a throwaway directory so the cold-run timing
    is honest on developer machines.
    """
    specs = sweep_specs(quick)
    cache_dir = None if quick else tempfile.mkdtemp(prefix="repro-sweep-")
    try:
        t0 = time.perf_counter()
        serial = run_sweep(specs, workers=0, cache=False)
        serial_s = time.perf_counter() - t0

        cold_stats: dict = {}
        t0 = time.perf_counter()
        cold = run_sweep(specs, workers=workers, cache=cache,
                         cache_dir=cache_dir, progress=True,
                         label="parallel_sweep", stats=cold_stats)
        parallel_s = time.perf_counter() - t0

        warm_stats: dict = {}
        t0 = time.perf_counter()
        warm = run_sweep(specs, workers=workers, cache=cache,
                         cache_dir=cache_dir, stats=warm_stats)
        warm_s = time.perf_counter() - t0
    finally:
        if cache_dir is not None:
            shutil.rmtree(cache_dir, ignore_errors=True)

    dump = lambda rows: json.dumps(rows, sort_keys=True)  # noqa: E731
    return {
        "points": len(specs),
        "workers": workers,
        "machine_cpus": os.cpu_count(),
        "serial_wallclock_s": serial_s,
        "parallel_wallclock_s": parallel_s,
        "parallel_speedup": serial_s / parallel_s,
        "warm_cache_wallclock_s": warm_s,
        "warm_cache_fraction_of_serial": warm_s / serial_s,
        "cache_hits_initial": cold_stats.get("cache_hits", 0),
        "warm_cache_hits": warm_stats.get("cache_hits", 0),
        "results_identical": dump(serial) == dump(cold) == dump(warm),
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run(quick: bool = False, workers: int = 0, cache: bool = True) -> dict:
    if quick:
        decisions = bench_decisions(repeats=50, rounds=2)
        sim_low = bench_sim(cycles=300, rounds=1, load=0.04)
        sim_mod = bench_sim(cycles=300, rounds=1, load=0.2)
    else:
        decisions = bench_decisions(repeats=400, rounds=5)
        sim_low = bench_sim(cycles=2000, rounds=3, load=0.04)
        sim_mod = bench_sim(cycles=2000, rounds=3, load=0.2)
    report = {
        "mesh": f"{WIDTH}x{HEIGHT}",
        "quick": quick,
        "decision_throughput": decisions,
        # at low load most routers are idle most cycles — the active-set
        # scan's home turf; at saturation both settings do similar work
        "simulation_throughput_low_load": sim_low,
        "simulation_throughput_moderate_load": sim_mod,
        "batched_engine": bench_batched_engine(quick),
        "large_mesh": bench_large_mesh(quick),
        "hypercube": bench_hypercube(quick),
        "parallel_sweep": bench_parallel_sweep(workers or 4, quick,
                                               cache=cache),
    }
    if not quick:
        report["latency_load_sweep"] = bench_latency_sweep()
    return report


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small repeat counts (CI smoke test)")
    ap.add_argument("--out", default=None,
                    help="write the JSON report here (default: "
                         "BENCH_engine.json next to the repo root; "
                         "'-' prints to stdout only)")
    add_sweep_args(ap)
    args = ap.parse_args(argv)
    report = run(quick=args.quick, workers=args.workers, cache=args.cache)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out != "-":
        import pathlib
        out = pathlib.Path(args.out) if args.out else \
            pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"
        out.write_text(text + "\n")
        print(f"wrote {out}")


if __name__ == "__main__":
    main()

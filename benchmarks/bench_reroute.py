"""Fast-reroute recovery gap: precompiled backups vs diagnosis-only.

The tentpole claim of the fast-reroute layer (docs/ROBUSTNESS.md) is
that precompiled backup rule subbases close the recovery gap: with
source retransmission *disabled* (``retry_limit=0``) a chaos campaign
must lose nothing when backups are armed, and every scenario's
loss window — cycles between a fault landing and routing working
again — must be strictly smaller than the diagnosis-flood slow path
achieves on its own.

This benchmark runs the same fixed-seed campaign twice (identical
fault draws and traffic; only ``backup_routes`` differs) and reports:

* ``reroute.cycles_of_loss`` — summed per-fault loss windows with
  backups on (fault cycle to local confirmation, when backups arm);
* ``reroute.time_to_recover_cycles`` — the worst single loss window
  with backups on;
* the backups-off counterparts, and the per-scenario comparison CI
  asserts on (zero dead letters / silent loss with backups, strictly
  smaller loss window in every scenario).

Both tracked metrics are *lower-is-better* and deterministic for a
given seed, so ``check_regression.py`` holds them to the committed
``BENCH_reroute.json`` baseline (quick runs compare against its
``quick_reference`` section).

Run directly::

    PYTHONPATH=src python benchmarks/bench_reroute.py
    PYTHONPATH=src python benchmarks/bench_reroute.py --quick
"""

from __future__ import annotations

import argparse
import json

from repro.experiments import run_campaign

#: the CI scenario: small enough for the chaos-recovery lane, large
#: enough that worms are mid-flight when links die
SCENARIO = dict(
    width=6, height=6, algorithm="updown", n_link_faults=2,
    load=0.12, message_length=6, cycles=1500, warmup=200, seed=7,
    detection_delay=40, diagnosis_hop_delay=2,
    retry_limit=0, retry_backoff=16,
)


def _campaign(n_scenarios: int, backups: bool) -> dict:
    return run_campaign(n_scenarios, workers=0, cache=False,
                        backup_routes=backups, **SCENARIO)


def run(quick: bool = False, n_scenarios: int | None = None) -> dict:
    n = n_scenarios or (4 if quick else 12)
    off = _campaign(n, backups=False)
    on = _campaign(n, backups=True)

    per_scenario = []
    strictly_smaller = True
    for s_on, s_off in zip(on["scenarios"], off["scenarios"]):
        row = {
            "scenario": s_on["scenario"],
            "cycles_of_loss": s_on["cycles_of_loss"],
            "cycles_of_loss_no_backup": s_off["cycles_of_loss"],
            "dead_lettered": s_on["dead_lettered"],
            "dead_lettered_no_backup": s_off["dead_lettered"],
            "silent_loss": s_on["silent_loss"],
            "silent_loss_no_backup": s_off["silent_loss"],
        }
        strictly_smaller &= row["cycles_of_loss"] < \
            row["cycles_of_loss_no_backup"]
        per_scenario.append(row)

    worst = max((e["loss_window"] for s in on["scenarios"]
                 for e in s["fault_events"]), default=0)
    reroute = {
        "time_to_recover_cycles": worst,
        "cycles_of_loss": on["cycles_of_loss"],
        "cycles_of_loss_no_backup": off["cycles_of_loss"],
        "dead_letters": on["dead_lettered"],
        "dead_letters_no_backup": off["dead_lettered"],
        "silent_loss": on["silent_loss"],
        "silent_loss_no_backup": off["silent_loss"],
        "delivery_rate": on["delivery_rate"],
        "delivery_rate_no_backup": off["delivery_rate"],
        "strictly_smaller_every_scenario": strictly_smaller,
        "per_scenario": per_scenario,
    }
    return {
        "quick": quick,
        "n_scenarios": n,
        "scenario": dict(SCENARIO),
        "reroute": reroute,
    }


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer scenarios (CI smoke test)")
    ap.add_argument("--scenarios", type=int, default=None,
                    help="override the scenario count")
    ap.add_argument("--out", default=None,
                    help="write the JSON report here (default: "
                         "BENCH_reroute.json next to the repo root; "
                         "'-' prints to stdout only)")
    args = ap.parse_args(argv)
    report = run(quick=args.quick, n_scenarios=args.scenarios)
    if not args.quick and args.scenarios is None:
        # the committed baseline doubles as the quick-mode reference:
        # the quick campaign is a prefix of the full one, but its
        # aggregates differ, so record them explicitly
        quick_report = run(quick=True)
        report["quick_reference"] = {"reroute": quick_report["reroute"]}
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out != "-":
        import pathlib
        out = pathlib.Path(args.out) if args.out else \
            pathlib.Path(__file__).resolve().parent.parent / \
            "BENCH_reroute.json"
        out.write_text(text + "\n")
        print(f"wrote {out}")


if __name__ == "__main__":
    main()

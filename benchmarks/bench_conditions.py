"""F2 — the paper's Conditions 1-3 (Section 2.1), quantified per
algorithm and fault count.

Condition 1 (fully adaptive minimal, fault-free) holds for NARA/NAFTA
by construction and fails for the oblivious and tree baselines;
Condition 2 (a surviving minimal path is used) holds for the adaptive
schemes; Condition 3 (delivery whenever connected) degrades gracefully
for NAFTA/ROUTE_C with the fault count — the approximation cost the
paper discusses.
"""

import numpy as np

from repro.analysis import (check_condition1, check_conditions_2_3,
                            connected_pairs)
from repro.experiments import save_report, table
from repro.routing import make_algorithm
from repro.sim import (FaultSchedule, FaultState, Hypercube, Mesh2D,
                       Network, random_link_faults)


def condition1_results():
    out = {}
    topo = Mesh2D(5, 5)
    pairs = [(s, d) for s in range(0, 25, 2) for d in range(1, 25, 3)
             if s != d]
    for name in ("nara", "nafta", "xy", "spanning_tree"):
        net = Network(Mesh2D(5, 5), make_algorithm(name))
        res = check_condition1(net, pairs)
        out[name] = res
    return out


def conditions23_sweep():
    rows = []
    rng = np.random.default_rng(11)
    for n_faults in (1, 2, 4):
        topo = Mesh2D(6, 6)
        links = random_link_faults(topo, n_faults, rng)
        sched = FaultSchedule.static(links=links)
        faults = FaultState(topo)
        for ev in sched.events:
            faults.apply(ev)
        pairs = connected_pairs(topo, faults)[::7]
        for algo in ("nafta", "spanning_tree"):
            res = check_conditions_2_3(topo, lambda a=algo: make_algorithm(a),
                                       sched, pairs)
            rows.append({
                "topology": "mesh 6x6", "algorithm": algo,
                "faults": n_faults, "pairs": res["condition3"].pairs,
                "c2_minimal_rate": res["condition2"].minimal_rate,
                "c3_delivery_rate": res["condition3"].delivery_rate,
            })
    # hypercube / ROUTE_C
    for n_faults in (1, 2, 3):
        topo = Hypercube(4)
        nodes = list(range(1, 1 + n_faults))
        sched = FaultSchedule.static(nodes=nodes)
        faults = FaultState(topo)
        for ev in sched.events:
            faults.apply(ev)
        pairs = connected_pairs(topo, faults)[::5]
        res = check_conditions_2_3(topo, lambda: make_algorithm("route_c"),
                                   sched, pairs)
        rows.append({
            "topology": "cube d=4", "algorithm": "route_c",
            "faults": n_faults, "pairs": res["condition3"].pairs,
            "c2_minimal_rate": res["condition2"].minimal_rate,
            "c3_delivery_rate": res["condition3"].delivery_rate,
        })
    return rows


def test_conditions(benchmark):
    c1, rows = benchmark.pedantic(
        lambda: (condition1_results(), conditions23_sweep()),
        rounds=1, iterations=1)

    c1_rows = [{"algorithm": k,
                "fully_adaptive_pairs": f"{v.pairs_fully_adaptive}"
                                        f"/{v.pairs_checked}",
                "condition1": "yes" if v.satisfied else "no"}
               for k, v in c1.items()]
    text = "\n\n".join([
        table(c1_rows, [("algorithm", "algorithm"),
                        ("fully_adaptive_pairs", "adaptive pairs"),
                        ("condition1", "Condition 1")],
              title="Condition 1 (fault-free full minimal adaptivity)"),
        table(rows, [("topology", "topology"), ("algorithm", "algorithm"),
                     ("faults", "faults"), ("pairs", "pairs"),
                     ("c2_minimal_rate", "C2 minimal rate"),
                     ("c3_delivery_rate", "C3 delivery rate")],
              title="Conditions 2/3 under faults"),
    ])
    save_report("conditions", text)

    assert c1["nara"].satisfied and c1["nafta"].satisfied
    assert not c1["xy"].satisfied and not c1["spanning_tree"].satisfied
    by = {(r["algorithm"], r["faults"], r["topology"]): r for r in rows}
    # NAFTA: keeps high minimal-path usage (Condition 2) and delivers
    # almost everything with few faults
    for f in (1, 2, 4):
        r = by[("nafta", f, "mesh 6x6")]
        assert r["c2_minimal_rate"] >= 0.9
        assert r["c3_delivery_rate"] >= 0.85
    # the spanning tree trades Condition 2 away completely
    for f in (1, 2, 4):
        r = by[("spanning_tree", f, "mesh 6x6")]
        assert r["c2_minimal_rate"] < by[("nafta", f, "mesh 6x6")][
            "c2_minimal_rate"]
        assert r["c3_delivery_rate"] == 1.0
    # ROUTE_C delivers everywhere while the cube is not totally unsafe
    for f in (1, 2, 3):
        assert by[("route_c", f, "cube d=4")]["c3_delivery_rate"] >= 0.95

"""F1 — the paper's Figure 2 scenario: "Situation where a specific
node needs much fault knowledge".

A chain of faulty links near a border separates a region; the node at
the chain's head must know the whole chain (Omega(|F|) memory) to route
correctly.  NAFTA's constant-memory approximation instead completes the
region to a convex shape, excluding healthy nodes (Condition 3
violation), while the spanning-tree baseline — which recomputes global
knowledge — still delivers everywhere.
"""

from repro.analysis import check_conditions_2_3, connected_pairs
from repro.experiments import save_report, table
from repro.routing import MeshFaultMap, NaftaRouting, SpanningTreeRouting
from repro.sim import FaultSchedule, FaultState, Mesh2D


def chain_schedule(topo: Mesh2D) -> FaultSchedule:
    """A staircase of faulty nodes running into the west border (the
    grey region of Figure 2)."""
    return FaultSchedule.static(nodes=[
        topo.node_at(0, 3), topo.node_at(1, 4), topo.node_at(2, 5)])


def run():
    topo = Mesh2D(6, 6)
    sched = chain_schedule(topo)

    # distributed constant-memory knowledge: what NAFTA deactivates
    faults = FaultState(topo)
    for ev in sched.events:
        faults.apply(ev)
    fmap = MeshFaultMap(topo, faults)
    deactivated = sorted(topo.coords(n) for n in fmap.blocked_nodes()
                         if faults.node_ok(n))

    pairs = connected_pairs(topo, faults)
    pairs = [p for p in pairs if p[0] == topo.node_at(5, 0)]  # far corner
    res_nafta = check_conditions_2_3(topo, NaftaRouting, sched, pairs)
    res_tree = check_conditions_2_3(topo, SpanningTreeRouting, sched, pairs)
    return deactivated, res_nafta["condition3"], res_tree["condition3"]


def test_fig2_fault_chain(benchmark):
    deactivated, nafta, tree = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"algorithm": "nafta", "pairs": nafta.pairs,
         "delivered": nafta.delivered, "refused": nafta.refused,
         "stuck": nafta.stuck, "rate": nafta.delivery_rate},
        {"algorithm": "spanning_tree", "pairs": tree.pairs,
         "delivered": tree.delivered, "refused": tree.refused,
         "stuck": tree.stuck, "rate": tree.delivery_rate},
    ]
    text = "\n".join([
        "Figure 2 scenario: fault chain at the west border of a 6x6 mesh",
        f"  healthy nodes deactivated by convex completion: {deactivated}",
        "",
        table(rows, [("algorithm", "algorithm"), ("pairs", "pairs"),
                     ("delivered", "delivered"), ("refused", "refused"),
                     ("stuck", "stuck"), ("rate", "delivery rate")],
              title="Condition 3 from the far corner across the chain"),
    ])
    save_report("fig2_fault_chain", text)

    # the convex completion deactivates healthy nodes in the staircase
    assert len(deactivated) >= 3
    # constant-memory NAFTA refuses the deactivated (yet connected)
    # destinations: Condition 3 is violated ...
    assert nafta.refused > 0
    assert nafta.delivery_rate < 1.0
    # ... while full-knowledge tree routing delivers everywhere
    assert tree.delivery_rate == 1.0
    # but NAFTA still serves the vast majority of pairs
    assert nafta.delivery_rate > 0.7

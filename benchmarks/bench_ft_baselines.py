"""Extension — three classes of fault tolerance compared on one faulty
mesh:

* NAFTA: topology-specific, constant per-node state, wave-propagated
  knowledge (the paper's main subject);
* up*/down*: topology-independent, centralized reconfiguration, every
  link usable (the Autonet/Myrinet cluster-network approach the paper's
  introduction situates itself against);
* spanning tree: the trivial Section-2.1 baseline.

Expected shape: NAFTA wins on latency/minimality (it keeps minimal
adaptivity), up*/down* delivers everywhere at moderate cost, the tree
is far behind; only NAFTA refuses any healthy pairs (its Condition-3
concession), only NAFTA pays multi-step decisions.
"""

import numpy as np

from repro.experiments import (WorkloadSpec, run_sweep, save_report,
                               sweep_main, table)
from repro.sim import Mesh2D, random_link_faults

ALGORITHMS = ("nafta", "updown", "spanning_tree")


def run(workers: int = 0, cache: bool = False):
    topo = Mesh2D(8, 8)
    rng = np.random.default_rng(41)
    links = random_link_faults(topo, 6, rng)
    specs = [WorkloadSpec(topology=Mesh2D(8, 8), algorithm=algo,
                          load=0.10, cycles=2500, warmup=500, seed=43,
                          fault_links=list(links))
             for algo in ALGORITHMS]
    rows = []
    for algo, res in zip(ALGORITHMS,
                         run_sweep(specs, workers=workers, cache=cache,
                                   progress=bool(workers),
                                   label="ft_baselines")):
        rows.append({
            "algorithm": algo,
            "latency": res["mean_latency"],
            "p99": res["p99_latency"],
            "hops": res["mean_hops"],
            "throughput": res["throughput_flits_node_cycle"],
            "stuck": res["messages_stuck"],
            "unroutable": res["messages_unroutable"],
            "max_steps": res["max_decision_steps"],
        })
    return rows


def report(rows) -> str:
    return table(rows, [("algorithm", "algorithm"),
                        ("latency", "mean latency"), ("p99", "p99"),
                        ("hops", "mean hops"), ("throughput", "throughput"),
                        ("stuck", "stuck"), ("unroutable", "unroutable"),
                        ("max_steps", "steps")],
                 title="Fault-tolerance classes on an 8x8 mesh with 6 "
                       "random link faults, uniform 0.10 flits/node/cycle")


def test_ft_baselines(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ft_baselines", report(rows))

    by = {r["algorithm"]: r for r in rows}
    # NAFTA keeps the lowest latency and near-minimal hops
    assert by["nafta"]["latency"] <= by["updown"]["latency"]
    assert by["updown"]["latency"] <= by["spanning_tree"]["latency"]
    assert by["nafta"]["hops"] <= by["updown"]["hops"] + 0.5
    # up*/down* and the tree never strand or refuse connected pairs
    for algo in ("updown", "spanning_tree"):
        assert by[algo]["stuck"] == 0
        assert by[algo]["unroutable"] == 0
    # the decision-time cost is NAFTA's alone (multi-step ft decisions)
    assert by["nafta"]["max_steps"] == 3
    assert by["updown"]["max_steps"] == 1


if __name__ == "__main__":
    sweep_main(lambda **kw: save_report("ft_baselines", report(run(**kw))),
               description="three fault-tolerance classes on one "
                           "faulty mesh")

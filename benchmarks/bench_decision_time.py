"""F3 — the impact of routing-decision time on network latency
([DLO97], the motivation for executing rule bases in hardware rather
than software).

Sweeping the cycles one interpretation step costs (1 = the paper's
hardware rule interpreter; larger values model slower, software-like
control) must show latency growing with decision time and saturation
throughput shrinking — the reason "software solutions would limit the
network performance drastically" (Section 4.3).
"""

from repro.experiments import decision_time_sweep, save_report, table
from repro.sim import Mesh2D


def run():
    return decision_time_sweep(
        lambda: Mesh2D(8, 8), "nafta",
        cycles_per_step_list=[1, 2, 4, 8],
        load=0.15, cycles=2000, warmup=400, seed=5)


def test_decision_time(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"cycles_per_step": r["cycles_per_step"],
             "mean_latency": r["mean_latency"],
             "p99_latency": r["p99_latency"],
             "throughput": r["throughput_flits_node_cycle"]}
            for r in results]
    text = table(rows, [("cycles_per_step", "cycles/step"),
                        ("mean_latency", "mean latency"),
                        ("p99_latency", "p99 latency"),
                        ("throughput", "throughput")],
                 title="Decision-time impact on an 8x8 mesh under NAFTA "
                       "(uniform traffic, 0.15 flits/node/cycle)")
    save_report("decision_time", text)

    lat = {r["cycles_per_step"]: r["mean_latency"] for r in results}
    # latency strictly grows with the decision time
    assert lat[1] < lat[2] < lat[4] < lat[8]
    # a software-like 8-cycle decision at least doubles the latency of
    # the single-cycle hardware interpreter
    assert lat[8] > 2 * lat[1]

"""F4 (load curve) — latency versus offered load, the standard figure
of the routing literature the paper's evaluation builds on: adaptive
NAFTA/NARA sustain a higher load than oblivious XY before saturating,
and the spanning-tree baseline saturates far earlier ("uses only a
small fraction of the network links").

Run directly for the sweep-engine flags::

    PYTHONPATH=src python benchmarks/bench_latency_load.py --workers 4
"""

from repro.experiments import (latency_vs_load, line_chart, save_report,
                               sweep_main, table)
from repro.sim import Mesh2D

LOADS = [0.05, 0.10, 0.20, 0.30, 0.40]
ALGORITHMS = ("xy", "nara", "spanning_tree")


def run(workers: int = 0, cache: bool = False):
    out = {}
    for algo in ALGORITHMS:
        out[algo] = latency_vs_load(lambda: Mesh2D(8, 8), algo, LOADS,
                                    cycles=2200, warmup=600, seed=13,
                                    workers=workers, cache=cache,
                                    progress=bool(workers))
    return out


def accepted(points):
    return [p["throughput_flits_node_cycle"] for p in points]


def report(curves) -> str:
    rows = []
    for algo, points in curves.items():
        for p in points:
            rows.append({"algorithm": algo, "offered": p["load"],
                         "accepted": p["throughput_flits_node_cycle"],
                         "latency": p["mean_latency"]})
    chart = line_chart(
        {algo: [(p["load"], p["mean_latency"]) for p in points]
         for algo, points in curves.items()},
        title="mean latency vs offered load (log y)",
        x_label="offered load [flits/node/cycle]", y_label="cycles",
        y_log=True)
    return "\n\n".join([
        table(rows, [("algorithm", "algorithm"), ("offered", "offered"),
                     ("accepted", "accepted"), ("latency", "mean latency")],
              title="Latency vs offered load, 8x8 mesh, uniform traffic, "
                    "4-flit worms"),
        chart,
    ])


def test_latency_vs_load(benchmark):
    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("latency_load", report(curves))

    # all schemes deliver the offered load at 0.05
    for algo in curves:
        assert accepted(curves[algo])[0] > 0.04
    # the spanning tree saturates earliest: at 0.2 offered it accepts
    # clearly less than the adaptive scheme
    sat_tree = accepted(curves["spanning_tree"])[2]
    sat_nara = accepted(curves["nara"])[2]
    assert sat_tree < 0.8 * sat_nara
    # adaptive NARA sustains at least as much accepted load as
    # oblivious XY at the highest offered load
    assert accepted(curves["nara"])[-1] >= 0.95 * accepted(curves["xy"])[-1]
    # latency rises with load for every algorithm
    for algo, points in curves.items():
        lats = [p["mean_latency"] for p in points]
        assert lats[-1] > lats[0]


if __name__ == "__main__":
    sweep_main(lambda **kw: save_report("latency_load", report(run(**kw))),
               description=__doc__.splitlines()[0])

"""Extension experiment — dynamic faults without the diagnosis
idealization.

The paper's assumption iv ("no message is affected during the diagnosis
phase") is, by its own admission, "unrealistic"; it suggests solving
the real case by re-injecting affected messages.  This experiment drops
the idealization: links die mid-traffic in 'harsh' mode, worms caught
on the dying link are ripped up, and we compare plain loss against the
re-injection recovery the paper sketches.
"""

from repro.experiments import save_report, table
from repro.routing import NaftaRouting
from repro.sim import (FaultSchedule, Mesh2D, Network, SimConfig,
                       TrafficGenerator, random_link_faults)

import numpy as np


def run_mode(retransmit: bool, seed: int = 11):
    topo = Mesh2D(8, 8)
    cfg = SimConfig(fault_mode="harsh", retransmit_dropped=retransmit)
    net = Network(topo, NaftaRouting(), config=cfg)
    rng = np.random.default_rng(seed)
    links = random_link_faults(topo, 4, rng)
    sched = FaultSchedule()
    for i, (a, b) in enumerate(links):
        sched.add_link_fault(600 + 150 * i, a, b)
    net.fault_schedule = sched
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.15,
                                        message_length=8, seed=seed + 1))
    net.set_warmup(300)
    net.run(2500)
    net.traffic = None
    net.run_until_drained()
    recovered = {m.header.fields["retry_of"]
                 for m in net.messages.values()
                 if m.header.fields.get("retry_of") is not None
                 and m.delivered is not None}
    lost = sum(1 for m in net.messages.values()
               if m.dropped and m.delivered is None
               and not m.header.fields.get("stuck")
               and m.header.msg_id not in recovered)
    return {
        "mode": "re-inject" if retransmit else "drop",
        "messages": len(net.messages),
        "delivered": net.stats.messages_delivered,
        "ripped_up": net.stats.messages_dropped,
        "lost": lost,
        "latency": net.stats.mean_latency,
    }


def run_quiesce(seed: int = 11):
    topo = Mesh2D(8, 8)
    net = Network(topo, NaftaRouting(), config=SimConfig())
    rng = np.random.default_rng(seed)
    links = random_link_faults(topo, 4, rng)
    sched = FaultSchedule()
    for i, (a, b) in enumerate(links):
        sched.add_link_fault(600 + 150 * i, a, b)
    net.fault_schedule = sched
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.15,
                                        message_length=8, seed=seed + 1))
    net.set_warmup(300)
    net.run(2500)
    net.traffic = None
    net.run_until_drained()
    return {
        "mode": "quiesce (assumption iv)",
        "messages": len(net.messages),
        "delivered": net.stats.messages_delivered,
        "ripped_up": net.stats.messages_dropped,
        "lost": sum(1 for m in net.messages.values()
                    if m.dropped and m.delivered is None
                    and not m.header.fields.get("stuck")),
        "latency": net.stats.mean_latency,
    }


def test_harsh_faults(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_quiesce(), run_mode(False), run_mode(True)],
        rounds=1, iterations=1)
    text = table(rows, [("mode", "fault handling"),
                        ("messages", "messages"),
                        ("delivered", "delivered"),
                        ("ripped_up", "ripped up"),
                        ("lost", "lost"),
                        ("latency", "mean latency")],
                 title="Dynamic faults (4 links dying mid-traffic), 8x8 "
                       "mesh, NAFTA")
    save_report("harsh_faults", text)

    by = {r["mode"]: r for r in rows}
    # the idealized diagnosis loses nothing
    assert by["quiesce (assumption iv)"]["lost"] == 0
    # harsh mode without recovery loses the ripped-up worms
    assert by["drop"]["lost"] > 0
    assert by["drop"]["lost"] <= by["drop"]["ripped_up"]
    # re-injection recovers (almost) everything, as the paper sketches;
    # a re-injected copy can be ripped up again by a later fault
    assert by["re-inject"]["lost"] < by["drop"]["lost"]

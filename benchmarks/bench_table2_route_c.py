"""T2/E5 — regenerate the paper's Table 2: the rule bases of ROUTE_C
(parametric in the hypercube dimension d and adaptivity width a), and
the Section 5 claim that the total rule-table memory for the 64-node
example is small ("The total size of 2960 bits ... is really small").
"""

from repro.experiments import PAPER, save_report
from repro.hwcost import cost_report, render_table2


def build_reports():
    return {(d, a): cost_report("route_c", {"d": d, "a": a})
            for d, a in [(6, 2), (4, 2), (8, 3)]}


def test_table2_route_c(benchmark):
    reports = benchmark.pedantic(build_reports, rounds=1, iterations=1)
    text = "\n\n".join(render_table2(r) for r in reports.values())
    save_report("table2_route_c", text)

    r62 = reports[(6, 2)]
    ours = {r.name: r for r in r62.rows}
    assert set(ours) == {"decide_dir", "decide_vc", "update_state",
                         "adaptivity"}
    # nft column: decide_dir and adaptivity survive in the stripped
    # variant, decide_vc and update_state are fault-tolerance-only
    assert ours["decide_dir"].nft and ours["adaptivity"].nft
    assert not ours["decide_vc"].nft and not ours["update_state"].nft
    # update_state is the widest base (paper: x7) and ours matches that
    # width exactly
    assert ours["update_state"].width == 7
    # E5: total table memory is "really small" — same order as the
    # paper's 2960 bits
    paper_total = PAPER["route_c_total_bits_d6_a2"]
    assert paper_total / 4 < r62.total_table_bits < paper_total * 4
    # table sizes stay essentially flat in d (like the paper's Table 2,
    # where only decide_vc has a 4d factor) — the d-dependence lives in
    # the registers, not the rule tables
    assert reports[(8, 3)].total_table_bits <= 2 * reports[(4, 2)].total_table_bits
    assert (reports[(8, 3)].total_register_bits
            > reports[(4, 2)].total_register_bits)

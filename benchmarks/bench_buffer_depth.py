"""Extension — buffer-depth sensitivity: the hardware cost knob the
paper's architecture leaves to the data path ("the buffers include the
interface to the physical link ... there is no need for much
flexibility here").  Deeper virtual-channel buffers buy latency and
throughput at linear RAM cost; the sweep shows the knee.
"""

from repro.experiments import WorkloadSpec, run_workload, save_report, table
from repro.sim import Mesh2D


def run():
    rows = []
    for depth in (1, 2, 4, 8):
        spec = WorkloadSpec(topology=Mesh2D(8, 8), algorithm="nara",
                            load=0.25, cycles=2000, warmup=500, seed=37,
                            buffer_depth=depth)
        res = run_workload(spec, drain=False)
        rows.append({"depth": depth,
                     "latency": res["mean_latency"],
                     "p99": res["p99_latency"],
                     "throughput": res["throughput_flits_node_cycle"],
                     "buffer_flits_per_router": depth * 2 * 5})
    return rows


def test_buffer_depth(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = table(rows, [("depth", "flits/VC buffer"),
                        ("latency", "mean latency"), ("p99", "p99"),
                        ("throughput", "throughput"),
                        ("buffer_flits_per_router", "buffer RAM (flits)")],
                 title="Buffer-depth sweep, 8x8 mesh, NARA, uniform 0.25 "
                       "flits/node/cycle")
    save_report("buffer_depth", text)

    by = {r["depth"]: r for r in rows}
    # deeper buffers never hurt latency and help at the shallow end
    assert by[1]["latency"] > by[4]["latency"]
    # diminishing returns: 4 -> 8 gains far less than 1 -> 2
    gain_12 = by[1]["latency"] - by[2]["latency"]
    gain_48 = by[4]["latency"] - by[8]["latency"]
    assert gain_12 > gain_48

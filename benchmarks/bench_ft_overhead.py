"""E6 — the paper's headline: "fault tolerance implies a considerable
overhead in hardware cost and in the time required for a routing
decision".

Aggregates both rulesets' compiled costs into ft-vs-nft ratios (table
bits, register bits, virtual channels, interpretation steps) and checks
every overhead is present and considerable.
"""

from repro.experiments import PAPER, save_report, table
from repro.hwcost import cost_report
from repro.routing import make_algorithm


def build():
    nafta = cost_report("nafta")
    route_c = cost_report("route_c", {"d": 6, "a": 2})
    rows = []
    for label, rep, ft_algo, nft_algo in (
            ("NAFTA vs NARA (mesh)", nafta, "nafta", "nara"),
            ("ROUTE_C vs stripped (cube)", route_c, "route_c",
             "route_c_nft")):
        ft = make_algorithm(ft_algo)
        nft = make_algorithm(nft_algo)
        rows.append({
            "pair": label,
            "table_bits_total": rep.total_table_bits,
            "table_bits_nft": rep.nft_table_bits,
            "table_overhead": (rep.total_table_bits - rep.nft_table_bits)
            / max(1, rep.nft_table_bits),
            "reg_bits_total": rep.total_register_bits,
            "reg_bits_ft_only": rep.ft_only_register_bits,
            "vcs_ft": ft.n_vcs,
            "vcs_nft": nft.n_vcs,
            "steps_ft_worst": ft.decision_steps_range()[1],
            "steps_nft": nft.decision_steps_range()[1],
        })
    return rows


def test_ft_overhead(benchmark):
    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = table(rows, [
        ("pair", "pair"),
        ("table_bits_total", "tbl bits"),
        ("table_bits_nft", "tbl nft"),
        ("table_overhead", "tbl ovh"),
        ("reg_bits_total", "reg bits"),
        ("reg_bits_ft_only", "reg ft"),
        ("vcs_ft", "VC ft"), ("vcs_nft", "VC nft"),
        ("steps_ft_worst", "steps ft"), ("steps_nft", "steps nft"),
    ], title="Fault-tolerance overhead summary (paper Section 5/6)")
    save_report("ft_overhead", text)

    for r in rows:
        # hardware: ft variant needs strictly more table memory and
        # registers than the stripped one
        assert r["table_overhead"] > 0.25, r["pair"]
        assert r["reg_bits_ft_only"] > 0, r["pair"]
        # time: more interpretation steps in the worst case
        assert r["steps_ft_worst"] > r["steps_nft"], r["pair"]
    by = {r["pair"]: r for r in rows}
    # NAFTA's ft cost is dominated by state handling (VC count equal);
    # ROUTE_C's is dominated by the fivefold virtual channel demand —
    # the paper's closing observation
    nafta = by["NAFTA vs NARA (mesh)"]
    rc = by["ROUTE_C vs stripped (cube)"]
    assert nafta["vcs_ft"] == nafta["vcs_nft"] == PAPER["nafta_vcs"]
    assert rc["vcs_ft"] == PAPER["route_c_vcs"]
    assert rc["vcs_nft"] == 1

"""T1 — regenerate the paper's Table 1: the rule bases of NAFTA.

For every rule base: compiled table size (entries x width), FCFB
inventory, and whether the base is needed by the non-fault-tolerant
variant (NARA).  Shape claims checked: the same rule-base inventory
exists, the message-handling bases dominate the table memory, and the
fault-tolerance-only bases account for a considerable share.
"""

from repro.experiments import PAPER_TABLE1, save_report
from repro.hwcost import cost_report, render_table1


def build_report():
    return cost_report("nafta")


def test_table1_nafta(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    text = render_table1(report)
    save_report("table1_nafta", text)

    ours = {r.name: r for r in report.rows}
    # same rule-base inventory as the paper
    assert set(ours) == set(PAPER_TABLE1)
    # the nft marks match the paper's "*" column
    for name, (_, _, _, _, nft) in PAPER_TABLE1.items():
        assert ours[name].nft == nft, name
    # the two message-decision bases dominate table memory, as in the
    # paper (1024x8 and 256x7 are its two largest entries)
    top2 = {r.name for r in report.rows[:2]}
    assert "incoming_message" in top2 or "in_message_ft" in top2
    # fault tolerance costs a considerable share of the rule tables
    assert report.ft_overhead_fraction() > 0.3
    # same order of magnitude as the paper's total
    paper_total = sum(e * w for e, w, *_ in PAPER_TABLE1.values())
    assert paper_total / 10 < report.total_table_bits < paper_total * 10

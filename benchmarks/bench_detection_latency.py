"""Extension — fault-detection latency (the heartbeat layer of
Figure 3's Information Units).

The paper's assumption iv idealizes diagnosis as instantaneous and
message-safe.  Here links die mid-traffic in 'harsh' mode and the
routers only *learn* of each fault after a heartbeat-timeout window,
during which worms keep steering into the dead link and stall.  The
sweep shows detection latency translating directly into tail latency
and rip-up losses — the engineering argument for fast Information
Units.
"""

from repro.experiments import save_report, table
from repro.routing import NaftaRouting
from repro.sim import (FaultSchedule, Mesh2D, Network, SimConfig,
                       TrafficGenerator)


def run_delay(delay: int):
    topo = Mesh2D(8, 8)
    cfg = SimConfig(fault_mode="harsh", detection_delay=delay)
    net = Network(topo, NaftaRouting(), config=cfg)
    sched = FaultSchedule()
    sched.add_link_fault(600, topo.node_at(3, 3), topo.node_at(4, 3))
    sched.add_link_fault(900, topo.node_at(4, 4), topo.node_at(4, 5))
    net.fault_schedule = sched
    net.attach_traffic(TrafficGenerator(topo, "uniform", load=0.15,
                                        message_length=6, seed=47))
    net.set_warmup(300)
    net.run(2500)
    net.traffic = None
    net.run_until_drained()
    lost = sum(1 for m in net.messages.values()
               if m.dropped and m.delivered is None
               and not m.header.fields.get("stuck"))
    return {
        "detection_delay": delay,
        "mean_latency": net.stats.mean_latency,
        "p99_latency": net.stats.p99_latency,
        "ripped_up": net.stats.messages_dropped,
        "lost": lost,
    }


def test_detection_latency(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_delay(d) for d in (0, 50, 200, 600)],
        rounds=1, iterations=1)
    text = table(rows, [("detection_delay", "detection delay"),
                        ("mean_latency", "mean latency"),
                        ("p99_latency", "p99"),
                        ("ripped_up", "ripped up"), ("lost", "lost")],
                 title="Heartbeat detection latency, 2 dynamic link "
                       "faults, 8x8 mesh, NAFTA (harsh mode)")
    save_report("detection_latency", text)

    by = {r["detection_delay"]: r for r in rows}
    # slower detection inflates the tail: messages stall at the dead
    # link until the heartbeat times out
    assert by[600]["p99_latency"] > by[0]["p99_latency"]
    assert by[600]["mean_latency"] >= by[0]["mean_latency"]
    # every configuration still drains and accounts for its messages
    for r in rows:
        assert r["lost"] <= r["ripped_up"]

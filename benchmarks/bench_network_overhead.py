"""F4 — network-level fault-tolerance behaviour: graceful degradation
of NAFTA and ROUTE_C versus their nft variants and the spanning-tree
baseline.

Shape claims: (a) fault-free, the ft algorithms match their nft
variants; (b) under faults the ft algorithms keep delivering with
moderately higher latency (graceful degradation) while the nft
variants wedge or drop traffic; (c) the spanning tree survives faults
but pays a large latency/throughput penalty even fault-free — the
paper's argument for real fault-tolerant routing.
"""

from repro.experiments import (WorkloadSpec, mesh_fault_sweep, run_sweep,
                               save_report, sweep_main, table)
from repro.sim import Mesh2D

FAULT_FREE = ("nara", "nafta", "spanning_tree")


def _row(algorithm, faults, res):
    return {"algorithm": algorithm, "faults": faults,
            "latency": res["mean_latency"],
            "hops": res["mean_hops"],
            "throughput": res["throughput_flits_node_cycle"],
            "stuck": res["messages_stuck"],
            "unroutable": res["messages_unroutable"],
            "misrouted": res["misrouted_fraction"]}


def run(workers: int = 0, cache: bool = False):
    rows = []
    # fault-free comparison incl. the spanning-tree baseline
    specs = [WorkloadSpec(topology=Mesh2D(8, 8), algorithm=algo,
                          load=0.10, cycles=2500, warmup=500, seed=21)
             for algo in FAULT_FREE]
    for algo, res in zip(FAULT_FREE,
                         run_sweep(specs, workers=workers, cache=cache,
                                   progress=bool(workers),
                                   label="network_overhead[fault-free]")):
        rows.append(_row(algo, 0, res))
    # fault sweep for NAFTA
    for res in mesh_fault_sweep("nafta", [2, 4, 8], load=0.10,
                                cycles=2500, warmup=500, workers=workers,
                                cache=cache, progress=bool(workers)):
        rows.append(_row("nafta", res["n_link_faults"], res))
    # spanning tree under the same faults (the trivial ft baseline)
    for res in mesh_fault_sweep("spanning_tree", [4], load=0.10,
                                cycles=2500, warmup=500, workers=workers,
                                cache=cache, progress=bool(workers)):
        rows.append(_row("spanning_tree", res["n_link_faults"], res))
    return rows


def report(rows) -> str:
    return table(rows, [("algorithm", "algorithm"), ("faults", "link faults"),
                        ("latency", "mean latency"), ("hops", "mean hops"),
                        ("throughput", "throughput"), ("stuck", "stuck"),
                        ("unroutable", "unroutable"),
                        ("misrouted", "misrouted frac")],
                 title="Network-level fault tolerance, 8x8 mesh, uniform "
                       "0.10 flits/node/cycle")


def test_network_overhead(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("network_overhead", report(rows))

    by = {(r["algorithm"], r["faults"]): r for r in rows}
    # (a) fault-free: NAFTA == NARA within noise
    assert abs(by[("nafta", 0)]["latency"] - by[("nara", 0)]["latency"]) \
        < 0.10 * by[("nara", 0)]["latency"]
    # (c) the spanning tree pays heavily even without faults
    assert by[("spanning_tree", 0)]["hops"] > 1.3 * by[("nafta", 0)]["hops"]
    assert by[("spanning_tree", 0)]["latency"] > \
        1.3 * by[("nafta", 0)]["latency"]
    # (b) graceful degradation: with 8 link faults NAFTA still delivers
    # the offered traffic at bounded extra latency
    r8 = by[("nafta", 8)]
    assert r8["throughput"] > 0.8 * by[("nafta", 0)]["throughput"]
    assert r8["latency"] < 3 * by[("nafta", 0)]["latency"]
    assert r8["misrouted"] > 0  # detours actually happened


if __name__ == "__main__":
    sweep_main(lambda **kw: save_report("network_overhead",
                                        report(run(**kw))),
               description=__doc__.splitlines()[0])

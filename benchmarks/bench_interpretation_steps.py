"""E3 — interpretation steps per routing decision (paper Section 5).

"While NAFTA in the fault-free case proceeds with one step and in the
worst case needs three, ROUTE_C always needs two steps.  In both cases
this overhead in time accounts to fault-tolerance.  The non-fault-
tolerant routing algorithm NARA and a stripped down variant of ROUTE_C
can be implemented with only one interpretation per message."

Measured by running real traffic through the simulator and reading the
per-decision step counters.
"""

from repro.experiments import PAPER, WorkloadSpec, run_workload, save_report, table
from repro.sim import Hypercube, Mesh2D


def run_all():
    results = []
    scenarios = [
        ("nara", Mesh2D(8, 8), [], "mesh, fault-free"),
        ("nafta", Mesh2D(8, 8), [], "mesh, fault-free"),
        ("nafta", Mesh2D(8, 8), [(27, 28), (27, 35)], "mesh, 2 link faults"),
        ("route_c_nft", Hypercube(4), [], "cube, fault-free"),
        ("route_c", Hypercube(4), [], "cube, fault-free"),
        ("route_c", Hypercube(4), [(0, 1), (5, 7)], "cube, 2 link faults"),
    ]
    for algo, topo, links, label in scenarios:
        spec = WorkloadSpec(topology=topo, algorithm=algo, load=0.1,
                            cycles=1500, warmup=300, fault_links=links)
        res = run_workload(spec)
        res["scenario"] = f"{algo} ({label})"
        results.append(res)
    return results


def test_interpretation_steps(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [{"scenario": r["scenario"],
             "mean_steps": r["mean_decision_steps"],
             "max_steps": r["max_decision_steps"],
             "decisions": r["decisions"]} for r in results]
    text = table(rows, [("scenario", "scenario"),
                        ("mean_steps", "mean steps"),
                        ("max_steps", "max steps"),
                        ("decisions", "decisions")],
                 title="Interpretation steps per routing decision "
                       "(paper: NARA 1, NAFTA 1..3, stripped ROUTE_C 1, "
                       "ROUTE_C 2)")
    save_report("interpretation_steps", text)

    by = {r["scenario"]: r for r in results}
    assert by["nara (mesh, fault-free)"]["max_decision_steps"] == \
        PAPER["nft_steps"]
    assert by["nafta (mesh, fault-free)"]["max_decision_steps"] == \
        PAPER["nafta_steps_fault_free"]
    assert by["nafta (mesh, 2 link faults)"]["max_decision_steps"] == \
        PAPER["nafta_steps_worst"]
    assert by["route_c_nft (cube, fault-free)"]["max_decision_steps"] == \
        PAPER["nft_steps"]
    for label in ("route_c (cube, fault-free)",
                  "route_c (cube, 2 link faults)"):
        assert by[label]["mean_decision_steps"] == PAPER["route_c_steps"]
        assert by[label]["max_decision_steps"] == PAPER["route_c_steps"]

"""Adversarial load-balance sweep: selection policy x traffic pattern
x fault load.

The pluggable output-selection policies (``repro.routing.select``,
docs/PERFORMANCE.md) choose among the legal candidate outputs a
routing algorithm certifies; this benchmark measures what that choice
is worth under traffic that punishes bad balancing.  Every
(policy, pattern, fault-load) cell runs the same seeded workload near
saturation through the sweep pool and reports:

* accepted throughput (flits/node/cycle) — the saturation measure;
* mean latency of the measured window;
* **link imbalance** — max over the fabric's directed links of the
  per-link flit count, divided by the mean over all alive directed
  links (from the obs layer's per-link flit counters).  1.0 is a
  perfectly even fabric; a policy that dumps every worm onto one
  trunk scores high.

The committed ``BENCH_loadbalance.json`` is the CI baseline:
``check_regression.py`` holds the per-policy mean throughputs
(higher-is-better) and the imbalance aggregates (lower-is-better) to
it, quick runs against its ``quick_reference`` section.  All cells are
deterministic for a given seed — the sweep is bit-reproducible.

Run directly::

    PYTHONPATH=src python benchmarks/bench_loadbalance.py
    PYTHONPATH=src python benchmarks/bench_loadbalance.py --quick
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro.experiments import WorkloadSpec, run_sweep
from repro.sim import Mesh2D, random_link_faults

POLICIES = ("deterministic", "ecmp", "flowlet", "credit")

#: near-saturation offered load per pattern (8x8 mesh, nafta): high
#: enough that accepted throughput — not offered load — is measured
FULL = dict(width=8, height=8, algorithm="nafta", load=0.30,
            message_length=4, cycles=1200, warmup=200, seed=11,
            patterns=("transpose", "hotspot", "bursty"),
            fault_loads=(0, 3))

QUICK = dict(width=6, height=6, algorithm="nafta", load=0.30,
             message_length=4, cycles=600, warmup=100, seed=11,
             patterns=("transpose", "bursty"),
             fault_loads=(0, 2))


def _pattern_kwargs(pattern: str) -> dict:
    if pattern == "bursty":
        return {"duty": 0.25, "burst_len": 20}
    return {}


def _make_specs(cfg: dict) -> list[tuple[dict, WorkloadSpec]]:
    """One spec per (policy, pattern, fault-load) cell, with the cell
    identity riding alongside."""
    out = []
    for n_faults in cfg["fault_loads"]:
        topo = Mesh2D(cfg["width"], cfg["height"])
        rng = np.random.default_rng([cfg["seed"], n_faults])
        links = random_link_faults(topo, n_faults, rng) if n_faults else []
        for pattern in cfg["patterns"]:
            for policy in POLICIES:
                cell = {"policy": policy, "pattern": pattern,
                        "n_link_faults": n_faults}
                out.append((cell, WorkloadSpec(
                    topology=Mesh2D(cfg["width"], cfg["height"]),
                    algorithm=cfg["algorithm"], pattern=pattern,
                    pattern_kwargs=_pattern_kwargs(pattern),
                    load=cfg["load"],
                    message_length=cfg["message_length"],
                    cycles=cfg["cycles"], warmup=cfg["warmup"],
                    seed=cfg["seed"], fault_links=links,
                    drain=False, metrics_stride=200,
                    policy=policy, policy_seed=cfg["seed"])))
    return out


def link_imbalance(metrics: dict, topology, fault_links) -> float:
    """max/mean per-link flits over the alive directed links.  Links
    that carried nothing still count toward the mean — an unused link
    *is* imbalance — but faulted links are excluded (no policy can use
    them)."""
    counts = metrics.get("link_flits", {})
    dead = {(min(a, b), max(a, b)) for a, b in fault_links}
    n_links = 0
    for node in topology.nodes():
        for nbr in topology.neighbors(node):
            if (min(node, nbr), max(node, nbr)) not in dead:
                n_links += 1
    total = sum(counts.values())
    if not n_links or not total:
        return 0.0
    return max(counts.values()) / (total / n_links)


def run(quick: bool = False, workers: int = 0) -> dict:
    cfg = QUICK if quick else FULL
    cells_specs = _make_specs(cfg)
    results = run_sweep([s for _, s in cells_specs], workers=workers,
                        cache=False, label="bench_loadbalance")
    rows = []
    for (cell, spec), res in zip(cells_specs, results):
        metrics = res.get("metrics", {})
        rows.append({
            **cell,
            "throughput": res["throughput_flits_node_cycle"],
            "mean_latency": res["mean_latency"],
            "p99_latency": res["p99_latency"],
            "imbalance": link_imbalance(metrics, spec.build_topology(),
                                        spec.fault_links),
            "messages_delivered": res["messages_delivered"],
            "deadlocked": res["deadlocked"],
        })

    def agg(pred, key):
        vals = [r[key] for r in rows if pred(r)]
        return sum(vals) / len(vals) if vals else 0.0

    loadbalance = {"rows": rows}
    for policy in POLICIES:
        loadbalance[f"{policy}_throughput"] = agg(
            lambda r, p=policy: r["policy"] == p, "throughput")
        loadbalance[f"{policy}_imbalance"] = agg(
            lambda r, p=policy: r["policy"] == p, "imbalance")
    loadbalance["mean_imbalance"] = agg(lambda r: True, "imbalance")
    return {
        "quick": quick,
        "config": {k: (list(v) if isinstance(v, tuple) else v)
                   for k, v in cfg.items()},
        "loadbalance": loadbalance,
    }


def table_text(report: dict) -> str:
    """The policy x pattern comparison table CI uploads as an
    artifact."""
    rows = report["loadbalance"]["rows"]
    head = (f"{'policy':<14} {'pattern':<10} {'faults':>6} "
            f"{'throughput':>11} {'latency':>9} {'imbalance':>10}")
    lines = [head, "-" * len(head)]
    for r in rows:
        lines.append(
            f"{r['policy']:<14} {r['pattern']:<10} "
            f"{r['n_link_faults']:>6} {r['throughput']:>11.4f} "
            f"{r['mean_latency']:>9.1f} {r['imbalance']:>10.2f}")
    lines.append("-" * len(head))
    lb = report["loadbalance"]
    for policy in POLICIES:
        lines.append(f"{policy:<14} mean throughput "
                     f"{lb[f'{policy}_throughput']:.4f}  "
                     f"mean imbalance {lb[f'{policy}_imbalance']:.2f}")
    return "\n".join(lines)


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="smaller mesh / fewer cells (CI smoke test)")
    ap.add_argument("--workers", type=int, default=0,
                    help="sweep-pool worker processes (0 = in-process)")
    ap.add_argument("--table", default=None, metavar="PATH",
                    help="also write the comparison table as text")
    ap.add_argument("--out", default=None,
                    help="write the JSON report here (default: "
                         "BENCH_loadbalance.json next to the repo "
                         "root; '-' prints to stdout only)")
    args = ap.parse_args(argv)
    report = run(quick=args.quick, workers=args.workers)
    if not args.quick:
        # the committed baseline doubles as the quick-mode reference
        # (same convention as BENCH_reroute.json): quick cells differ
        # in mesh size and cycle count, so record their aggregates
        quick_report = run(quick=True, workers=args.workers)
        report["quick_reference"] = {
            "loadbalance": quick_report["loadbalance"]}
    print(table_text(report))
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.table:
        import pathlib
        pathlib.Path(args.table).write_text(table_text(report) + "\n")
        print(f"wrote {args.table}")
    if args.out != "-":
        import pathlib
        out = pathlib.Path(args.out) if args.out else \
            pathlib.Path(__file__).resolve().parent.parent / \
            "BENCH_loadbalance.json"
        out.write_text(text + "\n")
        print(f"wrote {out}")


if __name__ == "__main__":
    main()

"""F5 — machine-checked deadlock freedom (the property every routing
algorithm in the paper must establish; Section 3 "Deadlock Avoidance").

For each algorithm and a family of fault patterns, the channel
dependency graph extracted from the actual routing relation must be
acyclic [DaS87]; a deliberately broken u-turn router is included as a
negative control to show the checker has teeth.
"""

import numpy as np

from repro.analysis import check_deadlock_free
from repro.experiments import save_report, table
from repro.routing import make_algorithm
from repro.sim import FaultSchedule, Hypercube, Mesh2D, random_link_faults


def run():
    rows = []
    cases = [
        ("xy", Mesh2D(5, 5), None),
        ("nara", Mesh2D(5, 5), None),
        ("nafta", Mesh2D(5, 5), None),
        ("spanning_tree", Mesh2D(5, 5), None),
        ("ecube", Hypercube(3), None),
        ("route_c_nft", Hypercube(3), None),
        ("route_c", Hypercube(3), None),
        ("route_c", Hypercube(4), FaultSchedule.static(nodes=[3, 9])),
    ]
    rng = np.random.default_rng(9)
    for i in range(3):
        topo = Mesh2D(6, 6)
        links = random_link_faults(topo, 4, rng)
        cases.append(("nafta", topo, FaultSchedule.static(links=links)))
    for algo, topo, sched in cases:
        r = check_deadlock_free(topo, make_algorithm(algo), sched)
        s = r.summary()
        rows.append({
            "algorithm": algo,
            "topology": f"{type(topo).__name__}({topo.n_nodes})",
            "faults": 0 if sched is None else len(sched.events),
            "channels": s["channels"],
            "dependencies": s["dependencies"],
            "states": s["reachable_states"],
            "acyclic": "yes" if s["acyclic"] else "NO",
        })
    return rows


def test_deadlock_freedom(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = table(rows, [("algorithm", "algorithm"),
                        ("topology", "topology"), ("faults", "faults"),
                        ("channels", "channels"),
                        ("dependencies", "dependencies"),
                        ("states", "states"), ("acyclic", "acyclic")],
                 title="Channel-dependency-graph acyclicity "
                       "(Dally/Seitz criterion)")
    save_report("deadlock", text)
    assert all(r["acyclic"] == "yes" for r in rows)

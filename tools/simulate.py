#!/usr/bin/env python
"""Simulation CLI: single workload points, chaos campaigns, traces.

Single point::

    python tools/simulate.py run --algorithm nafta --width 8 --height 8 \
        --load 0.15 --cycles 2000

Chaos campaign (randomized mid-flight faults, harsh mode, source
retransmission; see docs/ROBUSTNESS.md)::

    python tools/simulate.py campaign --scenarios 20 --link-faults 2 \
        --workers 4 --seed 1 --json campaign.json

Traced run (docs/OBSERVABILITY.md) — a Chrome trace_event JSON you can
load in https://ui.perfetto.dev, plus an optional per-cycle metrics
timeseries and an ASCII timeline::

    python tools/simulate.py trace --algorithm nafta --load 0.15 \
        --fault 600:link:27,28 --out trace.json --metrics-out metrics.json

``run`` and ``campaign`` accept the same ``--trace``/``--metrics-out``
flags to capture traces from their runs (campaign traces ride through
the sweep engine's worker processes and cache unchanged).

The campaign fans scenarios out through the sweep engine, so
``--workers N`` parallelizes and repeated invocations replay from the
content-addressed result cache (disable with ``--no-cache``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import (add_sweep_args, campaign_table,  # noqa: E402
                               run_campaign, run_workload, WorkloadSpec)
from repro.obs import ascii_timeline, chrome_trace  # noqa: E402
from repro.sim import Hypercube, Mesh2D  # noqa: E402


def _topology(args):
    if args.topology == "mesh":
        return Mesh2D(args.width, args.height)
    return Hypercube(args.dimension)


def _parse_fault(text: str):
    """``cycle:link:a,b`` or ``cycle:node:n`` -> a timed-fault tuple."""
    try:
        cycle, kind, target = text.split(":")
        if kind == "link":
            a, b = target.split(",")
            return (int(cycle), "link", (int(a), int(b)))
        if kind == "node":
            return (int(cycle), "node", int(target))
    except ValueError:
        pass
    raise SystemExit(f"bad --fault {text!r}; use CYCLE:link:A,B "
                     f"or CYCLE:node:N")


def _obs_fields(args) -> dict:
    """WorkloadSpec observability fields implied by the CLI flags."""
    out = {}
    if getattr(args, "trace", None) or args.command == "trace":
        out["trace"] = True
        out["trace_capacity"] = args.trace_capacity
    if getattr(args, "metrics_out", None) or args.command == "trace":
        out["metrics_stride"] = args.metrics_stride
    return out


def _write_trace_outputs(args, trace: dict | None,
                         metrics: dict | None) -> None:
    out_path = getattr(args, "out", None) or getattr(args, "trace", None)
    if out_path and trace is not None:
        doc = chrome_trace(trace, metrics)
        Path(out_path).write_text(json.dumps(doc, sort_keys=True))
        print(f"[chrome trace: {len(doc['traceEvents'])} events "
              f"({trace.get('dropped', 0)} dropped) -> {out_path}]")
    if getattr(args, "metrics_out", None) and metrics is not None:
        Path(args.metrics_out).write_text(
            json.dumps(metrics, sort_keys=True))
        print(f"[metrics: {metrics.get('samples', 0)} samples "
              f"-> {args.metrics_out}]")


def cmd_run(args) -> int:
    spec = WorkloadSpec(
        topology=_topology(args), algorithm=args.algorithm,
        pattern=args.pattern, load=args.load,
        message_length=args.message_length, cycles=args.cycles,
        warmup=args.warmup, seed=args.seed,
        fault_mode=args.fault_mode, detection_delay=args.detection_delay,
        diagnosis_hop_delay=args.diagnosis_hop_delay,
        retry_limit=args.retry_limit, retry_backoff=args.retry_backoff,
        hop_budget=args.hop_budget, engine=args.engine,
        policy=args.policy, policy_seed=args.policy_seed,
        **_obs_fields(args))
    result = run_workload(spec)
    trace = result.pop("trace", None)
    metrics = result.pop("metrics", None)
    print(json.dumps(result, indent=2, sort_keys=True, default=str))
    _write_trace_outputs(args, trace, metrics)
    return 0


def cmd_trace(args) -> int:
    spec = WorkloadSpec(
        topology=_topology(args), algorithm=args.algorithm,
        pattern=args.pattern, load=args.load,
        message_length=args.message_length, cycles=args.cycles,
        warmup=args.warmup, seed=args.seed,
        fault_mode=args.fault_mode, detection_delay=args.detection_delay,
        diagnosis_hop_delay=args.diagnosis_hop_delay,
        retry_limit=args.retry_limit, retry_backoff=args.retry_backoff,
        hop_budget=args.hop_budget, engine=args.engine,
        policy=args.policy, policy_seed=args.policy_seed,
        timed_faults=[_parse_fault(f) for f in args.fault],
        trace=True, trace_capacity=args.trace_capacity,
        metrics_stride=args.metrics_stride)
    result = run_workload(spec)
    trace = result.pop("trace")
    metrics = result.pop("metrics", None)
    print(f"{args.algorithm}: {result['messages_delivered']} delivered, "
          f"{result['messages_dropped']} dropped, "
          f"{result['messages_retried']} retried, "
          f"deadlocked={result['deadlocked']}")
    _write_trace_outputs(args, trace, metrics)
    if args.ascii and metrics is not None:
        print(ascii_timeline(metrics))
    return 0


def cmd_campaign(args) -> int:
    stats: dict = {}
    obs = _obs_fields(args)
    report = run_campaign(
        args.scenarios, workers=args.workers, cache=args.cache,
        progress=args.progress, stats=stats,
        width=args.width, height=args.height,
        n_link_faults=args.link_faults, n_node_faults=args.node_faults,
        algorithm=args.algorithm, load=args.load,
        message_length=args.message_length, cycles=args.cycles,
        warmup=args.warmup, seed=args.seed,
        detection_delay=args.detection_delay,
        diagnosis_hop_delay=args.diagnosis_hop_delay,
        retry_limit=0 if args.no_retry else args.retry_limit,
        retry_backoff=args.retry_backoff,
        hop_budget=args.hop_budget, backup_routes=args.backups == "on",
        engine=args.engine, pattern=args.pattern,
        policy=args.policy, policy_seed=args.policy_seed, **obs)
    # traces/metrics are pulled out of the report (they would dwarf the
    # reliability numbers in --json); the Chrome export is scenario 0 —
    # one run per trace document, as the trace_event format expects
    traces = [s.pop("trace", None) for s in report["scenarios"]]
    metrics = [s.pop("metrics", None) for s in report["scenarios"]]
    print(campaign_table(report))
    if args.trace and traces and traces[0] is not None:
        doc = chrome_trace(traces[0], metrics[0] if metrics else None)
        Path(args.trace).write_text(json.dumps(doc, sort_keys=True))
        print(f"[chrome trace of scenario 0: "
              f"{len(doc['traceEvents'])} events -> {args.trace}]")
    if args.metrics_out and any(m is not None for m in metrics):
        Path(args.metrics_out).write_text(json.dumps(
            {f"scenario_{i}": m for i, m in enumerate(metrics)
             if m is not None}, sort_keys=True))
        print(f"[per-scenario metrics -> {args.metrics_out}]")
    if stats:
        print(f"[{stats.get('simulated', '?')} simulated, "
              f"{stats.get('cache_hits', '?')} cache hits, "
              f"{stats.get('wall_s', 0):.1f}s]")
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True))
        print(f"[report saved to {args.json}]")
    if args.strict and (report["silent_loss"] or report["dead_lettered"]
                        or report["deadlocked_scenarios"]):
        print("STRICT: reliability violations present", file=sys.stderr)
        return 1
    return 0


def _common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--algorithm", default="nafta")
    p.add_argument("--topology", choices=["mesh", "cube"], default="mesh")
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--height", type=int, default=8)
    p.add_argument("--dimension", type=int, default=4,
                   help="hypercube dimension (with --topology cube)")
    p.add_argument("--pattern", default="uniform")
    p.add_argument("--load", type=float, default=0.12)
    p.add_argument("--message-length", type=int, default=6)
    p.add_argument("--cycles", type=int, default=2000)
    p.add_argument("--warmup", type=int, default=200)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--fault-mode", choices=["quiesce", "harsh"],
                   default="harsh")
    p.add_argument("--detection-delay", type=int, default=40)
    p.add_argument("--diagnosis-hop-delay", type=int, default=2)
    p.add_argument("--retry-limit", type=int, default=6)
    p.add_argument("--retry-backoff", type=int, default=16)
    p.add_argument("--hop-budget", type=int, default=0)
    p.add_argument("--engine", choices=["object", "batched"],
                   default="object",
                   help="simulation engine: the per-flit object oracle "
                        "or the batched struct-of-arrays engine "
                        "(bit-identical results, metrics included; "
                        "falls back to object only when tracing is "
                        "attached)")
    p.add_argument("--policy", default="deterministic",
                   choices=["deterministic", "ecmp", "flowlet", "credit"],
                   help="output-selection policy over legal route "
                        "candidates (docs/PERFORMANCE.md; non-default "
                        "policies run on the object engine)")
    p.add_argument("--policy-seed", type=int, default=0,
                   help="hash seed for the ecmp/flowlet policies")


def _obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", metavar="PATH",
                   help="record a trace and write Chrome trace_event "
                        "JSON (ui.perfetto.dev) to PATH")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="sample a per-cycle metrics timeseries and "
                        "write it as JSON to PATH")
    p.add_argument("--trace-capacity", type=int, default=65536,
                   help="trace ring-buffer capacity in events")
    p.add_argument("--metrics-stride", type=int, default=1,
                   help="cycles between metrics samples")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="one simulation point")
    _common(run_p)
    _obs_args(run_p)
    run_p.set_defaults(fault_mode="quiesce", detection_delay=0,
                       diagnosis_hop_delay=0, retry_limit=0)

    camp_p = sub.add_parser("campaign", help="randomized chaos campaign")
    _common(camp_p)
    add_sweep_args(camp_p)
    _obs_args(camp_p)
    camp_p.add_argument("--scenarios", type=int, default=20)
    camp_p.add_argument("--link-faults", type=int, default=2)
    camp_p.add_argument("--node-faults", type=int, default=0)
    camp_p.add_argument("--progress", action="store_true")
    camp_p.add_argument("--json", metavar="PATH",
                        help="also write the full report as JSON")
    camp_p.add_argument("--strict", action="store_true",
                        help="exit 1 on any silent loss, dead letter "
                             "or deadlock")
    camp_p.add_argument("--no-retry", action="store_true",
                        help="disable source retransmission "
                             "(retry_limit=0): isolates what fast "
                             "reroute alone recovers")
    camp_p.add_argument("--backups", choices=["on", "off"], default="off",
                        help="precompiled backup next-hop tables: "
                             "activate LFA-style fast reroute on local "
                             "link-fault confirmation "
                             "(docs/ROBUSTNESS.md)")

    trace_p = sub.add_parser(
        "trace", help="one traced run: Chrome trace JSON + metrics")
    _common(trace_p)
    trace_p.add_argument("--fault", action="append", default=[],
                         metavar="CYCLE:link:A,B | CYCLE:node:N",
                         help="mid-flight fault (repeatable)")
    trace_p.add_argument("--out", default="trace.json", metavar="PATH",
                         help="Chrome trace_event JSON output path")
    trace_p.add_argument("--metrics-out", metavar="PATH",
                         help="also write the metrics timeseries JSON")
    trace_p.add_argument("--trace-capacity", type=int, default=65536)
    trace_p.add_argument("--metrics-stride", type=int, default=1)
    trace_p.add_argument("--ascii", action="store_true",
                         help="print an ASCII timeline of the gauges")

    args = ap.parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "trace":
        return cmd_trace(args)
    return cmd_campaign(args)


if __name__ == "__main__":
    sys.exit(main())

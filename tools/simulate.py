#!/usr/bin/env python
"""Simulation CLI: single workload points and chaos campaigns.

Single point::

    python tools/simulate.py run --algorithm nafta --width 8 --height 8 \
        --load 0.15 --cycles 2000

Chaos campaign (randomized mid-flight faults, harsh mode, source
retransmission; see docs/ROBUSTNESS.md)::

    python tools/simulate.py campaign --scenarios 20 --link-faults 2 \
        --workers 4 --seed 1 --json campaign.json

The campaign fans scenarios out through the sweep engine, so
``--workers N`` parallelizes and repeated invocations replay from the
content-addressed result cache (disable with ``--no-cache``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import (add_sweep_args, campaign_table,  # noqa: E402
                               run_campaign, run_workload, WorkloadSpec)
from repro.sim import Hypercube, Mesh2D  # noqa: E402


def _topology(args):
    if args.topology == "mesh":
        return Mesh2D(args.width, args.height)
    return Hypercube(args.dimension)


def cmd_run(args) -> int:
    spec = WorkloadSpec(
        topology=_topology(args), algorithm=args.algorithm,
        pattern=args.pattern, load=args.load,
        message_length=args.message_length, cycles=args.cycles,
        warmup=args.warmup, seed=args.seed,
        fault_mode=args.fault_mode, detection_delay=args.detection_delay,
        diagnosis_hop_delay=args.diagnosis_hop_delay,
        retry_limit=args.retry_limit, retry_backoff=args.retry_backoff,
        hop_budget=args.hop_budget)
    result = run_workload(spec)
    print(json.dumps(result, indent=2, sort_keys=True, default=str))
    return 0


def cmd_campaign(args) -> int:
    stats: dict = {}
    report = run_campaign(
        args.scenarios, workers=args.workers, cache=args.cache,
        progress=args.progress, stats=stats,
        width=args.width, height=args.height,
        n_link_faults=args.link_faults, n_node_faults=args.node_faults,
        algorithm=args.algorithm, load=args.load,
        message_length=args.message_length, cycles=args.cycles,
        warmup=args.warmup, seed=args.seed,
        detection_delay=args.detection_delay,
        diagnosis_hop_delay=args.diagnosis_hop_delay,
        retry_limit=args.retry_limit, retry_backoff=args.retry_backoff,
        hop_budget=args.hop_budget)
    print(campaign_table(report))
    if stats:
        print(f"[{stats.get('simulated', '?')} simulated, "
              f"{stats.get('cache_hits', '?')} cache hits, "
              f"{stats.get('wall_s', 0):.1f}s]")
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True))
        print(f"[report saved to {args.json}]")
    if args.strict and (report["silent_loss"] or report["dead_lettered"]
                        or report["deadlocked_scenarios"]):
        print("STRICT: reliability violations present", file=sys.stderr)
        return 1
    return 0


def _common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--algorithm", default="nafta")
    p.add_argument("--topology", choices=["mesh", "cube"], default="mesh")
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--height", type=int, default=8)
    p.add_argument("--dimension", type=int, default=4,
                   help="hypercube dimension (with --topology cube)")
    p.add_argument("--pattern", default="uniform")
    p.add_argument("--load", type=float, default=0.12)
    p.add_argument("--message-length", type=int, default=6)
    p.add_argument("--cycles", type=int, default=2000)
    p.add_argument("--warmup", type=int, default=200)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--fault-mode", choices=["quiesce", "harsh"],
                   default="harsh")
    p.add_argument("--detection-delay", type=int, default=40)
    p.add_argument("--diagnosis-hop-delay", type=int, default=2)
    p.add_argument("--retry-limit", type=int, default=6)
    p.add_argument("--retry-backoff", type=int, default=16)
    p.add_argument("--hop-budget", type=int, default=0)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="one simulation point")
    _common(run_p)
    run_p.set_defaults(fault_mode="quiesce", detection_delay=0,
                       diagnosis_hop_delay=0, retry_limit=0)

    camp_p = sub.add_parser("campaign", help="randomized chaos campaign")
    _common(camp_p)
    add_sweep_args(camp_p)
    camp_p.add_argument("--scenarios", type=int, default=20)
    camp_p.add_argument("--link-faults", type=int, default=2)
    camp_p.add_argument("--node-faults", type=int, default=0)
    camp_p.add_argument("--progress", action="store_true")
    camp_p.add_argument("--json", metavar="PATH",
                        help="also write the full report as JSON")
    camp_p.add_argument("--strict", action="store_true",
                        help="exit 1 on any silent loss, dead letter "
                             "or deadlock")

    args = ap.parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    return cmd_campaign(args)


if __name__ == "__main__":
    sys.exit(main())

"""conform — fuzz the routing algorithms against the oracle registry.

Usage::

    python -m repro.tools.conform run --budget 60
    python -m repro.tools.conform run --cases 200 --algorithms nafta,route_c \
        --workers 4 --seed 3
    python -m repro.tools.conform run --budget 30 --mutate route_c_skip_safe_check
    python -m repro.tools.conform replay conformance/corpus/<entry>.json
    python -m repro.tools.conform shrink conformance/corpus/<entry>.json

``run`` generates seeded cases per algorithm (round-robin) until the
time or case budget is spent, fanning them out over the sweep pool.
Failing cases are shrunk to minimal repros and written to the corpus;
the exit status is the number of distinct failing cases (0 = clean).

``replay`` re-runs a corpus entry twice and checks (a) both runs agree
bit-for-bit (decision digest) and (b) the entry's recorded oracle
still fires — exit 0 iff the failure reproduces deterministically.
With ``--expect-clean`` the entry must instead pass every oracle
(useful after a fix lands: the corpus entry becomes a regression
test).

``shrink`` re-shrinks an entry in place (or to ``--out``), e.g. after
the shrinker learned new passes.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time

from ..conformance import (ConformanceCase, generate_cases, run_case_payload,
                           save_entry, shrink_case)
from ..conformance.corpus import load_entry
from ..conformance.mutations import MUTATIONS
from ..experiments.pool import run_parallel
from ..routing.registry import ALGORITHM_META

#: cases dispatched per pool round while a time budget is in force
_CHUNK = 8


def _algorithms(arg: str | None) -> list[str]:
    if not arg:
        return sorted(ALGORITHM_META)
    names = [a.strip() for a in arg.split(",") if a.strip()]
    unknown = [a for a in names if a not in ALGORITHM_META]
    if unknown:
        raise SystemExit(f"unknown algorithm(s): {', '.join(unknown)}; "
                         f"choose from {', '.join(sorted(ALGORITHM_META))}")
    return names


def cmd_run(args) -> int:
    algorithms = _algorithms(args.algorithms)
    if args.mutate and args.mutate not in MUTATIONS:
        raise SystemExit(f"unknown mutation {args.mutate!r}; choose from "
                         f"{', '.join(sorted(MUTATIONS))}")
    frr = bool(getattr(args, "frr", False))
    if frr:
        # FastReroute compiles backup tables around a fault-tolerant
        # inner algorithm; reject nft algorithms up front instead of
        # crashing every worker with the wrapper's ValueError
        from ..routing.registry import ALGORITHMS
        not_ft = [a for a in algorithms if not ALGORITHMS[a]().fault_tolerant]
        if not_ft:
            raise SystemExit(
                f"--frr needs fault-tolerant algorithms; "
                f"{', '.join(not_ft)} are not (pass --algorithms "
                f"with fault-tolerant names only)")
    stream = generate_cases(algorithms, args.seed, mutation=args.mutate)
    if args.cases:
        stream = itertools.islice(stream, args.cases)
    engine = getattr(args, "engine", "object")
    metrics = bool(getattr(args, "metrics", False))
    policy = getattr(args, "policy", "deterministic")
    policy_seed = int(getattr(args, "policy_seed", 0))
    if policy != "deterministic":
        from ..routing.select import POLICIES
        if policy not in POLICIES:
            raise SystemExit(f"unknown selection policy {policy!r}; "
                             f"choose from {', '.join(sorted(POLICIES))}")

    deadline = (time.monotonic() + args.budget) if args.budget else None
    reports: list[dict] = []
    failures: list[dict] = []
    ran = 0
    while True:
        if deadline is not None and time.monotonic() >= deadline:
            break
        chunk = list(itertools.islice(stream, _CHUNK))
        if not chunk:
            break
        payloads = [c.to_dict() for c in chunk]
        if engine != "object" or metrics or frr \
                or policy != "deterministic":
            # engine, metrics, policy and frr are run properties, not
            # part of the scenario — run_case_payload strips them
            # before rebuilding the case
            for p in payloads:
                if engine != "object":
                    p["engine"] = engine
                if metrics:
                    p["metrics_stride"] = 1
                if policy != "deterministic":
                    p["policy"] = policy
                    p["policy_seed"] = policy_seed
                if frr:
                    p["frr"] = True
        reports.extend(run_parallel(payloads, run_case_payload,
                                    workers=args.workers,
                                    progress=args.progress,
                                    label="conform"))
        ran += len(chunk)
        failures = [r for r in reports if r["violations"]]
        if failures and args.fail_fast:
            break
        if args.cases and ran >= args.cases and deadline is None:
            break

    per_algo: dict[str, int] = {}
    for r in reports:
        per_algo[r["algorithm"]] = per_algo.get(r["algorithm"], 0) + 1
    print(f"conform run: {ran} cases, "
          f"{sum(len(r['violations']) for r in reports)} violations "
          f"in {len(failures)} failing cases "
          f"(seed {args.seed}"
          + (f", mutation {args.mutate}" if args.mutate else "")
          + (f", engine {engine}" if engine != "object" else "")
          + (", metrics" if metrics else "")
          + (f", policy {policy}" if policy != "deterministic" else "")
          + (", frr" if frr else "") + ")")
    for name in sorted(per_algo):
        print(f"  {name}: {per_algo[name]} cases")

    for report in failures:
        case = ConformanceCase.from_dict(report["case"])
        oracles = sorted({v["oracle"] for v in report["violations"]})
        print(f"FAIL {case.algorithm} case {report['case_key']}: "
              f"{', '.join(oracles)}")
        for v in report["violations"][:3]:
            print(f"  - [{v['oracle']}] {v['message']}")
        if args.shrink:
            sstats: dict = {}
            small = shrink_case(case, max_evals=args.shrink_evals,
                                stats=sstats)
            sreport = run_case_payload(small.to_dict())
            path = save_entry(small, sreport["violations"],
                              corpus_dir=args.corpus_dir, original=case)
            print(f"  shrunk in {sstats['evals']} evals -> {path}")
        else:
            path = save_entry(case, report["violations"],
                              corpus_dir=args.corpus_dir)
            print(f"  saved -> {path}")

    return len(failures)


def cmd_replay(args) -> int:
    case, expected = load_entry(args.entry)
    first = run_case_payload(case.to_dict())
    second = run_case_payload(case.to_dict())
    if first["digest"] != second["digest"]:
        print(f"NONDETERMINISTIC: digests differ across replays "
              f"({first['digest'][:12]} vs {second['digest'][:12]})")
        return 1
    got = sorted({v["oracle"] for v in first["violations"]})
    if args.json:
        print(json.dumps(first, indent=1, sort_keys=True))
    if args.expect_clean:
        if got:
            print(f"expected clean, but oracles fired: {', '.join(got)}")
            for v in first["violations"][:5]:
                print(f"  - [{v['oracle']}] {v['message']}")
            return 1
        print(f"replay clean: case {first['case_key']} passes every "
              f"oracle (digest {first['digest'][:12]})")
        return 0
    want = sorted({v["oracle"] for v in expected})
    if not set(got) & set(want):
        print(f"NOT REPRODUCED: entry expects {', '.join(want) or '(none)'}"
              f", run fired {', '.join(got) or '(none)'}")
        return 1
    print(f"reproduced: case {first['case_key']} fires "
          f"{', '.join(sorted(set(got) & set(want)))} deterministically "
          f"(digest {first['digest'][:12]})")
    return 0


def cmd_shrink(args) -> int:
    case, _ = load_entry(args.entry)
    sstats: dict = {}
    small = shrink_case(case, max_evals=args.shrink_evals, stats=sstats)
    report = run_case_payload(small.to_dict())
    if not report["violations"]:
        print("case no longer fails any oracle; nothing to shrink")
        return 1
    out_dir = args.out if args.out else None
    path = save_entry(small, report["violations"], corpus_dir=out_dir,
                      original=case)
    print(f"shrunk in {sstats['evals']} evals "
          f"(target: {', '.join(sstats['target'])}) -> {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.conform",
        description="conformance fuzzing of the routing algorithms")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="generate and judge cases")
    p_run.add_argument("--budget", type=float, default=0,
                       help="time budget in seconds (0 = use --cases)")
    p_run.add_argument("--cases", type=int, default=0,
                       help="case budget (0 with no --budget: 50)")
    p_run.add_argument("--algorithms",
                       help="comma-separated registry names (default all)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--workers", type=int, default=0,
                       help="worker processes (0 = in-process)")
    p_run.add_argument("--corpus-dir",
                       help="where failing entries go "
                            "(default conformance/corpus/)")
    p_run.add_argument("--engine", default="object",
                       choices=["object", "batched"],
                       help="simulation engine to run cases under; "
                            "batched must match the object oracle "
                            "bit-for-bit, so this doubles as an "
                            "engine-parity check")
    p_run.add_argument("--metrics", action="store_true",
                       help="attach a stride-1 metrics timeseries to "
                            "every run; sampling must never perturb a "
                            "digest, so this doubles as an "
                            "observer-invisibility check")
    p_run.add_argument("--policy", default="deterministic",
                       help="output-selection policy for every run "
                            "(repro.routing.select); the policy "
                            "re-orders legal candidates, so the "
                            "oracles fuzz the selection path")
    p_run.add_argument("--policy-seed", type=int, default=0)
    p_run.add_argument("--frr", action="store_true",
                       help="run every case with backup_routes=True; "
                            "conformance faults are static (never "
                            "confirmed), so the FastReroute wrapper "
                            "must stay fully transparent")
    p_run.add_argument("--mutate", metavar="NAME",
                       help="apply a registered test-only mutation "
                            f"({', '.join(sorted(MUTATIONS))})")
    p_run.add_argument("--no-shrink", dest="shrink", action="store_false",
                       help="save failing cases unshrunk")
    p_run.add_argument("--shrink-evals", type=int, default=250)
    p_run.add_argument("--fail-fast", action="store_true",
                       help="stop at the first failing chunk")
    p_run.add_argument("--progress", action="store_true")
    p_run.set_defaults(func=cmd_run)

    p_replay = sub.add_parser("replay", help="re-run a corpus entry")
    p_replay.add_argument("entry", help="corpus entry JSON file")
    p_replay.add_argument("--expect-clean", action="store_true",
                          help="succeed iff no oracle fires")
    p_replay.add_argument("--json", action="store_true",
                          help="dump the full run report")
    p_replay.set_defaults(func=cmd_replay)

    p_shrink = sub.add_parser("shrink", help="re-shrink a corpus entry")
    p_shrink.add_argument("entry", help="corpus entry JSON file")
    p_shrink.add_argument("--out", help="output corpus dir "
                                        "(default conformance/corpus/)")
    p_shrink.add_argument("--shrink-evals", type=int, default=250)
    p_shrink.set_defaults(func=cmd_shrink)

    args = parser.parse_args(argv)
    if args.command == "run" and not args.budget and not args.cases:
        args.cases = 50
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""rulec — the off-line Rule Compiler as a command-line tool.

The paper (Section 4.2): "An appropriate tool ('Rule Compiler')
generates the configuration data by translation."

Usage::

    python -m repro.tools.rulec path/to/algorithm.rules [-p name=value ...]
    python -m repro.tools.rulec --ruleset nafta
    python -m repro.tools.rulec --ruleset route_c -p d=8 -p a=3 --registers

Prints, per rule base: the compiled table dimensions (entries x width),
the index features (direct signals vs FCFB bits), the FCFB inventory,
table coverage statistics, and optionally the register file report.
"""

from __future__ import annotations

import argparse
import sys

from ..core.compiler import BitFeature, DirectFeature, compile_program
from ..core.dsl.errors import DslError
from ..routing.rulesets.loader import RULESETS, ruleset_source


def parse_params(pairs: list[str]) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad parameter {pair!r}; expected name=value")
        name, value = pair.split("=", 1)
        try:
            out[name] = int(value)
        except ValueError:
            out[name] = value
    return out


def describe_base(rb, show_table_stats: bool) -> str:
    lines = [f"rule base {rb.name}"
             + (" (subbase)" if rb.is_subbase else "")]
    if rb.params:
        params = ", ".join(f"{n} IN {d}" for n, d in rb.params)
        lines.append(f"  parameters : {params}")
    if rb.returns is not None:
        lines.append(f"  returns    : {rb.returns}")
    lines.append(f"  rules      : {len(rb.ground_rules)} ground "
                 f"(after expansion)")
    feats = []
    for f in rb.analysis.features:
        if isinstance(f, DirectFeature):
            feats.append(f"direct[{f.domain.bit_width}b]")
        else:
            assert isinstance(f, BitFeature)
            feats.append(f"bit({f.fcfb})")
    lines.append(f"  index      : {' + '.join(feats) or 'none'}")
    lines.append(f"  table      : {rb.n_entries} entries x {rb.width} bit "
                 f"= {rb.size_bits} bits")
    fcfbs = ", ".join(f"{n} x {k}" if n > 1 else k
                      for k, n in sorted(rb.fcfb_kinds.items()))
    lines.append(f"  FCFBs      : {fcfbs or 'none'}")
    if rb.reads or rb.writes:
        lines.append(f"  registers  : reads {sorted(rb.reads) or '-'}, "
                     f"writes {sorted(rb.writes) or '-'}")
    if rb.emits:
        lines.append(f"  emits      : {sorted(rb.emits)}")
    if show_table_stats and rb.table is not None:
        s = rb.stats()
        lines.append(f"  coverage   : {s['covered']}/{s['entries']} entries "
                     f"fire a rule; dead rules: {s['dead_rules'] or 'none'}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="rulec", description="compile a rule-based routing program")
    src_group = ap.add_mutually_exclusive_group(required=True)
    src_group.add_argument("file", nargs="?", help="a .rules source file")
    src_group.add_argument("--ruleset", choices=sorted(RULESETS),
                           help="compile a shipped ruleset")
    ap.add_argument("-p", "--param", action="append", default=[],
                    metavar="NAME=VALUE",
                    help="compile-time parameter (repeatable)")
    ap.add_argument("--no-table", action="store_true",
                    help="cost figures only, skip table materialization")
    ap.add_argument("--registers", action="store_true",
                    help="print the register-file report")
    ap.add_argument("--verify", action="store_true",
                    help="check table execution against the reference "
                         "semantics over each rule base's input space "
                         "(exhaustive when small, sampled otherwise)")
    args = ap.parse_args(argv)

    if args.ruleset:
        source = ruleset_source(args.ruleset)
        params = dict(RULESETS[args.ruleset].default_params)
    else:
        try:
            source = open(args.file).read()
        except OSError as exc:
            print(f"rulec: {exc}", file=sys.stderr)
            return 2
        params = {}
    params.update(parse_params(args.param))

    try:
        compiled = compile_program(source, params=params,
                                   materialize=not args.no_table)
    except DslError as exc:
        print(f"rulec: {exc}", file=sys.stderr)
        return 1

    print(f"compiled {len(compiled.rulebases)} rule base(s), "
          f"{len(compiled.subbases)} subbase(s)"
          + (f" with parameters {params}" if params else ""))
    print()
    for rb in list(compiled.subbases.values()) \
            + list(compiled.rulebases.values()):
        print(describe_base(rb, not args.no_table))
        print()
    print(f"total rule-table memory : {compiled.total_table_bits} bits")
    print(f"total register bits     : {compiled.register_bits()}")
    if args.verify:
        from ..core.compiler.verify import verify_equivalence
        functions = (RULESETS[args.ruleset].functions
                     if args.ruleset else None)
        print()
        failed = False
        for name in compiled.rulebases:
            rep = verify_equivalence(compiled, name, functions=functions)
            print(f"  verify {rep.summary()}")
            failed = failed or not rep.ok
        if failed:
            return 3
    if args.registers:
        print()
        for rep in compiled.register_report():
            print(f"  {rep['name']:<18} {rep['bits']:>4} bits "
                  f"({rep['cells']} cells)  writers: "
                  f"{', '.join(rep['writers']) or '-'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""simulate — run a network workload from the command line.

Usage::

    python -m repro.tools.simulate --topology mesh8x8 --algorithm nafta \
        --load 0.15 --cycles 3000 --link-faults 4 --seed 7
    python -m repro.tools.simulate --topology cube4 --algorithm route_c \
        --node-faults 2 --pattern uniform
    python -m repro.tools.simulate --sweep-seeds 8 --workers 4

``--sweep-seeds N`` replays the same scenario under N consecutive
traffic seeds through the parallel sweep engine (honouring
``--workers`` / ``--no-cache``) and reports per-seed rows plus the
aggregate, for confidence intervals on any single-point result.
"""

from __future__ import annotations

import argparse
import math
import re
import sys
from dataclasses import replace

import numpy as np

from ..experiments import (WorkloadSpec, add_sweep_args, fmt, run_sweep,
                           run_workload, table)
from ..routing.registry import ALGORITHMS
from ..sim import Hypercube, Mesh2D, Torus2D, random_link_faults
from ..sim.traffic import PATTERNS


def parse_topology(spec: str):
    m = re.fullmatch(r"mesh(\d+)x(\d+)", spec)
    if m:
        return Mesh2D(int(m.group(1)), int(m.group(2)))
    m = re.fullmatch(r"torus(\d+)x(\d+)", spec)
    if m:
        return Torus2D(int(m.group(1)), int(m.group(2)))
    m = re.fullmatch(r"cube(\d+)", spec)
    if m:
        return Hypercube(int(m.group(1)))
    raise SystemExit(f"unknown topology {spec!r}; use meshWxH, torusWxH "
                     f"or cubeD")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="simulate",
                                 description="run a wormhole-network "
                                             "workload")
    ap.add_argument("--topology", default="mesh8x8",
                    help="meshWxH | torusWxH | cubeD (default mesh8x8)")
    ap.add_argument("--algorithm", default="nafta",
                    choices=sorted(ALGORITHMS))
    ap.add_argument("--pattern", default="uniform", choices=sorted(PATTERNS))
    ap.add_argument("--load", type=float, default=0.1,
                    help="offered load in flits/node/cycle")
    ap.add_argument("--message-length", type=int, default=4)
    ap.add_argument("--cycles", type=int, default=3000)
    ap.add_argument("--warmup", type=int, default=500)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--link-faults", type=int, default=0,
                    help="random connectivity-preserving link faults")
    ap.add_argument("--node-faults", type=int, default=0,
                    help="random node faults")
    ap.add_argument("--cycles-per-step", type=int, default=1,
                    help="router cycles per rule-interpretation step")
    ap.add_argument("--arbiter", default="round_robin",
                    choices=["round_robin", "misrouted_first",
                             "oldest_first"])
    ap.add_argument("--engine", default="object",
                    choices=["object", "batched"],
                    help="simulation engine: the per-flit object "
                         "oracle or the bit-identical struct-of-"
                         "arrays engine (falls back to object when "
                         "unavailable)")
    from ..routing.select import POLICIES
    ap.add_argument("--policy", default="deterministic",
                    choices=sorted(POLICIES),
                    help="output-selection policy over legal route "
                         "candidates (non-default policies run on the "
                         "object engine)")
    ap.add_argument("--policy-seed", type=int, default=0,
                    help="hash seed for the ecmp/flowlet policies")
    ap.add_argument("--sweep-seeds", type=int, default=1, metavar="N",
                    help="replay the scenario under N consecutive "
                         "traffic seeds via the sweep engine")
    add_sweep_args(ap)
    args = ap.parse_args(argv)

    topo = parse_topology(args.topology)
    rng = np.random.default_rng(args.seed + 1000)
    fault_links = (random_link_faults(topo, args.link_faults, rng)
                   if args.link_faults else [])
    fault_nodes = []
    while len(fault_nodes) < args.node_faults:
        cand = int(rng.integers(0, topo.n_nodes))
        if cand not in fault_nodes:
            fault_nodes.append(cand)

    spec = WorkloadSpec(
        topology=topo, algorithm=args.algorithm, pattern=args.pattern,
        load=args.load, message_length=args.message_length,
        cycles=args.cycles, warmup=args.warmup, seed=args.seed,
        cycles_per_step=args.cycles_per_step, fault_links=fault_links,
        fault_nodes=fault_nodes, arbiter=args.arbiter,
        engine=args.engine, policy=args.policy,
        policy_seed=args.policy_seed)

    banner = (f"{args.topology} / {args.algorithm} / {args.pattern} "
              f"@ {args.load} flits/node/cycle, {spec.cycles} cycles"
              + (f", {len(fault_links)} link faults" if fault_links else "")
              + (f", {len(fault_nodes)} node faults" if fault_nodes else "")
              + (f", policy {args.policy}"
                 if args.policy != "deterministic" else ""))

    if args.sweep_seeds > 1:
        specs = [replace(spec, seed=args.seed + i)
                 for i in range(args.sweep_seeds)]
        try:
            results = run_sweep(specs, workers=args.workers,
                                cache=args.cache, progress=True,
                                label="simulate")
        except Exception as exc:  # pragma: no cover - CLI surface
            print(f"simulate: {exc}", file=sys.stderr)
            return 1
        print(banner + f", {args.sweep_seeds} seeds")
        rows = [{"seed": s.seed, "latency": r["mean_latency"],
                 "p99": r["p99_latency"],
                 "throughput": r["throughput_flits_node_cycle"],
                 "delivered": r["messages_delivered"]}
                for s, r in zip(specs, results)]
        print(table(rows, [("seed", "seed"), ("latency", "mean latency"),
                           ("p99", "p99"), ("throughput", "throughput"),
                           ("delivered", "delivered")]))
        lats = [r["latency"] for r in rows if not math.isnan(r["latency"])]
        if lats:
            mean = sum(lats) / len(lats)
            var = sum((x - mean) ** 2 for x in lats) / len(lats)
            print(f"  mean latency over seeds: {fmt(mean)} "
                  f"+/- {fmt(math.sqrt(var))}")
        return 0

    try:
        res = run_workload(spec)
    except Exception as exc:  # pragma: no cover - CLI surface
        print(f"simulate: {exc}", file=sys.stderr)
        return 1

    print(banner + (f" [engine: {res['engine']}]"
                    if args.engine != "object" else ""))
    for key in ("messages_delivered", "messages_measured", "mean_latency",
                "p99_latency", "mean_hops", "throughput_flits_node_cycle",
                "misrouted_fraction", "mean_decision_steps",
                "max_decision_steps", "messages_stuck",
                "messages_unroutable", "deadlocked"):
        print(f"  {key:<30} {fmt(res[key])}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line tools: the rule compiler (`python -m repro.tools.rulec`)
and the simulation runner (`python -m repro.tools.simulate`)."""

"""Greedy shrinking of failing cases to minimal repros.

A shrink candidate replaces the case iff it still trips the *same
oracle* (any of the originally-failing oracle names) — shrinking that
wanders onto a different bug produces corpus entries that mislead.
Passes run to a fixpoint under an evaluation budget:

1. drop fault links / fault nodes one at a time,
2. drop messages (largest first, then one at a time),
3. shrink message lengths to 1 and offer cycles to 0,
4. shrink topology dimensions where node ids survive the cut
   (mesh/torus rows and columns, hypercube dimension).

Everything is deterministic — same failing case in, same minimal
repro out — so CI artifacts are stable across re-runs.
"""

from __future__ import annotations

from dataclasses import replace

from .case import ConformanceCase


def _failing_oracles(case: ConformanceCase) -> set[str]:
    from .runner import run_case_payload

    report = run_case_payload(case.to_dict())
    return {v["oracle"] for v in report["violations"]}


def _topology_cuts(case: ConformanceCase):
    """Smaller-topology variants of ``case`` with node ids remapped
    (or preserved) — only emitted when every involved node survives."""
    desc = case.topology
    kind = desc["kind"]
    involved = case.involved_nodes()
    if kind in ("mesh2d", "torus2d"):
        w, h = desc["width"], desc["height"]
        floor = 2 if kind == "mesh2d" else 3  # a 2-ring torus is a multigraph
        if h > floor:
            # dropping the top row preserves ids (id = y*w + x)
            if all(n < w * (h - 1) for n in involved):
                yield replace(case, topology={**desc, "height": h - 1})
        if w > floor:
            coords = {n: (n % w, n // w) for n in involved}
            if all(x < w - 1 for x, _ in coords.values()):
                remap = {n: y * (w - 1) + x for n, (x, y) in coords.items()}
                yield _remap_nodes(
                    replace(case, topology={**desc, "width": w - 1}), remap)
    elif kind == "hypercube":
        d = desc["dimension"]
        if d > 2 and all(n < (1 << (d - 1)) for n in involved):
            yield replace(case, topology={**desc, "dimension": d - 1})


def _remap_nodes(case: ConformanceCase, remap: dict[int, int]
                 ) -> ConformanceCase:
    return replace(
        case,
        messages=[(c, remap[s], remap[d], ln)
                  for c, s, d, ln in case.messages],
        fault_links=[(remap[a], remap[b]) for a, b in case.fault_links],
        fault_nodes=[remap[n] for n in case.fault_nodes],
    )


def _candidates(case: ConformanceCase):
    """One round of shrink candidates, most aggressive first."""
    # messages: drop the back half, then each message
    n = len(case.messages)
    if n > 1:
        yield replace(case, messages=case.messages[:n // 2])
    for i in range(n):
        if n > 1:
            yield replace(case,
                          messages=case.messages[:i]
                          + case.messages[i + 1:])
    # faults: drop one at a time
    for i in range(len(case.fault_links)):
        yield replace(case, fault_links=case.fault_links[:i]
                      + case.fault_links[i + 1:])
    for i in range(len(case.fault_nodes)):
        yield replace(case, fault_nodes=case.fault_nodes[:i]
                      + case.fault_nodes[i + 1:])
    # topology cuts
    yield from _topology_cuts(case)
    # flatten the workload: unit lengths, immediate offers
    flat = [(0, s, d, 1) for _, s, d, _ in case.messages]
    if flat != case.messages:
        yield replace(case, messages=flat)
    for i, (c, s, d, ln) in enumerate(case.messages):
        if ln > 1 or c > 0:
            m = list(case.messages)
            m[i] = (0, s, d, 1)
            yield replace(case, messages=m)


def shrink_case(case: ConformanceCase, *, max_evals: int = 250,
                stats: dict | None = None) -> ConformanceCase:
    """Greedily minimize ``case`` while the original failure persists.

    Runs the case itself first to learn which oracles fire; a case
    that fails no oracle is returned unchanged.
    """
    target = _failing_oracles(case)
    evals = 1
    if not target:
        if stats is not None:
            stats.update(evals=evals, target=[])
        return case
    current = case
    improved = True
    while improved and evals < max_evals:
        improved = False
        for cand in _candidates(current):
            if evals >= max_evals:
                break
            evals += 1
            if _failing_oracles(cand) & target:
                current = cand
                improved = True
                break  # restart passes from the smaller case
    if stats is not None:
        stats.update(evals=evals, target=sorted(target))
    return current

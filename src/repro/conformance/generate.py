"""Case generation: seeded, metadata-driven scenario sampling.

Each case is drawn from a numpy Generator seeded with the sequence
``[seed, CASE_SALT, index]`` (the chaos campaign's seeding idiom), so
case *i* of a run is reproducible in isolation and adding cases never
reshuffles earlier ones.  The algorithm's
:class:`~repro.routing.registry.AlgoMeta` decides what may be thrown
at it: topology kinds, fault budgets (non-fault-tolerant algorithms
get fault-free cases only), and — for the order-of-magnitude-slower
rule-driven variants — tiny dimensions and short workloads.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..routing.registry import ALGORITHM_META
from ..sim.faults import random_link_faults, random_node_faults
from ..sim.topology import topology_from_dict
from .case import ConformanceCase

CASE_SALT = 0xC0F

#: dimension menus per topology kind: (full-size, tiny) choices
_MESH_DIMS = ((3, 3), (4, 3), (4, 4), (5, 4), (6, 6))
_MESH_DIMS_TINY = ((3, 3), (4, 3))
_CUBE_DIMS = (3, 4)
_CUBE_DIMS_TINY = (3,)
_TORUS_DIMS = ((4, 4), (5, 4), (6, 6))
_KARYN = ((4, 2), (3, 3))


def _topology_desc(rng: np.random.Generator, kind: str,
                   tiny: bool) -> dict:
    if kind == "mesh2d":
        w, h = _pick(rng, _MESH_DIMS_TINY if tiny else _MESH_DIMS)
        return {"kind": "mesh2d", "width": int(w), "height": int(h)}
    if kind == "torus2d":
        w, h = _pick(rng, _TORUS_DIMS)
        return {"kind": "torus2d", "width": int(w), "height": int(h)}
    if kind == "hypercube":
        d = _pick(rng, _CUBE_DIMS_TINY if tiny else _CUBE_DIMS)
        return {"kind": "hypercube", "dimension": int(d)}
    if kind == "karyncube":
        k, n = _pick(rng, _KARYN)
        return {"kind": "karyncube", "k": int(k), "n": int(n)}
    raise ValueError(f"no generator for topology kind {kind!r}")


def _pick(rng: np.random.Generator, options):
    return options[int(rng.integers(len(options)))]


def generate_case(algorithm: str, seed: int, index: int,
                  mutation: str | None = None) -> ConformanceCase:
    """Case ``index`` of the stream ``(algorithm, seed)``."""
    meta = ALGORITHM_META[algorithm]
    rng = np.random.default_rng([seed, CASE_SALT, index])
    tiny = meta.rule_driven
    desc = _topology_desc(rng, _pick(rng, meta.topologies), tiny)
    topo = topology_from_dict(desc)

    fault_links: list[tuple[int, int]] = []
    fault_nodes: list[int] = []
    # half the stream is fault-free even for ft algorithms: the
    # fault-free oracles (minimality, shadow equivalence) only run there
    if (meta.max_link_faults or meta.max_node_faults) \
            and rng.integers(2) == 1:
        n_links = int(rng.integers(meta.max_link_faults + 1))
        n_nodes = int(rng.integers(meta.max_node_faults + 1))
        if n_links:
            fault_links = [(int(a), int(b)) for a, b in random_link_faults(
                topo, n_links, rng, keep_connected=True)]
        if n_nodes:
            # node faults drawn against the link-faulted network would
            # need a combined connectivity check; drawing independently
            # and re-checking keeps the generator simple
            fault_nodes = [int(n) for n in random_node_faults(
                topo, n_nodes, rng, keep_connected=True)]

    n_messages = int(rng.integers(2, 5 if tiny else 9))
    healthy = [n for n in topo.nodes() if n not in fault_nodes]
    messages: list[tuple[int, int, int, int]] = []
    cycle = 0
    for _ in range(n_messages):
        src, dst = rng.choice(len(healthy), size=2, replace=False)
        cycle += int(rng.integers(0, 4))
        length = int(rng.integers(1, 4 if tiny else 7))
        messages.append((cycle, int(healthy[src]), int(healthy[dst]),
                         length))

    return ConformanceCase(
        algorithm=algorithm,
        topology=desc,
        messages=messages,
        fault_links=fault_links,
        fault_nodes=fault_nodes,
        buffer_depth=int(_pick(rng, (2, 4))),
        mutation=mutation,
        seed=seed,
    )


def generate_cases(algorithms, seed: int, *, start: int = 0,
                   mutation: str | None = None
                   ) -> Iterator[ConformanceCase]:
    """Round-robin infinite case stream over ``algorithms``; the caller
    cuts it by case count or time budget."""
    algorithms = list(algorithms)
    index = start
    while True:
        for name in algorithms:
            yield generate_case(name, seed, index, mutation=mutation)
        index += 1

"""Test-only routing-bug mutations.

Each mutation is a context manager that monkeypatches a routing class
for the duration of one case run, injecting a *specific, plausible*
bug.  They exist to prove the oracles have teeth: a harness that never
catches anything is indistinguishable from one that checks nothing.
A case records its mutation by name, so a corpus entry produced under
a mutation replays the same bug deterministically.

Mutations must never be active outside ``apply_mutation`` — the
patches restore the original attributes on exit, exceptions included.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..routing import route_c as _route_c
from ..routing.dimension_order import XYRouting
from ..sim.router import LOCAL


@contextmanager
def _patched(obj, name, value):
    orig = getattr(obj, name)
    setattr(obj, name, value)
    try:
        yield
    finally:
        setattr(obj, name, orig)


@contextmanager
def route_c_skip_safe_check():
    """ROUTE_C without the safe-node discipline: strongly-unsafe
    neighbours become ordinary candidates and the safety lattice no
    longer orders them last.  Delivered worms can then transit a
    SUNSAFE node — exactly what the ``route_c_safe_nodes`` oracle
    forbids."""

    def usable(self, router, dim, header):
        sm = self.state_map
        p = router.topology.port(router.node, dim)
        if p is None or not sm.faults.link_ok(router.node, p.neighbor):
            return False
        return sm.state(p.neighbor) != _route_c.FAULTY

    def pref(self, router, dim):
        return 0

    with _patched(_route_c.RouteCRouting, "_usable", usable), \
            _patched(_route_c.RouteCRouting, "_neighbor_pref", pref):
        yield


@contextmanager
def xy_wrong_first_hop():
    """XY routing that takes one gratuitous non-minimal hop at
    injection when it can — delivered paths gain two hops, violating
    the minimality oracle (and, if the extra turn closes a channel
    cycle, the liveness one)."""
    orig_route = XYRouting.route

    def route(self, router, header, in_port, in_vc):
        decision = orig_route(self, router, header, in_port, in_vc)
        if in_port != LOCAL or decision.deliver or not decision.candidates:
            return decision
        minimal = {p for p, _ in decision.candidates}
        for port in sorted(router.ports):
            if port != LOCAL and port not in minimal \
                    and router.port_alive(port):
                decision.candidates.insert(0, (port, in_vc))
                break
        return decision

    with _patched(XYRouting, "route", route):
        yield


MUTATIONS = {
    "route_c_skip_safe_check": route_c_skip_safe_check,
    "xy_wrong_first_hop": xy_wrong_first_hop,
}


@contextmanager
def apply_mutation(name: str | None):
    """Apply a registered mutation (or none, when ``name`` is None)."""
    if name is None:
        yield
        return
    try:
        mutation = MUTATIONS[name]
    except KeyError:
        raise ValueError(f"unknown mutation {name!r}; choose from "
                         f"{sorted(MUTATIONS)}") from None
    with mutation():
        yield

"""Run one conformance case and collect everything the oracles need.

Runs are fully deterministic: the case is plain data, faults are
static (present from cycle 0, already diagnosed — the reliability
layer's dynamic-fault machinery is off), and message ids are allocated
per network.  ``run_case_payload`` is the top-level worker the sweep
pool fans cases out to; oracles run *inside* the worker because they
need the reconstructed topology and fault state, and only JSON-able
results travel back.
"""

from __future__ import annotations

from ..routing.registry import ALGORITHM_META, AlgoMeta, make_algorithm
from ..sim.batched import build_network
from ..sim.config import SimConfig
from ..sim.faults import FaultSchedule
from ..sim.network import DeadlockError
from ..sim.stats import DecisionDigest
from .case import ConformanceCase
from .differential import ShadowDifferential
from .mutations import apply_mutation

#: interpreter variants the cross-interpreter oracle compares: the
#: production fast path, the compiled decision tables without it, and
#: the AST reference interpreter
INTERP_VARIANTS = (
    ("table+fastpath", {"engine_mode": "table", "fastpath": True}),
    ("table", {"engine_mode": "table", "fastpath": False}),
    ("ast", {"engine_mode": "ast", "fastpath": False}),
)


def _simulate(case: ConformanceCase, algorithm,
              engine: str = "object", metrics_stride: int = 0,
              policy: str = "deterministic", policy_seed: int = 0,
              frr: bool = False) -> dict:
    """One simulation of ``case`` with a prebuilt algorithm instance."""
    topo = case.build_topology()
    if frr:
        # wrap directly rather than via SimConfig(backup_routes=True):
        # that knob needs the harsh-mode recovery machinery, while
        # conformance faults are static and never *confirmed* — so the
        # wrapper must stay unarmed, and compiling/carrying the backup
        # tables must not change a single decision
        from ..routing.backup import FastReroute
        algorithm = FastReroute(algorithm, topo)
    config = SimConfig(buffer_depth=case.buffer_depth, trace_paths=True,
                       engine=engine, policy=policy,
                       policy_seed=policy_seed)
    metrics = None
    if metrics_stride:
        from ..obs import MetricsTimeseries
        metrics = MetricsTimeseries(stride=metrics_stride)
    net = build_network(topo, algorithm, config, arbiter=case.arbiter,
                        metrics=metrics)
    net.stats.digest = DecisionDigest()
    if case.has_faults():
        net.schedule_faults(FaultSchedule.static(
            links=case.fault_links, nodes=case.fault_nodes))

    offered: list[dict] = []
    for cycle, src, dst, length in sorted(case.messages,
                                          key=lambda m: m[0]):
        while net.cycle < cycle:
            net.step()
        msg = net.offer(src, dst, length)
        offered.append({
            "src": src, "dst": dst, "length": length, "cycle": cycle,
            "msg_id": None if msg is None else msg.header.msg_id,
            "refused": msg is None,
        })

    deadlock = None
    try:
        net.run_until_drained(max_cycles=case.max_cycles)
    except DeadlockError as exc:
        diag = exc.diagnosis
        deadlock = {
            "cycle": diag.cycle if diag else net.cycle,
            "blocking_cycle": (list(diag.blocking_cycle)
                               if diag and diag.blocking_cycle else []),
            "holding_nodes": (sorted(diag.holding_nodes)
                              if diag else []),
        }

    for rec in offered:
        if rec["refused"]:
            continue
        msg = net.messages[rec["msg_id"]]
        rec["delivered"] = msg.delivered is not None
        rec["dropped"] = bool(msg.dropped)
        rec["hops"] = msg.hops
        rec["trace"] = list(msg.header.fields.get("trace", []))

    out = {
        "summary": net.stats.summary(topo.n_nodes),
        "digest": net.stats.digest.hexdigest(),
        "decisions": net.stats.digest.count,
        "deadlock": deadlock,
        "messages": offered,
    }
    if metrics is not None:
        # sampling must be an invisible observer: record that it ran
        # (and on which engine) without perturbing digests/summaries
        out["metrics"] = {"rows": metrics.n_samples(),
                          "engine": net.engine_name}
    return out


def run_case(case: ConformanceCase, *, shadow: bool = True,
             interp: bool = True, engine: str = "object",
             metrics_stride: int = 0, policy: str = "deterministic",
             policy_seed: int = 0, frr: bool = False) -> dict:
    """Run a case (with its recorded mutation, if any) and return the
    JSON-able evidence dict the oracles consume.

    ``shadow`` adds the ft/nft decision differential when the
    algorithm's metadata names an nft twin and the case is fault-free;
    ``interp`` re-runs rule-driven cases under every interpreter
    variant and records their digests.  ``engine`` selects the
    simulation engine for every run (the batched engine must reproduce
    the object engine's digests bit-for-bit, so running the corpus
    with ``engine="batched"`` is itself a conformance check).
    ``metrics_stride`` > 0 attaches a metrics timeseries to the primary
    run — sampling must never perturb a digest, so running the corpus
    with metrics on is a conformance check of the observer itself.
    ``policy`` selects an output-selection policy
    (:mod:`repro.routing.select`) for every run; the policy re-orders
    each decision's legal candidate list, so the oracles fuzz the
    selection path under the same legality/delivery contracts.
    ``frr`` runs the case with ``SimConfig(backup_routes=True)``:
    conformance faults are static (never *confirmed* at runtime), so
    the FastReroute wrapper must stay transparent — compiling and
    carrying the backup tables must not change a single decision.
    ``frr`` disables the shadow differential: the backup-table build
    probes the wrapped algorithm under synthetic fault configurations,
    which would pollute a shadow wrapper's mismatch log.
    """
    meta = ALGORITHM_META[case.algorithm]
    with apply_mutation(case.mutation):
        if shadow and not frr and meta.nft_equivalent \
                and not case.has_faults():
            algo = ShadowDifferential(make_algorithm(case.algorithm),
                                      make_algorithm(meta.nft_equivalent))
            result = _simulate(case, algo, engine, metrics_stride,
                               policy, policy_seed)
            result["shadow"] = {"against": meta.nft_equivalent,
                                "mismatches": algo.mismatches}
        else:
            result = _simulate(case, make_algorithm(case.algorithm),
                               engine, metrics_stride, policy,
                               policy_seed, frr)

        if interp and meta.rule_driven:
            runs = {}
            for label, kwargs in INTERP_VARIANTS:
                sub = _simulate(case, make_algorithm(case.algorithm,
                                                     **kwargs), engine,
                                0, policy, policy_seed, frr)
                runs[label] = {"digest": sub["digest"],
                               "decisions": sub["decisions"],
                               "summary": sub["summary"]}
            result["interp"] = runs
    return result


def run_case_payload(payload: dict) -> dict:
    """Worker entry point for the sweep pool: case dict in, case key +
    evidence + violations out (everything JSON-able).  Top-level so it
    pickles.

    ``payload`` is a case dict plus optional ``engine`` /
    ``metrics_stride`` / ``policy`` / ``policy_seed`` / ``frr`` keys —
    all properties of the *run*, not the scenario, so they are stripped
    before the case is reconstructed (case keys and corpus entries stay
    independent of how the case was executed)."""
    from .oracles import check_case  # local: avoid an import cycle

    payload = dict(payload)
    engine = payload.pop("engine", "object")
    metrics_stride = int(payload.pop("metrics_stride", 0))
    policy = payload.pop("policy", "deterministic")
    policy_seed = int(payload.pop("policy_seed", 0))
    frr = bool(payload.pop("frr", False))
    case = ConformanceCase.from_dict(payload)
    result = run_case(case, engine=engine, metrics_stride=metrics_stride,
                      policy=policy, policy_seed=policy_seed, frr=frr)
    violations = check_case(case, result)
    return {
        "case": payload,
        "case_key": case.case_key(),
        "algorithm": case.algorithm,
        "violations": [v.to_dict() for v in violations],
        "digest": result["digest"],
        "decisions": result["decisions"],
        "deadlock": result["deadlock"],
        **({"metrics": result["metrics"]} if "metrics" in result else {}),
    }


def algo_meta(name: str) -> AlgoMeta:
    return ALGORITHM_META[name]

"""Decision-level shadow differential: ft algorithm vs its nft twin.

The paper claims NAFTA "behaves exactly like NARA" and stripped
ROUTE_C "exactly like the original algorithm" in fault-free networks.
Whole-run bit-identity cannot test that — the fault-tolerant variants
pay more interpretation steps per decision (ROUTE_C: 2 vs 1), which
shifts timing and therefore arbitration.  So the comparison happens at
the only level where "exactly like" is well defined: every time the
primary algorithm decides, the shadow decides *from the same router
state* on a copy of the header, and the ordered output-port lists must
match.
"""

from __future__ import annotations

from dataclasses import replace

from ..routing.base import RouteDecision, RoutingAlgorithm
from ..sim.flit import Header


class ShadowDifferential(RoutingAlgorithm):
    """Wrap ``primary``, re-deciding every decision with ``shadow``.

    The network sees only the primary: its decisions are returned, its
    VC count and lifecycle hooks are used.  The shadow routes a
    throwaway header copy, so its field writes (virtual-network
    assignment, detour markers) never leak into the run.  Mismatches
    accumulate in :attr:`mismatches` as JSON-able dicts.
    """

    def __init__(self, primary: RoutingAlgorithm, shadow: RoutingAlgorithm):
        self.primary = primary
        self.shadow = shadow
        self.name = f"{primary.name}~vs~{shadow.name}"
        self.n_vcs = primary.n_vcs
        self.adaptive = primary.adaptive
        self.fault_tolerant = primary.fault_tolerant
        self.mismatches: list[dict] = []

    # -- lifecycle: both run, the primary rules --------------------------

    def check_topology(self, topology) -> None:
        self.primary.check_topology(topology)
        self.shadow.check_topology(topology)

    def reset(self, network) -> None:
        self.primary.reset(network)
        self.shadow.reset(network)

    def on_fault_update(self, network, nodes=None) -> None:
        self.primary.on_fault_update(network, nodes)
        self.shadow.on_fault_update(network, nodes)

    def accepts(self, src: int, dst: int) -> bool:
        return self.primary.accepts(src, dst)

    def on_depart(self, router, header, out_port, out_vc) -> None:
        self.primary.on_depart(router, header, out_port, out_vc)

    def decision_steps_range(self):
        return self.primary.decision_steps_range()

    # -- the differential -------------------------------------------------

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        decision = self.primary.route(router, header, in_port, in_vc)
        ghost = replace(header, fields=dict(header.fields))
        shadow_decision = self.shadow.route(router, ghost, in_port, in_vc)
        primary_ports = [p for p, _ in decision.candidates]
        shadow_ports = [p for p, _ in shadow_decision.candidates]
        if (decision.deliver != shadow_decision.deliver
                or decision.stuck != shadow_decision.stuck
                or primary_ports != shadow_ports):
            self.mismatches.append({
                "node": router.node,
                "msg_id": header.msg_id,
                "src": header.src,
                "dst": header.dst,
                "in_port": in_port,
                "primary": {"deliver": decision.deliver,
                            "stuck": decision.stuck,
                            "ports": primary_ports},
                "shadow": {"deliver": shadow_decision.deliver,
                           "stuck": shadow_decision.stuck,
                           "ports": shadow_ports},
            })
        return decision

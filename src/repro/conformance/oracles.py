"""The oracle registry: what a correct routing run must look like.

Every oracle is a pure function over (case, metadata, evidence) — the
evidence being the JSON-able dict :func:`~.runner.run_case` produced —
returning a list of :class:`Violation`.  Keeping oracles pure over
serialized evidence means a corpus replay months later re-judges the
run with zero hidden state.

An oracle only fires when a run contradicts *documented* behaviour
(see :class:`~repro.routing.registry.AlgoMeta`): concessions like
NAFTA's right to refuse destinations inside a completed fault ring are
metadata, not special cases buried in oracle code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..routing.registry import ALGORITHM_META, AlgoMeta
from ..routing.route_c import FAULTY, SUNSAFE, CubeStateMap
from ..sim.faults import FaultState
from ..sim.topology import Topology
from .case import ConformanceCase


@dataclass
class Violation:
    """One oracle's objection to one run."""

    oracle: str
    message: str
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"oracle": self.oracle, "message": self.message,
                "details": self.details}

    @classmethod
    def from_dict(cls, d: dict) -> "Violation":
        return cls(oracle=d["oracle"], message=d["message"],
                   details=dict(d.get("details", {})))


def _fault_state(case: ConformanceCase, topo: Topology) -> FaultState:
    state = FaultState(topo)
    for n in case.fault_nodes:
        state.fail_node(n)
    for a, b in case.fault_links:
        state.fail_link(a, b)
    return state


def _delivered(result: dict):
    for rec in result["messages"]:
        if not rec.get("refused") and rec.get("delivered"):
            yield rec


# -- universal oracles ----------------------------------------------------


def oracle_legal_path(case, meta, result, topo, faults):
    """Every delivered worm took a path of live, adjacent links and
    never transited a faulty node."""
    out = []
    for rec in _delivered(result):
        trace = rec["trace"]
        if not trace or trace[0] != rec["src"] or trace[-1] != rec["dst"]:
            out.append(Violation(
                "legal_path",
                f"msg {rec['msg_id']}: trace endpoints {trace[:1]}..."
                f"{trace[-1:]} disagree with src={rec['src']} "
                f"dst={rec['dst']}",
                {"msg_id": rec["msg_id"], "trace": trace}))
            continue
        for a, b in zip(trace, trace[1:]):
            if b not in {p.neighbor for p in topo.ports(a).values()}:
                out.append(Violation(
                    "legal_path",
                    f"msg {rec['msg_id']}: hop {a}->{b} is not a "
                    f"topology link",
                    {"msg_id": rec["msg_id"], "hop": [a, b],
                     "trace": trace}))
            elif not faults.link_ok(a, b):
                out.append(Violation(
                    "legal_path",
                    f"msg {rec['msg_id']}: hop {a}->{b} crosses a "
                    f"faulty link",
                    {"msg_id": rec["msg_id"], "hop": [a, b],
                     "trace": trace}))
        for node in trace:
            if not faults.node_ok(node):
                out.append(Violation(
                    "legal_path",
                    f"msg {rec['msg_id']}: path visits faulty node "
                    f"{node}",
                    {"msg_id": rec["msg_id"], "node": node,
                     "trace": trace}))
    return out


def oracle_minimality(case, meta, result, topo, faults):
    """In a fault-free network a minimal algorithm delivers every worm
    over a shortest path (hops counts the ejection hop, hence +1)."""
    if case.has_faults() or not meta.minimal_fault_free:
        return []
    out = []
    for rec in _delivered(result):
        shortest = topo.distance(rec["src"], rec["dst"]) + 1
        if rec["hops"] != shortest:
            out.append(Violation(
                "minimality",
                f"msg {rec['msg_id']}: {rec['hops']} hops from "
                f"{rec['src']} to {rec['dst']}, minimal is {shortest}",
                {"msg_id": rec["msg_id"], "hops": rec["hops"],
                 "minimal": shortest, "trace": rec["trace"]}))
    return out


def oracle_delivery(case, meta, result, topo, faults):
    """Zero dead letters when the fault pattern keeps the network
    connected: every accepted message is delivered, and fault-free
    networks refuse nothing."""
    out = []
    faulty = case.has_faults()
    for rec in result["messages"]:
        if rec["refused"]:
            if not faulty or not meta.may_refuse_under_faults:
                out.append(Violation(
                    "delivery",
                    f"message {rec['src']}->{rec['dst']} refused at "
                    f"injection"
                    + ("" if faulty else " in a fault-free network"),
                    {"src": rec["src"], "dst": rec["dst"]}))
            continue
        if not rec["delivered"]:
            if faulty and meta.may_stick_under_faults:
                continue
            out.append(Violation(
                "delivery",
                f"msg {rec['msg_id']} ({rec['src']}->{rec['dst']}) "
                f"never delivered"
                + (" (dropped)" if rec["dropped"] else ""),
                {"msg_id": rec["msg_id"], "src": rec["src"],
                 "dst": rec["dst"], "dropped": rec["dropped"]}))
    return out


def oracle_liveness(case, meta, result, topo, faults):
    """The watchdog found no stall: the paper's algorithms are
    deadlock-free by construction, so a blocking cycle is always a
    bug."""
    dl = result.get("deadlock")
    if dl is None:
        return []
    return [Violation(
        "liveness",
        f"network stalled at cycle {dl['cycle']} "
        f"(blocking cycle through {len(dl['blocking_cycle'])} channels)",
        dict(dl))]


# -- conditional oracles --------------------------------------------------


def oracle_route_c_safe_nodes(case, meta, result, topo, faults):
    """ROUTE_C's unsafe-node discipline: a delivered worm never
    *transits* a strongly-unsafe node (endpoints may be unsafe).  Sound
    because the pristine algorithm never offers a SUNSAFE neighbour
    except as the destination."""
    states = CubeStateMap(topo, faults)
    out = []
    for rec in _delivered(result):
        for node in rec["trace"][1:-1]:
            st = states.state(node)
            if st in (SUNSAFE, FAULTY):
                out.append(Violation(
                    "route_c_safe_nodes",
                    f"msg {rec['msg_id']}: transits {st} node {node}",
                    {"msg_id": rec["msg_id"], "node": node,
                     "state": st, "trace": rec["trace"]}))
    return out


def oracle_ft_nft_shadow(case, meta, result, topo, faults):
    """Fault-free decision equivalence with the nft twin (the paper's
    "behaves exactly like" claims), judged decision-by-decision by the
    shadow differential the runner attached."""
    shadow = result.get("shadow")
    if not shadow:
        return []
    return [Violation(
        "ft_nft_shadow",
        f"{case.algorithm} diverged from {shadow['against']} at node "
        f"{m['node']} for msg {m['msg_id']}: "
        f"{m['primary']['ports']} vs {m['shadow']['ports']}",
        m) for m in shadow["mismatches"]]


def oracle_interp_agreement(case, meta, result, topo, faults):
    """The three rule interpreters (fast path, compiled tables, AST
    reference) must agree bit-for-bit: same decision digest, same
    decision count, same stats summary."""
    runs = result.get("interp")
    if not runs:
        return []
    baseline_label, baseline = next(iter(runs.items()))
    out = []
    for label, run in runs.items():
        if label == baseline_label:
            continue
        for key in ("digest", "decisions", "summary"):
            if run[key] != baseline[key]:
                out.append(Violation(
                    "interp_agreement",
                    f"{label} disagrees with {baseline_label} on {key}",
                    {"variant": label, "key": key,
                     "baseline": baseline[key], "got": run[key]}))
                break
    return out


#: name -> oracle; ``check_case`` runs the universal ones always and
#: the conditional ones when metadata or evidence asks for them
ORACLES = {
    "legal_path": oracle_legal_path,
    "minimality": oracle_minimality,
    "delivery": oracle_delivery,
    "liveness": oracle_liveness,
    "route_c_safe_nodes": oracle_route_c_safe_nodes,
    "ft_nft_shadow": oracle_ft_nft_shadow,
    "interp_agreement": oracle_interp_agreement,
}

_UNIVERSAL = ("legal_path", "minimality", "delivery", "liveness",
              "ft_nft_shadow", "interp_agreement")


def oracles_for(meta: AlgoMeta) -> list[str]:
    return list(_UNIVERSAL) + [o for o in meta.extra_oracles
                               if o not in _UNIVERSAL]


def check_case(case: ConformanceCase, result: dict) -> list[Violation]:
    """Judge one run's evidence against every applicable oracle."""
    meta = ALGORITHM_META[case.algorithm]
    topo = case.build_topology()
    faults = _fault_state(case, topo)
    violations: list[Violation] = []
    for name in oracles_for(meta):
        violations.extend(ORACLES[name](case, meta, result, topo, faults))
    return violations

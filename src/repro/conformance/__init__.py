"""Conformance harness: differential + invariant fuzzing of the
routing algorithms.

The paper argues rule-based routing is "semantically well based
allowing the application of formal methods"; this package is the
executable half of that claim for the reconstruction.  It generates
(topology, fault pattern, workload, seed) cases, runs them through the
simulator and checks a registry of oracles — path legality,
minimality, delivery, liveness, ROUTE_C's safe-node discipline,
ft/nft decision equivalence in fault-free networks, and bit-identical
agreement across the three rule interpreters.  Failing cases are
shrunk to minimal repros and stored as replayable JSON corpus entries
(see ``conformance/corpus/`` at the repo root and
``python -m repro.tools.conform``).
"""

from .case import CASE_SCHEMA, ConformanceCase
from .corpus import load_entry, save_entry
from .generate import generate_cases
from .oracles import ORACLES, Violation, check_case
from .runner import run_case, run_case_payload
from .shrink import shrink_case

__all__ = [
    "CASE_SCHEMA",
    "ConformanceCase",
    "ORACLES",
    "Violation",
    "check_case",
    "generate_cases",
    "load_entry",
    "run_case",
    "run_case_payload",
    "save_entry",
    "shrink_case",
]

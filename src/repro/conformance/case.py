"""A conformance case: one fully deterministic simulation scenario.

Cases are plain data (topology *description*, explicit fault pattern,
explicit message list) so they cross process boundaries, serialize to
JSON corpus entries, and replay bit-identically months later — no RNG
state is needed to re-run one, the generator's seed is recorded only
for provenance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from hashlib import sha256

from ..sim.topology import Topology, topology_from_dict

#: bump when the case format changes incompatibly
CASE_SCHEMA = 1


@dataclass
class ConformanceCase:
    """One scenario: who routes what, where, and what is broken."""

    algorithm: str
    topology: dict
    #: (offer_cycle, src, dst, length) per message, offered in order
    messages: list[tuple[int, int, int, int]]
    fault_links: list[tuple[int, int]] = field(default_factory=list)
    fault_nodes: list[int] = field(default_factory=list)
    buffer_depth: int = 4
    arbiter: str = "round_robin"
    #: name of a registered test-only mutation to apply while running
    #: (None = pristine algorithm); recorded so replays reproduce the
    #: injected bug
    mutation: str | None = None
    #: generator provenance (not part of the behaviour)
    seed: int = 0
    max_cycles: int = 50_000

    def build_topology(self) -> Topology:
        return topology_from_dict(self.topology)

    def has_faults(self) -> bool:
        return bool(self.fault_links or self.fault_nodes)

    def to_dict(self) -> dict:
        return {
            "schema": CASE_SCHEMA,
            "algorithm": self.algorithm,
            "topology": dict(self.topology),
            "messages": [list(m) for m in self.messages],
            "fault_links": [list(f) for f in self.fault_links],
            "fault_nodes": list(self.fault_nodes),
            "buffer_depth": self.buffer_depth,
            "arbiter": self.arbiter,
            "mutation": self.mutation,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ConformanceCase":
        schema = d.get("schema", CASE_SCHEMA)
        if schema != CASE_SCHEMA:
            raise ValueError(f"case schema {schema} unsupported "
                             f"(this build reads {CASE_SCHEMA})")
        return cls(
            algorithm=d["algorithm"],
            topology=dict(d["topology"]),
            messages=[tuple(m) for m in d["messages"]],
            fault_links=[tuple(f) for f in d.get("fault_links", [])],
            fault_nodes=list(d.get("fault_nodes", [])),
            buffer_depth=int(d.get("buffer_depth", 4)),
            arbiter=d.get("arbiter", "round_robin"),
            mutation=d.get("mutation"),
            seed=int(d.get("seed", 0)),
            max_cycles=int(d.get("max_cycles", 50_000)),
        )

    def case_key(self) -> str:
        """Content address of the scenario (no code token: a case is a
        *scenario*, not a result — the same key must find the same
        corpus entry across code versions)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return sha256(blob.encode()).hexdigest()[:16]

    def involved_nodes(self) -> set[int]:
        """Every node id the case references (shrinkers use this to
        decide whether a smaller topology still contains the case)."""
        nodes: set[int] = set(self.fault_nodes)
        for a, b in self.fault_links:
            nodes.add(a)
            nodes.add(b)
        for _, src, dst, _ in self.messages:
            nodes.add(src)
            nodes.add(dst)
        return nodes

"""Replayable corpus of shrunk failing cases.

One JSON file per failure under ``conformance/corpus/`` at the repo
root, named ``<oracle>_<case_key>.json``.  An entry stores the shrunk
case, the violations observed, and enough provenance (original case,
code-irrelevant by design) that ``conform replay`` re-runs and
re-judges it deterministically on any checkout.
"""

from __future__ import annotations

import json
from pathlib import Path

from .case import CASE_SCHEMA, ConformanceCase

ENTRY_SCHEMA = 1


def default_corpus_dir() -> Path:
    """``conformance/corpus/`` next to the package's repo root."""
    return Path(__file__).resolve().parents[3] / "conformance" / "corpus"


def entry_name(case: ConformanceCase, violations) -> str:
    oracle = violations[0]["oracle"] if violations else "unknown"
    return f"{oracle}_{case.case_key()}.json"


def save_entry(case: ConformanceCase, violations: list[dict],
               corpus_dir=None, *,
               original: ConformanceCase | None = None) -> Path:
    """Write one corpus entry; returns its path."""
    cdir = Path(corpus_dir) if corpus_dir is not None \
        else default_corpus_dir()
    cdir.mkdir(parents=True, exist_ok=True)
    path = cdir / entry_name(case, violations)
    blob = {
        "schema": ENTRY_SCHEMA,
        "case_schema": CASE_SCHEMA,
        "case": case.to_dict(),
        "case_key": case.case_key(),
        "violations": violations,
        "original": None if original is None else original.to_dict(),
    }
    path.write_text(json.dumps(blob, indent=1, sort_keys=True) + "\n")
    return path


def load_entry(path) -> tuple[ConformanceCase, list[dict]]:
    """(case, expected violations) from a corpus entry file."""
    blob = json.loads(Path(path).read_text())
    if blob.get("schema") != ENTRY_SCHEMA:
        raise ValueError(f"corpus entry schema {blob.get('schema')} "
                         f"unsupported (this build reads {ENTRY_SCHEMA})")
    return (ConformanceCase.from_dict(blob["case"]),
            list(blob.get("violations", [])))

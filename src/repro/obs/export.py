"""Trace and metrics exporters: Chrome ``trace_event`` JSON + ASCII.

:func:`chrome_trace` converts a drained trace (and optionally a
metrics timeseries) into the Chrome Trace Event Format, loadable in
``chrome://tracing`` and https://ui.perfetto.dev.  The mapping:

* one simulator cycle = 1 us of trace time (``ts`` is the cycle);
* delivered worms become complete ("X") slices on the ``worms``
  process, one thread row per source node, spanning injection to
  delivery;
* fault lifecycle, drops, retries and dead letters become instant
  ("i") events on the ``network`` process;
* routing decisions / RBR invocations become instant events on the
  ``rules`` process (one thread row per node), carrying the
  interpretation-step count in ``args``;
* metrics gauges become counter ("C") events, which Perfetto renders
  as continuous tracks.

Everything is plain dicts ready for ``json.dumps``; ordering is
deterministic for a deterministic event stream, so traces are
byte-comparable across serial and process-pool runs.
"""

from __future__ import annotations

from . import events as ev

#: Chrome pids: one per top-level track group
PID_NETWORK = 0
PID_WORMS = 1
PID_RULES = 2

_PROCESS_NAMES = {
    PID_NETWORK: "network",
    PID_WORMS: "worms",
    PID_RULES: "rules",
}

#: counter gauges exported from a metrics timeseries
_COUNTER_GAUGES = (
    "in_flight_flits",
    "source_backlog",
    "retry_queue",
    "active_routers",
)


def _meta(pid: int, name: str) -> dict:
    return {
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "name": "process_name",
        "args": {"name": name},
    }


def _instant(pid: int, tid: int, cycle: int, name: str, args: dict) -> dict:
    return {
        "ph": "i",
        "pid": pid,
        "tid": tid,
        "ts": cycle,
        "s": "t",
        "name": name,
        "args": args,
    }


def _worm_slice(data: dict, end_cycle: int) -> dict | None:
    start = data.get("injected")
    if start is None:
        return None
    return {
        "ph": "X",
        "pid": PID_WORMS,
        "tid": int(data.get("src", 0)),
        "ts": int(start),
        "dur": max(1, end_cycle - int(start)),
        "name": f"msg {data.get('msg_id')} -> {data.get('dst')}",
        "args": data,
    }


def chrome_trace(trace: dict, metrics: dict | None = None) -> dict:
    """Convert a trace blob (``RingTracer.to_dict()`` shape) and an
    optional metrics blob (``MetricsTimeseries.to_dict()`` shape) into
    one Chrome trace_event document."""
    out: list[dict] = [_meta(p, n) for p, n in _PROCESS_NAMES.items()]
    for row in trace.get("events", []):
        cycle, kind, data = int(row[0]), str(row[1]), dict(row[2])
        if kind == ev.WORM_DELIVER:
            worm = _worm_slice(data, cycle)
            if worm is not None:
                out.append(worm)
            continue
        if kind in (ev.RULE_DECISION, ev.RULE_INVOKE, ev.RULE_EFFECTS):
            tid = int(data.get("node", 0))
            out.append(_instant(PID_RULES, tid, cycle, kind, data))
            continue
        out.append(_instant(PID_NETWORK, 0, cycle, kind, data))
    if metrics:
        columns = metrics.get("columns", {})
        cycles = columns.get("cycle", [])
        for gauge in _COUNTER_GAUGES:
            values = columns.get(gauge, [])
            for cycle, value in zip(cycles, values):
                out.append(
                    {
                        "ph": "C",
                        "pid": PID_NETWORK,
                        "tid": 0,
                        "ts": int(cycle),
                        "name": gauge,
                        "args": {"value": int(value)},
                    }
                )
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "unit": "1 cycle = 1us",
            "dropped_events": trace.get("dropped", 0),
        },
    }


def ascii_timeline(metrics: dict, width: int = 56, height: int = 12) -> str:
    """Render the headline gauges of a metrics blob as ASCII charts
    (via the chart helper the benchmark reports already use)."""
    from ..experiments.ascii_chart import line_chart

    columns = metrics.get("columns", {})
    cycles = columns.get("cycle", [])
    charts = []
    occupancy = {}
    for gauge in ("in_flight_flits", "source_backlog", "retry_queue"):
        values = columns.get(gauge, [])
        pairs = [(float(c), float(v)) for c, v in zip(cycles, values)]
        if pairs:
            occupancy[gauge] = pairs
    if occupancy:
        charts.append(
            line_chart(
                occupancy,
                width=width,
                height=height,
                title="occupancy over time",
                x_label="cycle",
                y_label="flits / messages",
            )
        )
    delivered = columns.get("messages_delivered", [])
    pairs = [(float(c), float(v)) for c, v in zip(cycles, delivered)]
    if pairs:
        charts.append(
            line_chart(
                {"delivered": pairs},
                width=width,
                height=height,
                title="cumulative deliveries",
                x_label="cycle",
            )
        )
    return "\n\n".join(charts) if charts else "(no metrics samples)"

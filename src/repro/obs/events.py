"""Typed trace-event taxonomy.

Every event the simulator can emit has a dotted-kind constant here, so
consumers (the Chrome exporter, tests, ad-hoc analysis) match on names
defined in exactly one place.  Events carry a cycle stamp, a kind, and
a flat JSON-able payload dict — deliberately schema-light so new layers
can add events without touching this module's machinery.

The taxonomy mirrors the paper's accounting: worm lifecycle events
count what the *network* does to messages, fault events reproduce the
detection / notification-flood / convergence phases of assumption iv,
and rule events expose the interpretation-step costs of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- worm lifecycle ---------------------------------------------------------
WORM_CREATED = "worm.created"  # accepted into a source queue
WORM_BLOCKED = "worm.blocked"  # refused at offer time (unroutable)
WORM_INJECT = "worm.inject"  # head flit entered the network
WORM_DELIVER = "worm.deliver"  # tail flit ejected at the destination
WORM_DROP = "worm.drop"  # ripped up by a harsh-mode fault
WORM_STUCK = "worm.stuck"  # declared permanently unroutable
WORM_RETRY = "worm.retry"  # retransmission copy queued at the source
WORM_DEAD_LETTER = "worm.dead_letter"  # retry budget exhausted / cut off
WORM_HEALED = "worm.healed"  # split at a dead link: fragment finished,
#                              remainder re-injected (fast reroute)
WORM_ABSORBED = "worm.absorbed"  # stuck worm absorbed for a delayed
#                                  local re-injection (fast reroute)

# -- link arbitration -------------------------------------------------------
LINK_ARB = "link.arb"  # contended output port granted

# -- fault handling ---------------------------------------------------------
FAULT_INJECT = "fault.inject"  # the physical fault happened
FAULT_DETECT = "fault.detect"  # Information Units confirmed it
FAULT_FLOOD_START = "fault.flood_start"  # notification flood launched
FAULT_FLOOD_NODE = "fault.flood_node"  # one node's view updated
FAULT_CONVERGED = "fault.converged"  # flood reached every reachable node

# -- rule interpretation ----------------------------------------------------
RULE_DECISION = "rule.decision"  # one routing decision (+ step count)
RULE_INVOKE = "rule.invoke"  # one RBR-kernel rule-base invocation
RULE_EFFECTS = "rule.effects"  # conclusion effects committed

# -- simulator-level --------------------------------------------------------
SIM_DEADLOCK = "sim.deadlock"  # the progress watchdog fired

ALL_KINDS = frozenset(
    v for k, v in globals().items() if k.isupper() and isinstance(v, str)
)


@dataclass(slots=True)
class TraceEvent:
    """One structured event: cycle stamp, dotted kind, payload."""

    cycle: int
    kind: str
    data: dict

    def to_list(self) -> list:
        """Canonical JSON-able form (compact, deterministic)."""
        return [self.cycle, self.kind, self.data]

    @classmethod
    def from_list(cls, row: list) -> "TraceEvent":
        return cls(int(row[0]), str(row[1]), dict(row[2]))

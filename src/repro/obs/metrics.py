"""Per-cycle metrics timeseries with a configurable sampling stride.

Where the tracer answers "what happened", the timeseries answers "what
did it look like over time": in-flight flits, source backlog, retry
queue depth, cumulative deliveries/drops and the interpretation-step
counters, sampled every ``stride`` cycles from the live network.
Columns are parallel lists of ints keyed by name, so a run's whole
timeseries serializes as compact JSON and plots directly through
:func:`repro.experiments.ascii_chart.line_chart` or any dataframe
library.

Per-link flit counts are accumulated continuously (not sampled): each
forwarded flit increments its directed link's counter, giving exact
per-link utilization for the whole run at one dict update per hop —
paid only when a timeseries is attached.
"""

from __future__ import annotations


#: sampled every stride cycles; order fixes the JSON column order
GAUGES = (
    "cycle",
    "in_flight_flits",
    "active_routers",
    "source_backlog",
    "retry_queue",
    "messages_delivered",
    "messages_dropped",
    "messages_retried",
    "decisions",
    "decision_steps",
    "flit_hops",
)


class MetricsTimeseries:
    """Collects per-cycle gauges from a :class:`~repro.sim.network.
    Network`; attach via ``Network(..., metrics=MetricsTimeseries())``.
    """

    def __init__(self, stride: int = 1):
        if stride < 1:
            raise ValueError("metrics stride must be >= 1 cycle")
        self.stride = stride
        self.columns: dict[str, list[int]] = {g: [] for g in GAUGES}
        self.link_flits: dict[tuple[int, int], int] = {}
        # engines that count link crossings in bulk (the batched
        # engine's per-output-VC C counters) register a drain callback
        # instead of calling count_link per flit
        self._link_source = None

    def count_link(self, src: int, dst: int) -> None:
        """One flit crossed the directed link src -> dst."""
        key = (src, dst)
        self.link_flits[key] = self.link_flits.get(key, 0) + 1

    def attach_link_source(self, drain) -> None:
        """Register a callable yielding ``((src, dst), count)`` deltas;
        drained (and folded into ``link_flits``) at read time."""
        self._link_source = drain

    def flush_links(self) -> None:
        """Fold any pending bulk link-count deltas into ``link_flits``.
        Sources must zero what they hand over, so flushing twice is
        safe."""
        if self._link_source is None:
            return
        links = self.link_flits
        for key, n in self._link_source():
            if n:
                links[key] = links.get(key, 0) + n

    def sample(self, network) -> None:
        """Record one row of gauges (the network calls this every
        ``stride`` cycles, after the cycle's phases ran)."""
        stats = network.stats
        cols = self.columns
        cols["cycle"].append(network.cycle)
        cols["in_flight_flits"].append(network._flits_in_flight())
        cols["active_routers"].append(network._metrics_active_routers())
        cols["source_backlog"].append(network._pending_sources())
        cols["retry_queue"].append(len(network._pending_retries))
        cols["messages_delivered"].append(stats.messages_delivered)
        cols["messages_dropped"].append(stats.messages_dropped)
        cols["messages_retried"].append(stats.messages_retried)
        cols["decisions"].append(stats.decisions)
        cols["decision_steps"].append(stats.decision_steps)
        cols["flit_hops"].append(stats.flit_hops)

    # -- derived views ------------------------------------------------------

    def n_samples(self) -> int:
        return len(self.columns["cycle"])

    def series(self, gauge: str) -> list[tuple[int, int]]:
        """(cycle, value) pairs for one gauge, chart-ready."""
        return list(zip(self.columns["cycle"], self.columns[gauge]))

    def rate_series(self, gauge: str) -> list[tuple[int, float]]:
        """Per-cycle rate of a cumulative gauge (delta / stride)."""
        cycles = self.columns["cycle"]
        values = self.columns[gauge]
        out = []
        for i in range(1, len(values)):
            dt = cycles[i] - cycles[i - 1]
            if dt > 0:
                out.append((cycles[i], (values[i] - values[i - 1]) / dt))
        return out

    def to_dict(self) -> dict:
        """Canonical JSON-able form (sorted link keys, plain lists)."""
        self.flush_links()
        links = {}
        for (a, b), n in sorted(self.link_flits.items()):
            links[f"{a}->{b}"] = n
        return {
            "stride": self.stride,
            "samples": self.n_samples(),
            "columns": {g: list(v) for g, v in self.columns.items()},
            "link_flits": links,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MetricsTimeseries":
        m = cls(stride=int(d.get("stride", 1)))
        for g, v in d.get("columns", {}).items():
            if g in m.columns:
                m.columns[g] = [int(x) for x in v]
        for key, n in d.get("link_flits", {}).items():
            a, b = key.split("->")
            m.link_flits[(int(a), int(b))] = int(n)
        return m

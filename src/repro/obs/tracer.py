"""Ring-buffered event tracer and its no-op twin.

The simulator always holds a tracer; which one decides the cost:

* :data:`NULL_TRACER` (a :class:`NullTracer`) is the default.  Its
  ``enabled`` flag is ``False``, every hot emission site is guarded by
  ``if tracer.enabled:``, and the pinned-digest tests plus the engine
  throughput benchmark hold the disabled path bit-identical and within
  noise of the untraced simulator.
* :class:`RingTracer` records :class:`~repro.obs.events.TraceEvent`
  rows into a bounded ring.  When the ring wraps, the oldest events are
  overwritten and counted in ``dropped`` — a trace is a window onto the
  run's tail, never an unbounded memory leak.

Tracers carry the current cycle in ``now`` (refreshed by the network
each step) so deep layers — the RBR kernel, conclusion execution — can
emit without threading a cycle argument through every call.
"""

from __future__ import annotations

from .events import TraceEvent


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Kept intentionally tiny — call sites check ``enabled`` before
    building payload dicts, so the only cost of the disabled path is
    one attribute load and branch per (rare) emission site.
    """

    enabled = False
    now = 0

    def emit(self, kind: str, **data) -> None:
        pass

    def drain(self) -> list[TraceEvent]:
        return []


#: the shared no-op tracer every Network starts with
NULL_TRACER = NullTracer()


class RingTracer(NullTracer):
    """Bounded in-memory event trace.

    ``capacity`` is the maximum number of retained events; emission is
    O(1) and wrapping replaces the oldest event.  ``drain()`` returns
    the retained events oldest-first without consuming them.
    """

    enabled = True

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.now = 0
        self.dropped = 0
        self._ring: list[TraceEvent] = []
        self._next = 0  # overwrite cursor once the ring is full

    def __len__(self) -> int:
        return len(self._ring)

    def emit(self, kind: str, **data) -> None:
        ev = TraceEvent(self.now, kind, data)
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(ev)
        else:
            ring[self._next] = ev
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    def drain(self) -> list[TraceEvent]:
        ring = self._ring
        cut = self._next
        if cut == 0:
            return list(ring)
        return ring[cut:] + ring[:cut]

    def to_dict(self) -> dict:
        """Canonical JSON-able form (what the sweep engine caches)."""
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "events": [ev.to_list() for ev in self.drain()],
        }

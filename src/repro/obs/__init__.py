"""Observability layer: structured event tracing, per-cycle metrics,
and trace exporters.

Opt-in and neutral when off: the default :data:`NULL_TRACER` makes
every emission site a single attribute check, and the pinned-digest
tests hold the disabled simulator bit-identical to the untraced one.

Typical use::

    from repro.obs import MetricsTimeseries, RingTracer, chrome_trace

    tracer = RingTracer(capacity=1 << 16)
    metrics = MetricsTimeseries(stride=4)
    net = Network(topo, algo, tracer=tracer, metrics=metrics)
    ...
    doc = chrome_trace(tracer.to_dict(), metrics.to_dict())
    json.dump(doc, open("trace.json", "w"))   # -> ui.perfetto.dev

See docs/OBSERVABILITY.md for the event taxonomy and CLI flags.
"""

from . import events
from .events import ALL_KINDS, TraceEvent
from .export import ascii_timeline, chrome_trace
from .metrics import GAUGES, MetricsTimeseries
from .tracer import NULL_TRACER, NullTracer, RingTracer

__all__ = [
    "events",
    "ALL_KINDS",
    "TraceEvent",
    "ascii_timeline",
    "chrome_trace",
    "GAUGES",
    "MetricsTimeseries",
    "NULL_TRACER",
    "NullTracer",
    "RingTracer",
]

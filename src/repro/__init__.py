"""repro — reproduction of "A Flexible Approach for a Fault-Tolerant
Router" (Döring, Obelöer, Lustig, Maehle; IPPS 1998).

Layers:

* :mod:`repro.core` — the paper's contribution: a rule-based routing
  DSL, its compiler to rule tables + FCFB configurations, and a
  software model of the ARON hardware rule interpreter.
* :mod:`repro.sim` — flit-level wormhole network simulator substrate
  (topologies, virtual channels, credits, fail-stop faults, traffic).
* :mod:`repro.routing` — NAFTA/NARA (2-D mesh) and ROUTE_C (hypercube)
  plus oblivious and spanning-tree baselines, both as native Python
  algorithms and as DSL rule programs.
* :mod:`repro.analysis` — CDG deadlock checks and the paper's
  Conditions 1-3.
* :mod:`repro.hwcost` / :mod:`repro.experiments` — the evaluation:
  Tables 1/2, register accounting, interpretation-step and
  network-level overhead experiments.

Quickstart::

    from repro.sim import Mesh2D, Network, TrafficGenerator
    from repro.routing import NaftaRouting

    net = Network(Mesh2D(8, 8), NaftaRouting())
    net.attach_traffic(TrafficGenerator(net.topology, "uniform", load=0.1))
    net.run(2000)
    print(net.stats.summary(net.topology.n_nodes))
"""

__version__ = "0.1.0"

from .core import RuleEngine

__all__ = ["RuleEngine", "__version__"]

"""Compiled fast-path decision kernel (software mirror of Figure 5).

The hardware pipeline makes a routing decision in one pass: premise
processing extracts the feature codes, their concatenation indexes the
completely-filled rule table, and conclusion processing drives the
selected entry's actions.  The interpreted software model used to
re-walk the premise ASTs through :func:`eval_expr` on every invocation;
this module lowers each rule base **once** into flat closures so the
hot path performs no AST traversal at all:

* every :class:`DirectFeature` signal and :class:`BitFeature` atom is
  compiled to an *extractor* closure ``env -> code``;
* the mixed-radix strides of the feature index are prebaked, so
  ``index = sum(stride[i] * extract[i](env))``;
* a per-base memo maps the (small, finite) feature-code tuple straight
  to the table entry, skipping the index arithmetic and the numpy
  lookup on repeats;
* ground-rule conclusions are compiled to command closures; conclusions
  that are effect-free constants (``RETURN(east)``) are resolved at
  compile time and replayed without any evaluation.

The closures reproduce :func:`repro.core.interpreter.evaluator.eval_expr`
semantics bit-for-bit — evaluation order, coercions and error behaviour
included — which the table/AST equivalence suites verify.
"""

from __future__ import annotations

from typing import Callable

from ..dsl import nodes as N
from ..dsl.domains import Value
from ..dsl.errors import EvalError
from ..dsl.semantics import AnalyzedProgram
from ..interpreter.evaluator import Env, sort_values, to_bool
from ..interpreter.execution import Emission, InvocationResult, _Effects, \
    apply_effects
from .atoms import BitFeature, DirectFeature
from .tablegen import NO_RULE

ExprFn = Callable[[Env], Value]
CommandFn = Callable  # (env, effects, subbase_runner) -> None

#: memoisation is skipped for index spaces larger than this (the memo
#: key space equals the table entry count, so this bounds memory)
MAX_MEMO_ENTRIES = 1 << 16


def _raiser(msg: str, line: int = 0) -> ExprFn:
    def fail(env: Env) -> Value:
        raise EvalError(msg, line)
    return fail


def _param_or_raise(name: str, msg: str, line: int) -> ExprFn:
    def read(env: Env) -> Value:
        v = env.params.get(name)
        if v is not None:
            return v
        raise EvalError(msg, line)
    return read


def _tupler(fns: tuple[ExprFn, ...]):
    """Specialized arg-tuple builders for the common small arities."""
    if len(fns) == 0:
        empty = ()
        return lambda env: empty
    if len(fns) == 1:
        f0, = fns
        return lambda env: (f0(env),)
    if len(fns) == 2:
        f0, f1 = fns
        return lambda env: (f0(env), f1(env))
    if len(fns) == 3:
        f0, f1, f2 = fns
        return lambda env: (f0(env), f1(env), f2(env))
    if len(fns) <= 8:
        padded = fns + (None,) * (8 - len(fns))
        f0, f1, f2, f3, f4, f5, f6, f7 = padded
        if len(fns) == 4:
            return lambda env: (f0(env), f1(env), f2(env), f3(env))
        if len(fns) == 5:
            return lambda env: (f0(env), f1(env), f2(env), f3(env), f4(env))
        if len(fns) == 6:
            return lambda env: (f0(env), f1(env), f2(env), f3(env), f4(env),
                                f5(env))
        if len(fns) == 7:
            return lambda env: (f0(env), f1(env), f2(env), f3(env), f4(env),
                                f5(env), f6(env))
        return lambda env: (f0(env), f1(env), f2(env), f3(env), f4(env),
                            f5(env), f6(env), f7(env))
    return lambda env: tuple(f(env) for f in fns)


# ---------------------------------------------------------------------------
# expression compilation
# ---------------------------------------------------------------------------

def compile_expr(expr: N.Expr, analyzed: AnalyzedProgram,
                 bound: frozenset[str]) -> ExprFn:
    """Lower one expression to a closure over the runtime environment.

    ``bound`` is the set of names resolved through ``env.params`` at
    runtime (rule-base parameters plus enclosing quantifier variables);
    every other name is resolved against the analyzed program *now*.
    """
    a = analyzed
    if isinstance(expr, N.Num):
        value = expr.value
        return lambda env: value
    if isinstance(expr, N.Name):
        name = expr.ident
        if name in bound:
            return lambda env: env.params[name]
        # not statically bound, but ``env.params`` can still carry the
        # name at runtime (outer-base params leak into subbase calls),
        # and eval_expr resolves params before everything else — so
        # every closure below keeps that check.  Values are never None,
        # which makes dict.get a valid presence probe.
        if name in a.symbol_owner:
            return lambda env: env.params.get(name, name)
        if name in a.constants:
            value = a.constants[name]
            return lambda env: env.params.get(name, value)
        if name in a.variables:
            if a.variables[name].is_array:
                return _param_or_raise(
                    name, f"array register {name!r} used without indices",
                    expr.line)
            def read_register(env: Env) -> Value:
                v = env.params.get(name)
                if v is not None:
                    return v
                return env.registers.read(name)
            return read_register
        if name in a.inputs:
            if a.inputs[name].index_domains:
                return _param_or_raise(
                    name, f"indexed input {name!r} used without indices",
                    expr.line)
            def read_input(env: Env) -> Value:
                v = env.params.get(name)
                if v is not None:
                    return v
                m = env.inputs_map
                if m is None:
                    return env.inputs(name, ())
                w = m.get(name)
                if w is None:
                    raise EvalError(f"no value supplied for input {name!r}")
                if isinstance(w, dict):
                    raise EvalError(f"input {name!r} is scalar but an "
                                    f"indexed value table was supplied")
                return w
            return read_input
        if name in a.types:
            value = frozenset(a.types[name].values())
            return lambda env: env.params.get(name, value)
        return _param_or_raise(name, f"unknown name {name!r}", expr.line)
    if isinstance(expr, N.Index):
        args = _tupler(tuple(compile_expr(arg, a, bound)
                             for arg in expr.args))
        name = expr.ident
        line = expr.line
        if name in a.variables:
            return lambda env: env.registers.read(name, args(env))
        if name in a.inputs:
            def read_indexed_input(env: Env) -> Value:
                idx = args(env)
                m = env.inputs_map
                if m is None:
                    return env.inputs(name, idx)
                w = m.get(name)
                if w is None:
                    raise EvalError(f"no value supplied for input {name!r}")
                if not isinstance(w, dict):
                    raise EvalError(f"input {name!r} is indexed but a "
                                    f"scalar value was supplied")
                v = w.get(idx)
                if v is None:
                    raise EvalError(f"input {name!r} has no value at index "
                                    f"{idx!r}")
                return v
            return read_indexed_input
        if name in a.functions:
            def call_function(env: Env) -> Value:
                impl = env.functions.get(name)
                if impl is None:
                    raise EvalError(f"no implementation registered for "
                                    f"function {name!r}", line)
                return impl(*args(env))
            return call_function
        if name in a.subbases:
            def call_subbase(env: Env) -> Value:
                if env.call_subbase is None:
                    raise EvalError(f"subbase {name!r} called but no subbase "
                                    f"executor is attached", line)
                return env.call_subbase(name, args(env))
            return call_subbase
        return _raiser(f"unknown indexed name {name!r}", line)
    if isinstance(expr, N.SetLit):
        items = tuple(compile_expr(i, a, bound) for i in expr.items)
        # fold only literal numbers: a symbol or constant name could be
        # shadowed at runtime by a parameter leaked from an outer base
        # (eval_expr consults env.params first), so those stay dynamic
        if all(isinstance(i, N.Num) for i in expr.items):
            value = frozenset(i.value for i in expr.items)
            return lambda env: value
        return lambda env: frozenset(f(env) for f in items)
    if isinstance(expr, N.UnOp):
        operand = compile_expr(expr.operand, a, bound)
        line = expr.line
        def negate(env: Env) -> Value:
            v = operand(env)
            if not isinstance(v, int):
                raise EvalError("unary minus on non-integer", line)
            return -v
        return negate
    if isinstance(expr, N.BinOp):
        return _compile_binop(expr, a, bound)
    if isinstance(expr, N.Compare):
        return _compile_compare(expr, a, bound)
    if isinstance(expr, N.InSet):
        item = compile_expr(expr.item, a, bound)
        coll = compile_expr(expr.collection, a, bound)
        line = expr.line
        def member(env: Env) -> Value:
            iv = item(env)
            cv = coll(env)
            if not isinstance(cv, frozenset):
                raise EvalError("IN needs a set on the right", line)
            return iv in cv
        return member
    if isinstance(expr, N.And):
        terms = tuple(compile_expr(t, a, bound) for t in expr.terms)
        line = expr.line
        if len(terms) == 2:
            t0, t1 = terms
            return lambda env: (to_bool(t0(env), line)
                                and to_bool(t1(env), line))
        return lambda env: all(to_bool(t(env), line) for t in terms)
    if isinstance(expr, N.Or):
        terms = tuple(compile_expr(t, a, bound) for t in expr.terms)
        line = expr.line
        if len(terms) == 2:
            t0, t1 = terms
            return lambda env: (to_bool(t0(env), line)
                                or to_bool(t1(env), line))
        return lambda env: any(to_bool(t(env), line) for t in terms)
    if isinstance(expr, N.Not):
        operand = compile_expr(expr.operand, a, bound)
        line = expr.line
        return lambda env: not to_bool(operand(env), line)
    if isinstance(expr, N.Quant):
        values = compile_iteration(expr.collection, a, bound)
        var = expr.var
        body = compile_expr(expr.body, a, bound | {var})
        line = expr.line
        if expr.kind == "EXISTS":
            def exists(env: Env) -> Value:
                for v in values(env):
                    if to_bool(body(env.bind({var: v})), line):
                        return True
                return False
            return exists
        def forall(env: Env) -> Value:
            for v in values(env):
                if not to_bool(body(env.bind({var: v})), line):
                    return False
            return True
        return forall
    return _raiser(f"unhandled expression {expr!r}",
                   getattr(expr, "line", 0))


def _compile_binop(expr: N.BinOp, a: AnalyzedProgram,
                   bound: frozenset[str]) -> ExprFn:
    left = compile_expr(expr.left, a, bound)
    right = compile_expr(expr.right, a, bound)
    op = expr.op
    line = expr.line
    if op in ("UNION", "INTER", "DIFF"):
        def setop(env: Env) -> Value:
            lv = left(env)
            rv = right(env)
            if not (isinstance(lv, frozenset) and isinstance(rv, frozenset)):
                raise EvalError(f"{op} needs set operands", line)
            if op == "UNION":
                return lv | rv
            if op == "INTER":
                return lv & rv
            return lv - rv
        return setop
    def _ints(env: Env) -> tuple[int, int]:
        lv = left(env)
        rv = right(env)
        if not (isinstance(lv, int) and isinstance(rv, int)):
            raise EvalError(f"operator {op!r} needs integers, got "
                            f"{lv!r} and {rv!r}", line)
        return lv, rv
    if op == "+":
        def add(env: Env) -> Value:
            lv, rv = _ints(env)
            return lv + rv
        return add
    if op == "-":
        def sub(env: Env) -> Value:
            lv, rv = _ints(env)
            return lv - rv
        return sub
    if op == "*":
        def mul(env: Env) -> Value:
            lv, rv = _ints(env)
            return lv * rv
        return mul
    if op == "MOD":
        def mod(env: Env) -> Value:
            lv, rv = _ints(env)
            if rv == 0:
                raise EvalError("MOD by zero", line)
            return lv % rv
        return mod
    return _raiser(f"unknown operator {op!r}", line)


def _norm_bool(v: Value) -> Value:
    return "true" if v is True else "false" if v is False else v


def _compile_compare(expr: N.Compare, a: AnalyzedProgram,
                     bound: frozenset[str]) -> ExprFn:
    left = compile_expr(expr.left, a, bound)
    right = compile_expr(expr.right, a, bound)
    op = expr.op
    line = expr.line
    if op == "=":
        def eq(env: Env) -> Value:
            lv = left(env)
            rv = right(env)
            if type(lv) is bool or type(rv) is bool:
                return _norm_bool(lv) == _norm_bool(rv)
            return lv == rv
        return eq
    if op == "/=":
        def ne(env: Env) -> Value:
            lv = left(env)
            rv = right(env)
            if type(lv) is bool or type(rv) is bool:
                return _norm_bool(lv) != _norm_bool(rv)
            return lv != rv
        return ne
    if op not in ("<", "<=", ">", ">="):
        return _raiser(f"unknown comparison {op!r}", line)
    def ordered(env: Env) -> Value:
        lv = left(env)
        rv = right(env)
        if type(lv) is bool or type(rv) is bool:
            lv = _norm_bool(lv)
            rv = _norm_bool(rv)
        if not (isinstance(lv, int) and isinstance(rv, int)):
            raise EvalError("ordering comparison on non-integers", line)
        if op == "<":
            return lv < rv
        if op == "<=":
            return lv <= rv
        if op == ">":
            return lv > rv
        return lv >= rv
    return ordered


def compile_iteration(coll: N.Expr, analyzed: AnalyzedProgram,
                      bound: frozenset[str]) -> Callable[[Env], list[Value]]:
    """Compiled mirror of :func:`evaluator.iteration_values`: the
    deterministic iteration space of a quantifier collection."""
    a = analyzed
    if isinstance(coll, N.Name):
        # mirror of iteration_values: these special cases are static and
        # deliberately ignore env.params, exactly like the interpreter
        name = coll.ident
        if name in a.constants and isinstance(a.constants[name], int):
            values = list(range(a.constants[name]))
            return lambda env: values
        if name in a.types:
            values = list(a.types[name].values())
            return lambda env: values
    value_fn = compile_expr(coll, a, bound)
    line = getattr(coll, "line", 0)
    def run(env: Env) -> list[Value]:
        value = value_fn(env)
        if not isinstance(value, frozenset):
            raise EvalError("quantifier collection is not iterable", line)
        return sort_values(value, a)
    return run


# ---------------------------------------------------------------------------
# command (conclusion) compilation
# ---------------------------------------------------------------------------

def compile_commands(commands, analyzed: AnalyzedProgram,
                     bound: frozenset[str]) -> CommandFn:
    """Lower a conclusion to one closure executing its phase-1 gather
    against the snapshot state (mirror of ``gather_effects``)."""
    fns = tuple(_compile_command(cmd, analyzed, bound) for cmd in commands)
    if len(fns) == 1:
        return fns[0]
    def run(env: Env, effects: _Effects, subbase_runner) -> None:
        for f in fns:
            f(env, effects, subbase_runner)
    return run


def _compile_command(cmd, analyzed: AnalyzedProgram,
                     bound: frozenset[str]) -> CommandFn:
    a = analyzed
    if isinstance(cmd, N.Assign):
        value = compile_expr(cmd.value, a, bound)
        tgt = cmd.target
        if isinstance(tgt, N.Index):
            name = tgt.ident
            idx = _tupler(tuple(compile_expr(x, a, bound) for x in tgt.args))
            def assign_cell(env, effects, subbase_runner) -> None:
                v = value(env)
                effects.writes.append((name, idx(env), v))
            return assign_cell
        if isinstance(tgt, N.Name):
            name = tgt.ident
            def assign(env, effects, subbase_runner) -> None:
                effects.writes.append((name, (), value(env)))
            return assign
        line = cmd.line
        def bad_target(env, effects, subbase_runner):  # pragma: no cover
            raise EvalError("invalid assignment target", line)
        return bad_target
    if isinstance(cmd, N.Emit):
        event = cmd.event
        args = _tupler(tuple(compile_expr(x, a, bound) for x in cmd.args))
        def emit(env, effects, subbase_runner) -> None:
            effects.emissions.append(Emission(event, args(env)))
        return emit
    if isinstance(cmd, N.Return):
        value = compile_expr(cmd.value, a, bound)
        line = cmd.line
        def ret(env, effects, subbase_runner) -> None:
            if effects.has_return:
                raise EvalError("multiple RETURN commands fired in one "
                                "invocation", line)
            effects.returned = value(env)
            effects.has_return = True
        return ret
    if isinstance(cmd, N.ForallCmd):
        if not cmd.var:
            return compile_commands(cmd.body, a, bound)
        var = cmd.var
        values = compile_iteration(cmd.collection, a, bound)
        body = compile_commands(cmd.body, a, bound | {var})
        def unroll(env, effects, subbase_runner) -> None:
            for v in values(env):
                body(env.bind({var: v}), effects, subbase_runner)
        return unroll
    if isinstance(cmd, N.CallSubbase):
        ident = cmd.ident
        args = _tupler(tuple(compile_expr(x, a, bound) for x in cmd.args))
        line = cmd.line
        def call(env, effects, subbase_runner) -> None:
            if subbase_runner is None:
                raise EvalError(f"subbase command {ident!r} but no "
                                f"subbase runner attached", line)
            subbase_runner(ident, args(env), effects)
        return call
    line = getattr(cmd, "line", 0)
    def unknown(env, effects, subbase_runner):  # pragma: no cover
        raise EvalError(f"unknown command {cmd!r}", line)
    return unknown


def _commands_call_subbase(commands) -> bool:
    for cmd in commands:
        if isinstance(cmd, N.CallSubbase):
            return True
        if isinstance(cmd, N.ForallCmd) and _commands_call_subbase(cmd.body):
            return True
    return False


class _Conclusion:
    """One ground rule's compiled conclusion.

    Three execution shapes, from cheapest to most general:

    * ``static`` — only RETURNs of compile-time constants; the result is
      baked here and replayed without any evaluation;
    * ``value_fn`` — a single RETURN of a dynamic expression with no
      writes, emissions or subbase calls; one generated function
      computes the value, skipping the effects machinery entirely;
    * ``run`` — the general compiled command list with snapshot
      (gather/apply) semantics.
    """

    __slots__ = ("static", "returned", "has_return", "run", "calls_subbase",
                 "value_fn")

    def __init__(self, ground, analyzed: AnalyzedProgram,
                 bound: frozenset[str], tag: str = "",
                 param_safe: bool = False):
        self.static = False
        self.returned: Value | None = None
        self.has_return = False
        self.value_fn = None
        self.calls_subbase = _commands_call_subbase(ground.commands)
        self.run = compile_commands(ground.commands, analyzed, bound)
        # a conclusion is *static* when it can neither touch state nor
        # observe it: only RETURNs of compile-time constants.  Those are
        # resolved here once and replayed without evaluation.
        analyzer = analyzed.analyzer
        if self.calls_subbase:
            return
        if analyzer is not None and len(ground.commands) <= 1:
            values = []
            for cmd in ground.commands:
                if not isinstance(cmd, N.Return):
                    break
                try:
                    values.append(analyzer.const_eval(cmd.value))
                except Exception:
                    break
            else:
                self.static = True
                if values:
                    self.returned = values[0]
                    self.has_return = True
                return
        if len(ground.commands) == 1 and \
                isinstance(ground.commands[0], N.Return):
            try:
                self.value_fn = generate_value_fn(
                    ground.commands[0].value, analyzed, bound, tag,
                    param_safe)
            except Exception:  # pragma: no cover - codegen is best-effort
                value = compile_expr(ground.commands[0].value, analyzed,
                                     bound)
                self.value_fn = value


# ---------------------------------------------------------------------------
# source-level code generation
# ---------------------------------------------------------------------------
# The closure pipeline above is exact but still pays one Python call per
# AST node.  For the two shapes executed on every routing decision — the
# premise code tuple and return-only conclusions — we go one step
# further and generate source for the whole computation, inlining the
# dictionary reads of the happy path and deferring every unusual case
# (leaked params, callable input sources, bool-typed operands, dict
# subclasses, all error paths) to the exact closure or to a helper that
# replicates eval_expr verbatim.  Speed comes from collapsing call
# chains, never from skipping a check: any operand that is not of the
# statically expected concrete class is re-dispatched to the slow path.

def _h_tb(v, line):
    return to_bool(v, line)


def _h_bb(v):
    raise EvalError(f"expected a boolean, got {v!r}")


def _h_eqn(l, r, neg):
    l = _norm_bool(l)
    r = _norm_bool(r)
    return (l != r) if neg else (l == r)


def _h_ord(op, l, r, line):
    if type(l) is bool or type(r) is bool:
        l = _norm_bool(l)
        r = _norm_bool(r)
    if not (isinstance(l, int) and isinstance(r, int)):
        raise EvalError("ordering comparison on non-integers", line)
    if op == "<":
        return l < r
    if op == "<=":
        return l <= r
    if op == ">":
        return l > r
    return l >= r


def _h_arith(op, l, r, line):
    if not (isinstance(l, int) and isinstance(r, int)):
        raise EvalError(f"operator {op!r} needs integers, got "
                        f"{l!r} and {r!r}", line)
    if op == "+":
        return l + r
    if op == "-":
        return l - r
    if op == "*":
        return l * r
    if r == 0:
        raise EvalError("MOD by zero", line)
    return l % r


def _h_setop(op, l, r, line):
    if not (isinstance(l, frozenset) and isinstance(r, frozenset)):
        raise EvalError(f"{op} needs set operands", line)
    if op == "UNION":
        return l | r
    if op == "INTER":
        return l & r
    return l - r


def _h_neg(v, line):
    if not isinstance(v, int):
        raise EvalError("unary minus on non-integer", line)
    return -v


def _h_in(item, coll, line):
    if not isinstance(coll, frozenset):
        raise EvalError("IN needs a set on the right", line)
    return item in coll


def _h_nofn(name, line):
    raise EvalError(f"no implementation registered for function {name!r}",
                    line)


_HELPERS = {"_tb": _h_tb, "_bb": _h_bb, "_eqn": _h_eqn, "_ord": _h_ord,
            "_arith": _h_arith, "_setop": _h_setop, "_neg": _h_neg,
            "_in": _h_in, "_nofn": _h_nofn}

_PY_SETOP = {"UNION": "|", "INTER": "&", "DIFF": "-"}


def _pure_expr(e: N.Expr, a: AnalyzedProgram) -> bool:
    """True when re-evaluating ``e`` is free of observable effects and
    cheap enough to repeat on a fallback path: anything except function
    and subbase invocations (registered impls may be impure)."""
    if isinstance(e, (N.Num, N.Name)):
        return True
    if isinstance(e, N.Index):
        if e.ident in a.functions or e.ident in a.subbases:
            return False
        return all(_pure_expr(x, a) for x in e.args)
    if isinstance(e, N.SetLit):
        return all(_pure_expr(x, a) for x in e.items)
    if isinstance(e, (N.UnOp, N.Not)):
        return _pure_expr(e.operand, a)
    if isinstance(e, (N.BinOp, N.Compare)):
        return _pure_expr(e.left, a) and _pure_expr(e.right, a)
    if isinstance(e, N.InSet):
        return _pure_expr(e.item, a) and _pure_expr(e.collection, a)
    if isinstance(e, (N.And, N.Or)):
        return all(_pure_expr(t, a) for t in e.terms)
    if isinstance(e, N.Quant):
        return _pure_expr(e.collection, a) and _pure_expr(e.body, a)
    return False


class _SrcGen:
    """Emits statements computing one expression; complex or rare node
    shapes fall back to the compiled closure for that subtree.

    ``param_safe=True`` asserts that at runtime ``env.params`` holds
    exactly the bound names — true for top-level rule bases, which are
    only ever invoked with their declared argument bindings.  Subbases
    can inherit extra parameters from the calling base (``env.bind``
    merges), so their generated code keeps the ``params`` probe that
    mirrors ``eval_expr``'s name-resolution order.
    """

    def __init__(self, analyzed: AnalyzedProgram, bound: frozenset[str],
                 param_safe: bool = False):
        self.a = analyzed
        self.bound = bound
        self.psafe = param_safe
        self.ns: dict = dict(_HELPERS)
        self.lines: list[str] = []
        self.indent = 1
        self.k = 0
        # common-subexpression cache for scalar register/input reads:
        # within one generated function nothing mutates either store
        # (conclusions gather effects against the pre-state), so a
        # repeated read returns the first read's temp.  Only temps
        # assigned at top level (indent 1) are cached — a temp defined
        # inside an And/Or branch does not dominate later uses.
        self.cse: dict[tuple[str, str], str] = {}

    def put(self, s: str) -> None:
        self.lines.append("    " * self.indent + s)

    def tmp(self) -> str:
        self.k += 1
        return f"t{self.k}"

    def bindobj(self, obj, prefix: str = "o") -> str:
        self.k += 1
        name = f"_{prefix}{self.k}"
        self.ns[name] = obj
        return name

    def totmp(self, src: str) -> str:
        if src.isidentifier():
            return src
        t = self.tmp()
        self.put(f"{t} = {src}")
        return t

    def fallback(self, e: N.Expr) -> str:
        fn = compile_expr(e, self.a, self.bound)
        return self.totmp(f"{self.bindobj(fn, 'f')}(env)")

    def coerced(self, e: N.Expr, line: int) -> str:
        t = self.totmp(self.expr(e))
        self.put(f"if {t}.__class__ is not bool: {t} = _tb({t}, {line})")
        return t

    def _tuple_src(self, parts: list[str]) -> str:
        return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"

    def _simple_src(self, e: N.Expr) -> str | None:
        """Source for side-effect-free leaf args (safe to re-evaluate on
        the fallback path), or None if the arg is not that simple."""
        a = self.a
        if isinstance(e, N.Num):
            return repr(e.value)
        if isinstance(e, N.Name):
            name = e.ident
            if name in self.bound:
                return f"p[{name!r}]"
            if name in a.symbol_owner:
                return f"{name!r}" if self.psafe \
                    else f"p.get({name!r}, {name!r})"
            if name in a.constants:
                c = self.bindobj(a.constants[name], "c")
                return c if self.psafe else f"p.get({name!r}, {c})"
        return None

    def expr(self, e: N.Expr) -> str:
        a = self.a
        if isinstance(e, N.Num):
            return repr(e.value)
        if isinstance(e, N.Name):
            name = e.ident
            if name in self.bound:
                return f"p[{name!r}]"
            if name in a.symbol_owner:
                if self.psafe:
                    return f"{name!r}"
                return f"p.get({name!r}, {name!r})"
            if name in a.constants:
                c = self.bindobj(a.constants[name], "c")
                return c if self.psafe else f"p.get({name!r}, {c})"
            if name in a.types:
                c = self.bindobj(frozenset(a.types[name].values()), "c")
                return c if self.psafe else f"p.get({name!r}, {c})"
            if name in a.variables and not a.variables[name].is_array:
                cached = self.cse.get(("reg", name))
                if cached is not None:
                    return cached
                if self.psafe:
                    t = self.tmp()
                    self.put(f"{t} = regs.read({name!r})")
                else:
                    t = self.tmp()
                    self.put(f"{t} = p.get({name!r})")
                    self.put(f"if {t} is None:")
                    self.put(f"    {t} = regs.read({name!r})")
                if self.indent == 1:
                    self.cse[("reg", name)] = t
                return t
            if name in a.inputs and not a.inputs[name].index_domains:
                cached = self.cse.get(("in", name))
                if cached is not None:
                    return cached
                slow = self.bindobj(compile_expr(e, a, self.bound), "f")
                t = self.tmp()
                if self.psafe:
                    # m is non-None here: the generated function bails
                    # to the closure fallback up front when it is not
                    self.put(f"{t} = m.get({name!r})")
                    self.put(f"if {t} is None or isinstance({t}, dict):")
                    self.put(f"    {t} = {slow}(env)")
                else:
                    self.put(f"{t} = p.get({name!r})")
                    self.put(f"if {t} is None:")
                    self.put(f"    {t} = m.get({name!r})")
                    self.put(f"    if {t} is None or isinstance({t}, dict):")
                    self.put(f"        {t} = {slow}(env)")
                if self.indent == 1:
                    self.cse[("in", name)] = t
                return t
            return self.fallback(e)
        if isinstance(e, N.Index):
            name = e.ident
            if name in a.variables:
                parts = [self.expr(x) for x in e.args]
                return self.totmp(
                    f"regs.read({name!r}, {self._tuple_src(parts)})")
            if name in a.inputs and a.inputs[name].index_domains:
                # args are evaluated to temps first (legacy order), and
                # must be pure: the slow closure re-evaluates them when
                # the inline read misses
                if not all(_pure_expr(x, a) for x in e.args):
                    return self.fallback(e)
                parts = [self._simple_src(x) or self.totmp(self.expr(x))
                         for x in e.args]
                idx_src = self._tuple_src(parts)
                read_key = ("ini", name, idx_src)
                cached = self.cse.get(read_key)
                if cached is not None:
                    return cached
                slow = self.bindobj(compile_expr(e, a, self.bound), "f")
                w = self.cse.get(("im", name))
                if w is None:
                    w = self.tmp()
                    self.put(f"{w} = m.get({name!r})")
                    if self.indent == 1:
                        self.cse[("im", name)] = w
                t = self.tmp()
                self.put(f"if {w}.__class__ is dict:")
                self.put(f"    {t} = {w}.get({idx_src})")
                self.put(f"    if {t} is None:")
                self.put(f"        {t} = {slow}(env)")
                self.put("else:")
                self.put(f"    {t} = {slow}(env)")
                if self.indent == 1:
                    self.cse[read_key] = t
                return t
            if name in a.functions:
                parts = [self.expr(x) for x in e.args]
                fn_t = self.tmp()
                self.put(f"{fn_t} = fns.get({name!r})")
                self.put(f"if {fn_t} is None: _nofn({name!r}, {e.line})")
                return self.totmp(f"{fn_t}({', '.join(parts)})")
            return self.fallback(e)
        if isinstance(e, N.SetLit):
            # symbol/constant items fold only when param-safe (a leaked
            # outer param could shadow them otherwise, like eval_expr)
            if all(isinstance(i, N.Num) or
                   (self.psafe and isinstance(i, N.Name)
                    and i.ident not in self.bound
                    and (i.ident in a.symbol_owner or i.ident in a.constants))
                   for i in e.items):
                value = frozenset(
                    i.value if isinstance(i, N.Num)
                    else i.ident if i.ident in a.symbol_owner
                    else a.constants[i.ident]
                    for i in e.items)
                return self.bindobj(value, "c")
            parts = [self.expr(x) for x in e.items]
            return self.totmp(f"frozenset({self._tuple_src(parts)})")
        if isinstance(e, N.UnOp):
            t1 = self.totmp(self.expr(e.operand))
            return self.totmp(f"-{t1} if {t1}.__class__ is int "
                              f"else _neg({t1}, {e.line})")
        if isinstance(e, N.BinOp):
            op = e.op
            l = self.totmp(self.expr(e.left))
            r = self.totmp(self.expr(e.right))
            if op in _PY_SETOP:
                return self.totmp(
                    f"{l} {_PY_SETOP[op]} {r} if {l}.__class__ is frozenset "
                    f"and {r}.__class__ is frozenset "
                    f"else _setop({op!r}, {l}, {r}, {e.line})")
            if op in ("+", "-", "*"):
                return self.totmp(
                    f"{l} {op} {r} if ({l}.__class__ is int and "
                    f"{r}.__class__ is int) "
                    f"else _arith({op!r}, {l}, {r}, {e.line})")
            if op == "MOD":
                return self.totmp(
                    f"{l} % {r} if ({l}.__class__ is int and "
                    f"{r}.__class__ is int and {r} != 0) "
                    f"else _arith('MOD', {l}, {r}, {e.line})")
            return self.fallback(e)
        if isinstance(e, N.Compare):
            op = e.op
            if op not in ("=", "/=", "<", "<=", ">", ">="):
                return self.fallback(e)
            l = self.totmp(self.expr(e.left))
            r = self.totmp(self.expr(e.right))
            if op in ("=", "/="):
                pyop = "==" if op == "=" else "!="
                return self.totmp(
                    f"({l} {pyop} {r}) if ({l}.__class__ is not bool and "
                    f"{r}.__class__ is not bool) "
                    f"else _eqn({l}, {r}, {op == '/='})")
            return self.totmp(
                f"({l} {op} {r}) if ({l}.__class__ is int and "
                f"{r}.__class__ is int) "
                f"else _ord({op!r}, {l}, {r}, {e.line})")
        if isinstance(e, N.InSet):
            i = self.totmp(self.expr(e.item))
            c = self.totmp(self.expr(e.collection))
            return self.totmp(f"({i} in {c}) if {c}.__class__ is frozenset "
                              f"else _in({i}, {c}, {e.line})")
        if isinstance(e, (N.And, N.Or)):
            is_and = isinstance(e, N.And)
            t = self.tmp()
            c = self.coerced(e.terms[0], e.line)
            self.put(f"{t} = {c}")
            depth = 0
            for term in e.terms[1:]:
                self.put(f"if {t}:" if is_and else f"if not {t}:")
                self.indent += 1
                depth += 1
                c = self.coerced(term, e.line)
                self.put(f"{t} = {c}")
            self.indent -= depth
            return t
        if isinstance(e, N.Not):
            c = self.coerced(e.operand, e.line)
            return self.totmp(f"not {c}")
        return self.fallback(e)


_GEN_PRELUDE = ("def _gen(env):\n"
                "    p = env.params\n"
                "    m = env.inputs_map\n"
                "    fns = env.functions\n"
                "    regs = env.registers\n")


def _exec_gen(gen: _SrcGen, result_src: str, tag: str):
    src = _GEN_PRELUDE + "\n".join(gen.lines) + f"\n    return {result_src}\n"
    code = compile(src, f"<fastpath:{tag}>", "exec")
    exec(code, gen.ns)
    return gen.ns["_gen"]


def generate_codes_fn(base, analyzed: AnalyzedProgram,
                      bound: frozenset[str], param_safe: bool = False,
                      slow_fallback=None):
    """One generated function computing the whole feature-code tuple.

    ``slow_fallback`` (the closure-compiled tuple builder) handles the
    callable-inputs case: generated input reads assume a mapping-backed
    source, so the function bails out up front when there is none.
    """
    gen = _SrcGen(analyzed, bound, param_safe)
    if slow_fallback is not None:
        fb = gen.bindobj(slow_fallback, "fb")
        gen.put(f"if m is None: return {fb}(env)")
    parts = []
    for feat in base.analysis.features:
        if isinstance(feat, DirectFeature):
            enc = gen.bindobj(feat.domain.encode, "e")
            parts.append(gen.totmp(f"{enc}({gen.expr(feat.signal)})"))
        else:
            t0 = gen.totmp(gen.expr(feat.atom))
            parts.append(gen.totmp(
                f"1 if {t0} is True or {t0} == 'true' else "
                f"(0 if {t0} is False or {t0} == 'false' else _bb({t0}))"))
    return _exec_gen(gen, gen._tuple_src(parts), f"codes:{base.name}")


def generate_value_fn(expr: N.Expr, analyzed: AnalyzedProgram,
                      bound: frozenset[str], tag: str,
                      param_safe: bool = False):
    """One generated function computing a single expression value."""
    gen = _SrcGen(analyzed, bound, param_safe)
    fb = gen.bindobj(compile_expr(expr, analyzed, bound), "fb")
    gen.put(f"if m is None: return {fb}(env)")
    return _exec_gen(gen, gen.totmp(gen.expr(expr)), f"value:{tag}")


# ---------------------------------------------------------------------------
# the kernel
# ---------------------------------------------------------------------------

class DecisionKernel:
    """Per-rule-base fast path: extractors + strides + memo + compiled
    conclusions.  Built lazily, once, from a
    :class:`~repro.core.compiler.compile.CompiledRuleBase`."""

    __slots__ = ("base", "analyzed", "extractors", "strides", "params_meta",
                 "memo", "memo_enabled", "_conclusions", "_bound", "_codes",
                 "_bind_memo", "_env_memo", "_psafe")

    def __init__(self, base, analyzed: AnalyzedProgram):
        self.base = base
        self.analyzed = analyzed
        self._bound = frozenset(name for name, _ in base.params)
        # a top-level rule base is only ever invoked with its declared
        # argument bindings as env.params (subbases can inherit extra
        # params from the caller via env.bind), so its generated code
        # may resolve free names without the params probe
        self._psafe = base.name not in analyzed.subbases
        extractors = []
        sizes = []
        for feat in base.analysis.features:
            if isinstance(feat, DirectFeature):
                signal = compile_expr(feat.signal, analyzed, self._bound)
                encode = feat.domain.encode
                extractors.append(_direct_extractor(signal, encode))
            else:
                assert isinstance(feat, BitFeature)
                atom = compile_expr(feat.atom, analyzed, self._bound)
                extractors.append(_bit_extractor(atom))
            sizes.append(feat.size)
        self.extractors = tuple(extractors)
        try:
            self._codes = generate_codes_fn(base, analyzed, self._bound,
                                            self._psafe,
                                            _tupler(self.extractors))
        except Exception:  # pragma: no cover - codegen is best-effort
            self._codes = _tupler(self.extractors)
        # mixed-radix strides: index_of(codes) == dot(strides, codes)
        strides = [0] * len(sizes)
        acc = 1
        for i in range(len(sizes) - 1, -1, -1):
            strides[i] = acc
            acc *= sizes[i]
        self.strides = tuple(strides)
        self.params_meta = tuple(
            (name, dom, f"argument {name} of {base.name}")
            for name, dom in base.params)
        self.memo: dict[tuple[int, ...], int] = {}
        self.memo_enabled = base.analysis.n_entries <= MAX_MEMO_ENTRIES
        self._conclusions: dict[int, _Conclusion] = {}
        self._bind_memo: dict[tuple[Value, ...], dict[str, Value]] = {}
        self._env_memo: dict[tuple[Value, ...], Env] = {}

    # -- premise processing -------------------------------------------------

    def codes(self, env: Env) -> tuple[int, ...]:
        return self._codes(env)

    def index(self, env: Env) -> int:
        idx = 0
        for ex, stride in zip(self.extractors, self.strides):
            idx += stride * ex(env)
        return idx

    def entry(self, env: Env) -> int:
        """Table entry for the current environment, memoised on the
        feature-code tuple."""
        if not self.memo_enabled:
            return int(self.base.table[self.index(env)])
        codes = self._codes(env)
        entry = self.memo.get(codes)
        if entry is None:
            idx = 0
            for stride, code in zip(self.strides, codes):
                idx += stride * code
            entry = int(self.base.table[idx])
            self.memo[codes] = entry
        return entry

    def decide_batch(self, *feature_codes):
        """Vectorized premise processing: one gather over the dense
        rule table for a whole batch of decisions.

        Each positional argument is an integer array of feature codes
        for one premise feature, in declaration order — e.g. for a
        two-feature base ``decide_batch(dest_idx, state_idx)``.  All
        arrays must share a length ``n``; element ``i`` of the returned
        int32 array equals :meth:`entry` for the environment whose
        feature-code tuple is ``(feature_codes[0][i], ...)`` (gaps come
        back as ``NO_RULE``, exactly like the scalar path's table
        read).  This is the entry point batched simulation engines use
        to resolve many routing decisions without per-decision Python
        dispatch; codes outside a feature's domain are rejected rather
        than silently aliased into a neighbouring table row.
        """
        import numpy as np

        table = self.base.table
        if table is None:
            raise EvalError(f"rule base {self.base.name!r} was compiled "
                            f"without a materialized table; recompile "
                            f"with materialize=True to execute it")
        if len(feature_codes) != len(self.strides):
            raise EvalError(f"rule base {self.base.name!r} has "
                            f"{len(self.strides)} premise features, got "
                            f"{len(feature_codes)} code arrays")
        idx = None
        for col, (codes, feat, stride) in enumerate(zip(
                feature_codes, self.base.analysis.features, self.strides)):
            codes = np.asarray(codes, dtype=np.int64)
            if codes.size and (codes.min() < 0
                               or codes.max() >= feat.size):
                raise EvalError(f"rule base {self.base.name!r}: feature "
                                f"{col} codes out of range "
                                f"[0, {feat.size})")
            idx = codes * stride if idx is None else idx + codes * stride
        return table[idx].astype(np.int32, copy=False)

    # -- conclusion processing ----------------------------------------------

    def conclusion(self, entry: int) -> _Conclusion:
        con = self._conclusions.get(entry)
        if con is None:
            con = _Conclusion(self.base.ground_rules[entry], self.analyzed,
                              self._bound, f"{self.base.name}[{entry}]",
                              self._psafe)
            self._conclusions[entry] = con
        return con

    # -- one full decision ----------------------------------------------------

    def invoke(self, args: tuple[Value, ...], env: Env,
               subbase_runner_factory) -> InvocationResult:
        base = self.base
        if base.table is None:
            raise EvalError(f"rule base {base.name!r} was compiled without "
                            f"a materialized table; recompile with "
                            f"materialize=True to execute it")
        # args repeat from a small space; memoise the checked bindings.
        # The dict is shared across invocations — safe because nothing
        # downstream mutates env.params (binds always copy).
        bindings = self._bind_memo.get(args)
        if bindings is None:
            if len(args) != len(self.params_meta):
                raise EvalError(f"rule base {base.name!r} expects "
                                f"{len(self.params_meta)} arguments, got "
                                f"{len(args)}")
            bindings = {}
            for (name, dom, what), value in zip(self.params_meta, args):
                dom.check(value, what)
                bindings[name] = value
            if len(self._bind_memo) < 4096:
                self._bind_memo[args] = bindings
        if env.params:
            call_env = env.bind(bindings)
        else:
            # param-less caller == the engine's base environment, whose
            # non-input fields are identity-stable for the engine's
            # lifetime (set_inputs swaps inputs/inputs_map in place).
            # The call environment per args tuple is therefore reusable
            # once its inputs fields are refreshed.
            call_env = self._env_memo.get(args)
            if call_env is None:
                call_env = Env(env.analyzed, env.registers, bindings,
                               env.inputs, env.functions, env.call_subbase,
                               env.inputs_map)
                if len(self._env_memo) < 4096:
                    self._env_memo[args] = call_env
            elif call_env.inputs is not env.inputs:
                call_env.inputs = env.inputs
                call_env.inputs_map = env.inputs_map

        entry = self.entry(call_env)
        result = InvocationResult(base=base.name, fired_source_rule=None)
        if entry == NO_RULE:
            return result
        ground = base.ground_rules[entry]
        result.fired_source_rule = ground.source_index
        result.witness = ground.witness
        con = self.conclusion(entry)
        if con.static:
            result.returned = con.returned
            result.has_return = con.has_return
            return result
        if con.value_fn is not None:
            result.returned = con.value_fn(call_env)
            result.has_return = True
            return result
        effects = _Effects()
        runner = (subbase_runner_factory(call_env)
                  if con.calls_subbase else None)
        con.run(call_env, effects, runner)
        apply_effects(effects, call_env, result)
        return result


def _direct_extractor(signal: ExprFn, encode) -> Callable[[Env], int]:
    return lambda env: encode(signal(env))


def _bit_extractor(atom: ExprFn) -> Callable[[Env], int]:
    def extract(env: Env) -> int:  # to_bool inlined: this runs per bit
        v = atom(env)
        if v is True or v == "true":
            return 1
        if v is False or v == "false":
            return 0
        raise EvalError(f"expected a boolean, got {v!r}")
    return extract

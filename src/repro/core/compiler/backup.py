"""Build-time backup rule subbases for LFA-style fast reroute.

The paper's rule-base architecture makes post-fault reconfiguration a
first-class compiler operation — but reconfiguration is the *slow*
path: detection, a notification flood, and a distributed state
recomputation all happen while worms die on the dead link.  This
module emits the *fast* path at network-construction time: for every
link a node could lose, a **backup next-hop subbase** — the candidate
outputs a fresh injection at that node would legally take *if that one
link were already dead* — precomputed before any failure and installed
alongside the primary rules, so a detecting node can reroute locally
the moment its heartbeat confirms the fault, with no flooding
round-trip (the DBR-style split of fast local recovery over slow
global convergence).

The build reuses the probe discipline of
:mod:`repro.routing.clean_table`: entries are obtained by running the
*live* algorithm's ``route()`` against a shadow network with exactly
the protected link failed, and every entry is verified —

* **probe-verified**: each entry is re-probed and must reproduce the
  identical decision — candidates *and* header-field writes (updown
  commits its move map through ``header.fields``); a nondeterministic
  decision is disqualified, never stored;
* **scoped**: an entry is emitted only for destinations whose
  *fault-free* primary decision at that node uses the protected link —
  other destinations never need the backup (classic LFA coverage);
* **deadlock-checked**: for a deterministic sample of protected links
  (all of them in the analysis tests) the shadow network's channel
  dependency graph is extracted via
  :func:`repro.analysis.deadlock.build_cdg` and must be acyclic — the
  backup entries *are* that configuration's routing relation at the
  injection state, so an acyclic CDG certifies them.

Tables persist as JSON under the batched kernel's cache directory
keyed by the code-version token (same convention as the clean tables),
so sweep workers and CI runs with a seeded cache skip the probe pass.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field

from ...sim.topology import link_key

#: pseudo in-port: the probe models a fresh injection at the local port
_LOCAL = -1

#: bump to invalidate persisted tables on format changes
_FORMAT = 1


@dataclass
class BackupTable:
    """Per-node backup next-hop entries, keyed by the protected link.

    ``entries[(a, b)][node][dst]`` is ``(candidates, fields)``: the
    ``(port, vc)`` list a fresh injection at ``node`` (one of the
    link's endpoints) may take toward ``dst`` while link ``(a, b)`` is
    down, plus the header-field writes the live algorithm made when it
    produced that decision (replayed verbatim on activation so
    ``on_depart`` bookkeeping — e.g. updown's phase commit — stays
    exactly what the algorithm would have done itself).
    """

    entries: dict = field(default_factory=dict)
    #: protected links whose shadow CDG was extracted and found acyclic
    verified_links: list = field(default_factory=list)

    def lookup(self, node: int, link: tuple[int, int],
               dst: int) -> tuple | None:
        per_link = self.entries.get(link_key(*link))
        if not per_link:
            return None
        per_node = per_link.get(node)
        if not per_node:
            return None
        return per_node.get(dst)

    def n_entries(self) -> int:
        return sum(len(per_node)
                   for per_link in self.entries.values()
                   for per_node in per_link.values())

    def to_dict(self) -> dict:
        return {
            "format": _FORMAT,
            "verified_links": [list(lk) for lk in self.verified_links],
            "entries": {
                f"{a},{b}": {
                    str(node): {
                        str(dst): {"c": [list(c) for c in cands],
                                   "f": _encode_fields(fields)}
                        for dst, (cands, fields) in per_node.items()}
                    for node, per_node in per_link.items()}
                for (a, b), per_link in self.entries.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BackupTable":
        if d.get("format") != _FORMAT:
            raise ValueError("backup-table format mismatch")
        t = cls()
        t.verified_links = [tuple(int(x) for x in lk)
                            for lk in d.get("verified_links", [])]
        for link_s, per_link in d["entries"].items():
            a, b = link_s.split(",")
            t.entries[link_key(int(a), int(b))] = {
                int(node): {
                    int(dst): (tuple((int(p), int(v))
                                     for p, v in e["c"]),
                               _decode_fields(e["f"]))
                    for dst, e in per_node.items()}
                for node, per_node in per_link.items()}
        return t


def _encode_fields(fields: dict):
    """JSON-safe encoding of a header-field delta.  JSON turns dict
    keys into strings, but algorithm fields key sub-maps by *port id*
    (updown's move map), so dicts become tagged pair lists."""
    def enc(v):
        if isinstance(v, dict):
            return {"__d__": [[k, enc(x)] for k, x in v.items()]}
        if isinstance(v, (list, tuple)):
            return [enc(x) for x in v]
        return v
    return {k: enc(v) for k, v in fields.items()}


def _decode_fields(encoded) -> dict:
    def dec(v):
        if isinstance(v, dict):
            return {k: dec(x) for k, x in v["__d__"]}
        if isinstance(v, list):
            return [dec(x) for x in v]
        return v
    return {k: dec(v) for k, v in encoded.items()}


def _shadow_network(topology, algorithm):
    """A quiet shadow network binding ``algorithm``.  ``known_faults``
    aliases ``faults`` here (no detection delay), so failing a link and
    calling ``on_fault_update`` reproduces exactly the converged state
    the live network reaches on the slow path."""
    from ...sim.network import Network
    return Network(topology, algorithm)


def _probe(algorithm, router, dst: int):
    """One injection-state probe: ``(candidates, field_writes)``, or
    None when the algorithm delivers/sticks or its field writes do not
    survive a JSON round-trip (such entries are never stored)."""
    from ...sim.flit import Header
    header = Header(msg_id=-1, src=router.node, dst=dst, length=2,
                    created=0, fields={})
    dec = algorithm.route(router, header, _LOCAL, 0)
    if dec.deliver or dec.stuck or not dec.candidates:
        return None
    fields = dict(header.fields)
    if fields:
        try:
            if _decode_fields(json.loads(json.dumps(
                    _encode_fields(fields)))) != fields:
                return None
        except (TypeError, ValueError):
            return None
    return (tuple((int(p), int(v)) for p, v in dec.candidates), fields)


def build_backup_table(topology, algorithm_factory,
                       verify_deadlock: int = 4) -> BackupTable:
    """Probe-build the backup table for ``algorithm_factory()`` over
    ``topology``.  ``verify_deadlock`` protected links (deterministic,
    evenly spread; 0 disables, a negative value checks every link)
    additionally get a CDG acyclicity check of their shadow
    configuration."""
    return build_backup_table_for(topology, algorithm_factory(),
                                  verify_deadlock=verify_deadlock)


def build_backup_table_for(topology, algorithm,
                           verify_deadlock: int = 4) -> BackupTable:
    """Probe-build using an existing algorithm instance.  The instance
    is temporarily bound to a shadow network for the probe pass; the
    caller must ``reset()`` it onto its real network afterwards
    (``Network.__init__`` already does, since it resets the algorithm
    as its final construction step)."""
    net = _shadow_network(topology, algorithm)
    algo = net.algorithm
    if not getattr(algo, "fault_tolerant", False):
        raise ValueError(
            f"algorithm {algo.name!r} is not fault-tolerant; a backup "
            f"subbase against link faults would route into the fault")
    nodes = list(topology.nodes())
    # fault-free primary decisions: which output ports does a fresh
    # injection at u use toward dst?  Only destinations that lose a
    # primary port to the protected link need a backup entry.
    primary: dict[int, dict[int, frozenset]] = {}
    for u in nodes:
        router = net.routers[u]
        per_dst = {}
        for dst in nodes:
            if dst == u or not algo.accepts(u, dst):
                continue
            got = _probe(algo, router, dst)
            if got is not None:
                per_dst[dst] = frozenset(p for p, _ in got[0])
        primary[u] = per_dst

    table = BackupTable()
    links = sorted(topology.links())
    for link in links:
        per_link = _probe_link(net, algo, link, primary)
        if per_link:
            table.entries[link] = per_link

    if verify_deadlock:
        if verify_deadlock < 0 or verify_deadlock >= len(links):
            sample = links
        else:
            stride = max(1, len(links) // verify_deadlock)
            sample = links[::stride][:verify_deadlock]
        for link in sample:
            _verify_link(net, algo, link)
            table.verified_links.append(link)
    return table


def _probe_link(net, algo, link, primary) -> dict:
    """Entries for one protected link: probe both endpoints with the
    link failed, keep destinations whose primary routing used it, and
    re-probe every kept entry for determinism."""
    a, b = link
    net.faults.fail_link(a, b)
    algo.on_fault_update(net)
    per_link: dict[int, dict] = {}
    try:
        for u, far in ((a, b), (b, a)):
            lost_port = next(
                (pid for pid, p in net.topology.ports(u).items()
                 if p.neighbor == far), None)
            if lost_port is None:  # pragma: no cover - defensive
                continue
            router = net.routers[u]
            per_node: dict[int, tuple] = {}
            for dst, ports in primary[u].items():
                if lost_port not in ports:
                    continue        # primary survives; no backup needed
                if not algo.accepts(u, dst):
                    continue        # faulted config refuses the pair
                got = _probe(algo, router, dst)
                if got is None or _probe(algo, router, dst) != got:
                    continue        # unusable or not reproducible
                if any(p == lost_port for p, _ in got[0]):
                    # the live algorithm routed into the fault it was
                    # told about: an algorithm bug, never a legal entry
                    raise RuntimeError(
                        f"{algo.name}: faulted-config route at node {u} "
                        f"for dst {dst} uses the dead port {lost_port}")
                per_node[dst] = got
            if per_node:
                per_link[u] = per_node
    finally:
        net.faults.repair_link(a, b)
        algo.on_fault_update(net)
    return per_link


def _verify_link(net, algo, link) -> None:
    """Deadlock certification of one protected link's shadow
    configuration: the backup entries are this configuration's routing
    relation at the injection state, so its CDG must be acyclic."""
    from ...analysis.deadlock import build_cdg
    a, b = link
    net.faults.fail_link(a, b)
    algo.on_fault_update(net)
    try:
        result = build_cdg(net)
        if not result.acyclic:
            raise RuntimeError(
                f"{algo.name}: backup configuration for dead link "
                f"{link} has a cyclic channel dependency graph: "
                f"{result.cycle}")
    finally:
        net.faults.repair_link(a, b)
        algo.on_fault_update(net)


# -- persistence -------------------------------------------------------


def _table_path(algorithm_name: str, topology) -> str:
    from ...experiments.pool import code_version_token
    from ...sim._batched_kernel import _cache_dir
    import hashlib
    topo_key = hashlib.sha256(json.dumps(
        topology.describe(), sort_keys=True).encode()).hexdigest()[:12]
    name = (f"bk-{code_version_token()}-{algorithm_name}-{topo_key}.json")
    return os.path.join(_cache_dir(), "tables", name)


def load_or_build(topology, algorithm_factory, algorithm_name: str,
                  verify_deadlock: int = 4) -> BackupTable:
    """The backup table for this (algorithm, topology): from the
    persisted cache when the code-version token matches, probe-built
    (and persisted) otherwise."""
    path = _table_path(algorithm_name, topology)
    try:
        with open(path, encoding="utf-8") as f:
            return BackupTable.from_dict(json.load(f))
    except (OSError, ValueError, KeyError, TypeError):
        pass
    table = build_backup_table(topology, algorithm_factory,
                               verify_deadlock=verify_deadlock)
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(table.to_dict(), f, sort_keys=True)
        os.replace(tmp, path)           # atomic for concurrent builders
    except OSError:  # pragma: no cover - cache dir not writable
        pass
    return table

"""Rule compiler: DSL programs -> rule tables + FCFB configurations.

This is the off-line "Rule Compiler" of the paper (Sections 4.2/4.3):
it grounds quantifiers, extracts premise features, lays out the
conclusion encoding, inventories FCFBs and fills the completely-filled
rule table the RBR-kernel looks up.
"""

from .atoms import (MAX_DIRECT_BITS, AtomAnalysis, BitFeature, DirectFeature,
                    Feature)
from .backup import (BackupTable, build_backup_table,
                     build_backup_table_for)
from .backup import load_or_build as load_or_build_backup_table
from .compile import (CompiledProgram, CompiledRuleBase, compile_base,
                      compile_program)
from .encoding import ConclusionEncoding, Slot, build_encoding
from .expand import Expander, GroundRule, expand_base, value_to_node
from .export import (export_program, export_rulebase, import_check,
                     pack_bitstream, table_words, unpack_bitstream)
from .fcfb import FcfbInstance, collect_fcfbs, fcfb_summary
from .tablegen import MAX_TABLE_ENTRIES, NO_RULE, generate_table, table_stats
from .verify import (Axis, VerificationReport, collect_axes,
                     verify_equivalence)
from .transform import (TransformReport, fold_premise, fold_rules,
                        merge_adjacent_rules, drop_dead_rules, optimize_base)

__all__ = [
    "BackupTable", "build_backup_table", "build_backup_table_for",
    "load_or_build_backup_table",
    "MAX_DIRECT_BITS", "AtomAnalysis", "BitFeature", "DirectFeature",
    "Feature", "CompiledProgram", "CompiledRuleBase", "compile_base",
    "compile_program", "ConclusionEncoding", "Slot", "build_encoding",
    "Expander", "GroundRule", "expand_base", "value_to_node",
    "export_program", "export_rulebase", "import_check", "pack_bitstream",
    "table_words", "unpack_bitstream",
    "FcfbInstance", "collect_fcfbs", "fcfb_summary",
    "MAX_TABLE_ENTRIES", "NO_RULE", "generate_table", "table_stats",
    "Axis", "VerificationReport", "collect_axes", "verify_equivalence",
    "TransformReport", "fold_premise", "fold_rules",
    "merge_adjacent_rules", "drop_dead_rules", "optimize_base",
]

"""Semantics-preserving rule-base transformations.

Paper Section 4: "A rule-based specification is semantically well based
allowing the application of formal methods to routing algorithms, e.g.
transformations."  This module provides three such transformations,
each proven safe with respect to the first-applicable-rule semantics
and checked by differential tests (``tests/core/test_transform.py``):

* **constant folding** — premise atoms decidable at compile time are
  replaced by their truth value and the boolean structure is
  simplified; rules whose premises fold to ``false`` disappear;
* **adjacent-rule merging** — two *neighbouring* rules with identical
  conclusions merge into one rule with OR-ed premises.  Adjacency is
  what makes this safe: with no rule between them, an input matching
  either premise fired the earlier conclusion before and still does;
* **dead-rule elimination** — rules no table entry selects (shadowed by
  earlier rules for every reachable feature combination) are removed;
  the completely-filled table is identical afterwards by construction.

``optimize_base`` composes them and reports the table-size effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dsl import nodes as N
from ..dsl.semantics import Analyzer, BaseInfo
from .atoms import try_const
from .compile import CompiledRuleBase, compile_base

TRUE = N.Compare(op="=", left=N.Num(value=0), right=N.Num(value=0))
FALSE = N.Compare(op="=", left=N.Num(value=0), right=N.Num(value=1))


def _is_true(e: N.Expr) -> bool:
    return e == TRUE


def _is_false(e: N.Expr) -> bool:
    return e == FALSE


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

def fold_premise(analyzer: Analyzer, expr: N.Expr) -> N.Expr:
    """Evaluate compile-time-constant atoms; simplify AND/OR/NOT."""
    if isinstance(expr, N.And):
        terms = []
        for t in expr.terms:
            ft = fold_premise(analyzer, t)
            if _is_false(ft):
                return FALSE
            if _is_true(ft):
                continue
            terms.append(ft)
        if not terms:
            return TRUE
        if len(terms) == 1:
            return terms[0]
        return N.And(line=expr.line, terms=tuple(terms))
    if isinstance(expr, N.Or):
        terms = []
        for t in expr.terms:
            ft = fold_premise(analyzer, t)
            if _is_true(ft):
                return TRUE
            if _is_false(ft):
                continue
            terms.append(ft)
        if not terms:
            return FALSE
        if len(terms) == 1:
            return terms[0]
        return N.Or(line=expr.line, terms=tuple(terms))
    if isinstance(expr, N.Not):
        inner = fold_premise(analyzer, expr.operand)
        if _is_true(inner):
            return FALSE
        if _is_false(inner):
            return TRUE
        if isinstance(inner, N.Not):
            return inner.operand
        return N.Not(line=expr.line, operand=inner)
    if isinstance(expr, N.Quant):
        # quantifiers fold after expansion; leave them intact here
        return expr
    if isinstance(expr, N.Compare):
        lok, lv = try_const(analyzer, expr.left)
        rok, rv = try_const(analyzer, expr.right)
        if lok and rok:
            from .atoms import _compare
            return TRUE if _compare(expr.op, lv, rv, expr.line) else FALSE
        return expr
    if isinstance(expr, N.InSet):
        iok, iv = try_const(analyzer, expr.item)
        cok, cv = try_const(analyzer, expr.collection)
        if iok and cok and isinstance(cv, frozenset):
            return TRUE if iv in cv else FALSE
        return expr
    return expr


def fold_rules(analyzer: Analyzer, base: BaseInfo) -> BaseInfo:
    rules = []
    for rule in base.rules:
        prem = fold_premise(analyzer, rule.premise)
        if _is_false(prem):
            continue  # can never fire
        rules.append(N.Rule(premise=prem, conclusion=rule.conclusion,
                            line=rule.line))
    return BaseInfo(base.name, base.params, base.returns, tuple(rules),
                    base.is_subbase, base.line)


# ---------------------------------------------------------------------------
# adjacent-rule merging
# ---------------------------------------------------------------------------

def merge_adjacent_rules(base: BaseInfo) -> BaseInfo:
    rules: list[N.Rule] = []
    for rule in base.rules:
        if rules and rules[-1].conclusion == rule.conclusion:
            prev = rules[-1]
            prev_terms = (prev.premise.terms
                          if isinstance(prev.premise, N.Or)
                          else (prev.premise,))
            rules[-1] = N.Rule(
                premise=N.Or(line=prev.line,
                             terms=tuple(prev_terms) + (rule.premise,)),
                conclusion=prev.conclusion, line=prev.line)
        else:
            rules.append(rule)
    return BaseInfo(base.name, base.params, base.returns, tuple(rules),
                    base.is_subbase, base.line)


# ---------------------------------------------------------------------------
# dead-rule elimination
# ---------------------------------------------------------------------------

def drop_dead_rules(analyzer: Analyzer, base: BaseInfo) -> BaseInfo:
    """Compile once, remove source rules that no table entry selects."""
    compiled = compile_base(analyzer, base, materialize=True)
    assert compiled.table is not None
    used_sources = {compiled.ground_rules[int(e)].source_index
                    for e in compiled.table if int(e) >= 0}
    rules = tuple(r for i, r in enumerate(base.rules) if i in used_sources)
    if len(rules) == len(base.rules):
        return base
    return BaseInfo(base.name, base.params, base.returns, rules,
                    base.is_subbase, base.line)


# ---------------------------------------------------------------------------
# composition + reporting
# ---------------------------------------------------------------------------

@dataclass
class TransformReport:
    name: str
    rules_before: int
    rules_after: int
    size_bits_before: int
    size_bits_after: int
    steps: list[str] = field(default_factory=list)

    @property
    def saved_bits(self) -> int:
        return self.size_bits_before - self.size_bits_after


def optimize_base(analyzer: Analyzer, base: BaseInfo
                  ) -> tuple[CompiledRuleBase, TransformReport]:
    """Apply fold -> merge -> dead-rule elimination, recompile, report."""
    before = compile_base(analyzer, base, materialize=True)
    steps = []

    folded = fold_rules(analyzer, base)
    if folded.rules != base.rules:
        steps.append(f"constant folding: {len(base.rules)} -> "
                     f"{len(folded.rules)} rules")
    merged = merge_adjacent_rules(folded)
    if merged.rules != folded.rules:
        steps.append(f"adjacent merge: {len(folded.rules)} -> "
                     f"{len(merged.rules)} rules")
    slim = drop_dead_rules(analyzer, merged)
    if slim.rules != merged.rules:
        steps.append(f"dead-rule elimination: {len(merged.rules)} -> "
                     f"{len(slim.rules)} rules")

    after = compile_base(analyzer, slim, materialize=True)
    report = TransformReport(
        name=base.name, rules_before=len(base.rules),
        rules_after=len(slim.rules),
        size_bits_before=before.size_bits,
        size_bits_after=after.size_bits, steps=steps)
    return after, report

"""Rule-table generation (the off-line part of the ARON approach).

"The rule base itself is compiled off-line to a completely filled rule
table where conflicts are resolved and gaps are eliminated, i.e., for
each possible combination of input values there is exactly one table
entry which holds the corresponding conclusion." (paper Section 4.3)

Conflict resolution: when several rules apply we take the textually
first one (for witness-split rules, the lowest candidate value), which
both interpreters share, making compiled and reference semantics
bit-identical.  Gaps (combinations no rule covers) map to an explicit
no-op entry.
"""

from __future__ import annotations

import numpy as np

from ..dsl.errors import CompileError
from .atoms import AtomAnalysis

# Completely-filled tables above this size would not be sensible
# hardware; the compiler refuses rather than silently exploding.
MAX_TABLE_ENTRIES = 1 << 24

NO_RULE = -1


def generate_table(analysis: AtomAnalysis) -> np.ndarray:
    """Dense table: entry index -> ground-rule index (NO_RULE for gaps)."""
    n = analysis.n_entries
    if n > MAX_TABLE_ENTRIES:
        raise CompileError(
            f"rule table would need {n} entries (> {MAX_TABLE_ENTRIES}); "
            f"restructure the rule base (paper Section 4.3: 'structuring "
            f"and using the premise configuration allow small rule tables')")
    table = np.full(n, NO_RULE, dtype=np.int32)
    rules = analysis.ground_rules
    for idx, codes in analysis.enumerate_assignments():
        for ri, rule in enumerate(rules):
            if analysis.eval_premise(rule.premise, codes):
                table[idx] = ri
                break
    return table


def table_stats(table: np.ndarray, n_rules: int) -> dict:
    """Coverage statistics used by tests and the cost report."""
    hit = int((table != NO_RULE).sum())
    used = set(int(r) for r in table[table != NO_RULE])
    return {
        "entries": int(table.size),
        "covered": hit,
        "gap_entries": int(table.size) - hit,
        "rules_used": len(used),
        "rules_total": n_rules,
        "dead_rules": sorted(set(range(n_rules)) - used),
    }

"""Premise-atom extraction and rule-table index construction.

The ARON rule interpreter (paper Section 4.3) reduces rule selection to
one table lookup: "The relevant features of the input variables are
extracted in the premise processing unit such that rule interpretation
is reduced to a simple table lookup in the RBR-kernel."

We mirror that design.  A ground premise is a boolean combination of
*atoms* (comparisons and membership tests).  Every non-constant maximal
value expression occurring in an atom is a *signal*.  Each signal is
wired into the table index in one of two ways:

* **direct** — the signal's encoded value becomes part of the index
  ("their current values are used as part of the table index
  directly"), chosen when the signal's bit width does not exceed the
  number of atoms that mention it; or
* **per-atom bits** — each remaining atom becomes a 1-bit feature
  computed by an FCFB (comparator, membership tester ...).

An atom whose signals are all direct needs no FCFB and no bit: its
truth is a function of index components and is folded into the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsl import nodes as N
from ..dsl.domains import BOOL, Domain, SetDomain, Value
from ..dsl.errors import CompileError
from ..dsl.semantics import Analyzer, BaseInfo, Binding, Scope
from .expand import GroundRule

# Signals wider than this are never made direct (a 13-bit raw value
# would multiply the table size by 8192).
MAX_DIRECT_BITS = 12


def make_scope(analyzer: Analyzer, base: BaseInfo) -> Scope:
    return Scope(analyzer.analyzed,
                 {n: Binding("param", d) for n, d in base.params})


def try_const(analyzer: Analyzer, expr: N.Expr) -> tuple[bool, Value | None]:
    """(True, value) when expr is compile-time constant."""
    try:
        return True, analyzer.const_eval(expr)
    except Exception:
        return False, None


def normalize_premise(analyzer: Analyzer, expr: N.Expr, scope: Scope) -> N.Expr:
    """Wrap bare boolean-valued leaves as ``expr = true`` atoms so that
    downstream passes only meet And/Or/Not/Compare/InSet nodes."""
    if isinstance(expr, N.And):
        return N.And(line=expr.line, terms=tuple(
            normalize_premise(analyzer, t, scope) for t in expr.terms))
    if isinstance(expr, N.Or):
        return N.Or(line=expr.line, terms=tuple(
            normalize_premise(analyzer, t, scope) for t in expr.terms))
    if isinstance(expr, N.Not):
        return N.Not(line=expr.line,
                     operand=normalize_premise(analyzer, expr.operand, scope))
    if isinstance(expr, (N.Compare, N.InSet)):
        return expr
    dom = analyzer.infer_domain(expr, scope)
    if dom is BOOL:
        return N.Compare(line=expr.line, op="=", left=expr,
                         right=N.Name(line=expr.line, ident="true"))
    raise CompileError("premise leaf is not boolean", getattr(expr, "line", 0))


@dataclass(frozen=True)
class AtomInfo:
    """One distinct ground atom with its classification."""

    atom: N.Expr                       # Compare or InSet node
    signals: tuple[N.Expr, ...]        # non-constant participants
    kind: str                          # see _classify_atom
    const_truth: bool | None = None    # for atoms with no signals


@dataclass(frozen=True)
class DirectFeature:
    """A signal fed into the index as its raw encoded value."""

    signal: N.Expr
    domain: Domain

    @property
    def size(self) -> int:
        return self.domain.size


@dataclass(frozen=True)
class BitFeature:
    """A 1-bit index component: the truth of one atom."""

    atom: N.Expr
    fcfb: str

    @property
    def size(self) -> int:
        return 2


Feature = DirectFeature | BitFeature


def collect_atoms(premise: N.Expr, out: list[N.Expr]) -> None:
    if isinstance(premise, (N.And, N.Or)):
        for t in premise.terms:
            collect_atoms(t, out)
    elif isinstance(premise, N.Not):
        collect_atoms(premise.operand, out)
    elif isinstance(premise, (N.Compare, N.InSet)):
        if premise not in out:
            out.append(premise)
    else:  # pragma: no cover - normalize_premise guarantees atoms
        raise CompileError(f"unexpected premise node {premise!r}")


class AtomAnalysis:
    """Classifies the atoms of a rule base and chooses index features."""

    def __init__(self, analyzer: Analyzer, base: BaseInfo,
                 ground_rules: list[GroundRule]):
        self.analyzer = analyzer
        self.base = base
        self.scope = make_scope(analyzer, base)
        self.ground_rules = [
            GroundRule(premise=normalize_premise(analyzer, g.premise, self.scope),
                       commands=g.commands, source_index=g.source_index,
                       witness=g.witness, origins=g.origins, line=g.line)
            for g in ground_rules]
        self.atoms: dict[N.Expr, AtomInfo] = {}
        self.features: list[Feature] = []
        self.direct_signals: dict[N.Expr, DirectFeature] = {}
        self.bit_atoms: dict[N.Expr, BitFeature] = {}
        self._analyze()

    # -- classification -----------------------------------------------------

    def _classify_atom(self, atom: N.Expr) -> AtomInfo:
        an = self.analyzer
        if isinstance(atom, N.Compare):
            lc, lv = try_const(an, atom.left)
            rc, rv = try_const(an, atom.right)
            if lc and rc:
                truth = _compare(atom.op, lv, rv, atom.line)
                return AtomInfo(atom, (), "const", truth)
            if lc or rc:
                sig = atom.right if lc else atom.left
                return AtomInfo(atom, (sig,), "cmp_const")
            return AtomInfo(atom, (atom.left, atom.right), "cmp_two")
        if isinstance(atom, N.InSet):
            ic, iv = try_const(an, atom.item)
            cc, cv = try_const(an, atom.collection)
            if ic and cc:
                assert isinstance(cv, frozenset)
                return AtomInfo(atom, (), "const", iv in cv)
            if cc:
                return AtomInfo(atom, (atom.item,), "member_const")
            if ic:
                # const item in a computed set: signal is the set expr
                return AtomInfo(atom, (atom.collection,), "member_computed")
            return AtomInfo(atom, (atom.item, atom.collection), "member_two")
        raise CompileError(f"not an atom: {atom!r}",
                           getattr(atom, "line", 0))  # pragma: no cover

    def _analyze(self) -> None:
        all_atoms: list[N.Expr] = []
        for g in self.ground_rules:
            collect_atoms(g.premise, all_atoms)
        for atom in all_atoms:
            self.atoms[atom] = self._classify_atom(atom)

        # how many atoms mention each signal
        signal_atoms: dict[N.Expr, list[AtomInfo]] = {}
        for info in self.atoms.values():
            for sig in info.signals:
                signal_atoms.setdefault(sig, []).append(info)

        # pass 1: direct signals
        for sig, infos in signal_atoms.items():
            dom = self.analyzer.infer_domain(sig, self.scope)
            width = dom.bit_width
            if width <= MAX_DIRECT_BITS and width <= len(infos):
                self.direct_signals[sig] = DirectFeature(sig, dom)

        # pass 2: remaining atoms become bit features
        for atom, info in self.atoms.items():
            if info.kind == "const":
                continue
            if all(s in self.direct_signals for s in info.signals):
                continue  # derived from index components, no bit needed
            self.bit_atoms[atom] = BitFeature(atom, _atom_fcfb(info))

        directs = sorted(self.direct_signals.values(),
                         key=lambda f: repr(f.signal))
        bits = sorted(self.bit_atoms.values(), key=lambda f: repr(f.atom))
        self.features = list(directs) + list(bits)

    # -- index helpers ---------------------------------------------------------

    @property
    def n_entries(self) -> int:
        n = 1
        for f in self.features:
            n *= f.size
        return n

    def index_of(self, feature_values: list[int]) -> int:
        """Mixed-radix index of one combination of feature codes."""
        idx = 0
        for f, v in zip(self.features, feature_values):
            idx = idx * f.size + v
        return idx

    def enumerate_assignments(self):
        """Yield (index, {feature: code}) over the full index space."""
        sizes = [f.size for f in self.features]
        n = self.n_entries
        codes = [0] * len(sizes)
        for idx in range(n):
            yield idx, list(codes)
            for pos in range(len(sizes) - 1, -1, -1):
                codes[pos] += 1
                if codes[pos] < sizes[pos]:
                    break
                codes[pos] = 0

    # -- premise evaluation over a feature assignment ---------------------------

    def eval_premise(self, premise: N.Expr, codes: list[int]) -> bool:
        direct_vals: dict[N.Expr, Value] = {}
        bit_vals: dict[N.Expr, bool] = {}
        for f, c in zip(self.features, codes):
            if isinstance(f, DirectFeature):
                direct_vals[f.signal] = f.domain.decode(c)
            else:
                bit_vals[f.atom] = bool(c)
        return self._eval(premise, direct_vals, bit_vals)

    def _eval(self, e: N.Expr, direct_vals: dict[N.Expr, Value],
              bit_vals: dict[N.Expr, bool]) -> bool:
        if isinstance(e, N.And):
            return all(self._eval(t, direct_vals, bit_vals) for t in e.terms)
        if isinstance(e, N.Or):
            return any(self._eval(t, direct_vals, bit_vals) for t in e.terms)
        if isinstance(e, N.Not):
            return not self._eval(e.operand, direct_vals, bit_vals)
        info = self.atoms[e]
        if info.kind == "const":
            assert info.const_truth is not None
            return info.const_truth
        if e in bit_vals:
            return bit_vals[e]
        # derived atom: every signal is direct
        def side(x: N.Expr) -> Value:
            if x in direct_vals:
                return direct_vals[x]
            ok, v = try_const(self.analyzer, x)
            if not ok:  # pragma: no cover - classification guarantees
                raise CompileError(f"unresolvable atom side {x!r}")
            return v  # type: ignore[return-value]

        if isinstance(e, N.Compare):
            return _compare(e.op, side(e.left), side(e.right), e.line)
        assert isinstance(e, N.InSet)
        item = side(e.item)
        coll = side(e.collection)
        if isinstance(coll, SetDomain):  # pragma: no cover - defensive
            raise CompileError("set domain used as value")
        assert isinstance(coll, frozenset)
        return item in coll


def _compare(op: str, lv: Value, rv: Value, line: int) -> bool:
    if op == "=":
        return lv == rv
    if op == "/=":
        return lv != rv
    if not (isinstance(lv, int) and isinstance(rv, int)):
        raise CompileError(f"ordering comparison on non-integers "
                           f"{lv!r} {op} {rv!r}", line)
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    if op == ">=":
        return lv >= rv
    raise CompileError(f"unknown comparison {op!r}", line)  # pragma: no cover


def _atom_fcfb(info: AtomInfo) -> str:
    """FCFB kind implementing one bit-feature atom (paper vocabulary)."""
    if info.kind == "cmp_two":
        op = info.atom.op  # type: ignore[attr-defined]
        return ("magnitude comparator" if op in ("<", "<=", ">", ">=")
                else "equality comparator")
    if info.kind == "cmp_const":
        op = info.atom.op  # type: ignore[attr-defined]
        return ("compare with constant" if op in ("<", "<=", ">", ">=", "=", "/=")
                else "compare with constant")
    if info.kind in ("member_const", "member_computed", "member_two"):
        return "membership testing"
    raise CompileError(f"atom kind {info.kind} has no FCFB")  # pragma: no cover

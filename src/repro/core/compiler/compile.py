"""Top-level rule compiler: DSL source -> compiled rule bases.

Pipeline per rule base (paper Figures 5-7):

1. ground the rules (quantifier expansion, witness splitting,
   FORALL-command unrolling)                       -> expand.py
2. extract premise atoms, choose index features    -> atoms.py
3. lay out the conclusion encoding (action slots)  -> encoding.py
4. inventory the FCFB pool                         -> fcfb.py
5. fill the rule table                             -> tablegen.py

``materialize=False`` skips step 5 and produces only the cost figures
(entries x width), which is how the merged-rule-base sweep of the
paper's Section 5 is evaluated for large ``d`` without building
multi-megabyte tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..dsl import nodes as N
from ..dsl.domains import Domain, Value
from ..dsl.errors import CompileError
from ..dsl.parser import parse
from ..dsl.semantics import AnalyzedProgram, Analyzer, BaseInfo, analyze
from .atoms import AtomAnalysis, DirectFeature
from .encoding import ConclusionEncoding, build_encoding
from .expand import GroundRule, expand_base
from .fcfb import FcfbInstance, collect_fcfbs, fcfb_summary
from .tablegen import generate_table, table_stats


@dataclass
class CompiledRuleBase:
    """One rule base ready for the hardware rule interpreter."""

    name: str
    params: tuple[tuple[str, Domain], ...]
    returns: Domain | None
    is_subbase: bool
    ground_rules: list[GroundRule]
    analysis: AtomAnalysis
    encoding: ConclusionEncoding
    fcfbs: list[FcfbInstance]
    table: np.ndarray | None
    reads: frozenset[str]
    writes: frozenset[str]
    emits: frozenset[str]
    calls: frozenset[str]

    @property
    def n_entries(self) -> int:
        return self.analysis.n_entries

    @property
    def width(self) -> int:
        return self.encoding.width

    @property
    def size_bits(self) -> int:
        """Table memory, the paper's "Size (Bit)" column."""
        return self.n_entries * self.width

    @property
    def fcfb_kinds(self) -> dict[str, int]:
        return fcfb_summary(self.fcfbs)

    def stats(self) -> dict:
        if self.table is None:
            raise CompileError(f"rule base {self.name} was compiled without "
                               f"a materialized table")
        return table_stats(self.table, len(self.ground_rules))

    def describe(self) -> str:
        feats = []
        for f in self.analysis.features:
            if isinstance(f, DirectFeature):
                feats.append(f"direct[{f.domain.bit_width}b]")
            else:
                feats.append("bit")
        fcfbs = ", ".join(f"{k} x{v}" if v > 1 else k
                          for k, v in self.fcfb_kinds.items()) or "none"
        return (f"{self.name}: {self.n_entries} x {self.width} bit "
                f"({self.size_bits} bits), features [{', '.join(feats)}], "
                f"FCFBs: {fcfbs}")


@dataclass
class CompiledProgram:
    """A whole rule program: every ON rule base plus subbases."""

    analyzed: AnalyzedProgram
    rulebases: dict[str, CompiledRuleBase]
    subbases: dict[str, CompiledRuleBase]
    params: dict[str, Value] = field(default_factory=dict)

    def base(self, name: str) -> CompiledRuleBase:
        if name in self.rulebases:
            return self.rulebases[name]
        if name in self.subbases:
            return self.subbases[name]
        raise KeyError(name)

    @property
    def all_bases(self) -> dict[str, CompiledRuleBase]:
        return {**self.subbases, **self.rulebases}

    @property
    def total_table_bits(self) -> int:
        return sum(b.size_bits for b in self.all_bases.values())

    def register_bits(self) -> int:
        return self.analyzed.register_bits()

    def register_report(self) -> list[dict]:
        """Per-variable register accounting with reader/writer rule bases
        (the paper discusses how many rule bases compete for access)."""
        out = []
        for var in self.analyzed.variables.values():
            readers = sorted(n for n, b in self.all_bases.items()
                             if var.name in b.reads)
            writers = sorted(n for n, b in self.all_bases.items()
                             if var.name in b.writes)
            out.append({
                "name": var.name,
                "bits": var.total_bits,
                "cells": var.n_cells,
                "readers": readers,
                "writers": writers,
            })
        return out


def _collect_accesses(analyzed: AnalyzedProgram,
                      ground_rules: list[GroundRule]
                      ) -> tuple[frozenset, frozenset, frozenset, frozenset]:
    reads: set[str] = set()
    writes: set[str] = set()
    emits: set[str] = set()
    calls: set[str] = set()

    def walk_expr(e: N.Expr) -> None:
        if isinstance(e, N.Name):
            if e.ident in analyzed.variables:
                reads.add(e.ident)
        elif isinstance(e, N.Index):
            if e.ident in analyzed.variables:
                reads.add(e.ident)
            if e.ident in analyzed.subbases:
                calls.add(e.ident)
            for a in e.args:
                walk_expr(a)
        elif isinstance(e, N.SetLit):
            for i in e.items:
                walk_expr(i)
        elif isinstance(e, (N.BinOp, N.Compare)):
            walk_expr(e.left)
            walk_expr(e.right)
        elif isinstance(e, N.UnOp):
            walk_expr(e.operand)
        elif isinstance(e, N.InSet):
            walk_expr(e.item)
            walk_expr(e.collection)
        elif isinstance(e, (N.And, N.Or)):
            for t in e.terms:
                walk_expr(t)
        elif isinstance(e, N.Not):
            walk_expr(e.operand)

    for g in ground_rules:
        walk_expr(g.premise)
        for cmd in g.commands:
            if isinstance(cmd, N.Assign):
                tgt = cmd.target
                if isinstance(tgt, (N.Name, N.Index)):
                    writes.add(tgt.ident)
                if isinstance(tgt, N.Index):
                    for a in tgt.args:
                        walk_expr(a)
                walk_expr(cmd.value)
            elif isinstance(cmd, N.Emit):
                emits.add(cmd.event)
                for a in cmd.args:
                    walk_expr(a)
            elif isinstance(cmd, N.Return):
                walk_expr(cmd.value)
            elif isinstance(cmd, N.CallSubbase):
                calls.add(cmd.ident)
                for a in cmd.args:
                    walk_expr(a)
    return frozenset(reads), frozenset(writes), frozenset(emits), frozenset(calls)


def compile_base(analyzer: Analyzer, base: BaseInfo,
                 materialize: bool = True) -> CompiledRuleBase:
    ground = expand_base(analyzer, base)
    analysis = AtomAnalysis(analyzer, base, ground)
    ground = analysis.ground_rules  # normalized premises
    encoding = build_encoding(analyzer, ground, base.returns)
    fcfbs = collect_fcfbs(analyzer, analysis, ground)
    table = generate_table(analysis) if materialize else None
    reads, writes, emits, calls = _collect_accesses(analyzer.analyzed, ground)
    return CompiledRuleBase(
        name=base.name, params=base.params, returns=base.returns,
        is_subbase=base.is_subbase, ground_rules=ground, analysis=analysis,
        encoding=encoding, fcfbs=fcfbs, table=table,
        reads=reads, writes=writes, emits=emits, calls=calls)


def compile_program(source_or_program: str | N.Program | AnalyzedProgram,
                    params: Mapping[str, Value] | None = None,
                    materialize: bool = True) -> CompiledProgram:
    """Compile a whole DSL program.

    ``params`` supplies compile-time parameters (mesh size, hypercube
    dimension, adaptivity width ...) exactly like the paper's sweeps.
    """
    if isinstance(source_or_program, AnalyzedProgram):
        analyzed = source_or_program
    else:
        prog = (parse(source_or_program)
                if isinstance(source_or_program, str) else source_or_program)
        analyzed = analyze(prog, params)
    analyzer = analyzed.analyzer
    assert analyzer is not None
    subbases = {name: compile_base(analyzer, info, materialize)
                for name, info in analyzed.subbases.items()}
    rulebases = {name: compile_base(analyzer, info, materialize)
                 for name, info in analyzed.rulebases.items()}
    return CompiledProgram(analyzed=analyzed, rulebases=rulebases,
                           subbases=subbases, params=dict(params or {}))

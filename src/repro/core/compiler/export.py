"""Configuration-data export: the Rule Compiler's output artefact.

Paper Section 4.2: "An appropriate tool ('Rule Compiler') generates the
configuration data by translation."  This module serializes a compiled
rule base into the configuration bitstream a hardware rule interpreter
would be loaded with:

* the index plan (which signals wire into the table address, in which
  order, with which widths — the Input/Premise Configuration of
  Figure 6);
* the rule table itself, as per-entry conclusion control words laid out
  by the action-slot encoding (the RBR-kernel's RAM contents);
* the FCFB allocation (which block kinds must exist — the pool of
  Figure 6);
* the register file layout.

The export is a plain JSON-able dict plus a packed little-endian
bitstream of the table; ``import_check`` round-trips the table words to
guard against encoding drift.
"""

from __future__ import annotations

from ..dsl.errors import CompileError
from .atoms import BitFeature, DirectFeature
from .compile import CompiledProgram, CompiledRuleBase
from .tablegen import NO_RULE


def _expr_text(expr) -> str:
    """Compact, stable rendering of a ground expression."""
    from ..dsl import nodes as N
    if isinstance(expr, N.Num):
        return str(expr.value)
    if isinstance(expr, N.Name):
        return expr.ident
    if isinstance(expr, N.Index):
        return f"{expr.ident}({', '.join(_expr_text(a) for a in expr.args)})"
    if isinstance(expr, N.SetLit):
        return "{" + ", ".join(_expr_text(i) for i in expr.items) + "}"
    if isinstance(expr, N.BinOp):
        return f"({_expr_text(expr.left)} {expr.op} {_expr_text(expr.right)})"
    if isinstance(expr, N.UnOp):
        return f"(-{_expr_text(expr.operand)})"
    if isinstance(expr, N.Compare):
        return f"({_expr_text(expr.left)} {expr.op} {_expr_text(expr.right)})"
    if isinstance(expr, N.InSet):
        return f"({_expr_text(expr.item)} IN {_expr_text(expr.collection)})"
    if isinstance(expr, N.And):
        return "(" + " AND ".join(_expr_text(t) for t in expr.terms) + ")"
    if isinstance(expr, N.Or):
        return "(" + " OR ".join(_expr_text(t) for t in expr.terms) + ")"
    if isinstance(expr, N.Not):
        return f"(NOT {_expr_text(expr.operand)})"
    return repr(expr)


def table_words(rb: CompiledRuleBase) -> list[int]:
    """One conclusion control word per table entry.

    Word layout (LSB first): for each slot, an enable bit followed by
    its selector bits.  Gap entries are all-zeros (every slot
    disabled).
    """
    if rb.table is None:
        raise CompileError(f"rule base {rb.name} has no materialized table")
    enc = rb.encoding
    words: list[int] = []
    for entry in rb.table:
        entry = int(entry)
        if entry == NO_RULE:
            words.append(0)
            continue
        concl = enc.rule_conclusion[entry]
        active = dict(enc.conclusion_words[concl])
        word = 0
        pos = 0
        for slot_idx, slot in enumerate(enc.slots):
            if slot_idx in active:
                word |= 1 << pos
                variant = active[slot_idx]
                word |= variant << (pos + 1)
            pos += slot.width
        words.append(word)
    return words


def pack_bitstream(words: list[int], width: int) -> bytes:
    """Concatenate width-bit words LSB-first into a byte string."""
    total = 0
    for i, w in enumerate(words):
        if w >> width:
            raise CompileError(f"table word {i} overflows {width} bits")
        total |= w << (i * width)
    n_bytes = (len(words) * width + 7) // 8
    return total.to_bytes(max(1, n_bytes), "little")


def unpack_bitstream(blob: bytes, width: int, n_words: int) -> list[int]:
    total = int.from_bytes(blob, "little")
    mask = (1 << width) - 1
    return [(total >> (i * width)) & mask for i in range(n_words)]


def export_rulebase(rb: CompiledRuleBase) -> dict:
    """The configuration record of one rule base."""
    index_plan = []
    for f in rb.analysis.features:
        if isinstance(f, DirectFeature):
            index_plan.append({
                "kind": "direct",
                "signal": _expr_text(f.signal),
                "values": f.size,
                "bits": f.domain.bit_width,
            })
        else:
            assert isinstance(f, BitFeature)
            index_plan.append({
                "kind": "bit",
                "atom": _expr_text(f.atom),
                "fcfb": f.fcfb,
            })
    slots = [{
        "kind": s.kind, "head": s.head, "occurrence": s.occurrence,
        "variants": len(s.variants), "width": s.width,
    } for s in rb.encoding.slots]
    words = table_words(rb)
    return {
        "name": rb.name,
        "params": [(n, str(d)) for n, d in rb.params],
        "returns": str(rb.returns) if rb.returns else None,
        "entries": rb.n_entries,
        "width": rb.width,
        "size_bits": rb.size_bits,
        "index_plan": index_plan,
        "slots": slots,
        "fcfbs": rb.fcfb_kinds,
        "table": pack_bitstream(words, max(1, rb.width)).hex(),
        "table_words": len(words),
    }


def export_program(compiled: CompiledProgram) -> dict:
    """Full configuration data for a rule interpreter complex."""
    return {
        "params": {k: v for k, v in compiled.params.items()},
        "registers": [
            {"name": r["name"], "bits": r["bits"], "cells": r["cells"]}
            for r in compiled.register_report()],
        "rulebases": {name: export_rulebase(rb)
                      for name, rb in compiled.rulebases.items()},
        "subbases": {name: export_rulebase(rb)
                     for name, rb in compiled.subbases.items()},
        "total_table_bits": compiled.total_table_bits,
        "total_register_bits": compiled.register_bits(),
    }


def import_check(record: dict, rb: CompiledRuleBase) -> bool:
    """Round-trip guard: the packed bitstream decodes to the same
    per-entry control words the encoder produced."""
    blob = bytes.fromhex(record["table"])
    words = unpack_bitstream(blob, max(1, record["width"]),
                             record["table_words"])
    return words == table_words(rb)

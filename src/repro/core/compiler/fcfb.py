"""FCFB (Free Configurable Function Block) extraction.

The rule interpreter shares a pool of configurable function units
between premise processing and conclusion processing (paper Figure 6:
"it is suggesting to use a common pool of resources for their
computation").  This pass inventories the FCFB instances one rule base
needs, using the paper's own vocabulary where Tables 1/2 use it:
magnitude comparator, minimum selection, mesh distance computation,
membership testing, logical unit, set subtraction, set union,
incrementor, decrementor, adder, computation in a finite lattice,
compare with constant, conditional increment.

Instances are deduplicated structurally: the same expression appearing
in several rules (or in both a premise and a conclusion) maps to one
shared block.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsl import nodes as N
from ..dsl.errors import CompileError
from ..dsl.semantics import Analyzer
from .atoms import AtomAnalysis, BitFeature, try_const
from .expand import GroundRule


@dataclass(frozen=True)
class FcfbInstance:
    kind: str
    expr: N.Expr   # the expression (or atom) this block computes


class FcfbCollector:
    def __init__(self, analyzer: Analyzer):
        self.analyzer = analyzer
        self.instances: dict[tuple[str, N.Expr], FcfbInstance] = {}

    def add(self, kind: str, expr: N.Expr) -> None:
        key = (kind, expr)
        if key not in self.instances:
            self.instances[key] = FcfbInstance(kind, expr)

    # -- expression walking ------------------------------------------------

    def visit_value_expr(self, expr: N.Expr, conditional: bool = False) -> None:
        """Record the FCFBs needed to compute a value expression."""
        if isinstance(expr, (N.Num, N.Name)):
            return
        if isinstance(expr, N.Index):
            fn = self.analyzer.analyzed.functions.get(expr.ident)
            if fn is not None:
                self.add(fn.fcfb or "function unit", expr)
            sb = self.analyzer.analyzed.subbases.get(expr.ident)
            if sb is not None:
                self.add("subbase lookup", expr)
            for a in expr.args:
                self.visit_value_expr(a)
            return
        if isinstance(expr, N.SetLit):
            for i in expr.items:
                self.visit_value_expr(i)
            return
        if isinstance(expr, N.UnOp):
            self.visit_value_expr(expr.operand)
            return
        if isinstance(expr, N.BinOp):
            if not try_const(self.analyzer, expr)[0]:
                self.add(self._binop_kind(expr, conditional), expr)
            self.visit_value_expr(expr.left)
            self.visit_value_expr(expr.right)
            return
        if isinstance(expr, (N.Compare, N.InSet, N.And, N.Or, N.Not)):
            self.visit_bool_expr(expr)
            return
        raise CompileError(f"unhandled expression {expr!r}",
                           getattr(expr, "line", 0))  # pragma: no cover

    def _binop_kind(self, expr: N.BinOp, conditional: bool) -> str:
        lc, lv = try_const(self.analyzer, expr.left)
        rc, rv = try_const(self.analyzer, expr.right)
        const_one = (lc and lv == 1) or (rc and rv == 1)
        if expr.op == "+":
            if const_one:
                return "conditional increment" if conditional else "incrementor"
            return "adder"
        if expr.op == "-":
            if rc and rv == 1:
                return "decrementor"
            return "subtractor"
        if expr.op == "*":
            return "multiplier"
        if expr.op == "MOD":
            return "modulo unit"
        if expr.op == "UNION":
            return "set union"
        if expr.op == "DIFF":
            return "set subtraction"
        if expr.op == "INTER":
            return "set intersection"
        raise CompileError(f"unknown operator {expr.op}", expr.line)

    def visit_bool_expr(self, expr: N.Expr) -> None:
        """Boolean expressions inside conclusions (rare) or function args."""
        if isinstance(expr, (N.And, N.Or, N.Not)):
            self.add("logical unit", expr)
            terms = expr.terms if isinstance(expr, (N.And, N.Or)) else (expr.operand,)
            for t in terms:
                self.visit_bool_expr(t)
            return
        if isinstance(expr, N.Compare):
            lc, _ = try_const(self.analyzer, expr.left)
            rc, _ = try_const(self.analyzer, expr.right)
            if not (lc and rc):
                if lc or rc:
                    self.add("compare with constant", expr)
                elif expr.op in ("<", "<=", ">", ">="):
                    self.add("magnitude comparator", expr)
                else:
                    self.add("equality comparator", expr)
            self.visit_value_expr(expr.left)
            self.visit_value_expr(expr.right)
            return
        if isinstance(expr, N.InSet):
            self.add("membership testing", expr)
            self.visit_value_expr(expr.item)
            self.visit_value_expr(expr.collection)
            return
        self.visit_value_expr(expr)


def collect_fcfbs(analyzer: Analyzer, analysis: AtomAnalysis,
                  ground_rules: list[GroundRule]) -> list[FcfbInstance]:
    """Inventory the FCFB pool of one rule base."""
    col = FcfbCollector(analyzer)

    # Premise side: one block per bit feature, plus the function units
    # computing any function-call signal (direct signals computed by a
    # function still need that function's block to produce the value
    # that feeds the index).
    for feat in analysis.features:
        if isinstance(feat, BitFeature):
            info = analysis.atoms[feat.atom]
            col.add(feat.fcfb, feat.atom)
            for sig in info.signals:
                col.visit_value_expr(sig)
        else:
            col.visit_value_expr(feat.signal)

    # Conclusion side.
    for g in ground_rules:
        for cmd in g.commands:
            if isinstance(cmd, N.Assign):
                conditional = _is_self_increment(cmd)
                col.visit_value_expr(cmd.value, conditional=conditional)
                if isinstance(cmd.target, N.Index):
                    for a in cmd.target.args:
                        col.visit_value_expr(a)
            elif isinstance(cmd, N.Emit):
                for a in cmd.args:
                    col.visit_value_expr(a)
            elif isinstance(cmd, N.Return):
                col.visit_value_expr(cmd.value)
            elif isinstance(cmd, N.CallSubbase):
                col.add("subbase lookup", N.Index(ident=cmd.ident, args=cmd.args))
                for a in cmd.args:
                    col.visit_value_expr(a)
    return list(col.instances.values())


def _is_self_increment(cmd: N.Assign) -> bool:
    """``x <- x + 1`` style updates: the paper notes these become
    *conditional increments* because only some rules count up."""
    v = cmd.value
    if not isinstance(v, N.BinOp) or v.op not in ("+", "-"):
        return False
    return v.left == cmd.target or v.right == cmd.target


def fcfb_summary(instances: list[FcfbInstance]) -> dict[str, int]:
    """kind -> number of instances, for Table 1/2-style reporting."""
    out: dict[str, int] = {}
    for inst in instances:
        out[inst.kind] = out.get(inst.kind, 0) + 1
    return dict(sorted(out.items()))

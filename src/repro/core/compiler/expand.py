"""Quantifier expansion and rule grounding.

The rule interpreter hardware evaluates all premises in parallel over a
fixed set of wires, so quantifiers — which the paper describes as "just
a short form for propositional logic expressions in a regular pattern"
(Section 4.2) — are expanded at compile time:

* ``FORALL x IN S: P(x)``  becomes  ``AND_v [guard(v) IMPLIES P(v)]``
* ``EXISTS x IN S: P(x)``  becomes  ``OR_v  [guard(v) AND P(v)]``

where *v* ranges over the statically known candidate values of ``S``
and ``guard(v)`` is a runtime membership test ``v IN S`` when ``S`` is a
*computed* set (e.g. ``minimal(dx, dy)``), and absent otherwise.

Witness extraction: the paper's NARA rule uses the EXISTS-bound
variable inside the conclusion (``!send(indir, vc, i, vc)``).  The
hardware realizes that with a priority selection; we realize it by
splitting the rule into one ground rule per candidate value, in
iteration order — the first applicable rule wins, so the witness is the
least candidate satisfying the body, which is exactly what the
reference AST interpreter computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dsl import nodes as N
from ..dsl.domains import Value
from ..dsl.errors import CompileError
from ..dsl.semantics import Analyzer, BaseInfo, Binding, Scope


def value_to_node(v: Value, line: int = 0) -> N.Expr:
    """Literal AST node denoting a concrete value."""
    if isinstance(v, bool):  # pragma: no cover - DSL has no bool ints
        raise CompileError(f"unexpected bool literal {v}")
    if isinstance(v, int):
        if v < 0:
            return N.UnOp(line=line, op="-", operand=N.Num(line=line, value=-v))
        return N.Num(line=line, value=v)
    if isinstance(v, str):
        return N.Name(line=line, ident=v)
    if isinstance(v, frozenset):
        return N.SetLit(line=line,
                        items=tuple(value_to_node(x, line) for x in sorted(
                            v, key=lambda x: (isinstance(x, str), x))))
    raise CompileError(f"cannot embed value {v!r} in an expression")


@dataclass(frozen=True)
class GroundRule:
    """A quantifier-free rule: premise over atoms, concrete commands.

    ``origins`` aligns with ``commands``: commands unrolled from the
    same quantified (FORALL) conclusion command share an origin id.
    The conclusion encoding maps one origin to one action slot — the
    hardware executes a quantified command with a single configured
    unit, which is why the paper's Figure 4 rule base "is independent
    of the node degree".
    """

    premise: N.Expr
    commands: tuple[N.Command, ...]
    source_index: int           # index of the originating source rule
    witness: tuple[tuple[str, Value], ...] = ()
    origins: tuple[int, ...] = ()
    line: int = field(default=0, compare=False)


class Expander:
    """Grounds the rules of one rule base."""

    def __init__(self, analyzer: Analyzer, base: BaseInfo):
        self.analyzer = analyzer
        self.base = base
        self.scope = Scope(analyzer.analyzed,
                           {n: Binding("param", d) for n, d in base.params})

    # -- substitution ---------------------------------------------------

    def subst(self, expr: N.Expr, env: dict[str, Value]) -> N.Expr:
        if isinstance(expr, N.Num):
            return expr
        if isinstance(expr, N.Name):
            if expr.ident in env:
                return value_to_node(env[expr.ident], expr.line)
            return expr
        if isinstance(expr, N.Index):
            return N.Index(line=expr.line, ident=expr.ident,
                           args=tuple(self.subst(a, env) for a in expr.args))
        if isinstance(expr, N.SetLit):
            return N.SetLit(line=expr.line,
                            items=tuple(self.subst(i, env) for i in expr.items))
        if isinstance(expr, N.BinOp):
            return N.BinOp(line=expr.line, op=expr.op,
                           left=self.subst(expr.left, env),
                           right=self.subst(expr.right, env))
        if isinstance(expr, N.UnOp):
            return N.UnOp(line=expr.line, op=expr.op,
                          operand=self.subst(expr.operand, env))
        if isinstance(expr, N.Compare):
            return N.Compare(line=expr.line, op=expr.op,
                             left=self.subst(expr.left, env),
                             right=self.subst(expr.right, env))
        if isinstance(expr, N.InSet):
            return N.InSet(line=expr.line, item=self.subst(expr.item, env),
                           collection=self.subst(expr.collection, env))
        if isinstance(expr, N.And):
            return N.And(line=expr.line,
                         terms=tuple(self.subst(t, env) for t in expr.terms))
        if isinstance(expr, N.Or):
            return N.Or(line=expr.line,
                        terms=tuple(self.subst(t, env) for t in expr.terms))
        if isinstance(expr, N.Not):
            return N.Not(line=expr.line, operand=self.subst(expr.operand, env))
        if isinstance(expr, N.Quant):
            inner = {k: v for k, v in env.items() if k != expr.var}
            return N.Quant(line=expr.line, kind=expr.kind, var=expr.var,
                           collection=self.subst(expr.collection, env),
                           body=self.subst(expr.body, inner))
        raise CompileError(f"cannot substitute into {expr!r}",
                           getattr(expr, "line", 0))

    # -- premise expansion ------------------------------------------------

    def _quant_scope(self, env_vars: dict[str, Value]) -> Scope:
        # For iteration-space resolution the concrete bound values do
        # not matter, only domains do; params already cover free names.
        extra = {}
        for name, v in env_vars.items():
            dom = self.analyzer._values_domain([v], 0)
            extra[name] = Binding("param", dom)
        return self.scope.child(extra) if extra else self.scope

    def expand_premise(self, expr: N.Expr,
                       env: dict[str, Value]) -> N.Expr:
        """Return a quantifier-free premise (env already applied)."""
        if isinstance(expr, N.Quant):
            coll = self.subst(expr.collection, env)
            values, needs_guard = self.analyzer.iteration_space(
                coll, self._quant_scope(env))
            terms: list[N.Expr] = []
            for v in values:
                inner_env = dict(env)
                inner_env[expr.var] = v
                body = self.expand_premise(expr.body, inner_env)
                if needs_guard:
                    guard = N.InSet(line=expr.line,
                                    item=value_to_node(v, expr.line),
                                    collection=coll)
                    if expr.kind == "EXISTS":
                        body = N.And(line=expr.line, terms=(guard, body))
                    else:  # FORALL: guard IMPLIES body == NOT guard OR body
                        body = N.Or(line=expr.line,
                                    terms=(N.Not(line=expr.line, operand=guard),
                                           body))
                terms.append(body)
            if not terms:
                # empty iteration space: EXISTS is false, FORALL is true
                const = "FORALL" == expr.kind
                return _bool_const(const, expr.line)
            if expr.kind == "EXISTS":
                return N.Or(line=expr.line, terms=tuple(terms)) \
                    if len(terms) > 1 else terms[0]
            return N.And(line=expr.line, terms=tuple(terms)) \
                if len(terms) > 1 else terms[0]
        if isinstance(expr, N.And):
            return N.And(line=expr.line, terms=tuple(
                self.expand_premise(t, env) for t in expr.terms))
        if isinstance(expr, N.Or):
            return N.Or(line=expr.line, terms=tuple(
                self.expand_premise(t, env) for t in expr.terms))
        if isinstance(expr, N.Not):
            return N.Not(line=expr.line,
                         operand=self.expand_premise(expr.operand, env))
        return self.subst(expr, env)

    # -- command expansion ---------------------------------------------------

    def expand_commands(self, commands: tuple[N.Command, ...],
                        env: dict[str, Value],
                        origin_map: dict[int, int] | None = None
                        ) -> list[tuple[N.Command, int]]:
        """Ground commands paired with their origin ids.  Commands
        unrolled from the same source command (a quantified command's
        body instance) share one origin — one action slot in hardware.
        """
        if origin_map is None:
            origin_map = {}
        out: list[tuple[N.Command, int]] = []
        for cmd in commands:
            origin = origin_map.setdefault(id(cmd), len(origin_map))
            if isinstance(cmd, N.ForallCmd):
                if not cmd.var:  # grouped commands without a quantifier
                    out.extend(self.expand_commands(cmd.body, env, origin_map))
                    continue
                coll = self.subst(cmd.collection, env)
                values, needs_guard = self.analyzer.iteration_space(
                    coll, self._quant_scope(env))
                if needs_guard:
                    raise CompileError(
                        "FORALL command over a runtime-computed set is not "
                        "supported; iterate a constant, a type, or a literal "
                        "set", cmd.line)
                for v in values:
                    inner = dict(env)
                    inner[cmd.var] = v
                    out.extend(self.expand_commands(cmd.body, inner,
                                                    origin_map))
            elif isinstance(cmd, N.Assign):
                out.append((N.Assign(line=cmd.line,
                                     target=self.subst(cmd.target, env),
                                     value=self.subst(cmd.value, env)),
                            origin))
            elif isinstance(cmd, N.Emit):
                out.append((N.Emit(line=cmd.line, event=cmd.event,
                                   args=tuple(self.subst(a, env)
                                              for a in cmd.args)), origin))
            elif isinstance(cmd, N.Return):
                out.append((N.Return(line=cmd.line,
                                     value=self.subst(cmd.value, env)),
                            origin))
            elif isinstance(cmd, N.CallSubbase):
                out.append((N.CallSubbase(line=cmd.line, ident=cmd.ident,
                                          args=tuple(self.subst(a, env)
                                                     for a in cmd.args)),
                            origin))
            else:  # pragma: no cover
                raise CompileError(f"unknown command {cmd!r}", cmd.line)
        return out

    # -- rule expansion (witness splitting) ----------------------------------

    def _conclusion_uses(self, commands: tuple[N.Command, ...],
                         var: str) -> bool:
        def expr_uses(e: N.Expr) -> bool:
            if isinstance(e, N.Name):
                return e.ident == var
            if isinstance(e, N.Num):
                return False
            if isinstance(e, N.Index):
                return any(expr_uses(a) for a in e.args)
            if isinstance(e, N.SetLit):
                return any(expr_uses(i) for i in e.items)
            if isinstance(e, (N.BinOp, N.Compare)):
                return expr_uses(e.left) or expr_uses(e.right)
            if isinstance(e, N.UnOp):
                return expr_uses(e.operand)
            if isinstance(e, N.InSet):
                return expr_uses(e.item) or expr_uses(e.collection)
            if isinstance(e, (N.And, N.Or)):
                return any(expr_uses(t) for t in e.terms)
            if isinstance(e, N.Not):
                return expr_uses(e.operand)
            if isinstance(e, N.Quant):
                if e.var == var:
                    return expr_uses(e.collection)
                return expr_uses(e.collection) or expr_uses(e.body)
            return False

        for cmd in commands:
            if isinstance(cmd, N.Assign):
                if expr_uses(cmd.target) or expr_uses(cmd.value):
                    return True
            elif isinstance(cmd, N.Emit):
                if any(expr_uses(a) for a in cmd.args):
                    return True
            elif isinstance(cmd, N.Return):
                if expr_uses(cmd.value):
                    return True
            elif isinstance(cmd, N.ForallCmd):
                if cmd.var != var and (expr_uses(cmd.collection)
                                       or self._conclusion_uses(cmd.body, var)):
                    return True
            elif isinstance(cmd, N.CallSubbase):
                if any(expr_uses(a) for a in cmd.args):
                    return True
        return False

    def expand_rule(self, rule: N.Rule, index: int) -> list[GroundRule]:
        """Ground one source rule, splitting EXISTS witnesses."""
        return self._expand_rule(rule.premise, rule.conclusion, index,
                                 {}, (), rule.line)

    def _expand_rule(self, premise: N.Expr, conclusion: tuple[N.Command, ...],
                     index: int, env: dict[str, Value],
                     witness: tuple[tuple[str, Value], ...],
                     line: int) -> list[GroundRule]:
        # Witness splitting applies only to a top-level EXISTS whose
        # variable is referenced by the conclusion.
        if (isinstance(premise, N.Quant) and premise.kind == "EXISTS"
                and self._conclusion_uses(conclusion, premise.var)):
            coll = self.subst(premise.collection, env)
            values, needs_guard = self.analyzer.iteration_space(
                coll, self._quant_scope(env))
            out: list[GroundRule] = []
            for v in values:
                inner = dict(env)
                inner[premise.var] = v
                body = premise.body
                if needs_guard:
                    guard = N.InSet(line=premise.line,
                                    item=value_to_node(v, premise.line),
                                    collection=coll)
                    body = N.And(line=premise.line, terms=(guard, body))
                out.extend(self._expand_rule(
                    body, conclusion, index, inner,
                    witness + ((premise.var, v),), line))
            return out
        ground_premise = self.expand_premise(premise, env)
        pairs = self.expand_commands(conclusion, env)
        if self._has_quant(ground_premise):
            raise CompileError("internal: quantifier survived expansion", line)
        return [GroundRule(premise=ground_premise,
                           commands=tuple(c for c, _ in pairs),
                           source_index=index, witness=witness,
                           origins=tuple(o for _, o in pairs), line=line)]

    @staticmethod
    def _has_quant(expr: N.Expr) -> bool:
        if isinstance(expr, N.Quant):
            return True
        if isinstance(expr, (N.And, N.Or)):
            return any(Expander._has_quant(t) for t in expr.terms)
        if isinstance(expr, N.Not):
            return Expander._has_quant(expr.operand)
        return False

    def expand(self) -> list[GroundRule]:
        out: list[GroundRule] = []
        for i, rule in enumerate(self.base.rules):
            out.extend(self.expand_rule(rule, i))
        return out


def _bool_const(value: bool, line: int) -> N.Expr:
    """A premise that is constantly true/false, as a trivial comparison."""
    if value:
        return N.Compare(line=line, op="=", left=N.Num(line=line, value=0),
                         right=N.Num(line=line, value=0))
    return N.Compare(line=line, op="=", left=N.Num(line=line, value=0),
                     right=N.Num(line=line, value=1))


def expand_base(analyzer: Analyzer, base: BaseInfo) -> list[GroundRule]:
    """Ground all rules of a rule base."""
    return Expander(analyzer, base).expand()

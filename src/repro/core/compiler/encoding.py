"""Conclusion encoding: table word layout and width computation.

The paper reports each rule base's table as ``entries x width`` (e.g.
NAFTA's ``incoming_message`` is 1024 x 8).  The width is the number of
bits one table entry needs to *control the conclusion processing*.  The
paper does not specify the encoding; we use an explicit action-slot
model and document it (DESIGN.md Section 3):

* the commands of all (deduplicated) conclusions are merged by shape
  into **action slots** — one slot per (command kind, head name,
  occurrence index), e.g. "assign to neighb_state, 2nd occurrence" or
  "emit send_newmessage, 1st occurrence";
* each slot costs one **enable bit**, plus **selector bits**
  ``ceil(log2(#variants))`` when the rules disagree on the command's
  operand expressions;
* a ``RETURN`` slot whose variants are all compile-time constants
  stores the encoded value directly (``1 + bit_width(return domain)``),
  otherwise a selector over the distinct return expressions.

The resulting widths are implementation-defined but structurally
comparable to the paper's: wide tables come from rule bases with many
distinct actions, narrow tables from pure decision bases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dsl import nodes as N
from ..dsl.domains import Domain, bits_for
from ..dsl.errors import CompileError
from ..dsl.semantics import Analyzer
from .atoms import try_const
from .expand import GroundRule


def command_head(cmd: N.Command) -> tuple[str, str]:
    """(kind, head name) identifying a slot family."""
    if isinstance(cmd, N.Assign):
        tgt = cmd.target
        name = tgt.ident if isinstance(tgt, (N.Name, N.Index)) else "?"
        return ("assign", name)
    if isinstance(cmd, N.Emit):
        return ("emit", cmd.event)
    if isinstance(cmd, N.Return):
        return ("return", "")
    if isinstance(cmd, N.CallSubbase):
        return ("call", cmd.ident)
    raise CompileError(f"unencodable command {cmd!r}",
                       getattr(cmd, "line", 0))  # pragma: no cover


@dataclass
class Slot:
    """One action slot of the conclusion-processing configuration."""

    kind: str
    head: str
    occurrence: int
    # each variant is a *macro*: the tuple of ground commands one
    # configured unit executes (singleton for plain commands)
    variants: list[tuple[N.Command, ...]] = field(default_factory=list)
    return_domain: Domain | None = None
    all_const_return: bool = False

    def add_variant(self, cmds: tuple[N.Command, ...]) -> int:
        for i, v in enumerate(self.variants):
            if v == cmds:
                return i
        self.variants.append(cmds)
        return len(self.variants) - 1

    @property
    def selector_bits(self) -> int:
        if self.kind == "return":
            if self.all_const_return and self.return_domain is not None:
                return self.return_domain.bit_width
            return bits_for(len(self.variants)) if len(self.variants) > 1 else 0
        return bits_for(len(self.variants)) if len(self.variants) > 1 else 0

    @property
    def width(self) -> int:
        return 1 + self.selector_bits  # enable bit + selector/value bits

    def describe(self) -> str:
        tag = f"{self.kind} {self.head}".strip()
        if self.occurrence:
            tag += f"#{self.occurrence}"
        return f"{tag} ({self.width} bit)"


@dataclass
class ConclusionEncoding:
    """Slot layout shared by all entries of one rule base's table."""

    slots: list[Slot]
    # per distinct conclusion: list of (slot index, variant index)
    conclusion_words: list[list[tuple[int, int]]]
    # ground-rule index -> distinct conclusion id
    rule_conclusion: list[int]

    @property
    def width(self) -> int:
        return max(1, sum(s.width for s in self.slots))


def _macro_groups(g: GroundRule) -> list[tuple[str, str, tuple[N.Command, ...]]]:
    """Group a ground conclusion's commands by origin: commands unrolled
    from one quantified source command form one *macro* executed by a
    single configured hardware unit (one slot), keeping the encoding
    independent of the node degree (paper, Figure 4 discussion)."""
    origins = g.origins if len(g.origins) == len(g.commands) else tuple(
        range(len(g.commands)))
    by_origin: dict[int, list[N.Command]] = {}
    order: list[int] = []
    for cmd, origin in zip(g.commands, origins):
        if origin not in by_origin:
            by_origin[origin] = []
            order.append(origin)
        by_origin[origin].append(cmd)
    out = []
    for origin in order:
        cmds = tuple(by_origin[origin])
        kind, head = command_head(cmds[0])
        out.append((kind, head, cmds))
    return out


def build_encoding(analyzer: Analyzer, ground_rules: list[GroundRule],
                   return_domain: Domain | None) -> ConclusionEncoding:
    # Deduplicate conclusions (macro structure included).
    distinct: list[list[tuple[str, str, tuple[N.Command, ...]]]] = []
    rule_conclusion: list[int] = []
    for g in ground_rules:
        macros = _macro_groups(g)
        try:
            rule_conclusion.append(distinct.index(macros))
        except ValueError:
            distinct.append(macros)
            rule_conclusion.append(len(distinct) - 1)

    slots: dict[tuple[str, str, int], Slot] = {}
    conclusion_words: list[list[tuple[int, int]]] = []
    for macros in distinct:
        occurrence: dict[tuple[str, str], int] = {}
        resolved: list[tuple[int, int]] = []
        for kind, head, cmds in macros:
            occ = occurrence.get((kind, head), 0)
            occurrence[(kind, head)] = occ + 1
            key = (kind, head, occ)
            slot = slots.get(key)
            if slot is None:
                slot = Slot(kind, head, occ)
                if kind == "return":
                    slot.return_domain = return_domain
                slots[key] = slot
            variant = slot.add_variant(cmds)
            resolved.append((id(slot), variant))
        conclusion_words.append(resolved)

    slot_list = sorted(slots.values(), key=lambda s: (s.kind, s.head, s.occurrence))
    slot_pos = {id(s): i for i, s in enumerate(slot_list)}
    conclusion_words = [[(slot_pos[sid], var) for sid, var in word]
                        for word in conclusion_words]

    # Decide whether RETURN values can be stored directly.
    for slot in slot_list:
        if slot.kind == "return":
            slot.all_const_return = all(
                try_const(analyzer, v[0].value)[0]  # type: ignore[attr-defined]
                for v in slot.variants)

    return ConclusionEncoding(slots=slot_list,
                              conclusion_words=conclusion_words,
                              rule_conclusion=rule_conclusion)

"""Equivalence verification: compiled rule table vs reference semantics.

The paper argues that the rule-based form is "semantically well based
allowing the application of formal methods".  This module delivers the
most useful such method for a compiler: a checker that the RBR-kernel
table execution agrees with the AST reference semantics over the rule
base's *entire* input space (registers it touches, inputs it reads,
event parameters) — exhaustively when the space is small, by seeded
random sampling otherwise.

Exposed to rule authors through ``python -m repro.tools.rulec --verify``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from ..dsl.domains import Domain, Value
from ..dsl.errors import EvalError
from .compile import CompiledProgram, CompiledRuleBase


@dataclass(frozen=True)
class Axis:
    """One independently varying value of the verification space."""

    kind: str                      # 'param' | 'register' | 'input'
    name: str
    index: tuple[Value, ...]       # cell index for arrays, () for scalars
    domain: Domain


@dataclass
class VerificationReport:
    base: str
    axes: int
    space_size: int
    exhaustive: bool
    checked: int
    mismatches: list[dict] = field(default_factory=list)
    errors: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.errors

    def summary(self) -> str:
        mode = "exhaustively" if self.exhaustive else "by sampling"
        status = "OK" if self.ok else (f"{len(self.mismatches)} mismatches, "
                                       f"{len(self.errors)} errors")
        return (f"{self.base}: {self.checked}/{self.space_size} points "
                f"checked {mode} over {self.axes} axes — {status}")


def _index_tuples(domains) -> list[tuple[Value, ...]]:
    if not domains:
        return [()]
    pools = [list(d.values()) for d in domains]
    return [tuple(c) for c in itertools.product(*pools)]


def collect_axes(compiled: CompiledProgram,
                 rb: CompiledRuleBase) -> list[Axis]:
    analyzed = compiled.analyzed
    axes: list[Axis] = []
    for name, dom in rb.params:
        axes.append(Axis("param", name, (), dom))
    touched = sorted(rb.reads | rb.writes)
    # subbases called by this base extend the touched set
    for sub_name in sorted(rb.calls):
        sub = compiled.subbases.get(sub_name)
        if sub is not None:
            touched.extend(sorted((sub.reads | sub.writes) - set(touched)))
    for name in touched:
        var = analyzed.variables[name]
        for idx in _index_tuples(var.index_domains):
            axes.append(Axis("register", name, idx, var.domain))
    # inputs actually referenced by the ground rules / features
    used_inputs = _inputs_used(compiled, rb)
    for name in sorted(used_inputs):
        inp = analyzed.inputs[name]
        for idx in _index_tuples(inp.index_domains):
            axes.append(Axis("input", name, idx, inp.domain))
    return axes


def _inputs_used(compiled: CompiledProgram, rb: CompiledRuleBase) -> set[str]:
    from ..dsl import nodes as N
    analyzed = compiled.analyzed
    used: set[str] = set()

    def walk(e) -> None:
        if isinstance(e, N.Name):
            if e.ident in analyzed.inputs:
                used.add(e.ident)
        elif isinstance(e, N.Index):
            if e.ident in analyzed.inputs:
                used.add(e.ident)
            for a in e.args:
                walk(a)
        elif isinstance(e, N.SetLit):
            for i in e.items:
                walk(i)
        elif isinstance(e, (N.BinOp, N.Compare)):
            walk(e.left)
            walk(e.right)
        elif isinstance(e, N.UnOp):
            walk(e.operand)
        elif isinstance(e, N.InSet):
            walk(e.item)
            walk(e.collection)
        elif isinstance(e, (N.And, N.Or)):
            for t in e.terms:
                walk(t)
        elif isinstance(e, N.Not):
            walk(e.operand)

    for g in rb.ground_rules:
        walk(g.premise)
        for cmd in g.commands:
            if isinstance(cmd, N.Assign):
                walk(cmd.target)
                walk(cmd.value)
            elif isinstance(cmd, N.Emit):
                for a in cmd.args:
                    walk(a)
            elif isinstance(cmd, N.Return):
                walk(cmd.value)
    return used


def verify_equivalence(compiled: CompiledProgram, base_name: str,
                       functions=None, max_exhaustive: int = 20_000,
                       samples: int = 2_000, seed: int = 0,
                       coerce: str = "saturate") -> VerificationReport:
    """Compare table-mode and AST-mode execution of one rule base."""
    from ..engine import RuleEngine

    rb = compiled.base(base_name)
    axes = collect_axes(compiled, rb)
    space = 1
    for ax in axes:
        space *= ax.domain.size
        if space > 10 ** 12:
            break
    exhaustive = space <= max_exhaustive

    table = RuleEngine(compiled, functions=functions, mode="table",
                       coerce=coerce)
    ast = RuleEngine(compiled, functions=functions, mode="ast",
                     coerce=coerce)

    if exhaustive:
        pools = [list(ax.domain.values()) for ax in axes]
        points = itertools.product(*pools)
        n_points = space
    else:
        rng = random.Random(seed)
        pools = [list(ax.domain.values()) for ax in axes]

        def sample():
            for _ in range(samples):
                yield tuple(rng.choice(p) for p in pools)

        points = sample()
        n_points = samples

    report = VerificationReport(base=base_name, axes=len(axes),
                                space_size=space, exhaustive=exhaustive,
                                checked=0)
    for point in points:
        params: list[Value] = []
        inputs: dict = {}
        for ax, value in zip(axes, point):
            if ax.kind == "param":
                params.append(value)
            elif ax.kind == "input":
                if ax.index:
                    inputs.setdefault(ax.name, {})[ax.index] = value
                else:
                    inputs[ax.name] = value
        for eng in (table, ast):
            eng.reset_state()
            for ax, value in zip(axes, point):
                if ax.kind == "register":
                    eng.registers.write(ax.name, value, ax.index)
            eng.set_inputs(inputs)
        try:
            rt = table.call(base_name, *params)
            ra = ast.call(base_name, *params)
        except EvalError as exc:
            report.errors.append({"point": dict(zip(
                [f"{ax.kind}:{ax.name}{list(ax.index)}" for ax in axes],
                point)), "error": str(exc)})
            report.checked += 1
            if len(report.errors) >= 5:
                break
            continue
        same = (rt.fired_source_rule == ra.fired_source_rule
                and rt.returned == ra.returned
                and rt.has_return == ra.has_return
                and rt.emissions == ra.emissions
                and rt.writes == ra.writes
                and table.registers.snapshot() == ast.registers.snapshot())
        report.checked += 1
        if not same:
            report.mismatches.append({
                "point": dict(zip(
                    [f"{ax.kind}:{ax.name}{list(ax.index)}" for ax in axes],
                    point)),
                "table": (rt.fired_source_rule, rt.returned),
                "ast": (ra.fired_source_rule, ra.returned),
            })
            if len(report.mismatches) >= 5:
                break
    return report

"""Core of the reproduction: the paper's rule-based routing approach.

Subpackages: :mod:`repro.core.dsl` (description language),
:mod:`repro.core.compiler` (rule compiler), :mod:`repro.core.interpreter`
(hardware rule-interpreter model).  :class:`repro.core.RuleEngine` is the
facade routers and tests drive.
"""

from .engine import RuleEngine

__all__ = ["RuleEngine"]

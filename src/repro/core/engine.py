"""RuleEngine: the complete control unit of the rule-based router.

Ties together the compiler and the interpreter stack into the object a
router (or a test) drives:

* compile a DSL program once, with compile-time parameters;
* hold the register file ("Variables" in paper Figure 5);
* accept hardware inputs (buffer states, header fields, link status);
* dispatch events to rule bases via the event manager and return
  external emissions to the data path;
* answer direct decision queries (``call``) for RETURNS rule bases;
* count interpretation steps and expose the hardware cost figures.

``mode="table"`` executes compiled rule tables (the RBR-kernel model);
``mode="ast"`` executes the reference semantics.  Both share registers,
inputs and functions, so they are interchangeable — and tested to be.
"""

from __future__ import annotations

from typing import Mapping

from .compiler.compile import CompiledProgram, CompiledRuleBase, compile_program
from .dsl.domains import Value
from .dsl.errors import EvalError
from .interpreter.astinterp import AstInterpreter
from .interpreter.evaluator import Env, FunctionImpl, make_input_reader
from .interpreter.event_manager import EventManager
from .interpreter.execution import Emission, InvocationResult
from .interpreter.rbr import RbrInterpreter
from .interpreter.registers import RegisterFile
from .interpreter.timing import DEFAULT_DELAYS, DelayModel


class RuleEngine:
    def __init__(self, program: str | CompiledProgram,
                 params: Mapping[str, Value] | None = None,
                 functions: Mapping[str, FunctionImpl] | None = None,
                 mode: str = "table",
                 coerce: str = "saturate",
                 delays: DelayModel = DEFAULT_DELAYS,
                 materialize: bool = True,
                 fastpath: bool = True):
        if mode not in ("table", "ast"):
            raise ValueError(f"unknown mode {mode!r}")
        if isinstance(program, CompiledProgram):
            self.compiled = program
        else:
            self.compiled = compile_program(program, params,
                                            materialize=materialize)
        self.analyzed = self.compiled.analyzed
        self.mode = mode
        self.delays = delays
        self.registers = RegisterFile(self.analyzed, coerce=coerce)
        self.functions: dict[str, FunctionImpl] = dict(functions or {})
        self._inputs = make_input_reader({})
        self._inputs_map = getattr(self._inputs, "mapping", None)
        self._cached_env: Env | None = None
        self._ast = AstInterpreter(self.analyzed)
        self._rbr = RbrInterpreter(self.compiled, fastpath=fastpath)
        # per-base decision kernels, resolved once per name (table mode
        # with fastpath only); skips the base lookup on every call
        self._kernels: dict[str, object] = {}
        self.events = EventManager(
            rulebase_names=set(self.analyzed.rulebases),
            event_names=set(self.analyzed.events),
            invoke=self._invoke)

    # -- configuration ------------------------------------------------------

    def register_function(self, name: str, impl: FunctionImpl) -> None:
        if name not in self.analyzed.functions:
            raise EvalError(f"{name!r} is not a declared FUNCTION")
        self.functions[name] = impl

    def attach_tracer(self, tracer, node: int = -1) -> None:
        """Attach a :mod:`repro.obs` tracer: rule-base invocations emit
        ``rule.invoke`` / ``rule.effects`` trace events tagged with the
        router ``node`` the engine belongs to."""
        self._rbr.tracer = tracer
        self._rbr.trace_node = node

    def set_inputs(self, source, *, trusted: bool = False) -> None:
        """Attach the hardware input source (mapping or callable).

        ``trusted=True`` promises the mapping is already canonical
        (indexed inputs keyed by tuples only) and skips normalization;
        see :func:`make_input_reader`.
        """
        self._inputs = make_input_reader(source, trusted=trusted)
        self._inputs_map = getattr(self._inputs, "mapping", None)
        # the cached base environment is refreshed in place: its other
        # fields (registers, functions, subbase caller) are identity-
        # stable for the engine's lifetime, and keeping the env object
        # itself stable lets the decision kernels cache per-args call
        # environments against it
        env = self._cached_env
        if env is not None:
            env.inputs = self._inputs
            env.inputs_map = self._inputs_map

    # -- execution ------------------------------------------------------------

    def _env(self) -> Env:
        # built once per engine; set_inputs swaps the inputs fields in
        # place (everything else is mutated in place, never replaced)
        env = self._cached_env
        if env is None:
            env = Env(self.analyzed, self.registers, {}, self._inputs,
                      self.functions, None, self._inputs_map)
            if self.mode == "ast":
                env.call_subbase = self._ast.subbase_caller(env)
            else:
                env.call_subbase = self._rbr.subbase_caller(env)
            self._cached_env = env
        return env

    def _invoke(self, base_name: str, args: tuple[Value, ...]
                ) -> InvocationResult:
        env = self._env()
        if self.mode == "ast":
            info = self.analyzed.rulebases.get(base_name) \
                or self.analyzed.subbases.get(base_name)
            if info is None:
                raise EvalError(f"unknown rule base {base_name!r}")
            return self._ast.invoke(info, args, env)
        rbr = self._rbr
        if rbr.fastpath:
            if rbr.tracer.enabled:
                # the traced path goes through rbr.invoke (same kernel,
                # plus the rule.invoke emission)
                return rbr.invoke(self.compiled.base(base_name), args, env)
            kern = self._kernels.get(base_name)
            if kern is None:
                kern = rbr.kernel(self.compiled.base(base_name))
                self._kernels[base_name] = kern
            return kern.invoke(args, env, rbr._subbase_runner)
        return rbr.invoke(self.compiled.base(base_name), args, env)

    def call(self, base_name: str, *args: Value) -> InvocationResult:
        """Invoke one rule base directly (one interpretation step)."""
        res = self._invoke(base_name, args)
        events = self.events
        events.counter.count(base_name)
        events.log.append(res)
        if res.emissions:
            events._route_emissions(res.emissions)
        return res

    def decide(self, base_name: str, *args: Value) -> Value:
        """Invoke a RETURNS rule base and return its decision value."""
        res = self.call(base_name, *args)
        if not res.has_return:
            raise EvalError(f"rule base {base_name!r} made no decision for "
                            f"arguments {args!r}")
        return res.returned  # type: ignore[return-value]

    def post(self, event: str, *args: Value) -> None:
        self.events.post(event, *args)

    def run(self) -> list[InvocationResult]:
        """Process queued events (and their cascades) to quiescence."""
        return self.events.run()

    def drain_external(self) -> list[Emission]:
        return self.events.drain_external()

    # -- statistics -------------------------------------------------------------

    @property
    def steps(self) -> int:
        return self.events.counter.total_steps

    def reset_steps(self) -> None:
        self.events.counter.reset()

    def reset_state(self) -> None:
        self.registers.reset()
        self.events.queue.clear()
        self.events.external.clear()
        self.events.log.clear()
        self.reset_steps()

    # -- hardware cost ------------------------------------------------------------

    def base(self, name: str) -> CompiledRuleBase:
        return self.compiled.base(name)

    def table_bits(self) -> int:
        return self.compiled.total_table_bits

    def register_bits(self) -> int:
        return self.compiled.register_bits()

    def decision_latency_cycles(self, steps: int) -> int:
        return self.delays.decision_cycles(steps)

"""Tokenizer for the rule DSL.

Keywords are case-insensitive (the paper writes them in upper case);
identifiers are case-sensitive.  Comments run from ``--`` to end of
line, exactly as in the paper's Figure 4 listing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import LexError

KEYWORDS = {
    "IF", "THEN", "ON", "END", "CONSTANT", "VARIABLE", "INPUT", "FUNCTION",
    "EVENT", "SUBBASE", "RETURNS", "RETURN", "IN", "TO", "AND", "OR", "NOT",
    "EXISTS", "FORALL", "SET", "OF", "UNION", "INTER", "DIFF", "MOD",
    "INIT", "FCFB",
}

# Multi-character operators first so maximal munch works.
OPERATORS = ["<-", "<=", ">=", "/=", "<", ">", "=", "+", "-", "*",
             "(", ")", "{", "}", ",", ";", ":", "!"]


@dataclass(frozen=True)
class Token:
    kind: str          # 'KW', 'IDENT', 'NUM', 'OP', 'STRING', 'EOF'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.text!r},@{self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Convert DSL source text to a token list ending in an EOF token."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def error(msg: str) -> LexError:
        return LexError(msg, line, col)

    while i < n:
        ch = source[i]
        # -- comment to end of line
        if ch == "-" and i + 1 < n and source[i + 1] == "-":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == '"':
            j = source.find('"', i + 1)
            if j < 0:
                raise error("unterminated string literal")
            text = source[i + 1:j]
            tokens.append(Token("STRING", text, line, col))
            col += j - i + 1
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("NUM", source[i:j], line, col))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KW", word.upper(), line, col))
            else:
                tokens.append(Token("IDENT", word, line, col))
            col += j - i
            i = j
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("OP", op, line, col))
                col += len(op)
                i += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("EOF", "", line, col))
    return tokens


def token_stream(source: str) -> Iterator[Token]:
    return iter(tokenize(source))

"""Rule DSL front end: lexer, parser, AST, domains, semantic analysis.

This is the description language of the paper's Section 4.2: rules of
the form ``IF <premise> THEN <conclusion>`` with finite-domain typed
variables, indexed accesses, quantifiers, events and subbases.
"""

from .domains import (BOOL, Domain, IntRange, SetDomain, SymbolDomain,
                      UnionDomain, Value, bits_for, bool_value, is_true)
from .errors import (CompileError, DslError, EvalError, LexError, ParseError,
                     SemanticError)
from .lexer import Token, tokenize
from .parser import parse
from .semantics import (AnalyzedProgram, Analyzer, BaseInfo, Binding,
                        EventInfo, FunctionInfo, InputInfo, Scope, VarInfo,
                        analyze, analyze_source)

__all__ = [
    "BOOL", "Domain", "IntRange", "SetDomain", "SymbolDomain", "UnionDomain",
    "Value", "bits_for", "bool_value", "is_true",
    "CompileError", "DslError", "EvalError", "LexError", "ParseError",
    "SemanticError",
    "Token", "tokenize", "parse",
    "AnalyzedProgram", "Analyzer", "BaseInfo", "Binding", "EventInfo",
    "FunctionInfo", "InputInfo", "Scope", "VarInfo", "analyze",
    "analyze_source",
]

"""Recursive-descent parser for the rule DSL.

Produces the AST defined in :mod:`repro.core.dsl.nodes`.  Premises and
value expressions share one expression grammar; semantic analysis
enforces boolean/value typing afterwards.

Grammar sketch (keywords case-insensitive)::

    program   := { decl | rulebase | subbase }
    decl      := CONSTANT ident = (enumlit | expr)
               | VARIABLE ident [( type {, type} )] IN type [INIT expr]
               | INPUT ident [( type {, type} )] IN type
               | FUNCTION ident ( [type {, type}] ) IN type [FCFB "kind"]
               | EVENT ident ( [type {, type}] )
    rulebase  := ON ident [( param {, param} )] [RETURNS type]
                 { rule } END ident ;
    subbase   := SUBBASE ident [( param {, param} )] [RETURNS type]
                 { rule } END ident ;
    param     := ident IN type
    rule      := IF premise THEN command {, command} ;
    premise   := and_expr { OR and_expr }
    and_expr  := bool_term { AND bool_term }
    bool_term := NOT bool_term
               | (EXISTS|FORALL) ident IN expr : premise
               | expr [ relop expr | IN expr ]
    expr      := mul { (+|-|UNION|INTER|DIFF) mul }
    mul       := unary { (*|MOD) unary }
    unary     := - unary | primary
    primary   := NUM | ident [ ( expr {, expr} ) ] | ( premise )
               | { [expr {, expr}] }
    command   := RETURN ( expr )
               | ! ident ( [expr {, expr}] )
               | FORALL ident IN expr : command
               | ( command {, command} )
               | ident [( expr {, expr} )] [<- expr]
    type      := type_atom { UNION type_atom }
    type_atom := SET OF type_atom | { sym {, sym} } | expr [TO expr]

A quantifier's body extends to the rest of the enclosing premise (the
paper's NARA example relies on this); parenthesize to limit scope.
"""

from __future__ import annotations

from .errors import ParseError
from .lexer import Token, tokenize
from . import nodes as N


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def check_kw(self, kw: str) -> bool:
        return self.cur.kind == "KW" and self.cur.text == kw

    def check_op(self, op: str) -> bool:
        return self.cur.kind == "OP" and self.cur.text == op

    def accept_kw(self, kw: str) -> bool:
        if self.check_kw(kw):
            self.advance()
            return True
        return False

    def accept_op(self, op: str) -> bool:
        if self.check_op(op):
            self.advance()
            return True
        return False

    def expect_kw(self, kw: str) -> Token:
        if not self.check_kw(kw):
            raise ParseError(f"expected {kw}, found {self.cur.text!r}",
                             self.cur.line, self.cur.col)
        return self.advance()

    def expect_op(self, op: str) -> Token:
        if not self.check_op(op):
            raise ParseError(f"expected {op!r}, found {self.cur.text!r}",
                             self.cur.line, self.cur.col)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.cur.kind != "IDENT":
            raise ParseError(f"expected identifier, found {self.cur.text!r}",
                             self.cur.line, self.cur.col)
        return self.advance()

    # -- program ------------------------------------------------------

    def parse_program(self) -> N.Program:
        decls: list[N.Decl] = []
        rulebases: list[N.RuleBase] = []
        subbases: list[N.Subbase] = []
        while self.cur.kind != "EOF":
            if self.check_kw("CONSTANT"):
                decls.append(self.parse_constant())
            elif self.check_kw("VARIABLE"):
                decls.append(self.parse_variable())
            elif self.check_kw("INPUT"):
                decls.append(self.parse_input())
            elif self.check_kw("FUNCTION"):
                decls.append(self.parse_function())
            elif self.check_kw("EVENT"):
                decls.append(self.parse_event())
            elif self.check_kw("ON"):
                rulebases.append(self.parse_rulebase())
            elif self.check_kw("SUBBASE"):
                subbases.append(self.parse_subbase())
            else:
                raise ParseError(
                    f"expected declaration or rule base, found {self.cur.text!r}",
                    self.cur.line, self.cur.col)
        return N.Program(tuple(decls), tuple(rulebases), tuple(subbases))

    # -- declarations --------------------------------------------------

    def parse_constant(self) -> N.ConstDecl:
        tok = self.expect_kw("CONSTANT")
        name = self.expect_ident().text
        self.expect_op("=")
        if self.check_op("{"):
            value: N.Expr | N.EnumType = self.parse_enum_literal()
        else:
            value = self.parse_expr()
        return N.ConstDecl(line=tok.line, name=name, value=value)

    def parse_enum_literal(self) -> N.EnumType:
        tok = self.expect_op("{")
        syms = [self.expect_ident().text]
        while self.accept_op(","):
            syms.append(self.expect_ident().text)
        self.expect_op("}")
        return N.EnumType(line=tok.line, symbols=tuple(syms))

    def parse_index_types(self) -> tuple[N.TypeExpr, ...]:
        if not self.accept_op("("):
            return ()
        types = [self.parse_type()]
        while self.accept_op(","):
            types.append(self.parse_type())
        self.expect_op(")")
        return tuple(types)

    def parse_variable(self) -> N.VarDecl:
        tok = self.expect_kw("VARIABLE")
        name = self.expect_ident().text
        indices = self.parse_index_types()
        self.expect_kw("IN")
        typ = self.parse_type()
        init = None
        if self.accept_kw("INIT"):
            init = self.parse_expr()
        return N.VarDecl(line=tok.line, name=name, indices=indices,
                         type=typ, init=init)

    def parse_input(self) -> N.InputDecl:
        tok = self.expect_kw("INPUT")
        name = self.expect_ident().text
        indices = self.parse_index_types()
        self.expect_kw("IN")
        typ = self.parse_type()
        return N.InputDecl(line=tok.line, name=name, indices=indices, type=typ)

    def parse_function(self) -> N.FunctionDecl:
        tok = self.expect_kw("FUNCTION")
        name = self.expect_ident().text
        self.expect_op("(")
        arg_types: list[N.TypeExpr] = []
        if not self.check_op(")"):
            arg_types.append(self.parse_type())
            while self.accept_op(","):
                arg_types.append(self.parse_type())
        self.expect_op(")")
        self.expect_kw("IN")
        typ = self.parse_type()
        fcfb = None
        if self.accept_kw("FCFB"):
            if self.cur.kind != "STRING":
                raise ParseError("expected FCFB kind string",
                                 self.cur.line, self.cur.col)
            fcfb = self.advance().text
        return N.FunctionDecl(line=tok.line, name=name,
                              arg_types=tuple(arg_types), type=typ, fcfb=fcfb)

    def parse_event(self) -> N.EventDecl:
        tok = self.expect_kw("EVENT")
        name = self.expect_ident().text
        self.expect_op("(")
        arg_types: list[N.TypeExpr] = []
        if not self.check_op(")"):
            arg_types.append(self.parse_type())
            while self.accept_op(","):
                arg_types.append(self.parse_type())
        self.expect_op(")")
        return N.EventDecl(line=tok.line, name=name, arg_types=tuple(arg_types))

    # -- rule bases -----------------------------------------------------

    def parse_params(self) -> tuple[N.Param, ...]:
        if not self.accept_op("("):
            return ()
        params: list[N.Param] = []
        if not self.check_op(")"):
            params.append(self.parse_param())
            while self.accept_op(","):
                params.append(self.parse_param())
        self.expect_op(")")
        return tuple(params)

    def parse_param(self) -> N.Param:
        tok = self.expect_ident()
        self.expect_kw("IN")
        typ = self.parse_type()
        return N.Param(name=tok.text, type=typ, line=tok.line)

    def _parse_base_body(self) -> tuple[tuple[N.Param, ...],
                                        N.TypeExpr | None,
                                        tuple[N.Rule, ...], str]:
        params = self.parse_params()
        returns = None
        if self.accept_kw("RETURNS"):
            returns = self.parse_type()
        rules: list[N.Rule] = []
        while self.check_kw("IF"):
            rules.append(self.parse_rule())
        self.expect_kw("END")
        end_name = self.expect_ident().text
        self.expect_op(";")
        return params, returns, tuple(rules), end_name

    def parse_rulebase(self) -> N.RuleBase:
        tok = self.expect_kw("ON")
        name = self.expect_ident().text
        params, returns, rules, end_name = self._parse_base_body()
        if end_name != name:
            raise ParseError(f"END {end_name} does not match ON {name}",
                             self.cur.line, self.cur.col)
        return N.RuleBase(name=name, params=params, rules=rules,
                          returns=returns, line=tok.line)

    def parse_subbase(self) -> N.Subbase:
        tok = self.expect_kw("SUBBASE")
        name = self.expect_ident().text
        params, returns, rules, end_name = self._parse_base_body()
        if end_name != name:
            raise ParseError(f"END {end_name} does not match SUBBASE {name}",
                             self.cur.line, self.cur.col)
        return N.Subbase(name=name, params=params, rules=rules,
                         returns=returns, line=tok.line)

    def parse_rule(self) -> N.Rule:
        tok = self.expect_kw("IF")
        premise = self.parse_premise()
        self.expect_kw("THEN")
        commands = [self.parse_command()]
        while self.accept_op(","):
            commands.append(self.parse_command())
        self.expect_op(";")
        return N.Rule(premise=premise, conclusion=tuple(commands), line=tok.line)

    # -- commands -------------------------------------------------------

    def parse_command(self) -> N.Command:
        tok = self.cur
        if self.accept_kw("RETURN"):
            self.expect_op("(")
            value = self.parse_expr()
            self.expect_op(")")
            return N.Return(line=tok.line, value=value)
        if self.accept_op("!"):
            name = self.expect_ident().text
            self.expect_op("(")
            args: list[N.Expr] = []
            if not self.check_op(")"):
                args.append(self.parse_expr())
                while self.accept_op(","):
                    args.append(self.parse_expr())
            self.expect_op(")")
            return N.Emit(line=tok.line, event=name, args=tuple(args))
        if self.accept_kw("FORALL"):
            var = self.expect_ident().text
            self.expect_kw("IN")
            coll = self.parse_expr()
            self.expect_op(":")
            body = self.parse_command()
            if isinstance(body, N.ForallCmd) and body.var == "":
                # flatten a parenthesized command group used as the body
                return N.ForallCmd(line=tok.line, var=var, collection=coll,
                                   body=body.body)
            return N.ForallCmd(line=tok.line, var=var, collection=coll,
                               body=(body,))
        if self.accept_op("("):
            # grouped command list, used as a quantified-command body
            cmds = [self.parse_command()]
            while self.accept_op(","):
                cmds.append(self.parse_command())
            self.expect_op(")")
            if len(cmds) == 1:
                return cmds[0]
            return N.ForallCmd(line=tok.line, var="", collection=N.SetLit(items=()),
                               body=tuple(cmds))
        name_tok = self.expect_ident()
        args = ()
        if self.accept_op("("):
            arg_list: list[N.Expr] = []
            if not self.check_op(")"):
                arg_list.append(self.parse_expr())
                while self.accept_op(","):
                    arg_list.append(self.parse_expr())
            self.expect_op(")")
            args = tuple(arg_list)
        if self.accept_op("<-"):
            value = self.parse_expr()
            target: N.Expr
            if args:
                target = N.Index(line=name_tok.line, ident=name_tok.text, args=args)
            else:
                target = N.Name(line=name_tok.line, ident=name_tok.text)
            return N.Assign(line=name_tok.line, target=target, value=value)
        return N.CallSubbase(line=name_tok.line, ident=name_tok.text, args=args)

    # -- premises / expressions ------------------------------------------

    def parse_premise(self) -> N.Expr:
        return self.parse_or()

    def parse_or(self) -> N.Expr:
        first = self.parse_and()
        terms = [first]
        while self.accept_kw("OR"):
            terms.append(self.parse_and())
        if len(terms) == 1:
            return first
        return N.Or(line=first.line, terms=tuple(terms))

    def parse_and(self) -> N.Expr:
        first = self.parse_bool_term()
        terms = [first]
        while self.accept_kw("AND"):
            terms.append(self.parse_bool_term())
        if len(terms) == 1:
            return first
        return N.And(line=first.line, terms=tuple(terms))

    def parse_bool_term(self) -> N.Expr:
        tok = self.cur
        if self.accept_kw("NOT"):
            return N.Not(line=tok.line, operand=self.parse_bool_term())
        if self.check_kw("EXISTS") or self.check_kw("FORALL"):
            kind = self.advance().text
            var = self.expect_ident().text
            self.expect_kw("IN")
            coll = self.parse_expr()
            self.expect_op(":")
            body = self.parse_premise()
            return N.Quant(line=tok.line, kind=kind, var=var,
                           collection=coll, body=body)
        left = self.parse_expr()
        if self.cur.kind == "OP" and self.cur.text in ("=", "/=", "<", "<=", ">", ">="):
            op = self.advance().text
            right = self.parse_expr()
            return N.Compare(line=left.line, op=op, left=left, right=right)
        if self.accept_kw("IN"):
            coll = self.parse_expr()
            return N.InSet(line=left.line, item=left, collection=coll)
        return left

    def parse_expr(self, allow_set_ops: bool = True) -> N.Expr:
        left = self.parse_mul()
        while True:
            if self.check_op("+") or self.check_op("-"):
                op = self.advance().text
            elif allow_set_ops and (self.check_kw("UNION")
                                    or self.check_kw("INTER")
                                    or self.check_kw("DIFF")):
                op = self.advance().text
            else:
                break
            right = self.parse_mul()
            left = N.BinOp(line=left.line, op=op, left=left, right=right)
        return left

    def parse_mul(self) -> N.Expr:
        left = self.parse_unary()
        while self.check_op("*") or self.check_kw("MOD"):
            op = self.advance().text
            right = self.parse_unary()
            left = N.BinOp(line=left.line, op=op, left=left, right=right)
        return left

    def parse_unary(self) -> N.Expr:
        tok = self.cur
        if self.accept_op("-"):
            return N.UnOp(line=tok.line, op="-", operand=self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> N.Expr:
        tok = self.cur
        if tok.kind == "NUM":
            self.advance()
            return N.Num(line=tok.line, value=int(tok.text))
        if tok.kind == "IDENT":
            self.advance()
            if self.accept_op("("):
                args: list[N.Expr] = []
                if not self.check_op(")"):
                    args.append(self.parse_expr())
                    while self.accept_op(","):
                        args.append(self.parse_expr())
                self.expect_op(")")
                return N.Index(line=tok.line, ident=tok.text, args=tuple(args))
            return N.Name(line=tok.line, ident=tok.text)
        if self.accept_op("("):
            inner = self.parse_premise()
            self.expect_op(")")
            return inner
        if self.accept_op("{"):
            items: list[N.Expr] = []
            if not self.check_op("}"):
                items.append(self.parse_expr())
                while self.accept_op(","):
                    items.append(self.parse_expr())
            self.expect_op("}")
            return N.SetLit(line=tok.line, items=tuple(items))
        raise ParseError(f"unexpected token {tok.text!r} in expression",
                         tok.line, tok.col)

    # -- types -------------------------------------------------------------

    def parse_type(self) -> N.TypeExpr:
        first = self.parse_type_atom()
        parts = [first]
        while self.accept_kw("UNION"):
            parts.append(self.parse_type_atom())
        if len(parts) == 1:
            return first
        return N.UnionType(line=first.line, parts=tuple(parts))

    def parse_type_atom(self) -> N.TypeExpr:
        tok = self.cur
        if self.accept_kw("SET"):
            self.expect_kw("OF")
            base = self.parse_type_atom()
            return N.SetOfType(line=tok.line, base=base)
        if self.check_op("{"):
            return self.parse_enum_literal()
        lo = self.parse_expr(allow_set_ops=False)
        if self.accept_kw("TO"):
            hi = self.parse_expr(allow_set_ops=False)
            return N.RangeType(line=tok.line, lo=lo, hi=hi)
        if isinstance(lo, N.Name):
            return N.NamedType(line=tok.line, name=lo.ident)
        raise ParseError("expected a type (range, enum, SET OF, or name)",
                         tok.line, tok.col)


def parse(source: str) -> N.Program:
    """Parse DSL source text into a :class:`~repro.core.dsl.nodes.Program`."""
    return Parser(source).parse_program()

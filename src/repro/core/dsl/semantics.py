"""Semantic analysis for the rule DSL.

Turns a parsed :class:`~repro.core.dsl.nodes.Program` into an
:class:`AnalyzedProgram`: named types become
:class:`~repro.core.dsl.domains.Domain` objects, constants are folded,
variables/inputs/functions/events get resolved signatures, and every
rule is type-checked.  Compile-time parameters (node degree, mesh
extents, hypercube dimension, adaptivity width ...) are supplied as a
``params`` mapping and behave like ``CONSTANT`` declarations, letting
one ruleset be compiled for many configurations — exactly how the paper
sweeps ``d`` and ``a`` for ROUTE_C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from . import nodes as N
from .domains import (BOOL, Domain, IntRange, SetDomain, SymbolDomain,
                      UnionDomain, Value)
from .errors import SemanticError

# ---------------------------------------------------------------------------
# Resolved entities
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VarInfo:
    name: str
    index_domains: tuple[Domain, ...]
    domain: Domain
    init: Value
    line: int = field(default=0, compare=False)

    @property
    def is_array(self) -> bool:
        return bool(self.index_domains)

    @property
    def n_cells(self) -> int:
        n = 1
        for d in self.index_domains:
            n *= d.size
        return n

    @property
    def total_bits(self) -> int:
        """Register bits this variable occupies (paper Section 5)."""
        return self.domain.bit_width * self.n_cells


@dataclass(frozen=True)
class InputInfo:
    name: str
    index_domains: tuple[Domain, ...]
    domain: Domain
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class FunctionInfo:
    name: str
    arg_domains: tuple[Domain, ...]
    domain: Domain
    fcfb: str | None
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class EventInfo:
    name: str
    arg_domains: tuple[Domain, ...]
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class BaseInfo:
    """A resolved rule base (ON ...) or subbase (SUBBASE ...)."""

    name: str
    params: tuple[tuple[str, Domain], ...]
    returns: Domain | None
    rules: tuple[N.Rule, ...]
    is_subbase: bool
    line: int = field(default=0, compare=False)


@dataclass
class AnalyzedProgram:
    constants: dict[str, Value]
    types: dict[str, Domain]
    symbol_owner: dict[str, SymbolDomain]
    variables: dict[str, VarInfo]
    inputs: dict[str, InputInfo]
    functions: dict[str, FunctionInfo]
    events: dict[str, EventInfo]
    rulebases: dict[str, BaseInfo]
    subbases: dict[str, BaseInfo]
    # Back-reference to the Analyzer that produced this program; the
    # compiler reuses its resolution helpers (iteration_space,
    # infer_domain, const_eval).  Set by Analyzer.analyze().
    analyzer: "Analyzer | None" = None

    def lookup_symbol_domain(self, sym: str) -> SymbolDomain | None:
        return self.symbol_owner.get(sym)

    def register_bits(self) -> int:
        """Total variable/register bits of the whole program."""
        return sum(v.total_bits for v in self.variables.values())


# ---------------------------------------------------------------------------
# Scopes: name -> binding
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Binding:
    kind: str      # 'const' | 'symbol' | 'var' | 'input' | 'param'
    #                | 'function' | 'subbase' | 'type'
    domain: Domain | None = None
    value: Value | None = None


class Scope:
    """Chained name-resolution scope."""

    def __init__(self, analyzed: AnalyzedProgram,
                 locals_: dict[str, Binding] | None = None,
                 parent: "Scope | None" = None):
        self.analyzed = analyzed
        self.locals = locals_ or {}
        self.parent = parent

    def child(self, locals_: dict[str, Binding]) -> "Scope":
        return Scope(self.analyzed, locals_, self)

    def lookup(self, name: str) -> Binding | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.locals:
                return scope.locals[name]
            scope = scope.parent
        a = self.analyzed
        if name in a.constants:
            v = a.constants[name]
            dom: Domain
            if isinstance(v, int):
                dom = IntRange(v, v)
            elif isinstance(v, str):
                owner = a.symbol_owner.get(v)
                dom = owner if owner else SymbolDomain((v,))
            else:
                raise SemanticError(f"constant {name} has unsupported value {v!r}")
            return Binding("const", dom, v)
        if name in a.types:
            return Binding("type", a.types[name])
        if name in a.symbol_owner:
            return Binding("symbol", a.symbol_owner[name], name)
        if name in a.variables:
            return Binding("var", a.variables[name].domain)
        if name in a.inputs:
            return Binding("input", a.inputs[name].domain)
        if name in a.functions:
            return Binding("function", a.functions[name].domain)
        if name in a.subbases:
            return Binding("subbase", a.subbases[name].returns)
        return None


# ---------------------------------------------------------------------------
# Analyzer
# ---------------------------------------------------------------------------


class Analyzer:
    def __init__(self, program: N.Program, params: Mapping[str, Value] | None = None):
        self.program = program
        self.params = dict(params or {})
        self.analyzed = AnalyzedProgram(
            constants={}, types={"bool": BOOL},
            symbol_owner={s: BOOL for s in BOOL.symbols},
            variables={}, inputs={}, functions={}, events={},
            rulebases={}, subbases={})

    # -- constant folding ------------------------------------------------

    def const_eval(self, expr: N.Expr) -> Value:
        """Evaluate an expression that must be compile-time constant."""
        a = self.analyzed
        if isinstance(expr, N.Num):
            return expr.value
        if isinstance(expr, N.Name):
            if expr.ident in a.constants:
                return a.constants[expr.ident]
            if expr.ident in a.symbol_owner:
                return expr.ident
            raise SemanticError(f"{expr.ident!r} is not a constant", expr.line)
        if isinstance(expr, N.UnOp) and expr.op == "-":
            v = self.const_eval(expr.operand)
            if not isinstance(v, int):
                raise SemanticError("unary minus on non-integer", expr.line)
            return -v
        if isinstance(expr, N.BinOp):
            lv = self.const_eval(expr.left)
            rv = self.const_eval(expr.right)
            if isinstance(lv, frozenset) or isinstance(rv, frozenset):
                if not (isinstance(lv, frozenset) and isinstance(rv, frozenset)):
                    raise SemanticError("set operation on non-set constant", expr.line)
                if expr.op == "UNION":
                    return lv | rv
                if expr.op == "INTER":
                    return lv & rv
                if expr.op == "DIFF":
                    return lv - rv
                raise SemanticError(f"operator {expr.op} not defined on sets", expr.line)
            if not (isinstance(lv, int) and isinstance(rv, int)):
                raise SemanticError(f"operator {expr.op} needs integer constants",
                                    expr.line)
            if expr.op == "+":
                return lv + rv
            if expr.op == "-":
                return lv - rv
            if expr.op == "*":
                return lv * rv
            if expr.op == "MOD":
                if rv == 0:
                    raise SemanticError("MOD by zero in constant expression", expr.line)
                return lv % rv
            raise SemanticError(f"unknown operator {expr.op}", expr.line)
        if isinstance(expr, N.SetLit):
            return frozenset(self.const_eval(i) for i in expr.items)
        raise SemanticError("expression is not compile-time constant",
                            getattr(expr, "line", 0))

    # -- type resolution ---------------------------------------------------

    def _register_symbols(self, dom: SymbolDomain, line: int) -> SymbolDomain:
        owner = self.analyzed.symbol_owner
        for s in dom.symbols:
            existing = owner.get(s)
            if existing is not None and existing.symbols != dom.symbols:
                raise SemanticError(
                    f"symbol {s!r} already belongs to domain {existing}", line)
        # Reuse an identical previously-registered domain object.
        for s in dom.symbols:
            existing = owner.get(s)
            if existing is not None:
                return existing
        for s in dom.symbols:
            owner[s] = dom
        return dom

    def resolve_type(self, texpr: N.TypeExpr) -> Domain:
        a = self.analyzed
        if isinstance(texpr, N.RangeType):
            lo = self.const_eval(texpr.lo)
            hi = self.const_eval(texpr.hi)
            if not (isinstance(lo, int) and isinstance(hi, int)):
                raise SemanticError("range bounds must be integers", texpr.line)
            return IntRange(lo, hi)
        if isinstance(texpr, N.EnumType):
            dom = SymbolDomain(texpr.symbols)
            return self._register_symbols(dom, texpr.line)
        if isinstance(texpr, N.NamedType):
            if texpr.name in a.types:
                return a.types[texpr.name]
            if texpr.name in a.constants:
                v = a.constants[texpr.name]
                if isinstance(v, int):
                    # "IN dirs" with dirs = n means the index range 0..n-1
                    return IntRange(0, v - 1)
            raise SemanticError(f"unknown type {texpr.name!r}", texpr.line)
        if isinstance(texpr, N.SetOfType):
            return SetDomain(self.resolve_type(texpr.base))
        if isinstance(texpr, N.UnionType):
            return UnionDomain(tuple(self.resolve_type(p) for p in texpr.parts))
        raise SemanticError(f"unhandled type expression {texpr!r}",
                            getattr(texpr, "line", 0))

    # -- declarations --------------------------------------------------------

    def analyze(self) -> AnalyzedProgram:
        a = self.analyzed
        for name, v in self.params.items():
            a.constants[name] = v
        for decl in self.program.decls:
            if isinstance(decl, N.ConstDecl):
                self._analyze_const(decl)
            elif isinstance(decl, N.VarDecl):
                self._analyze_var(decl)
            elif isinstance(decl, N.InputDecl):
                self._analyze_input(decl)
            elif isinstance(decl, N.FunctionDecl):
                self._analyze_function(decl)
            elif isinstance(decl, N.EventDecl):
                self._analyze_event(decl)
            else:  # pragma: no cover - parser emits only the above
                raise SemanticError(f"unknown declaration {decl!r}", decl.line)
        for sb in self.program.subbases:
            self._analyze_base(sb, is_subbase=True)
        for rb in self.program.rulebases:
            self._analyze_base(rb, is_subbase=False)
        # Type-check rule bodies once all signatures are known.
        for info in list(a.subbases.values()) + list(a.rulebases.values()):
            self._check_base(info)
        a.analyzer = self
        return a

    def _fresh_name(self, name: str, line: int) -> None:
        a = self.analyzed
        for table in (a.constants, a.types, a.variables, a.inputs,
                      a.functions, a.events, a.rulebases, a.subbases):
            if name in table:
                raise SemanticError(f"name {name!r} already declared", line)
        if name in a.symbol_owner:
            raise SemanticError(f"name {name!r} collides with a symbol", line)

    def _analyze_const(self, decl: N.ConstDecl) -> None:
        a = self.analyzed
        if decl.name in self.params:
            # compile-time parameter overrides the declared default
            return
        self._fresh_name(decl.name, decl.line)
        if isinstance(decl.value, N.EnumType):
            dom = SymbolDomain(decl.value.symbols, name=decl.name)
            dom = self._register_symbols(dom, decl.line)
            if dom.name is None:  # reused anonymous domain
                dom = SymbolDomain(dom.symbols, name=decl.name)
            a.types[decl.name] = dom
        else:
            a.constants[decl.name] = self.const_eval(decl.value)

    def _analyze_var(self, decl: N.VarDecl) -> None:
        self._fresh_name(decl.name, decl.line)
        idx = tuple(self.resolve_type(t) for t in decl.indices)
        dom = self.resolve_type(decl.type)
        init: Value = dom.default()
        if decl.init is not None:
            init = dom.check(self.const_eval(decl.init), f"INIT of {decl.name}")
        self.analyzed.variables[decl.name] = VarInfo(
            decl.name, idx, dom, init, decl.line)

    def _analyze_input(self, decl: N.InputDecl) -> None:
        self._fresh_name(decl.name, decl.line)
        idx = tuple(self.resolve_type(t) for t in decl.indices)
        dom = self.resolve_type(decl.type)
        self.analyzed.inputs[decl.name] = InputInfo(decl.name, idx, dom, decl.line)

    def _analyze_function(self, decl: N.FunctionDecl) -> None:
        self._fresh_name(decl.name, decl.line)
        args = tuple(self.resolve_type(t) for t in decl.arg_types)
        dom = self.resolve_type(decl.type)
        self.analyzed.functions[decl.name] = FunctionInfo(
            decl.name, args, dom, decl.fcfb, decl.line)

    def _analyze_event(self, decl: N.EventDecl) -> None:
        self._fresh_name(decl.name, decl.line)
        args = tuple(self.resolve_type(t) for t in decl.arg_types)
        self.analyzed.events[decl.name] = EventInfo(decl.name, args, decl.line)

    def _analyze_base(self, base: N.RuleBase | N.Subbase, is_subbase: bool) -> None:
        self._fresh_name(base.name, base.line)
        params = tuple((p.name, self.resolve_type(p.type)) for p in base.params)
        returns = self.resolve_type(base.returns) if base.returns else None
        info = BaseInfo(base.name, params, returns, base.rules, is_subbase, base.line)
        if is_subbase:
            self.analyzed.subbases[base.name] = info
        else:
            self.analyzed.rulebases[base.name] = info

    # -- rule body type checking -------------------------------------------

    def _check_base(self, info: BaseInfo) -> None:
        scope = Scope(self.analyzed, {n: Binding("param", d) for n, d in info.params})
        for rule in info.rules:
            dom = self.infer_domain(rule.premise, scope)
            if dom is not BOOL:
                raise SemanticError(
                    f"premise of rule in {info.name!r} is not boolean", rule.line)
            # A top-level chain of EXISTS quantifiers exports its bound
            # variables (witnesses) to the conclusion — the paper's NARA
            # rule relies on this ("!send(indir, vc, i, vc)").
            witness_scope = scope
            prem = rule.premise
            while isinstance(prem, N.Quant) and prem.kind == "EXISTS":
                values, _ = self.iteration_space(prem.collection, witness_scope)
                witness_scope = witness_scope.child({prem.var: Binding(
                    "param", self._values_domain(values, prem.line))})
                prem = prem.body
            for cmd in rule.conclusion:
                self._check_command(cmd, witness_scope, info)

    def _check_command(self, cmd: N.Command, scope: Scope, info: BaseInfo) -> None:
        a = self.analyzed
        if isinstance(cmd, N.Assign):
            tgt = cmd.target
            if isinstance(tgt, N.Name):
                var = a.variables.get(tgt.ident)
                if var is None:
                    raise SemanticError(f"assignment to unknown variable "
                                        f"{tgt.ident!r}", cmd.line)
                if var.is_array:
                    raise SemanticError(f"array variable {tgt.ident!r} needs "
                                        f"indices", cmd.line)
            elif isinstance(tgt, N.Index):
                var = a.variables.get(tgt.ident)
                if var is None:
                    raise SemanticError(f"assignment to unknown variable "
                                        f"{tgt.ident!r}", cmd.line)
                if len(tgt.args) != len(var.index_domains):
                    raise SemanticError(f"{tgt.ident!r} expects "
                                        f"{len(var.index_domains)} indices", cmd.line)
                for arg in tgt.args:
                    self.infer_domain(arg, scope)
            else:  # pragma: no cover
                raise SemanticError("invalid assignment target", cmd.line)
            vdom = self.infer_domain(cmd.value, scope)
            self._check_compatible(var.domain, vdom, cmd.line,
                                   f"assignment to {var.name}")
        elif isinstance(cmd, N.Emit):
            # An emission may target a declared EVENT (leaves the rule
            # machine) or a rule base of this program (internal event,
            # paper: "Asynchronity can be explicitly allowed by the
            # generation of internal events").
            ev = a.events.get(cmd.event)
            if ev is not None:
                arg_domains = ev.arg_domains
            else:
                rb = a.rulebases.get(cmd.event)
                if rb is None:
                    raise SemanticError(f"unknown event {cmd.event!r}",
                                        cmd.line)
                arg_domains = tuple(d for _, d in rb.params)
            if len(cmd.args) != len(arg_domains):
                raise SemanticError(f"event {cmd.event!r} expects "
                                    f"{len(arg_domains)} arguments", cmd.line)
            for arg, dom in zip(cmd.args, arg_domains):
                adom = self.infer_domain(arg, scope)
                self._check_compatible(dom, adom, cmd.line,
                                       f"argument of !{cmd.event}")
        elif isinstance(cmd, N.Return):
            if info.returns is None:
                raise SemanticError(f"RETURN in {info.name!r}, which declares "
                                    f"no RETURNS type", cmd.line)
            vdom = self.infer_domain(cmd.value, scope)
            self._check_compatible(info.returns, vdom, cmd.line,
                                   f"RETURN of {info.name}")
        elif isinstance(cmd, N.ForallCmd):
            if cmd.var:
                values, _ = self.iteration_space(cmd.collection, scope)
                inner = scope.child({cmd.var: Binding(
                    "param", self._values_domain(values, cmd.line))})
            else:
                inner = scope
            for c in cmd.body:
                self._check_command(c, inner, info)
        elif isinstance(cmd, N.CallSubbase):
            sb = a.subbases.get(cmd.ident)
            if sb is None:
                raise SemanticError(f"unknown subbase {cmd.ident!r}", cmd.line)
            if len(cmd.args) != len(sb.params):
                raise SemanticError(f"subbase {cmd.ident!r} expects "
                                    f"{len(sb.params)} arguments", cmd.line)
            for arg, (_, dom) in zip(cmd.args, sb.params):
                adom = self.infer_domain(arg, scope)
                self._check_compatible(dom, adom, cmd.line,
                                       f"argument of {cmd.ident}")
        else:  # pragma: no cover
            raise SemanticError(f"unknown command {cmd!r}", cmd.line)

    # -- expression typing ------------------------------------------------

    def _check_compatible(self, expected: Domain, actual: Domain,
                          line: int, what: str) -> None:
        """Accept if the value spaces can overlap (runtime checks the rest)."""
        if expected is actual:
            return
        exp_vals = None
        try:
            if expected.size * actual.size <= 4096:
                exp_vals = set(expected.values()) & set(actual.values())
        except Exception:  # pragma: no cover - degenerate domains
            exp_vals = None
        if exp_vals is not None and not exp_vals:
            int_like = (isinstance(expected, IntRange)
                        and isinstance(actual, IntRange))
            if not int_like:
                raise SemanticError(
                    f"{what}: domain {actual} cannot produce a value of "
                    f"{expected}", line)

    def _values_domain(self, values: list[Value], line: int) -> Domain:
        ints = [v for v in values if isinstance(v, int)]
        syms = [v for v in values if isinstance(v, str)]
        if ints and syms:
            raise SemanticError("mixed int/symbol iteration space", line)
        if ints:
            return IntRange(min(ints), max(ints))
        if syms:
            owner = self.analyzed.symbol_owner.get(syms[0])
            if owner is not None:
                return owner
            return SymbolDomain(tuple(syms))
        raise SemanticError("empty iteration space", line)

    def iteration_space(self, coll: N.Expr, scope: Scope
                        ) -> tuple[list[Value], bool]:
        """Values a quantifier variable ranges over, plus whether a
        runtime membership guard ``var IN coll`` is required (the case
        of a *computed* set such as ``minimal(dx, dy)``)."""
        a = self.analyzed
        if isinstance(coll, N.Name):
            b = scope.lookup(coll.ident)
            if b is None:
                raise SemanticError(f"unknown name {coll.ident!r}", coll.line)
            if b.kind == "const" and isinstance(b.value, int):
                return list(range(b.value)), False
            if b.kind == "type":
                return list(b.domain.values()), False
            if b.domain is not None and isinstance(b.domain, SetDomain):
                return list(b.domain.base.values()), True
            raise SemanticError(
                f"{coll.ident!r} is not iterable (need a constant, a type, "
                f"or a set-valued expression)", coll.line)
        if isinstance(coll, N.SetLit):
            try:
                return [self.const_eval(i) for i in coll.items], False
            except SemanticError:
                dom = self.infer_domain(coll, scope)
                assert isinstance(dom, SetDomain)
                return list(dom.base.values()), True
        dom = self.infer_domain(coll, scope)
        if isinstance(dom, SetDomain):
            return list(dom.base.values()), True
        raise SemanticError("quantifier collection is not a set", coll.line)

    def infer_domain(self, expr: N.Expr, scope: Scope) -> Domain:
        a = self.analyzed
        if isinstance(expr, N.Num):
            return IntRange(expr.value, expr.value)
        if isinstance(expr, N.Name):
            b = scope.lookup(expr.ident)
            if b is None:
                raise SemanticError(f"unknown name {expr.ident!r}", expr.line)
            if b.kind == "var" and a.variables[expr.ident].is_array:
                raise SemanticError(f"array variable {expr.ident!r} used "
                                    f"without indices", expr.line)
            if b.kind == "type":
                # a type name used as a value denotes the full symbol set
                assert b.domain is not None
                return SetDomain(b.domain)
            if b.domain is None:
                raise SemanticError(f"{expr.ident!r} has no value here", expr.line)
            return b.domain
        if isinstance(expr, N.Index):
            return self._infer_index(expr, scope)
        if isinstance(expr, N.SetLit):
            item_domains = [self.infer_domain(i, scope) for i in expr.items]
            if not item_domains:
                return SetDomain(IntRange(0, 0))
            return SetDomain(self._merge_domains(item_domains, expr.line))
        if isinstance(expr, N.UnOp):
            d = self.infer_domain(expr.operand, scope)
            if not isinstance(d, IntRange):
                raise SemanticError("unary minus needs an integer", expr.line)
            return IntRange(-d.hi, -d.lo)
        if isinstance(expr, N.BinOp):
            ld = self.infer_domain(expr.left, scope)
            rd = self.infer_domain(expr.right, scope)
            if expr.op in ("UNION", "INTER", "DIFF"):
                if not (isinstance(ld, SetDomain) and isinstance(rd, SetDomain)):
                    raise SemanticError(f"{expr.op} needs set operands", expr.line)
                base = self._merge_domains([ld.base, rd.base], expr.line)
                return SetDomain(base)
            if not (isinstance(ld, IntRange) and isinstance(rd, IntRange)):
                raise SemanticError(f"operator {expr.op!r} needs integer "
                                    f"operands", expr.line)
            if expr.op == "+":
                return IntRange(ld.lo + rd.lo, ld.hi + rd.hi)
            if expr.op == "-":
                return IntRange(ld.lo - rd.hi, ld.hi - rd.lo)
            if expr.op == "*":
                corners = [ld.lo * rd.lo, ld.lo * rd.hi, ld.hi * rd.lo,
                           ld.hi * rd.hi]
                return IntRange(min(corners), max(corners))
            if expr.op == "MOD":
                if rd.lo <= 0:
                    raise SemanticError("MOD needs a positive divisor domain",
                                        expr.line)
                return IntRange(0, rd.hi - 1)
            raise SemanticError(f"unknown operator {expr.op!r}", expr.line)
        if isinstance(expr, (N.Compare, N.InSet, N.And, N.Or, N.Not, N.Quant)):
            self._check_bool(expr, scope)
            return BOOL
        raise SemanticError(f"unhandled expression {expr!r}",
                            getattr(expr, "line", 0))

    def _merge_domains(self, doms: list[Domain], line: int) -> Domain:
        first = doms[0]
        if all(d is first for d in doms):
            return first
        if all(isinstance(d, IntRange) for d in doms):
            return IntRange(min(d.lo for d in doms),  # type: ignore[union-attr]
                            max(d.hi for d in doms))  # type: ignore[union-attr]
        if all(isinstance(d, SymbolDomain) for d in doms):
            bases = {d.symbols for d in doms}  # type: ignore[union-attr]
            if len(bases) == 1:
                return first
            syms: list[str] = []
            for d in doms:
                for s in d.values():
                    if s not in syms:
                        syms.append(s)  # type: ignore[arg-type]
            return SymbolDomain(tuple(syms))
        raise SemanticError("cannot merge incompatible domains", line)

    def _check_bool(self, expr: N.Expr, scope: Scope) -> None:
        if isinstance(expr, N.Compare):
            ld = self.infer_domain(expr.left, scope)
            rd = self.infer_domain(expr.right, scope)
            if expr.op in ("<", "<=", ">", ">="):
                if not (isinstance(ld, IntRange) and isinstance(rd, IntRange)):
                    raise SemanticError(f"ordering comparison {expr.op!r} needs "
                                        f"integers", expr.line)
            else:
                self._check_compatible(ld, rd, expr.line, "comparison")
        elif isinstance(expr, N.InSet):
            self.infer_domain(expr.item, scope)
            cdom = self.infer_domain(expr.collection, scope)
            if not isinstance(cdom, SetDomain):
                raise SemanticError("IN needs a set on the right", expr.line)
        elif isinstance(expr, N.And) or isinstance(expr, N.Or):
            for t in expr.terms:
                if self.infer_domain(t, scope) is not BOOL:
                    raise SemanticError("AND/OR needs boolean operands",
                                        expr.line)
        elif isinstance(expr, N.Not):
            if self.infer_domain(expr.operand, scope) is not BOOL:
                raise SemanticError("NOT needs a boolean operand", expr.line)
        elif isinstance(expr, N.Quant):
            values, _ = self.iteration_space(expr.collection, scope)
            inner = scope.child({expr.var: Binding(
                "param", self._values_domain(values, expr.line))})
            if self.infer_domain(expr.body, inner) is not BOOL:
                raise SemanticError("quantifier body must be boolean", expr.line)

    def _infer_index(self, expr: N.Index, scope: Scope) -> Domain:
        a = self.analyzed
        name = expr.ident
        if name in a.variables:
            var = a.variables[name]
            if len(expr.args) != len(var.index_domains):
                raise SemanticError(f"{name!r} expects "
                                    f"{len(var.index_domains)} indices",
                                    expr.line)
            for arg in expr.args:
                self.infer_domain(arg, scope)
            return var.domain
        if name in a.inputs:
            inp = a.inputs[name]
            if len(expr.args) != len(inp.index_domains):
                raise SemanticError(f"input {name!r} expects "
                                    f"{len(inp.index_domains)} indices",
                                    expr.line)
            for arg in expr.args:
                self.infer_domain(arg, scope)
            return inp.domain
        if name in a.functions:
            fn = a.functions[name]
            if len(expr.args) != len(fn.arg_domains):
                raise SemanticError(f"function {name!r} expects "
                                    f"{len(fn.arg_domains)} arguments",
                                    expr.line)
            for arg, dom in zip(expr.args, fn.arg_domains):
                adom = self.infer_domain(arg, scope)
                self._check_compatible(dom, adom, expr.line,
                                       f"argument of {name}")
            return fn.domain
        if name in a.subbases:
            sb = a.subbases[name]
            if sb.returns is None:
                raise SemanticError(f"subbase {name!r} returns nothing and "
                                    f"cannot be used in an expression",
                                    expr.line)
            if len(expr.args) != len(sb.params):
                raise SemanticError(f"subbase {name!r} expects "
                                    f"{len(sb.params)} arguments", expr.line)
            for arg, (_, dom) in zip(expr.args, sb.params):
                adom = self.infer_domain(arg, scope)
                self._check_compatible(dom, adom, expr.line,
                                       f"argument of {name}")
            return sb.returns
        raise SemanticError(f"unknown indexed name {name!r}", expr.line)


def analyze(program: N.Program,
            params: Mapping[str, Value] | None = None) -> AnalyzedProgram:
    """Run semantic analysis; raises :class:`SemanticError` on failure."""
    return Analyzer(program, params).analyze()


def analyze_source(source: str,
                   params: Mapping[str, Value] | None = None) -> AnalyzedProgram:
    from .parser import parse
    return analyze(parse(source), params)

"""Error types for the rule-based routing DSL.

All DSL-facing errors carry a source location (line, column) when one is
available so that rule authors get actionable diagnostics, mirroring the
"Rule Compiler" tool the paper assumes (Section 4.2).
"""

from __future__ import annotations


class DslError(Exception):
    """Base class for every error raised by the DSL front end."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.message = message
        self.line = line
        self.col = col
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line is None:
            return self.message
        if self.col is None:
            return f"line {self.line}: {self.message}"
        return f"line {self.line}, col {self.col}: {self.message}"


class LexError(DslError):
    """Raised when the tokenizer meets a character it cannot interpret."""


class ParseError(DslError):
    """Raised when the token stream does not follow the rule grammar."""


class SemanticError(DslError):
    """Raised by semantic analysis: unknown names, type mismatches,
    out-of-domain constants, arity errors, and similar."""


class CompileError(DslError):
    """Raised by the rule compiler proper (table generation, encoding)."""


class EvalError(DslError):
    """Raised at interpretation time: out-of-domain assignment, missing
    input, or an event with no matching rule base."""

"""Finite value domains for the rule DSL.

The paper restricts DSL data types to "integers within finite ranges,
discrete symbols, the union of these two, and subsets of these"
(Section 4.2).  Each domain knows how to enumerate its values, how many
bits a hardware register holding one value needs, and how to encode a
value as a dense integer (used when a raw value feeds the rule-table
index directly, cf. Section 4.3: "their current values are used as part
of the table index directly").

Values are plain Python objects: ``int`` for integers, ``str`` for
symbols, ``frozenset`` for subset-domain values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator

from .errors import SemanticError

Value = int | str | frozenset


def bits_for(n_values: int) -> int:
    """Number of bits needed to distinguish ``n_values`` values.

    A domain with a single value still occupies one bit in our register
    accounting (a wire must exist), matching conservative hardware cost.
    """
    if n_values <= 1:
        return 1
    return (n_values - 1).bit_length()


class Domain:
    """Abstract finite domain of values."""

    def values(self) -> Iterator[Value]:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError

    def contains(self, value: Value) -> bool:
        raise NotImplementedError

    @property
    def bit_width(self) -> int:
        return bits_for(self.size)

    def encode(self, value: Value) -> int:
        """Dense index of ``value`` within the domain enumeration."""
        raise NotImplementedError

    def decode(self, code: int) -> Value:
        raise NotImplementedError

    def default(self) -> Value:
        """Reset value of a register with this domain."""
        return next(iter(self.values()))

    def check(self, value: Value, what: str = "value") -> Value:
        if not self.contains(value):
            raise SemanticError(f"{what} {value!r} is outside domain {self}")
        return value


@dataclass(frozen=True)
class IntRange(Domain):
    """Integers in the closed interval [lo, hi]."""

    lo: int
    hi: int

    def __post_init__(self):
        if self.hi < self.lo:
            raise SemanticError(f"empty integer range {self.lo} TO {self.hi}")

    def values(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1))

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1

    def contains(self, value: Value) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and self.lo <= value <= self.hi

    def encode(self, value: Value) -> int:
        self.check(value)
        return int(value) - self.lo

    def decode(self, code: int) -> int:
        if not 0 <= code < self.size:
            raise SemanticError(f"code {code} out of range for {self}")
        return self.lo + code

    def __str__(self) -> str:
        return f"{self.lo} TO {self.hi}"


@dataclass(frozen=True)
class SymbolDomain(Domain):
    """A finite set of named discrete symbols, e.g. fault states."""

    symbols: tuple[str, ...]
    name: str | None = field(default=None, compare=False)

    def __post_init__(self):
        if len(set(self.symbols)) != len(self.symbols):
            raise SemanticError(f"duplicate symbol in {{{', '.join(self.symbols)}}}")
        if not self.symbols:
            raise SemanticError("empty symbol domain")

    def values(self) -> Iterator[str]:
        return iter(self.symbols)

    @property
    def size(self) -> int:
        return len(self.symbols)

    @cached_property
    def _index(self) -> dict[str, int]:
        # cached_property writes straight into __dict__, which is legal
        # on a frozen dataclass and keeps contains/encode O(1)
        return {s: i for i, s in enumerate(self.symbols)}

    def contains(self, value: Value) -> bool:
        return isinstance(value, str) and value in self._index

    def encode(self, value: Value) -> int:
        self.check(value)
        return self._index[value]  # type: ignore[index]

    def decode(self, code: int) -> str:
        return self.symbols[code]

    def __str__(self) -> str:
        if self.name:
            return self.name
        return "{" + ", ".join(self.symbols) + "}"


@dataclass(frozen=True)
class UnionDomain(Domain):
    """Union of an integer range and a symbol set (paper Section 4.2)."""

    parts: tuple[Domain, ...]

    def __post_init__(self):
        seen: set[Value] = set()
        for p in self.parts:
            for v in p.values():
                if v in seen:
                    raise SemanticError(f"value {v!r} occurs in several union parts")
                seen.add(v)

    def values(self) -> Iterator[Value]:
        for p in self.parts:
            yield from p.values()

    @property
    def size(self) -> int:
        return sum(p.size for p in self.parts)

    def contains(self, value: Value) -> bool:
        return any(p.contains(value) for p in self.parts)

    def encode(self, value: Value) -> int:
        offset = 0
        for p in self.parts:
            if p.contains(value):
                return offset + p.encode(value)
            offset += p.size
        raise SemanticError(f"value {value!r} outside union domain {self}")

    def decode(self, code: int) -> Value:
        for p in self.parts:
            if code < p.size:
                return p.decode(code)
            code -= p.size
        raise SemanticError(f"code out of range for {self}")

    def __str__(self) -> str:
        return " UNION ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class SetDomain(Domain):
    """Subsets of a base domain; values are ``frozenset`` objects.

    A hardware register holding such a value is one bit per base value
    (a bit vector), hence ``bit_width == base.size``.
    """

    base: Domain

    def values(self) -> Iterator[frozenset]:
        base_vals = list(self.base.values())
        for mask in range(1 << len(base_vals)):
            yield frozenset(v for i, v in enumerate(base_vals) if mask >> i & 1)

    @property
    def size(self) -> int:
        return 1 << self.base.size

    def contains(self, value: Value) -> bool:
        return isinstance(value, frozenset) and all(self.base.contains(v) for v in value)

    @property
    def bit_width(self) -> int:
        return self.base.size

    @cached_property
    def _enc_memo(self) -> dict[frozenset, int]:
        return {}

    def encode(self, value: Value) -> int:
        memo = self._enc_memo
        try:
            mask = memo.get(value)
        except TypeError:  # unhashable junk: let check() diagnose it
            mask = None
        if mask is None:
            self.check(value)
            mask = 0
            for i, v in enumerate(self.base.values()):
                if v in value:  # type: ignore[operator]
                    mask |= 1 << i
            memo[value] = mask  # type: ignore[index]
        return mask

    def decode(self, code: int) -> frozenset:
        return frozenset(v for i, v in enumerate(self.base.values()) if code >> i & 1)

    def default(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return f"SET OF {self.base}"


BOOL = SymbolDomain(("false", "true"), name="bool")


def bool_value(b: bool) -> str:
    return "true" if b else "false"


def is_true(v: Value) -> bool:
    return v == "true"

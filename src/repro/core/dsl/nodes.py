"""AST node definitions for the rule DSL.

The grammar follows the constructs shown in the paper (Section 4.2):
typed constants and variables, indexed data accesses, quantifiers,
subbases, events, and rules of the form ``IF <premise> THEN
<conclusion>;`` grouped into event-triggered rule bases
(``ON <event>(<params>) ... END <event>;``).

All nodes are immutable dataclasses carrying a source line for
diagnostics.  Expression nodes double as premise nodes; semantic
analysis distinguishes boolean from value expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Type expressions (syntactic; resolved to domains.Domain in semantics)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TypeExpr:
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class RangeType(TypeExpr):
    """``<lo> TO <hi>``; bounds are expressions over constants/params."""

    lo: "Expr" = None  # type: ignore[assignment]
    hi: "Expr" = None  # type: ignore[assignment]


@dataclass(frozen=True)
class EnumType(TypeExpr):
    """``{sym1, sym2, ...}`` — a symbol set used as a type."""

    symbols: tuple[str, ...] = ()


@dataclass(frozen=True)
class NamedType(TypeExpr):
    """Reference to a CONSTANT whose value is a symbol set, or to a
    scalar constant ``n`` standing for the range ``0 TO n-1`` (the
    paper's ``VARIABLE number_unsafe IN 0 TO dirs`` idiom also allows
    ``FORALL i IN dirs`` where ``dirs`` is the node degree)."""

    name: str = ""


@dataclass(frozen=True)
class SetOfType(TypeExpr):
    """``SET OF <base>`` — subsets of a base type."""

    base: TypeExpr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class UnionType(TypeExpr):
    """``<a> UNION <b>`` — union of two type expressions."""

    parts: tuple[TypeExpr, ...] = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Num(Expr):
    value: int = 0


@dataclass(frozen=True)
class Name(Expr):
    """Identifier: variable, constant, event/quantifier parameter,
    symbol literal, or input — resolved during semantic analysis."""

    ident: str = ""


@dataclass(frozen=True)
class Index(Expr):
    """Indexed access ``name(arg, ...)`` — an array variable, an INPUT
    array, a FUNCTION application or a SUBBASE call; disambiguated by
    semantic analysis."""

    ident: str = ""
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class SetLit(Expr):
    """``{e1, e2, ...}`` used as a value (membership tests, set ops)."""

    items: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic / set binary operation: + - * MOD UNION INTER DIFF."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary minus."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Compare(Expr):
    """Relational atom: = /= < <= > >=."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class InSet(Expr):
    """Membership atom ``e IN <set expr>``."""

    item: Expr = None  # type: ignore[assignment]
    collection: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class And(Expr):
    terms: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Or(Expr):
    terms: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Quant(Expr):
    """``EXISTS|FORALL var IN <set>: <body>`` (premise side)."""

    kind: str = ""  # "EXISTS" | "FORALL"
    var: str = ""
    collection: Expr = None  # type: ignore[assignment]
    body: Expr = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Commands (conclusion side)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Command:
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Assign(Command):
    """``target <- expr`` where target is a Name or Index lvalue."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Emit(Command):
    """``!event(args)`` — generate an event (paper: "!send(...)")."""

    event: str = ""
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Return(Command):
    """``RETURN(expr)`` — deliver the rule base's result."""

    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ForallCmd(Command):
    """``FORALL var IN <set>: <commands>`` — quantified command list,
    e.g. ``FORALL i IN dirs: !send_newmessage(i, ounsafe)``."""

    var: str = ""
    collection: Expr = None  # type: ignore[assignment]
    body: tuple[Command, ...] = ()


@dataclass(frozen=True)
class CallSubbase(Command):
    """Subbase invocation used as a command."""

    ident: str = ""
    args: tuple[Expr, ...] = ()


# ---------------------------------------------------------------------------
# Declarations and program structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Decl:
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class ConstDecl(Decl):
    """``CONSTANT name = <expr or enum literal>``.

    A set literal of symbols declares a symbol type (paper:
    ``CONSTANT fault_states={safe,faulty,ounsafe,sunsafe,lfault}``);
    a numeric expression declares a compile-time integer constant.
    """

    name: str = ""
    value: Expr | EnumType = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Param:
    """Typed formal parameter of a rule base, subbase or declaration."""

    name: str
    type: TypeExpr
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class VarDecl(Decl):
    """``VARIABLE name[(index domains)] IN <type> [INIT <expr>]``."""

    name: str = ""
    indices: tuple[TypeExpr, ...] = ()
    type: TypeExpr = None  # type: ignore[assignment]
    init: Expr | None = None


@dataclass(frozen=True)
class InputDecl(Decl):
    """``INPUT name[(index domains)] IN <type>`` — a read-only hardware
    status or message-header signal supplied by the router at
    invocation time (buffer usage, link state, header fields ...)."""

    name: str = ""
    indices: tuple[TypeExpr, ...] = ()
    type: TypeExpr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class FunctionDecl(Decl):
    """``FUNCTION name(types) IN <type> [FCFB "kind"]`` — an external
    computation realized by a Free Configurable Function Block; the
    Python implementation is registered with the engine."""

    name: str = ""
    arg_types: tuple[TypeExpr, ...] = ()
    type: TypeExpr = None  # type: ignore[assignment]
    fcfb: str | None = None


@dataclass(frozen=True)
class EventDecl(Decl):
    """``EVENT name(types)`` — signature of an event that rules may
    emit with ``!name(args)`` or that the hardware may raise."""

    name: str = ""
    arg_types: tuple[TypeExpr, ...] = ()


@dataclass(frozen=True)
class Rule:
    premise: Expr
    conclusion: tuple[Command, ...]
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class RuleBase:
    """``ON name(params) [RETURNS type] <rules> END name;``"""

    name: str
    params: tuple[Param, ...]
    rules: tuple[Rule, ...]
    returns: TypeExpr | None = None
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Subbase:
    """``SUBBASE name(params) [RETURNS type] <rules> END name;``"""

    name: str
    params: tuple[Param, ...]
    rules: tuple[Rule, ...]
    returns: TypeExpr | None = None
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Program:
    decls: tuple[Decl, ...]
    rulebases: tuple[RuleBase, ...]
    subbases: tuple[Subbase, ...]

"""Register file of the rule interpreter.

Holds every DSL ``VARIABLE`` as a hardware-register model: scalar
variables are single cells, indexed variables are cell arrays.  Two
write-coercion modes exist:

* ``saturate`` (default): integer writes clamp to the register's range
  — counter semantics a hardware implementation exhibits naturally;
* ``strict``: out-of-domain writes raise :class:`EvalError` — used by
  the test suite to prove rulesets never rely on clamping.
"""

from __future__ import annotations

from typing import Iterator

from ..dsl.domains import Domain, IntRange, SetDomain, Value
from ..dsl.errors import EvalError
from ..dsl.semantics import AnalyzedProgram, VarInfo


class RegisterFile:
    def __init__(self, analyzed: AnalyzedProgram, coerce: str = "saturate"):
        if coerce not in ("saturate", "strict"):
            raise ValueError(f"unknown coercion mode {coerce!r}")
        self.analyzed = analyzed
        self.coerce = coerce
        self._cells: dict[str, dict[tuple[Value, ...], Value]] = {}
        self.reset()

    def reset(self) -> None:
        self._cells.clear()
        for var in self.analyzed.variables.values():
            cells: dict[tuple[Value, ...], Value] = {}
            for idx in _index_tuples(var):
                cells[idx] = var.init
            self._cells[var.name] = cells

    # -- access -----------------------------------------------------------

    def _var(self, name: str) -> VarInfo:
        var = self.analyzed.variables.get(name)
        if var is None:
            raise EvalError(f"unknown register {name!r}")
        return var

    def _key(self, var: VarInfo, idx: tuple[Value, ...]) -> tuple[Value, ...]:
        if len(idx) != len(var.index_domains):
            raise EvalError(f"register {var.name!r} expects "
                            f"{len(var.index_domains)} indices, got {len(idx)}")
        for i, dom in zip(idx, var.index_domains):
            if not dom.contains(i):
                raise EvalError(f"index {i!r} outside {dom} for "
                                f"register {var.name!r}")
        return idx

    def read(self, name: str, idx: tuple[Value, ...] = ()) -> Value:
        var = self._var(name)
        return self._cells[name][self._key(var, idx)]

    def write(self, name: str, value: Value,
              idx: tuple[Value, ...] = ()) -> None:
        var = self._var(name)
        key = self._key(var, idx)
        self._cells[name][key] = self._coerce(var.domain, value, var.name)

    def _coerce(self, dom: Domain, value: Value, what: str) -> Value:
        if dom.contains(value):
            return value
        if self.coerce == "saturate":
            if isinstance(dom, IntRange) and isinstance(value, int):
                return min(max(value, dom.lo), dom.hi)
            if isinstance(dom, SetDomain) and isinstance(value, frozenset):
                return frozenset(v for v in value if dom.base.contains(v))
        raise EvalError(f"value {value!r} outside domain {dom} "
                        f"in write to {what}")

    # -- inspection ------------------------------------------------------------

    def items(self) -> Iterator[tuple[str, tuple[Value, ...], Value]]:
        for name, cells in self._cells.items():
            for idx, v in cells.items():
                yield name, idx, v

    def snapshot(self) -> dict[tuple[str, tuple[Value, ...]], Value]:
        return {(name, idx): v for name, idx, v in self.items()}

    def load(self, snap: dict[tuple[str, tuple[Value, ...]], Value]) -> None:
        for (name, idx), v in snap.items():
            self.write(name, v, idx)

    def total_bits(self) -> int:
        return self.analyzed.register_bits()


def _index_tuples(var: VarInfo) -> Iterator[tuple[Value, ...]]:
    if not var.index_domains:
        yield ()
        return
    def rec(i: int, prefix: tuple[Value, ...]) -> Iterator[tuple[Value, ...]]:
        if i == len(var.index_domains):
            yield prefix
            return
        for v in var.index_domains[i].values():
            yield from rec(i + 1, prefix + (v,))
    yield from rec(0, ())

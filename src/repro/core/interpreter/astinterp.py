"""Reference interpreter: executes rule bases directly from the AST.

This is the executable semantics of the DSL.  The compiled-table
interpreter (:mod:`.rbr`) must agree with it bit-for-bit; the property
tests in ``tests/core/test_equivalence.py`` enforce that.

Rule selection: the textually first rule whose premise holds fires
("Only one rule is selected at one invocation; if more than one rule is
applicable it is up to the implementation which one is taken" — we fix
source order).  A top-level chain of EXISTS quantifiers binds witnesses
in iteration order so conclusions may reference the bound variables,
matching the compiler's witness splitting.
"""

from __future__ import annotations

from ..dsl import nodes as N
from ..dsl.domains import Value
from ..dsl.errors import EvalError
from ..dsl.semantics import AnalyzedProgram, BaseInfo
from .evaluator import Env, eval_expr, iteration_values, to_bool
from .execution import InvocationResult, _Effects, apply_effects, gather_effects


class AstInterpreter:
    def __init__(self, analyzed: AnalyzedProgram):
        self.analyzed = analyzed

    # -- premise with witness extraction ---------------------------------

    def _premise_holds(self, premise: N.Expr, env: Env
                       ) -> tuple[bool, dict[str, Value]]:
        """Evaluate a premise; top-level EXISTS chains yield witnesses."""
        if isinstance(premise, N.Quant) and premise.kind == "EXISTS":
            for v in iteration_values(premise.collection, env):
                inner = env.bind({premise.var: v})
                ok, sub = self._premise_holds(premise.body, inner)
                if ok:
                    sub = dict(sub)
                    sub[premise.var] = v
                    return True, sub
            return False, {}
        return to_bool(eval_expr(premise, env),
                       getattr(premise, "line", 0)), {}

    # -- invocation -------------------------------------------------------------

    def invoke(self, base: BaseInfo, args: tuple[Value, ...], env: Env
               ) -> InvocationResult:
        if len(args) != len(base.params):
            raise EvalError(f"rule base {base.name!r} expects "
                            f"{len(base.params)} arguments, got {len(args)}")
        bindings = {}
        for (name, dom), value in zip(base.params, args):
            dom.check(value, f"argument {name} of {base.name}")
            bindings[name] = value
        call_env = env.bind(bindings)
        result = InvocationResult(base=base.name, fired_source_rule=None)
        for i, rule in enumerate(base.rules):
            ok, witness = self._premise_holds(rule.premise, call_env)
            if ok:
                result.fired_source_rule = i
                result.witness = tuple(witness.items())
                rule_env = call_env.bind(witness)
                effects = _Effects()
                gather_effects(rule.conclusion, rule_env, effects,
                               self._subbase_runner(rule_env))
                apply_effects(effects, rule_env, result)
                break
        return result

    # -- subbases -----------------------------------------------------------------

    def _subbase_runner(self, env: Env):
        def run(name: str, args: tuple[Value, ...], effects: _Effects) -> None:
            sub = self.analyzed.subbases.get(name)
            if sub is None:
                raise EvalError(f"unknown subbase {name!r}")
            res = self.invoke(sub, args, env)
            effects.writes.extend(res.writes)
            effects.emissions.extend(res.emissions)
        return run

    def subbase_caller(self, env: Env):
        """Expression-position subbase calls: must be pure (RETURN only)."""
        def call(name: str, args: tuple[Value, ...]) -> Value:
            sub = self.analyzed.subbases.get(name)
            if sub is None:
                raise EvalError(f"unknown subbase {name!r}")
            res = self.invoke(sub, args, env)
            if res.writes or res.emissions:
                raise EvalError(f"subbase {name!r} used in an expression "
                                f"must only RETURN (it performed writes or "
                                f"emitted events)")
            if not res.has_return:
                raise EvalError(f"subbase {name!r} returned no value for "
                                f"arguments {args!r}")
            return res.returned  # type: ignore[return-value]
        return call

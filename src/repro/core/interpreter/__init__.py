"""Rule interpreter stack: software model of the ARON hardware.

* :mod:`.registers` — the register file ("Variables", Figure 5)
* :mod:`.evaluator` — shared expression evaluation
* :mod:`.execution` — parallel conclusion execution
* :mod:`.astinterp` — reference semantics straight from the AST
* :mod:`.rbr` — RBR-kernel table-lookup execution
* :mod:`.event_manager` — event-triggered coordination + step counting
* :mod:`.timing` — the wiring + 2xFCFB + RAM delay model
"""

from .astinterp import AstInterpreter
from .evaluator import Env, eval_expr, iteration_values, make_input_reader, to_bool
from .event_manager import EventManager, StepCounter
from .execution import Emission, InvocationResult, execute_conclusion
from .rbr import RbrInterpreter
from .registers import RegisterFile
from .timing import DEFAULT_DELAYS, DelayModel

__all__ = [
    "AstInterpreter", "Env", "eval_expr", "iteration_values",
    "make_input_reader", "to_bool", "EventManager", "StepCounter",
    "Emission", "InvocationResult", "execute_conclusion", "RbrInterpreter",
    "RegisterFile", "DEFAULT_DELAYS", "DelayModel",
]

"""Delay model of the rule interpreter hardware.

Paper Section 4.3: "the routing decision is done in a very short time
given by the sum of the delays in the configurable wiring (negligible),
two times the FCFBs and one memory access or way through a PAL" — and
the interpreter can be pipelined for throughput.

The absolute numbers are a 1998-era CMOS model and configurable; what
the benchmarks depend on is the *structure*: one interpretation step =
wiring + 2 x FCFB + one RAM access, and a routing decision costs as
many steps as the algorithm chains rule-base invocations (NAFTA 1..3,
ROUTE_C 2 — paper Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.compile import CompiledRuleBase


@dataclass(frozen=True)
class DelayModel:
    """Nanosecond-level delays of one rule interpretation."""

    wiring_ns: float = 0.5      # configurable interconnect (negligible)
    fcfb_ns: float = 2.0        # one FCFB stage
    ram_access_ns: float = 5.0  # rule table RAM / PAL traversal
    cycle_ns: float = 10.0      # router clock period

    def step_ns(self, base: CompiledRuleBase | None = None) -> float:
        """Latency of a single rule interpretation (one step).

        The paper's formula is independent of the rule base size up to
        the RAM access; ``base`` is accepted for API symmetry and future
        size-dependent RAM models.
        """
        return self.wiring_ns + 2.0 * self.fcfb_ns + self.ram_access_ns

    def step_cycles(self, base: CompiledRuleBase | None = None) -> int:
        """One interpretation step in whole router cycles (>= 1)."""
        ns = self.step_ns(base)
        return max(1, -(-int(ns * 1000) // int(self.cycle_ns * 1000)))

    def decision_cycles(self, steps: int,
                        base: CompiledRuleBase | None = None) -> int:
        """Routing-decision latency for ``steps`` chained interpretations."""
        return steps * self.step_cycles(base)

    def decision_ns(self, steps: int,
                    base: CompiledRuleBase | None = None) -> float:
        return steps * self.step_ns(base)

    # -- pipelining ("the flow through the rule interpreter is straight
    # and pipelining can be applied to increase throughput") -------------

    @property
    def pipeline_stages(self) -> int:
        """Premise processing, RBR-kernel access, conclusion processing
        (paper Figure 5)."""
        return 3

    def pipeline_stage_ns(self) -> float:
        """The slowest pipeline stage bounds the interpreter clock."""
        return max(self.wiring_ns + self.fcfb_ns,   # premise processing
                   self.ram_access_ns,              # RBR-kernel lookup
                   self.fcfb_ns)                    # conclusion processing

    def pipelined_latency_ns(self) -> float:
        """Latency of one interpretation through the full pipeline."""
        return self.pipeline_stages * self.pipeline_stage_ns()

    def pipelined_throughput_per_us(self) -> float:
        """Sustained interpretations per microsecond once the pipeline
        is full — the figure that lets one rule interpreter serve
        several input channels."""
        return 1000.0 / self.pipeline_stage_ns()


DEFAULT_DELAYS = DelayModel()

"""Table-based rule interpreter (software model of the RBR-kernel).

Executes a :class:`~repro.core.compiler.compile.CompiledRuleBase` the
way the hardware does (paper Figure 5): premise processing computes the
feature values (direct signal encodings and FCFB bits), their
concatenation indexes the completely-filled rule table, and the selected
entry drives conclusion processing.

Two execution strategies share this class:

* ``fastpath=True`` (default) runs each base through a lazily built
  :class:`~repro.core.compiler.fastpath.DecisionKernel`: premise
  features compiled to extractor closures, mixed-radix strides prebaked,
  table entries memoised on the feature-code tuple, and conclusions
  compiled to command closures.  No AST traversal on the hot path.
* ``fastpath=False`` keeps the original interpreted pipeline that walks
  the premise and conclusion ASTs through :func:`eval_expr` on every
  invocation.  It is retained as the seed reference that the throughput
  benchmark measures speedups against, and as a third point of the
  table/AST differential tests.
"""

from __future__ import annotations

from ...obs import events as trace_ev
from ...obs.tracer import NULL_TRACER
from ..dsl.domains import Value
from ..dsl.errors import EvalError
from ..compiler.atoms import BitFeature, DirectFeature
from ..compiler.compile import CompiledProgram, CompiledRuleBase
from ..compiler.fastpath import DecisionKernel
from ..compiler.tablegen import NO_RULE
from .evaluator import Env, eval_expr, to_bool
from .execution import InvocationResult, _Effects, apply_effects, gather_effects


class RbrInterpreter:
    #: observability hooks (see repro.obs): the tracer defaults to the
    #: shared no-op, so the untraced cost is one attribute check per
    #: invocation; trace_node tags emissions with the router the engine
    #: belongs to
    tracer = NULL_TRACER
    trace_node = -1

    def __init__(self, compiled: CompiledProgram, fastpath: bool = True):
        self.compiled = compiled
        self.analyzed = compiled.analyzed
        self.fastpath = fastpath
        self._kernels: dict[str, DecisionKernel] = {}

    def kernel(self, base: CompiledRuleBase) -> DecisionKernel:
        """The compiled decision kernel for one base (built lazily and
        cached; extractors and strides are reused across invocations)."""
        k = self._kernels.get(base.name)
        if k is None:
            k = DecisionKernel(base, self.analyzed)
            self._kernels[base.name] = k
        return k

    def compute_index(self, base: CompiledRuleBase, env: Env) -> int:
        """Premise processing: one mixed-radix index from the features."""
        if self.fastpath:
            return self.kernel(base).index(env)
        codes: list[int] = []
        for feat in base.analysis.features:
            if isinstance(feat, DirectFeature):
                value = eval_expr(feat.signal, env)
                codes.append(feat.domain.encode(value))
            else:
                assert isinstance(feat, BitFeature)
                codes.append(int(to_bool(eval_expr(feat.atom, env))))
        return base.analysis.index_of(codes)

    def invoke(self, base: CompiledRuleBase, args: tuple[Value, ...],
               env: Env) -> InvocationResult:
        if self.fastpath:
            res = self.kernel(base).invoke(args, env, self._subbase_runner)
            tr = self.tracer
            if tr.enabled:
                tr.emit(trace_ev.RULE_INVOKE, node=self.trace_node,
                        base=base.name, rule=res.fired_source_rule,
                        writes=len(res.writes),
                        emissions=len(res.emissions))
            return res
        if base.table is None:
            raise EvalError(f"rule base {base.name!r} was compiled without "
                            f"a materialized table; recompile with "
                            f"materialize=True to execute it")
        if len(args) != len(base.params):
            raise EvalError(f"rule base {base.name!r} expects "
                            f"{len(base.params)} arguments, got {len(args)}")
        bindings = {}
        for (name, dom), value in zip(base.params, args):
            dom.check(value, f"argument {name} of {base.name}")
            bindings[name] = value
        call_env = env.bind(bindings)

        idx = self.compute_index(base, call_env)
        entry = int(base.table[idx])
        result = InvocationResult(base=base.name, fired_source_rule=None)
        tr = self.tracer
        if entry == NO_RULE:
            if tr.enabled:
                tr.emit(trace_ev.RULE_INVOKE, node=self.trace_node,
                        base=base.name, rule=None, writes=0, emissions=0)
            return result
        ground = base.ground_rules[entry]
        result.fired_source_rule = ground.source_index
        result.witness = ground.witness
        effects = _Effects()
        gather_effects(ground.commands, call_env, effects,
                       self._subbase_runner(call_env))
        apply_effects(effects, call_env, result, tracer=tr)
        if tr.enabled:
            tr.emit(trace_ev.RULE_INVOKE, node=self.trace_node,
                    base=base.name, rule=result.fired_source_rule,
                    writes=len(result.writes),
                    emissions=len(result.emissions))
        return result

    # -- subbases ------------------------------------------------------------

    def _subbase_runner(self, env: Env):
        def run(name: str, args: tuple[Value, ...], effects: _Effects) -> None:
            sub = self.compiled.subbases.get(name)
            if sub is None:
                raise EvalError(f"unknown subbase {name!r}")
            res = self.invoke(sub, args, env)
            effects.writes.extend(res.writes)
            effects.emissions.extend(res.emissions)
        return run

    def subbase_caller(self, env: Env):
        """Expression-position subbase calls (pure lookups)."""
        def call(name: str, args: tuple[Value, ...]) -> Value:
            sub = self.compiled.subbases.get(name)
            if sub is None:
                raise EvalError(f"unknown subbase {name!r}")
            res = self.invoke(sub, args, env)
            if res.writes or res.emissions:
                raise EvalError(f"subbase {name!r} used in an expression "
                                f"must only RETURN")
            if not res.has_return:
                raise EvalError(f"subbase {name!r} returned no value for "
                                f"arguments {args!r}")
            return res.returned  # type: ignore[return-value]
        return call

"""Expression evaluation shared by the reference (AST) interpreter and
the table-based (RBR) interpreter.

Both interpreters evaluate the same expression language against the
same runtime environment: event/quantifier parameter bindings, the
register file, hardware inputs, FCFB-backed functions, and subbases.
Keeping one evaluator is what makes the compiled-table vs reference
equivalence tests meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..dsl import nodes as N
from ..dsl.domains import Value
from ..dsl.errors import EvalError
from ..dsl.semantics import AnalyzedProgram
from .registers import RegisterFile

InputReader = Callable[[str, tuple[Value, ...]], Value]
FunctionImpl = Callable[..., Value]
SubbaseCaller = Callable[[str, tuple[Value, ...]], Value]


def make_input_reader(source, *, trusted: bool = False) -> InputReader:
    """Normalize an input source to a reader callable.

    Accepts a callable ``(name, idx_tuple) -> value`` or a mapping
    ``name -> value`` / ``name -> {idx_tuple: value}``.  Index keys may
    be given as bare scalars for 1-D inputs (``{0: x}`` instead of
    ``{(0,): x}``); they are canonicalized to tuples here, once, so the
    per-read lookup is a single dict access and a scalar key can never
    silently shadow (or be shadowed by) its 1-tuple spelling.

    ``trusted=True`` skips the canonicalization scan and uses a mapping
    source as-is.  The caller warrants that every indexed input is a
    dict keyed exclusively by tuples; use it only on the hot path of a
    producer that builds its input dicts in canonical form (the router
    simulator does, per decision).
    """
    if callable(source):
        return source
    if trusted:
        mapping: dict[str, Value | dict[tuple[Value, ...], Value]] = \
            source if source is not None else {}
    else:
        mapping = {}
        for name, v in (source or {}).items():
            if not isinstance(v, dict):
                mapping[name] = v
                continue
            for k in v:
                if type(k) is not tuple:
                    break
            else:
                mapping[name] = v  # already canonical; share, don't copy
                continue
            table: dict[tuple[Value, ...], Value] = {}
            for key, value in v.items():
                canon = key if isinstance(key, tuple) else (key,)
                if canon in table and table[canon] != value:
                    raise EvalError(
                        f"input {name!r} supplies conflicting values for "
                        f"index {canon!r} (scalar and tuple spellings of "
                        f"the same key)")
                table[canon] = value
            mapping[name] = table

    def read(name: str, idx: tuple[Value, ...]) -> Value:
        if name not in mapping:
            raise EvalError(f"no value supplied for input {name!r}")
        v = mapping[name]
        if idx:
            if not isinstance(v, dict):
                raise EvalError(f"input {name!r} is indexed but a scalar "
                                f"value was supplied")
            try:
                return v[idx]
            except KeyError:
                raise EvalError(f"input {name!r} has no value at index "
                                f"{idx!r}") from None
        if isinstance(v, dict):
            raise EvalError(f"input {name!r} is scalar but an indexed "
                            f"value table was supplied")
        return v

    # the compiled fast path reads mapping-backed inputs directly (see
    # Env.inputs_map); callable sources have no mapping to expose
    read.mapping = mapping  # type: ignore[attr-defined]
    return read


@dataclass(slots=True)
class Env:
    """Runtime environment of one rule-base invocation."""

    analyzed: AnalyzedProgram
    registers: RegisterFile
    params: dict[str, Value] = field(default_factory=dict)
    inputs: InputReader = field(default_factory=lambda: make_input_reader({}))
    functions: dict[str, FunctionImpl] = field(default_factory=dict)
    call_subbase: SubbaseCaller | None = None
    #: when ``inputs`` is mapping-backed, the canonicalized mapping
    #: itself — compiled closures read it without the reader indirection
    inputs_map: dict | None = None

    def bind(self, extra: dict[str, Value]) -> "Env":
        merged = dict(self.params)
        merged.update(extra)
        return Env(self.analyzed, self.registers, merged, self.inputs,
                   self.functions, self.call_subbase, self.inputs_map)


def to_bool(v: Value, line: int = 0) -> bool:
    if isinstance(v, bool):
        return v
    if v == "true":
        return True
    if v == "false":
        return False
    raise EvalError(f"expected a boolean, got {v!r}", line)


def eval_expr(expr: N.Expr, env: Env) -> Value:
    """Evaluate a value or boolean expression.  Boolean results are
    Python ``bool``; symbol values are strings; sets are frozensets."""
    a = env.analyzed
    if isinstance(expr, N.Num):
        return expr.value
    if isinstance(expr, N.Name):
        name = expr.ident
        if name in env.params:
            return env.params[name]
        if name in a.symbol_owner:
            return name
        if name in a.constants:
            return a.constants[name]
        if name in a.variables:
            var = a.variables[name]
            if var.is_array:
                raise EvalError(f"array register {name!r} used without "
                                f"indices", expr.line)
            return env.registers.read(name)
        if name in a.inputs:
            inp = a.inputs[name]
            if inp.index_domains:
                raise EvalError(f"indexed input {name!r} used without "
                                f"indices", expr.line)
            return env.inputs(name, ())
        if name in a.types:
            return frozenset(a.types[name].values())
        raise EvalError(f"unknown name {name!r}", expr.line)
    if isinstance(expr, N.Index):
        args = tuple(eval_expr(arg, env) for arg in expr.args)
        name = expr.ident
        if name in a.variables:
            return env.registers.read(name, args)
        if name in a.inputs:
            return env.inputs(name, args)
        if name in a.functions:
            impl = env.functions.get(name)
            if impl is None:
                raise EvalError(f"no implementation registered for "
                                f"function {name!r}", expr.line)
            return impl(*args)
        if name in a.subbases:
            if env.call_subbase is None:
                raise EvalError(f"subbase {name!r} called but no subbase "
                                f"executor is attached", expr.line)
            return env.call_subbase(name, args)
        raise EvalError(f"unknown indexed name {name!r}", expr.line)
    if isinstance(expr, N.SetLit):
        return frozenset(eval_expr(i, env) for i in expr.items)
    if isinstance(expr, N.UnOp):
        v = eval_expr(expr.operand, env)
        if not isinstance(v, int):
            raise EvalError("unary minus on non-integer", expr.line)
        return -v
    if isinstance(expr, N.BinOp):
        lv = eval_expr(expr.left, env)
        rv = eval_expr(expr.right, env)
        if expr.op in ("UNION", "INTER", "DIFF"):
            if not (isinstance(lv, frozenset) and isinstance(rv, frozenset)):
                raise EvalError(f"{expr.op} needs set operands", expr.line)
            if expr.op == "UNION":
                return lv | rv
            if expr.op == "INTER":
                return lv & rv
            return lv - rv
        if not (isinstance(lv, int) and isinstance(rv, int)):
            raise EvalError(f"operator {expr.op!r} needs integers, got "
                            f"{lv!r} and {rv!r}", expr.line)
        if expr.op == "+":
            return lv + rv
        if expr.op == "-":
            return lv - rv
        if expr.op == "*":
            return lv * rv
        if expr.op == "MOD":
            if rv == 0:
                raise EvalError("MOD by zero", expr.line)
            return lv % rv
        raise EvalError(f"unknown operator {expr.op!r}", expr.line)
    if isinstance(expr, N.Compare):
        lv = eval_expr(expr.left, env)
        rv = eval_expr(expr.right, env)
        if isinstance(lv, bool) or isinstance(rv, bool):
            lv = "true" if lv is True else "false" if lv is False else lv
            rv = "true" if rv is True else "false" if rv is False else rv
        if expr.op == "=":
            return lv == rv
        if expr.op == "/=":
            return lv != rv
        if not (isinstance(lv, int) and isinstance(rv, int)):
            raise EvalError("ordering comparison on non-integers", expr.line)
        if expr.op == "<":
            return lv < rv
        if expr.op == "<=":
            return lv <= rv
        if expr.op == ">":
            return lv > rv
        if expr.op == ">=":
            return lv >= rv
        raise EvalError(f"unknown comparison {expr.op!r}", expr.line)
    if isinstance(expr, N.InSet):
        item = eval_expr(expr.item, env)
        coll = eval_expr(expr.collection, env)
        if not isinstance(coll, frozenset):
            raise EvalError("IN needs a set on the right", expr.line)
        return item in coll
    if isinstance(expr, N.And):
        return all(to_bool(eval_expr(t, env), expr.line) for t in expr.terms)
    if isinstance(expr, N.Or):
        return any(to_bool(eval_expr(t, env), expr.line) for t in expr.terms)
    if isinstance(expr, N.Not):
        return not to_bool(eval_expr(expr.operand, env), expr.line)
    if isinstance(expr, N.Quant):
        values = iteration_values(expr.collection, env)
        for v in values:
            inner = env.bind({expr.var: v})
            ok = to_bool(eval_expr(expr.body, inner), expr.line)
            if expr.kind == "EXISTS" and ok:
                return True
            if expr.kind == "FORALL" and not ok:
                return False
        return expr.kind == "FORALL"
    raise EvalError(f"unhandled expression {expr!r}",
                    getattr(expr, "line", 0))


def iteration_values(coll: N.Expr, env: Env) -> list[Value]:
    """Concrete, deterministically ordered iteration space of a
    quantifier collection at runtime.  Order matches the compiler's
    static expansion (ascending integers; declared symbol order), which
    is what keeps EXISTS witnesses identical between engines."""
    a = env.analyzed
    if isinstance(coll, N.Name):
        name = coll.ident
        if name in a.constants and isinstance(a.constants[name], int):
            return list(range(a.constants[name]))  # type: ignore[arg-type]
        if name in a.types:
            return list(a.types[name].values())
    value = eval_expr(coll, env)
    if not isinstance(value, frozenset):
        raise EvalError("quantifier collection is not iterable",
                        getattr(coll, "line", 0))
    return sort_values(value, a)


def sort_values(values: frozenset, analyzed: AnalyzedProgram) -> list[Value]:
    """Deterministic order: integers ascending, symbols in declared
    domain order, integers before symbols."""
    def key(v: Value):
        if isinstance(v, int):
            return (0, v, "")
        owner = analyzed.symbol_owner.get(v)  # type: ignore[arg-type]
        if owner is not None:
            return (1, owner.encode(v), str(v))
        return (1, 10 ** 9, str(v))
    return sorted(values, key=key)

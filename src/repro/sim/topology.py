"""Network topologies: 2-D mesh/torus, hypercube, k-ary n-cube.

A topology enumerates nodes (dense integer ids), per-node ports (dense
integer ids, one per neighbour link; the router adds a separate local
injection/ejection port on top), and coordinate helpers the routing
algorithms use.  Links are bidirectional; "a link is either faulty and
known as such or it transmits messages without destruction.  Links are
bi-directional and both directions fail together" (paper assumption i)
— hence links are identified by unordered node pairs.

Port numbering conventions match the routing literature:

* 2-D mesh/torus: EAST=0, WEST=1, NORTH=2, SOUTH=3 (missing mesh-edge
  ports simply do not exist on border nodes);
* hypercube / k-ary n-cube: dimension-major (for the hypercube, port i
  crosses dimension i; for k-ary n-cubes, ports 2i / 2i+1 are the
  +/- directions of dimension i).
"""

from __future__ import annotations

from dataclasses import dataclass


EAST, WEST, NORTH, SOUTH = 0, 1, 2, 3
MESH_DIR_NAMES = {EAST: "east", WEST: "west", NORTH: "north", SOUTH: "south"}
MESH_OPPOSITE = {EAST: WEST, WEST: EAST, NORTH: SOUTH, SOUTH: NORTH}


def link_key(a: int, b: int) -> tuple[int, int]:
    """Canonical id of the bidirectional link between two nodes."""
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class Port:
    """One router port: connects ``node`` to ``neighbor`` over ``link``."""

    node: int
    port_id: int
    neighbor: int
    neighbor_port: int
    link: tuple[int, int]


class Topology:
    """Abstract base: a named graph with dense ports."""

    name: str = "topology"

    def __init__(self):
        self._ports: dict[int, dict[int, Port]] = {}
        self._built = False
        self._neighbor_cache: dict[int, list[int]] = {}

    def describe(self) -> dict:
        """JSON-able construction recipe: ``{"kind": ..., <params>}``.

        Descriptions — not live topologies — are what crosses process
        boundaries (and what result-cache keys hash); rebuild with
        :func:`topology_from_dict`.
        """
        raise NotImplementedError

    # -- subclass interface ---------------------------------------------

    @property
    def n_nodes(self) -> int:
        raise NotImplementedError

    def _neighbor(self, node: int, port_id: int) -> tuple[int, int] | None:
        """(neighbor node, neighbor's port id) or None if the port does
        not exist (mesh borders)."""
        raise NotImplementedError

    @property
    def max_ports(self) -> int:
        """Upper bound on port ids (node degree of the regular graph)."""
        raise NotImplementedError

    def distance(self, a: int, b: int) -> int:
        """Minimal hop distance in the fault-free topology."""
        raise NotImplementedError

    # -- built structure ----------------------------------------------------

    def _build(self) -> None:
        if self._built:
            return
        for node in range(self.n_nodes):
            ports: dict[int, Port] = {}
            for pid in range(self.max_ports):
                nb = self._neighbor(node, pid)
                if nb is None:
                    continue
                nb_node, nb_port = nb
                ports[pid] = Port(node, pid, nb_node, nb_port,
                                  link_key(node, nb_node))
            self._ports[node] = ports
        self._built = True

    def ports(self, node: int) -> dict[int, Port]:
        self._build()
        return self._ports[node]

    def port(self, node: int, port_id: int) -> Port | None:
        self._build()
        return self._ports[node].get(port_id)

    def neighbors(self, node: int) -> list[int]:
        out = self._neighbor_cache.get(node)
        if out is None:
            out = [p.neighbor for p in self.ports(node).values()]
            self._neighbor_cache[node] = out
        return out

    def links(self) -> set[tuple[int, int]]:
        self._build()
        out: set[tuple[int, int]] = set()
        for ports in self._ports.values():
            for p in ports.values():
                out.add(p.link)
        return out

    def nodes(self) -> range:
        return range(self.n_nodes)


class Mesh2D(Topology):
    """width x height 2-D mesh; node id = x + y * width."""

    name = "mesh2d"

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        super().__init__()
        self.width = width
        self.height = height
        # minimal_ports is pure geometry (faults never shrink it), so
        # it is memoized per (node, dest) pair across the whole run
        self._minimal_cache: dict[int, list[int]] = {}

    def describe(self) -> dict:
        return {"kind": self.name, "width": self.width,
                "height": self.height}

    @property
    def n_nodes(self) -> int:
        return self.width * self.height

    @property
    def max_ports(self) -> int:
        return 4

    def coords(self, node: int) -> tuple[int, int]:
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height}")
        return x + y * self.width

    def _neighbor(self, node: int, port_id: int) -> tuple[int, int] | None:
        x, y = self.coords(node)
        if port_id == EAST and x + 1 < self.width:
            return self.node_at(x + 1, y), WEST
        if port_id == WEST and x - 1 >= 0:
            return self.node_at(x - 1, y), EAST
        if port_id == NORTH and y + 1 < self.height:
            return self.node_at(x, y + 1), SOUTH
        if port_id == SOUTH and y - 1 >= 0:
            return self.node_at(x, y - 1), NORTH
        return None

    def distance(self, a: int, b: int) -> int:
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    def minimal_ports(self, node: int, dest: int) -> list[int]:
        """Ports on minimal paths from node to dest (paper's set 2
        ingredient before deadlock restrictions).  The returned list is
        memoized and shared — callers must not mutate it."""
        key = node * self.width * self.height + dest
        out = self._minimal_cache.get(key)
        if out is None:
            out = self._compute_minimal(node, dest)
            self._minimal_cache[key] = out
        return out

    def _compute_minimal(self, node: int, dest: int) -> list[int]:
        x, y = self.coords(node)
        dx, dy = self.coords(dest)
        out = []
        if dx > x:
            out.append(EAST)
        if dx < x:
            out.append(WEST)
        if dy > y:
            out.append(NORTH)
        if dy < y:
            out.append(SOUTH)
        return out


class Torus2D(Mesh2D):
    """width x height 2-D torus (wrap-around mesh)."""

    name = "torus2d"

    def _neighbor(self, node: int, port_id: int) -> tuple[int, int] | None:
        x, y = self.coords(node)
        if port_id == EAST:
            return self.node_at((x + 1) % self.width, y), WEST
        if port_id == WEST:
            return self.node_at((x - 1) % self.width, y), EAST
        if port_id == NORTH:
            return self.node_at(x, (y + 1) % self.height), SOUTH
        if port_id == SOUTH:
            return self.node_at(x, (y - 1) % self.height), NORTH
        return None

    def distance(self, a: int, b: int) -> int:
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        dx = abs(ax - bx)
        dy = abs(ay - by)
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    def _compute_minimal(self, node: int, dest: int) -> list[int]:
        x, y = self.coords(node)
        dx, dy = self.coords(dest)
        out = []
        if dx != x:
            right = (dx - x) % self.width
            left = (x - dx) % self.width
            if right <= left:
                out.append(EAST)
            if left <= right:
                out.append(WEST)
        if dy != y:
            up = (dy - y) % self.height
            down = (y - dy) % self.height
            if up <= down:
                out.append(NORTH)
            if down <= up:
                out.append(SOUTH)
        return out


class Hypercube(Topology):
    """d-dimensional binary hypercube; port i flips address bit i."""

    name = "hypercube"

    def __init__(self, dimension: int):
        if dimension < 1:
            raise ValueError("hypercube dimension must be >= 1")
        super().__init__()
        self.dimension = dimension

    def describe(self) -> dict:
        return {"kind": self.name, "dimension": self.dimension}

    @property
    def n_nodes(self) -> int:
        return 1 << self.dimension

    @property
    def max_ports(self) -> int:
        return self.dimension

    def _neighbor(self, node: int, port_id: int) -> tuple[int, int] | None:
        if 0 <= port_id < self.dimension:
            return node ^ (1 << port_id), port_id
        return None

    def distance(self, a: int, b: int) -> int:
        return (a ^ b).bit_count()

    def differing_dimensions(self, a: int, b: int) -> list[int]:
        """Dimensions still to correct — the minimal-port set."""
        x = a ^ b
        return [i for i in range(self.dimension) if x >> i & 1]


class MeshND(Topology):
    """n-dimensional mesh (no wrap-around): ports 2i / 2i+1 are the
    + / - directions of dimension i; border ports do not exist."""

    name = "meshnd"

    def __init__(self, dims: tuple[int, ...]):
        if not dims or any(d < 1 for d in dims):
            raise ValueError("mesh dimensions must be positive")
        super().__init__()
        self.dims = tuple(int(d) for d in dims)

    def describe(self) -> dict:
        return {"kind": self.name, "dims": list(self.dims)}

    @property
    def n_nodes(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    @property
    def n_dims(self) -> int:
        return len(self.dims)

    @property
    def max_ports(self) -> int:
        return 2 * len(self.dims)

    def coords(self, node: int) -> tuple[int, ...]:
        out = []
        for d in self.dims:
            out.append(node % d)
            node //= d
        return tuple(out)

    def node_at(self, coords) -> int:
        node = 0
        for c, d in zip(reversed(tuple(coords)), reversed(self.dims)):
            if not 0 <= c < d:
                raise ValueError(f"{coords} outside mesh {self.dims}")
            node = node * d + c
        return node

    def _neighbor(self, node: int, port_id: int) -> tuple[int, int] | None:
        if not 0 <= port_id < 2 * len(self.dims):
            return None
        dim, sign = divmod(port_id, 2)
        coords = list(self.coords(node))
        if sign == 0:
            if coords[dim] + 1 >= self.dims[dim]:
                return None
            coords[dim] += 1
            return self.node_at(coords), port_id + 1
        if coords[dim] - 1 < 0:
            return None
        coords[dim] -= 1
        return self.node_at(coords), port_id - 1

    def distance(self, a: int, b: int) -> int:
        return sum(abs(x - y) for x, y in zip(self.coords(a),
                                              self.coords(b)))


class KAryNCube(Topology):
    """k-ary n-cube: n dimensions of k nodes with wrap-around.

    Ports 2i and 2i+1 are the + and - directions of dimension i.
    ``k == 2`` degenerates to a hypercube-like graph but keeps two
    (parallel) ports per dimension; use :class:`Hypercube` for binary
    cubes.
    """

    name = "karyncube"

    def __init__(self, k: int, n: int):
        if k < 2 or n < 1:
            raise ValueError("need k >= 2 and n >= 1")
        super().__init__()
        self.k = k
        self.n = n

    def describe(self) -> dict:
        return {"kind": self.name, "k": self.k, "n": self.n}

    @property
    def n_nodes(self) -> int:
        return self.k ** self.n

    @property
    def max_ports(self) -> int:
        return 2 * self.n

    def coords(self, node: int) -> tuple[int, ...]:
        out = []
        for _ in range(self.n):
            out.append(node % self.k)
            node //= self.k
        return tuple(out)

    def node_at(self, coords) -> int:
        node = 0
        for c in reversed(coords):
            node = node * self.k + c
        return node

    def _neighbor(self, node: int, port_id: int) -> tuple[int, int] | None:
        if not 0 <= port_id < 2 * self.n:
            return None
        dim, sign = divmod(port_id, 2)
        coords = list(self.coords(node))
        if sign == 0:
            coords[dim] = (coords[dim] + 1) % self.k
            return self.node_at(coords), port_id + 1
        coords[dim] = (coords[dim] - 1) % self.k
        return self.node_at(coords), port_id - 1

    def distance(self, a: int, b: int) -> int:
        ca = self.coords(a)
        cb = self.coords(b)
        total = 0
        for x, y in zip(ca, cb):
            d = abs(x - y)
            total += min(d, self.k - d)
        return total


_TOPOLOGY_KINDS = {
    "mesh2d": lambda d: Mesh2D(int(d["width"]), int(d["height"])),
    "torus2d": lambda d: Torus2D(int(d["width"]), int(d["height"])),
    "hypercube": lambda d: Hypercube(int(d["dimension"])),
    "meshnd": lambda d: MeshND(tuple(int(x) for x in d["dims"])),
    "karyncube": lambda d: KAryNCube(int(d["k"]), int(d["n"])),
}


def topology_from_dict(desc: dict) -> Topology:
    """Rebuild a topology from a :meth:`Topology.describe` recipe."""
    try:
        kind = desc["kind"]
    except (TypeError, KeyError):
        raise ValueError(f"not a topology description: {desc!r}") from None
    try:
        build = _TOPOLOGY_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown topology kind {kind!r}; choose from "
                         f"{sorted(_TOPOLOGY_KINDS)}") from None
    return build(desc)

"""Switch/VC arbitration policies (the paper's "Scheduling and
Fairness" subgoal, Section 3).

An arbiter picks, for one output port, among the input virtual
channels requesting it this cycle.  The paper notes fairness "acts like
adaptivity in the small" and that it "may be desirable to favor
messages misrouted due to faults to compensate the double disadvantage
of the longer path and higher loaded links" — which
:class:`MisroutedFirstArbiter` implements.
"""

from __future__ import annotations

from ..sim.flit import Header


class Request:
    """One input VC's request for an output this cycle."""

    __slots__ = ("in_port", "in_vc", "out_port", "out_vc", "header",
                 "is_head")

    def __init__(self, in_port: int, in_vc: int, out_port: int, out_vc: int,
                 header: Header | None, is_head: bool):
        self.in_port = in_port
        self.in_vc = in_vc
        self.out_port = out_port
        self.out_vc = out_vc
        self.header = header
        self.is_head = is_head


class Arbiter:
    """Base: strict round-robin over (in_port, in_vc)."""

    name = "round_robin"

    def __init__(self):
        self._pointers: dict[int, int] = {}

    def choose(self, out_port: int, requests: list[Request]) -> Request:
        if not requests:
            raise ValueError("no requests to arbitrate")
        if len(requests) == 1:
            # uncontended output: grant directly, but advance the
            # pointer exactly as the general path would so fairness
            # under later contention is unchanged
            chosen = requests[0]
            self._pointers[out_port] = chosen.in_port * 64 + chosen.in_vc + 1
            return chosen
        requests = sorted(requests, key=self._key)
        ptr = self._pointers.get(out_port, 0)
        # first requester at or after the pointer position
        chosen = min(requests,
                     key=lambda r: ((self._key(r) < ptr), self._key(r)))
        self._pointers[out_port] = self._key(chosen) + 1
        return chosen

    @staticmethod
    def _key(r: Request) -> int:
        return r.in_port * 64 + r.in_vc


class MisroutedFirstArbiter(Arbiter):
    """Favors worms already misrouted by faults, then round-robin."""

    name = "misrouted_first"

    def choose(self, out_port: int, requests: list[Request]) -> Request:
        misrouted = [r for r in requests
                     if r.header is not None and r.header.misrouted]
        if misrouted:
            return super().choose(out_port, misrouted)
        return super().choose(out_port, requests)


class OldestFirstArbiter(Arbiter):
    """Age-based fairness: the worm created earliest wins (strong
    starvation freedom, more comparator hardware)."""

    name = "oldest_first"

    def choose(self, out_port: int, requests: list[Request]) -> Request:
        with_hdr = [r for r in requests if r.header is not None]
        if with_hdr:
            oldest = min(with_hdr, key=lambda r: (r.header.created,
                                                  r.header.msg_id))
            return oldest
        return super().choose(out_port, requests)


ARBITERS = {
    "round_robin": Arbiter,
    "misrouted_first": MisroutedFirstArbiter,
    "oldest_first": OldestFirstArbiter,
}


def make_arbiter(name: str) -> Arbiter:
    try:
        return ARBITERS[name]()
    except KeyError:
        raise ValueError(f"unknown arbiter {name!r}; "
                         f"choose from {sorted(ARBITERS)}") from None

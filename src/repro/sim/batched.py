"""Struct-of-arrays simulation engine (``SimConfig(engine="batched")``).

The object engine (:mod:`repro.sim.network`) is the bit-exact oracle:
per-flit Python objects, one method call per phase per router.  This
module re-represents the same machine as flat numpy arrays — channel
occupancy, credits, worm heads and tails, flit queues, round-robin
pointers — advanced each cycle by compiled C kernels
(:mod:`repro.sim._batched_kernel`), with Python entered only where the
routing *algorithm* must run: fresh head decisions, epoch-stale or
REROUTE-hinted refreshes, and stuck-message purges.

The contract is bit-exactness, not approximation: for any workload the
batched engine reproduces the object engine's ``SimStats.summary()``
and per-decision conformance digests exactly.  The layout and walk
mirror the oracle one-for-one:

* one global input-VC index (``gid``) per (node, port, vc), in the
  object engine's iteration order — LOCAL first, then ascending ports,
  virtual channels ascending.  Output VCs share the index space (same
  triples), so ascending gid is also ascending round-robin arbiter key;
* allocation is a *sequential* C walk over nodes, because a grant frees
  a downstream credit that a later-ordered router may consume in the
  same cycle — a masked argmax cannot express that chain;
* ``on_depart`` hooks, path traces and tail ejections are replayed in
  exact grant order from a C-side event log after the walk (nothing in
  the walk reads headers, so deferral is invisible);
* blocked-head refreshes use :data:`~repro.routing.base.RouteDecision.
  refresh_hint`: RESORT re-sorts the candidate set by (output load,
  port, vc) in C, STATIC skips, REROUTE re-enters the algorithm in
  Python — and a per-epoch decision cache with header-field delta
  replay keeps those Python entries cheap.

The per-cycle C scans iterate an *active set* — a compacted, sorted
array of nodes that hold flits, are mid-injection or have queued
sources — so idle fabric costs nothing per cycle and throughput scales
with occupancy, not mesh size.  While the known fault set is empty, a
build-time 54-entry clean table (:mod:`repro.routing.clean_table`)
replays the native algorithms' translation-invariant decisions
entirely in C, eliminating the decision-cache fill cliff.  Metrics
timeseries attach natively: the kernels maintain the active-router
gauge and per-link flit counters in arrays, drained into
:class:`repro.obs.metrics.MetricsTimeseries` at read time.

Use :func:`build_network` to construct a network honouring
``SimConfig.engine``; it transparently falls back to the object engine
(and documents why, in ``SimStats.summary()['engine_fallback']``) when
tracing is attached, a non-stock arbiter is requested, or no C
compiler is available.
"""

from __future__ import annotations

import os

import numpy as np

from .arbiter import Arbiter
from .config import SimConfig
from .flit import Flit, FlitKind
from .network import DeadlockError, Network
from .router import ACTIVE, IDLE, LOCAL, ROUTED, ROUTING, InputVC, OutputVC
from ._batched_kernel import (CT_CANDS, CT_KEYS, DIG_CAP, FIELD_ABSENT,
                              FIELD_NONE, MAXF, kernel_available,
                              load_kernel)
from ..routing.base import REFRESH_REROUTE, REFRESH_RESORT, RouteDecision

_STATE_NAMES = (IDLE, ROUTING, ROUTED, ACTIVE)
_MISSING = object()
_NO_PORT = -100      # o_port value meaning "no output assigned"


def _encode(v) -> int:
    """Header field value -> int32 mirror encoding (see the native
    descriptor contract in :class:`~repro.routing.base.
    RoutingAlgorithm.native_fields`)."""
    if v is _MISSING:
        return FIELD_ABSENT
    if v is None:
        return FIELD_NONE
    if v is True:
        return 1
    if v is False:
        return 0
    return int(v)


class _TailShim:
    """Stand-in for a tail flit when replaying C-side ejection events
    through :meth:`Network.eject` (which reads msg_id and is_tail)."""

    __slots__ = ("msg_id",)
    is_tail = True
    is_head = False

    def __init__(self, msg_id: int):
        self.msg_id = msg_id


class BatchedRouter:
    """Read-mostly facade over the array state for one node.

    Routing algorithms and the engine-agnostic fault machinery see the
    :class:`~repro.sim.router.Router` query surface (``output_load``,
    ``port_alive``, ``ports``, ``worms_using_port``, ``purge_message``,
    …) backed by the shared arrays; the per-cycle data-path phases never
    touch it."""

    __slots__ = ("network", "node", "topology", "ports", "n_vcs",
                 "_load_token", "_loads")

    def __init__(self, network: "BatchedNetwork", node: int):
        self.network = network
        self.node = node
        self.topology = network.topology
        self.ports = dict(network.topology.ports(node))
        self.n_vcs = network.algorithm.n_vcs
        self._load_token = -1
        self._loads: dict[int, int] = {}

    # -- views used by routing algorithms -----------------------------

    @property
    def n_flits(self) -> int:
        return int(self.network._r_nflits[self.node])

    def occupancy(self) -> int:
        return int(self.network._r_nflits[self.node])

    def port_alive(self, pid: int) -> bool:
        if pid == LOCAL:
            return True
        if pid not in self.ports:
            return False
        return self.network.faults.port_ok(self.node, pid)

    def alive_ports(self) -> list[int]:
        faults = self.network.faults
        return [pid for pid in self.ports
                if faults.port_ok(self.node, pid)]

    def neighbor(self, pid: int) -> int | None:
        p = self.ports.get(pid)
        return p.neighbor if p else None

    def credits(self, pid: int, vc: int) -> int:
        if pid == LOCAL:
            return 1 << 30
        net = self.network
        d = int(net._ov_down[net._portbase[self.node, pid + 1] + vc])
        return net.config.buffer_depth - int(net._buf_cnt[d]) \
            - int(net._inc_val[d])

    def output_free(self, pid: int, vc: int) -> bool:
        if not self.port_alive(pid):
            return False
        net = self.network
        ovg = int(net._portbase[self.node, pid + 1]) + vc
        if net._ov_owner[ovg] >= 0:
            return False
        return self.credits(pid, vc) > 0

    def queue_length(self, pid: int, vc: int) -> int:
        if pid == LOCAL:
            return 0
        net = self.network
        d = int(net._ov_down[net._portbase[self.node, pid + 1] + vc])
        return int(net._buf_cnt[d]) + int(net._inc_val[d])

    def output_load(self, pid: int) -> int:
        """Same metric, memo and token discipline as the object router:
        occupied downstream buffer slots plus worms holding the VCs."""
        if pid == LOCAL:
            return 0
        net = self.network
        token = net._load_token
        if self._load_token != token:
            self._load_token = token
            self._loads.clear()
        out = self._loads.get(pid)
        if out is None:
            base = int(net._portbase[self.node, pid + 1])
            buf_cnt = net._buf_cnt
            inc_val = net._inc_val
            ov_down = net._ov_down
            ov_owner = net._ov_owner
            out = 0
            for ovg in range(base, base + self.n_vcs):
                d = ov_down[ovg]
                out += int(buf_cnt[d]) + int(inc_val[d])
                if ov_owner[ovg] >= 0:
                    out += 1
            self._loads[pid] = out
        return out

    # -- fault handling -----------------------------------------------

    def worms_using_port(self, pid: int) -> set[int]:
        net = self.network
        lo = int(net._iv_off[self.node])
        hi = int(net._iv_off[self.node + 1])
        ivst = net._ivst
        o_port = net._o_port
        head_msg = net._head_msg
        out: set[int] = set()
        for g in range(lo, hi):          # gid order = object _ivs order
            if ivst[g] == 3 and o_port[g] == pid and head_msg[g] >= 0:
                out.add(int(head_msg[g]))
        return out

    def purge_message(self, msg_id: int) -> int:
        net = self.network
        dropped = int(net._lib.k_purge(net._cs, self.node, msg_id))
        net._load_token = int(net._counters[0])
        return dropped

    def finalize(self) -> None:  # pragma: no cover - interface symmetry
        pass


class BatchedNetwork(Network):
    """Drop-in :class:`Network` whose data path runs on arrays + C.

    Only the per-cycle data-path phases are replaced (``_advance`` and
    the helpers it drives); the fault machinery, retry queue, diagnosis
    flood and watchdog run unchanged against router facades.  Requires
    the stock round-robin arbiter and no tracer (metrics timeseries
    attach natively) — use :func:`build_network` for transparent
    fallback."""

    engine_name = "batched"

    def __init__(self, topology, algorithm, config: SimConfig | None = None,
                 arbiter="round_robin", tracer=None, metrics=None):
        kern = load_kernel()
        if kern is None:
            raise RuntimeError(
                "batched engine unavailable: no C compiler/cffi to build "
                "the kernel (or REPRO_BATCHED_NO_CC is set); use "
                "build_network() for transparent fallback")
        if tracer is not None and getattr(tracer, "enabled", True):
            raise ValueError("the batched engine does not emit trace "
                             "events; use build_network() to fall back "
                             "to the object engine when tracing")
        self._ffi, self._lib = kern
        if config is not None and config.policy != "deterministic":
            raise ValueError(
                f"the batched engine supports only the 'deterministic' "
                f"selection policy, not {config.policy!r}; use "
                f"build_network() for transparent fallback")
        super().__init__(topology, algorithm, config, arbiter=arbiter,
                         metrics=metrics)
        if type(self.arbiter) is not Arbiter:
            raise ValueError(
                f"the batched engine implements only the stock "
                f"round-robin arbiter, not {self.arbiter.name!r}; use "
                f"build_network() for transparent fallback")
        # the clean table probes route() through the algorithm's live
        # state, so it installs only after reset() ran (end of the base
        # constructor)
        self._install_clean_table()
        if metrics is not None:
            metrics.attach_link_source(self._drain_link_counts)

    # -- construction -------------------------------------------------

    def _make_routers(self) -> None:
        topo = self.topology
        ffi = self._ffi
        n_nodes = len(topo.nodes())
        n_vcs = self.algorithm.n_vcs
        cap = self.config.buffer_depth
        node_ports = [dict(topo.ports(n)) for n in topo.nodes()]
        max_pid = max((max(p) for p in node_ports if p), default=-1)
        npid = max_pid + 2                     # LOCAL slot + ports 0..max
        maxc = npid * n_vcs
        if maxc > 64:
            raise ValueError(
                f"batched engine limit: {npid - 1} ports x {n_vcs} VCs "
                f"exceeds the kernel's 64-candidate/request bound")

        iv_off = np.zeros(n_nodes + 1, dtype=np.int32)
        for node in range(n_nodes):
            iv_off[node + 1] = iv_off[node] \
                + (len(node_ports[node]) + 1) * n_vcs
        n_iv = int(iv_off[n_nodes])

        def i32(*shape):
            return np.zeros(shape, dtype=np.int32)

        def u8(*shape):
            return np.zeros(shape, dtype=np.uint8)

        self._node_ports = node_ports
        self._iv_off = iv_off
        self._iv_node = i32(n_iv)
        self._iv_port = i32(n_iv)
        self._iv_vc = i32(n_iv)
        self._portbase = np.full((n_nodes, npid), -1, dtype=np.int32)
        self._ov_down = np.full(n_iv, -1, dtype=np.int32)
        self._buf_msg = i32(n_iv, cap)
        self._buf_seq = i32(n_iv, cap)
        self._buf_head = i32(n_iv)
        self._buf_cnt = i32(n_iv)
        self._inc_msg = i32(n_iv)
        self._inc_seq = i32(n_iv)
        self._inc_val = u8(n_iv)
        self._ivst = u8(n_iv)
        self._ready = i32(n_iv)
        self._epoch_a = i32(n_iv)
        self._o_port = np.full(n_iv, _NO_PORT, dtype=np.int32)
        self._o_vc = np.full(n_iv, _NO_PORT, dtype=np.int32)
        self._deliver = u8(n_iv)
        self._stuckf = u8(n_iv)
        self._hint = u8(n_iv)
        self._ncand = i32(n_iv)
        self._cand_p = i32(n_iv, maxc)
        self._cand_v = i32(n_iv, maxc)
        self._head_msg = np.full(n_iv, -1, dtype=np.int32)
        self._ov_owner = np.full(n_iv, -1, dtype=np.int32)
        self._r_nflits = i32(n_nodes)
        self._node_ok = np.ones(n_nodes, dtype=np.uint8)
        self._alive = u8(n_nodes, npid)
        self._src_cur = np.full(n_nodes, -1, dtype=np.int32)
        self._src_pos = i32(n_nodes)
        #: per-node source queue length mirror (maintained by offer /
        #: retry release / fault clear), so the inject scan is a single
        #: vectorized mask instead of a per-node Python loop
        self._src_qlen = i32(n_nodes)
        self._rr_ptr = np.zeros(npid, dtype=np.int64)
        self._counters = np.zeros(4, dtype=np.int64)
        evcap = 2 * n_iv + 8
        self._ev_kind = i32(evcap)
        self._ev_node = i32(evcap)
        self._ev_msg = i32(evcap)
        self._ev_a = i32(evcap)
        self._ev_b = i32(evcap)
        self._req_g = i32(maxc)
        self._req_ov = i32(maxc)
        self._req_head = u8(maxc)
        self._need = i32(maxc)
        self._heads = i32(n_nodes)
        # per-message mirrors (grown together in _grow_msgs)
        self._msg_len = i32(4096)
        self._msg_dst = i32(4096)
        self._msg_plen = i32(4096)
        # pre-filled ABSENT so injecting a fresh (empty-fields) header
        # needs no per-field writes; message ids are never reused
        self._msg_f = np.full((4096, MAXF), FIELD_ABSENT, dtype=np.int32)

        # native decision cache: enabled when the algorithm declares a
        # native descriptor (mirrorable header fields); otherwise the
        # arrays are token-sized and the kernel never touches them
        nf = self.algorithm.native_fields
        native = nf is not None and len(nf) <= MAXF
        if native and not set(self.algorithm.cache_mutable_fields) \
                <= set(nf):
            raise ValueError(
                f"{self.algorithm.name}: native_fields must cover "
                f"cache_mutable_fields")
        self._native = native
        self._nf = tuple(nf) if native else ()
        self._ent_cap = (1 << 15) if native else 8
        ent_cap = self._ent_cap
        self._tab = np.full(ent_cap * 4, -1, dtype=np.int32)
        self._ek = i32(ent_cap, 10)
        self._ea = i32(ent_cap, MAXF)
        self._e_deliver = u8(ent_cap)
        self._e_steps = i32(ent_cap)
        self._e_hint = u8(ent_cap)
        self._e_ncand = i32(ent_cap)
        self._e_cp = i32(ent_cap, maxc)
        self._e_cv = i32(ent_cap, maxc)
        self._term_port = i32(8)
        self._dig = u8(DIG_CAP if native else 16)
        self._dstat = np.zeros(4, dtype=np.int64)

        # active set: the compacted, sorted node list the per-cycle C
        # scans iterate, plus the metrics mirrors (the object engine's
        # _active set and its per-link flit counters)
        self._act_list = i32(n_nodes)
        self._act_flag = u8(n_nodes)
        self._m_flag = u8(n_nodes)
        self._link_cnt = np.zeros(n_iv, dtype=np.int64)
        # clean-table state: node coordinates (filled when a table
        # installs) + the dense 54-entry decision table
        self._node_x = i32(n_nodes)
        self._node_y = i32(n_nodes)
        self._ct_valid = u8(CT_KEYS)
        self._ct_deliver = u8(CT_KEYS)
        self._ct_hint = u8(CT_KEYS)
        self._ct_steps = i32(CT_KEYS)
        self._ct_ncand = i32(CT_KEYS)
        self._ct_vn_after = np.full(CT_KEYS, FIELD_ABSENT, dtype=np.int32)
        self._ct_cp = i32(CT_KEYS, CT_CANDS)
        self._ct_cv = i32(CT_KEYS, CT_CANDS)

        g = 0
        for node in range(n_nodes):
            ports = node_ports[node]
            self._alive[node, 0] = 1           # LOCAL is always alive
            for pid in [LOCAL] + sorted(ports):
                self._portbase[node, pid + 1] = g
                if pid != LOCAL:
                    self._alive[node, pid + 1] = 1
                for vc in range(n_vcs):
                    self._iv_node[g] = node
                    self._iv_port[g] = pid
                    self._iv_vc[g] = vc
                    g += 1
        assert g == n_iv
        for node in range(n_nodes):
            for pid, port in node_ports[node].items():
                base = int(self._portbase[node, pid + 1])
                down_base = int(self._portbase[port.neighbor,
                                               port.neighbor_port + 1])
                for vc in range(n_vcs):
                    self._ov_down[base + vc] = down_base + vc

        cs = ffi.new("BState *")
        cs.n_nodes = n_nodes
        cs.n_iv = n_iv
        cs.cap = cap
        cs.n_vcs = n_vcs
        cs.max_pid = max_pid
        cs.maxc = maxc
        cs.inj_vc = self.config.injection_vc
        cs.n_native = len(self._nf)
        cs.cps = self.config.cycles_per_step
        cs.hop_budget = int(self.config.hop_budget or 0)
        lim = self.algorithm.native_livelock_limit(topo) if native \
            else None
        cs.limit = int(lim) if lim is not None else (2 ** 31 - 1)
        cs.dig_on = 0                  # refreshed each _route_phase
        # head-departure events are only replayed in Python when the
        # algorithm's on_depart must run there or paths are traced
        cs.trace_on = 0 if (native and not self.config.trace_paths) else 1
        rule = self.algorithm.native_term_rule if native else None
        if rule is not None:
            flag_f, vn_f, mapping = rule
            cs.term_on = 1
            cs.term_f = self._nf.index(flag_f)
            cs.vn_f = self._nf.index(vn_f)
            items = mapping.items() if hasattr(mapping, "items") \
                else enumerate(mapping)
            for vn, port in items:
                if 0 <= vn < 8:
                    self._term_port[vn] = port
        else:
            cs.term_on = 0
            cs.term_f = 0
            cs.vn_f = 0
        cs.key_port = 1 if self.algorithm.native_key_uses_port else 0
        cs.key_vc = 1 if self.algorithm.native_key_uses_vc else 0
        cs.tab_mask = self._tab.shape[0] - 1
        cs.n_ent = 0
        cs.ent_cap = ent_cap
        cs.dig_used = 0
        cs.dig_cap = self._dig.shape[0]
        cs.n_act = 0
        cs.scan_ai = 0
        cs.m_on = 1 if self.metrics is not None else 0
        # the object engine prunes its _active set only under active
        # scheduling; mirror that so the gauge matches bit-for-bit
        cs.m_prune = 1 if self.config.active_scheduling else 0
        cs.m_count = 0
        cs.ct_on = 0
        cs.ct_vnf = -1
        cs.ct_termf = -1
        self._cs = cs
        self._bufs: list = []

        for name in ("iv_off", "iv_node", "iv_port", "iv_vc", "portbase",
                     "ov_down", "buf_msg", "buf_seq", "buf_head",
                     "buf_cnt", "inc_msg", "inc_seq", "ready", "epoch",
                     "o_port", "o_vc", "ncand", "cand_p", "cand_v",
                     "head_msg", "ov_owner", "r_nflits", "src_cur",
                     "src_pos", "src_qlen",
                     "ev_kind", "ev_node", "ev_msg", "ev_a",
                     "ev_b", "req_g", "req_ov", "msg_len", "msg_dst",
                     "msg_plen", "msg_f", "term_port", "tab", "ek",
                     "ea", "e_steps", "e_ncand", "e_cp", "e_cv",
                     "act_list", "node_x", "node_y", "ct_steps",
                     "ct_ncand", "ct_vn_after", "ct_cp", "ct_cv"):
            attr = {"epoch": "_epoch_a"}.get(name, "_" + name)
            self._bind(name, getattr(self, attr), "int32_t *")
        self._bind("st", self._ivst, "uint8_t *")
        for name in ("inc_val", "deliver", "stuckf", "hint", "node_ok",
                     "alive", "req_head", "e_deliver", "e_hint", "dig",
                     "act_flag", "m_flag", "ct_valid", "ct_deliver",
                     "ct_hint"):
            self._bind(name, getattr(self, "_" + name), "uint8_t *")
        self._bind("rr_ptr", self._rr_ptr, "int64_t *")
        self._bind("counters", self._counters, "int64_t *")
        self._bind("dstat", self._dstat, "int64_t *")
        self._bind("link_cnt", self._link_cnt, "int64_t *")
        self._need_ptr = ffi.cast("int32_t *", ffi.from_buffer(self._need))
        self._heads_ptr = ffi.cast("int32_t *",
                                   ffi.from_buffer(self._heads))
        self._bufs.append(self._need_ptr)
        self._bufs.append(self._heads_ptr)

        self._fault_version = self.faults.version
        self._dec_cache: dict = {}
        self._dec_epoch = -1
        self._c_epoch = None           # native cache's route_epoch
        self._ct_ready = False         # set by _install_clean_table
        self.routers = [BatchedRouter(self, n) for n in topo.nodes()]

    def _bind(self, field: str, arr, ctype: str) -> None:
        buf = self._ffi.from_buffer(arr)
        self._bufs.append(buf)
        setattr(self._cs, field, self._ffi.cast(ctype, buf))

    def _grow_msgs(self, mid: int) -> None:
        n = max(mid + 1, 2 * self._msg_len.shape[0])
        for name in ("msg_len", "msg_dst", "msg_plen", "msg_f"):
            old = getattr(self, "_" + name)
            fill = FIELD_ABSENT if name == "msg_f" else 0
            new = np.full((n,) + old.shape[1:], fill, dtype=np.int32)
            new[:old.shape[0]] = old
            setattr(self, "_" + name, new)
            self._bind(name, new, "int32_t *")

    def _grow_cache(self) -> None:
        """Double the native cache's entry arrays (and rebuild the hash
        table at the matching 4x slot count)."""
        cap = self._ent_cap * 2
        for name, ctype in (("ek", "int32_t *"), ("ea", "int32_t *"),
                            ("e_deliver", "uint8_t *"),
                            ("e_steps", "int32_t *"),
                            ("e_hint", "uint8_t *"),
                            ("e_ncand", "int32_t *"),
                            ("e_cp", "int32_t *"), ("e_cv", "int32_t *")):
            old = getattr(self, "_" + name)
            new = np.zeros((cap,) + old.shape[1:], dtype=old.dtype)
            new[:old.shape[0]] = old
            setattr(self, "_" + name, new)
            self._bind(name, new, ctype)
        self._tab = np.full(cap * 4, -1, dtype=np.int32)
        self._bind("tab", self._tab, "int32_t *")
        self._ent_cap = cap
        cs = self._cs
        cs.ent_cap = cap
        cs.tab_mask = cap * 4 - 1
        self._lib.k_rehash(cs)

    def _install_clean_table(self) -> None:
        """Build (or load from the code-version-keyed cache) the clean
        decision table and hand it to the kernel fully populated.
        ``ct_on`` itself is (re)evaluated per route epoch in
        ``_route_phase`` — lookups live only while the known fault set
        is empty."""
        if not self._native or os.environ.get("REPRO_BATCHED_NO_TABLE"):
            return
        from ..routing.clean_table import load_or_build
        table = load_or_build(self.algorithm, self.topology)
        if table is None or not table.n_valid():
            return
        topo = self.topology
        node_x, node_y = self._node_x, self._node_y
        for node in topo.nodes():
            x, y = topo.coords(node)
            node_x[node] = x
            node_y[node] = y
        self._ct_valid[:] = table.valid
        self._ct_deliver[:] = table.deliver
        self._ct_hint[:] = table.hint
        self._ct_steps[:] = table.steps
        self._ct_ncand[:] = table.ncand
        self._ct_vn_after[:] = table.vn_after
        shape = (CT_KEYS, CT_CANDS)
        self._ct_cp[:] = np.asarray(table.cp, dtype=np.int32) \
            .reshape(shape)
        self._ct_cv[:] = np.asarray(table.cv, dtype=np.int32) \
            .reshape(shape)
        cs = self._cs
        cs.ct_vnf = self._nf.index("vn")
        cs.ct_termf = self._nf.index("term") if "term" in self._nf else -1
        self._ct_ready = True

    # -- per-message mirrors ------------------------------------------

    def _init_mirrors(self, hdr) -> None:
        """Seed the per-message mirror arrays when a worm starts
        injecting (the only way a message enters the data path)."""
        mid = hdr.msg_id
        if mid >= self._msg_len.shape[0]:
            self._grow_msgs(mid)
        f = hdr.fields
        self._msg_len[mid] = hdr.length
        self._msg_dst[mid] = hdr.dst
        self._msg_plen[mid] = f.get("path_len", 0)
        if self._native and f:
            # mirrors are pre-filled ABSENT, so only headers that carry
            # fields (retries, tests) need per-field encoding
            mf = self._msg_f
            for i, name in enumerate(self._nf):
                mf[mid, i] = _encode(f.get(name, _MISSING))

    def _sync_fields(self, mid: int):
        """Header fields <- mirrors.  The mirrors are authoritative
        while a message is in flight under a native algorithm (C
        applies cached field writes and departure effects); call this
        before any Python code reads the header.  Returns the header."""
        hdr = self.messages[mid].header
        f = hdr.fields
        for name, v in zip(self._nf, self._msg_f[mid].tolist()):
            if v == FIELD_ABSENT:
                f.pop(name, None)
            elif v == FIELD_NONE:
                f[name] = None
            else:
                f[name] = v
        plen = int(self._msg_plen[mid])
        if plen or "path_len" in f:
            f["path_len"] = plen
        return hdr

    def _sync_mirrors(self, mid: int) -> None:
        """Mirrors <- header fields, after Python ran the algorithm
        (``route`` never touches path_len, so only the native fields
        move)."""
        f = self.messages[mid].header.fields
        mf = self._msg_f
        for i, name in enumerate(self._nf):
            mf[mid, i] = _encode(f.get(name, _MISSING))

    def _sync_faults(self) -> None:
        faults = self.faults
        self._fault_version = faults.version
        node_ok = faults.node_ok
        port_ok = faults.port_ok
        ok = self._node_ok
        alive = self._alive
        for node, ports in enumerate(self._node_ports):
            ok[node] = 1 if node_ok(node) else 0
            for pid in ports:
                alive[node, pid + 1] = 1 if port_ok(node, pid) else 0

    # -- the cycle data path ------------------------------------------

    def _advance(self, with_traffic: bool) -> int:
        if self._fault_version != self.faults.version:
            self._sync_faults()
        self._lib.k_flush(self._cs)
        self._inject_phase()
        if with_traffic and self.traffic is not None \
                and not self._injection_paused:
            for src, dst, length in self.traffic.tick(self.cycle):
                self.offer(src, dst, length)
        self._route_phase()
        return self._alloc_phase()

    def _inject_phase(self) -> None:
        # per-node injection is independent and ascending-order, so the
        # worm-start scan runs in C over the queue-length / worm-in-
        # progress / node-liveness mirrors and Python only pops the few
        # nodes that actually start; the in-flight flit pushes happen
        # entirely in k_inject.  A dead node can never match (its queue
        # mirror is zeroed when the fault applies), so this is
        # behaviour-identical to the object engine's loop.
        lib, cs, buf_ptr = self._lib, self._cs, self._heads_ptr
        if not self._injection_paused:
            n = int(lib.k_start_scan(cs, buf_ptr))
            if n:
                src_cur = self._src_cur
                sources = self.sources
                for node in self._heads[:n].tolist():
                    hdr = sources[node].queue.popleft().header
                    self._init_mirrors(hdr)
                    src_cur[node] = hdr.msg_id
        n = int(lib.k_inject(cs, buf_ptr))
        if n:
            cycle = self.cycle
            messages = self.messages
            for mid in self._heads[:n].tolist():
                messages[mid].injected = cycle

    def _route_phase(self) -> None:
        lib, cs = self._lib, self._cs
        need_ptr = self._need_ptr
        cycle = self.cycle
        epoch = self.route_epoch
        adaptive = 1 if self.algorithm.adaptive else 0
        if self._native:
            if self._c_epoch != epoch:
                # fault knowledge changed: every cached decision is void
                lib.k_cache_clear(cs)
                self._c_epoch = epoch
                # the clean table is proven for the *empty* known-fault
                # set only; any known fault turns it off until an epoch
                # without faults returns
                cs.ct_on = 1 if (self._ct_ready and
                                 self.known_faults.n_faults() == 0) else 0
            cs.dig_on = 1 if self.stats.digest is not None else 0
        start = 0                        # active-list index, not a gid
        while True:
            n = lib.k_route_scan(cs, start, cycle, epoch, adaptive,
                                 need_ptr)
            if n == 0:
                break
            if n < 0:                    # digest buffer nearly full
                self._flush_digest()
                start = -n - 1
                continue
            self._route_gids(n, cycle, epoch)
            start = int(cs.scan_ai) + 1
        self._flush_native_stats()

    def _flush_digest(self) -> None:
        cs = self._cs
        used = int(cs.dig_used)
        if used:
            self.stats.digest.update_raw(self._dig[:used].tobytes(),
                                         int(self._dstat[3]))
            self._dstat[3] = 0
            cs.dig_used = 0

    def _flush_native_stats(self) -> None:
        ds = self._dstat
        if ds[0]:
            stats = self.stats
            stats.decisions += int(ds[0])
            stats.decision_steps += int(ds[1])
            m = int(ds[2])
            if m > stats.max_decision_steps:
                stats.max_decision_steps = m
            ds[0] = 0
            ds[1] = 0
            ds[2] = 0
        if self._cs.dig_used:
            self._flush_digest()

    def _route_gids(self, n: int, cycle: int, epoch: int) -> int:
        """Mirror of ``Router.route_stage`` for the input VCs the kernel
        flagged (all on one node); returns that node."""
        gids = self._need[:n].tolist()
        ivst = self._ivst
        buf_msg = self._buf_msg
        buf_seq = self._buf_seq
        buf_head = self._buf_head
        head_msg = self._head_msg
        iv_port = self._iv_port
        iv_vc = self._iv_vc
        ready = self._ready
        epoch_a = self._epoch_a
        stuckf = self._stuckf
        hint_a = self._hint
        msg_f = self._msg_f
        messages = self.messages
        stats = self.stats
        digest = stats.digest
        algo = self.algorithm
        adaptive = algo.adaptive
        native = self._native
        lib, cs = self._lib, self._cs
        cps = self.config.cycles_per_step
        hop_budget = self.config.hop_budget
        node = int(self._iv_node[gids[0]])
        stuck: list[int] = []
        for g in gids:
            st = ivst[g]
            if st == 0:                                    # IDLE
                hd = buf_head[g]
                mid = int(buf_msg[g, hd])
                if buf_seq[g, hd] != 0:
                    raise RuntimeError(
                        f"node {node}: body flit of message {mid} at "
                        f"the front of an idle VC")
                if native:
                    if hop_budget \
                            and int(self._msg_plen[mid]) > hop_budget:
                        stuck.append(mid)
                        continue
                    if lib.k_try_hit(cs, g, cycle, epoch):
                        continue       # hit applied in C, never stuck
                    header = self._sync_fields(mid)
                    bf = msg_f[mid]
                    b0, b1, b2, b3, b4 = (int(bf[0]), int(bf[1]),
                                          int(bf[2]), int(bf[3]),
                                          int(bf[4]))
                    # a C-key miss can still hit the (coarser-keyed)
                    # Python replay cache — much cheaper than route()
                    dec = self._route_cached(node, header,
                                             int(iv_port[g]),
                                             int(iv_vc[g]))
                    stats.count_decision(dec.steps)
                    self._write_decision(g, dec, mid, cycle, cps, epoch)
                    self._sync_mirrors(mid)
                    if cs.n_ent >= self._ent_cap - 1:
                        self._grow_cache()
                    # digest line (in order, via the C byte stream) +
                    # cache entry keyed by the before-values b0..b4
                    lib.k_note(
                        cs, g, dec.steps, b0, b1, b2, b3, b4,
                        0 if dec.refresh_hint == REFRESH_REROUTE else 1,
                        1)
                else:
                    header = messages[mid].header
                    if hop_budget and header.path_len > hop_budget:
                        stuck.append(mid)
                        continue
                    dec = self._route_cached(node, header,
                                             int(iv_port[g]),
                                             int(iv_vc[g]))
                    stats.count_decision(dec.steps)
                    if digest is not None:
                        digest.update(node, mid, dec)
                    self._write_decision(g, dec, mid, cycle, cps, epoch)
                st = 1
            if st == 1:                                    # ROUTING
                if cycle >= ready[g]:
                    ivst[g] = 2
            elif st == 2:                                  # ROUTED
                # refresh; no count, no digest — exactly the object
                # engine's semantics (which re-routes blocked adaptive
                # heads every cycle; the hints declare the equivalent
                # cheap refresh)
                if native:
                    if epoch_a[g] != epoch \
                            or (adaptive and hint_a[g] == 0):
                        mid = int(head_msg[g])
                        header = self._sync_fields(mid)
                        bf = msg_f[mid]
                        b0, b1, b2, b3, b4 = (int(bf[0]), int(bf[1]),
                                              int(bf[2]), int(bf[3]),
                                              int(bf[4]))
                        dec = self._route_cached(node, header,
                                                 int(iv_port[g]),
                                                 int(iv_vc[g]))
                        self._write_refresh(g, dec, epoch)
                        self._sync_mirrors(mid)
                        if dec.refresh_hint != REFRESH_REROUTE:
                            if cs.n_ent >= self._ent_cap - 1:
                                self._grow_cache()
                            lib.k_note(cs, g, dec.steps, b0, b1, b2,
                                       b3, b4, 1, 0)
                    elif adaptive and hint_a[g] == 1:
                        lib.k_resort(cs, g)
                elif epoch_a[g] != epoch or adaptive:
                    header = messages[int(head_msg[g])].header
                    dec = self._route_cached(node, header,
                                             int(iv_port[g]),
                                             int(iv_vc[g]))
                    self._write_refresh(g, dec, epoch)
            if ivst[g] == 2 and stuckf[g]:
                stuck.append(int(head_msg[g]))
        for mid in stuck:
            self.message_stuck(mid)
        return node

    def _write_decision(self, g: int, dec: RouteDecision, mid: int,
                        cycle: int, cps: int, epoch: int) -> None:
        self._ivst[g] = 1
        self._head_msg[g] = mid
        self._deliver[g] = 1 if dec.deliver else 0
        self._stuckf[g] = 1 if dec.stuck else 0
        self._hint[g] = dec.refresh_hint
        cands = dec.candidates
        self._ncand[g] = len(cands)
        cp = self._cand_p
        cv = self._cand_v
        for i, (p, v) in enumerate(cands):
            cp[g, i] = p
            cv[g, i] = v
        self._ready[g] = cycle + max(1, dec.steps * cps) - 1
        self._epoch_a[g] = epoch

    def _write_refresh(self, g: int, dec: RouteDecision,
                       epoch: int) -> None:
        self._deliver[g] = 1 if dec.deliver else 0
        self._stuckf[g] = 1 if dec.stuck else 0
        self._hint[g] = dec.refresh_hint
        cands = dec.candidates
        self._ncand[g] = len(cands)
        cp = self._cand_p
        cv = self._cand_v
        for i, (p, v) in enumerate(cands):
            cp[g, i] = p
            cv[g, i] = v
        self._epoch_a[g] = epoch

    def _route_cached(self, node: int, header, in_port: int,
                      in_vc: int) -> RouteDecision:
        """``algo.route`` with a per-epoch memo over
        ``route_cache_key`` + the before-values of the algorithm's
        mutable header fields; replays recorded field writes and
        re-sorts RESORT candidate sets by the current loads, so the
        decision (and hence the digest) is bit-identical to a fresh
        call."""
        algo = self.algorithm
        key = algo.route_cache_key(node, header, in_port, in_vc)
        router = self.routers[node]
        if key is None:
            return algo.route(router, header, in_port, in_vc)
        if self._dec_epoch != self.route_epoch:
            self._dec_cache.clear()
            self._dec_epoch = self.route_epoch
        fields = header.fields
        mutable = algo.cache_mutable_fields
        before = tuple(fields.get(f, _MISSING) for f in mutable)
        full_key = (key, before)
        ent = self._dec_cache.get(full_key)
        if ent is not None:
            deliver, stuck, steps, cands, hint, delta = ent
            for f, v in delta:
                fields[f] = v
            lst = list(cands)
            if hint == REFRESH_RESORT and len(lst) > 1:
                load = router.output_load
                lst.sort(key=lambda pv: (load(pv[0]), pv[0], pv[1]))
            return RouteDecision(deliver=deliver, candidates=lst,
                                 steps=steps, stuck=stuck,
                                 refresh_hint=hint)
        dec = algo.route(router, header, in_port, in_vc)
        if dec.refresh_hint != REFRESH_REROUTE:
            after = tuple(fields.get(f, _MISSING) for f in mutable)
            # only field *writes* are replayable; a decision that
            # deleted a field (only REROUTE branches do today) is not
            # cached rather than replayed wrongly
            if not any(b is not _MISSING and a is _MISSING
                       for a, b in zip(after, before)):
                delta = tuple((f, a) for f, a, b
                              in zip(mutable, after, before)
                              if a is not b and a != b)
                self._dec_cache[full_key] = (
                    dec.deliver, dec.stuck, dec.steps,
                    tuple(dec.candidates), dec.refresh_hint, delta)
        return dec

    def _alloc_phase(self) -> int:
        moved = int(self._lib.k_alloc(self._cs))
        load_token, hops, nont, nev = self._counters.tolist()
        self._load_token = load_token
        if nev:
            ev_kind = self._ev_kind[:nev].tolist()
            ev_node = self._ev_node[:nev].tolist()
            ev_msg = self._ev_msg[:nev].tolist()
            ev_a = self._ev_a
            ev_b = self._ev_b
            messages = self.messages
            algo = self.algorithm
            routers = self.routers
            native = self._native
            trace = self.config.trace_paths
            cycle = self.cycle
            # replay in exact grant order: head departures run the
            # algorithm's header bookkeeping (already applied in C for
            # native algorithms — only the path trace remains), tail
            # arrivals at LOCAL go through the normal ejection path
            # (delivery accounting, retries, recovery timing)
            for i in range(nev):
                mid = ev_msg[i]
                node = ev_node[i]
                if ev_kind[i] == 0:
                    if native:
                        if trace:
                            messages[mid].header.fields.setdefault(
                                "trace", []).append(node)
                        continue
                    header = messages[mid].header
                    algo.on_depart(routers[node], header,
                                   int(ev_a[i]), int(ev_b[i]))
                    if trace:
                        header.fields.setdefault("trace",
                                                 []).append(node)
                else:
                    if native:
                        # delivery accounting reads hop count and the
                        # misrouted mark from the header
                        self._sync_fields(mid)
                    self.eject(node, _TailShim(mid), cycle)
        stats = self.stats
        if hops:
            stats.flit_hops += hops
        # nont: non-tail flits ejected locally
        if nont:
            stats.flits_delivered += nont
            if stats.now >= stats.warmup:
                stats.flits_delivered_measured += nont
        return moved

    # -- queries / fault machinery over the arrays --------------------

    def _flits_in_flight(self) -> int:
        return int(self._r_nflits.sum())

    def _metrics_active_routers(self) -> int:
        # C-side mirror of the object engine's _active set (see
        # act_compact / k_inject / do_grant in the kernel)
        return int(self._cs.m_count)

    def _drain_link_counts(self):
        """((src, dst), count) deltas for ``MetricsTimeseries.
        flush_links``; zeroes what it hands over, so repeated
        ``to_dict()`` reads stay exact.  Two output VCs on one port
        fold into the same directed pair downstream."""
        cnt = self._link_cnt
        out: list = []
        iv_node = self._iv_node
        ov_down = self._ov_down
        for ovg in np.flatnonzero(cnt).tolist():
            out.append(((int(iv_node[ovg]), int(iv_node[ov_down[ovg]])),
                        int(cnt[ovg])))
            cnt[ovg] = 0
        return out

    def _pending_sources(self) -> int:
        n = sum(len(s.queue) for s in self.sources)
        cur = self._src_cur
        for node in np.flatnonzero(cur >= 0):
            mid = int(cur[node])
            n += self.messages[mid].header.length \
                - int(self._src_pos[node])
        return n

    def _drain_for_fault(self) -> None:
        self._injection_paused = True
        guard = 0
        while self._flits_in_flight() or bool((self._src_cur >= 0).any()):
            self._step_drain()
            guard += 1
            if guard > self.config.deadlock_threshold * 10:
                raise DeadlockError("network failed to quiesce for a fault")
        self._injection_paused = False

    def offer(self, src, dst, length, **fields):
        msg = super().offer(src, dst, length, **fields)
        if msg is not None:
            self._src_qlen[src] += 1
            # a queued source makes the node active (the C scans only
            # visit the active list); compacted away once it drains
            self._lib.k_activate(self._cs, src)
        return msg

    def _release_retry(self, src, dst, length, carry) -> None:
        before = len(self.sources[src].queue)
        super()._release_retry(src, dst, length, carry)
        if len(self.sources[src].queue) != before:
            self._src_qlen[src] += 1
            self._lib.k_activate(self._cs, src)

    def _apply_fault_now(self, event) -> None:
        super()._apply_fault_now(event)
        if event.kind == "node":
            node = int(event.target)
            self._src_cur[node] = -1
            self._src_qlen[node] = 0

    def _rip_up_worms(self, event) -> None:
        # identical victim *insertion order* to the object engine, so
        # the set iterates (and messages drop) in the same sequence —
        # drop order feeds the retry heap's tie-breaking sequence
        victims: set[int] = set()
        if event.kind == "link":
            a, b = event.target
            for node, pid_ok in ((a, b), (b, a)):
                router = self.routers[node]
                for pid, port in router.ports.items():
                    if port.neighbor == pid_ok:
                        victims |= router.worms_using_port(pid)
        else:
            node = int(event.target)
            lo = int(self._iv_off[node])
            hi = int(self._iv_off[node + 1])
            cap = self.config.buffer_depth
            for g in range(lo, hi):
                hd = int(self._buf_head[g])
                for i in range(int(self._buf_cnt[g])):
                    victims.add(int(self._buf_msg[g, (hd + i) % cap]))
                if self._inc_val[g]:
                    victims.add(int(self._inc_msg[g]))
            for r in self.routers:
                for pid, port in r.ports.items():
                    if port.neighbor == node:
                        victims |= r.worms_using_port(pid)
        for msg_id in victims:
            self.drop_message(msg_id, event=event)

    def message_stuck(self, msg_id: int) -> None:
        if self._native and msg_id in self.messages:
            self._sync_fields(msg_id)      # fields faithful on exit
        self._lib.k_purge_all(self._cs, msg_id)
        self._load_token = int(self._counters[0])
        msg = self.messages.get(msg_id)
        if msg is not None:
            src = msg.header.src
            if int(self._src_cur[src]) == msg_id:
                self._src_cur[src] = -1
            msg.dropped = True
            msg.header.fields["stuck"] = True
        self.stats.messages_stuck += 1
        if msg is not None and self.config.retry_limit \
                and not msg.delivered:
            self._schedule_retry(msg)

    def drop_message(self, msg_id: int, event=None) -> None:
        if self._native and msg_id in self.messages:
            self._sync_fields(msg_id)      # fields faithful on exit
        self._lib.k_purge_all(self._cs, msg_id)
        self._load_token = int(self._counters[0])
        msg = self.messages.get(msg_id)
        if msg is None:  # pragma: no cover
            return
        src = msg.header.src
        if int(self._src_cur[src]) == msg_id:
            self._src_cur[src] = -1
        msg.dropped = True
        self.stats.count_dropped()
        if msg.delivered:
            return
        if self.config.retry_limit:
            self._schedule_retry(msg, event=event)
        elif self.config.retransmit_dropped:
            self.offer(msg.header.src, msg.header.dst, msg.header.length,
                       retry_of=msg.header.msg_id)

    # -- stall diagnosis ----------------------------------------------

    def _diagnose_stall(self):
        from .watchdog import diagnose_stall
        return diagnose_stall(self._materialize())

    def _make_flit(self, mid: int, seq: int) -> Flit:
        msg = self.messages.get(mid)
        length = msg.header.length if msg else int(self._msg_len[mid])
        if length == 1:
            kind = FlitKind.HEAD_TAIL
        elif seq == 0:
            kind = FlitKind.HEAD
        elif seq == length - 1:
            kind = FlitKind.TAIL
        else:
            kind = FlitKind.BODY
        header = msg.header if (msg is not None and seq == 0) else None
        return Flit(kind, mid, seq, header=header)

    def _materialize(self):
        """Reconstruct object-engine routers (real InputVC/OutputVC/
        Flit instances) from the arrays for the watchdog's structural
        walk.  Only runs on a diagnosed stall — never on the hot
        path."""
        from types import SimpleNamespace
        cap = self.config.buffer_depth
        if self._native:
            # make every in-flight header faithful before the
            # structural walk reads them
            mids: set[int] = set()
            for g in range(int(self._iv_off[-1])):
                hd = int(self._buf_head[g])
                for i in range(int(self._buf_cnt[g])):
                    mids.add(int(self._buf_msg[g, (hd + i) % cap]))
                if self._inc_val[g]:
                    mids.add(int(self._inc_msg[g]))
                if self._head_msg[g] >= 0:
                    mids.add(int(self._head_msg[g]))
            for mid in mids:
                if mid in self.messages:
                    self._sync_fields(mid)
        shims = []
        for node in self.topology.nodes():
            lo = int(self._iv_off[node])
            hi = int(self._iv_off[node + 1])
            input_vcs: dict[int, list[InputVC]] = {}
            output_vcs: dict[int, list[OutputVC]] = {}
            ivs = []
            for g in range(lo, hi):
                pid = int(self._iv_port[g])
                vc = int(self._iv_vc[g])
                iv = InputVC(pid, vc, cap)
                hd = int(self._buf_head[g])
                for i in range(int(self._buf_cnt[g])):
                    idx = (hd + i) % cap
                    iv.buffer.append(
                        self._make_flit(int(self._buf_msg[g, idx]),
                                        int(self._buf_seq[g, idx])))
                if self._inc_val[g]:
                    iv.incoming.append(
                        self._make_flit(int(self._inc_msg[g]),
                                        int(self._inc_seq[g])))
                st = int(self._ivst[g])
                iv.state = _STATE_NAMES[st]
                mid = int(self._head_msg[g])
                if st != 0 and mid >= 0:
                    msg = self.messages.get(mid)
                    iv.header = msg.header if msg else None
                    iv.decision = RouteDecision(
                        deliver=bool(self._deliver[g]),
                        candidates=[(int(self._cand_p[g, i]),
                                     int(self._cand_v[g, i]))
                                    for i in range(int(self._ncand[g]))],
                        stuck=bool(self._stuckf[g]),
                        refresh_hint=int(self._hint[g]))
                if st == 3:
                    iv.out_port = int(self._o_port[g])
                    iv.out_vc = int(self._o_vc[g])
                input_vcs.setdefault(pid, []).append(iv)
                ivs.append(iv)
                ov = OutputVC(pid, vc)
                og = int(self._ov_owner[g])
                if og >= 0:
                    ov.owner = (int(self._iv_port[og]),
                                int(self._iv_vc[og]))
                output_vcs.setdefault(pid, []).append(ov)
            shims.append(SimpleNamespace(
                node=node, n_flits=int(self._r_nflits[node]),
                input_vcs=input_vcs, output_vcs=output_vcs,
                _ivs=tuple(ivs), ports=self._node_ports[node],
                port_alive=self.routers[node].port_alive, _down={}))
        for node, shim in enumerate(shims):
            shim._down = {
                pid: (shims[port.neighbor],
                      shims[port.neighbor].input_vcs[port.neighbor_port])
                for pid, port in self._node_ports[node].items()}
        return SimpleNamespace(
            routers=shims, cycle=self.cycle,
            _last_progress=self._last_progress,
            _flits_in_flight=self._flits_in_flight,
            _pending_detections=self._pending_detections,
            diagnosis=self.diagnosis)


def batched_fallback_reason(arbiter="round_robin", tracer=None,
                            metrics=None, config=None) -> str | None:
    """Why ``engine="batched"`` would fall back to the object engine
    for this configuration — None when the batched engine applies.

    The fallback rules (documented in docs/PERFORMANCE.md): the batched
    engine emits no trace events, implements only the stock round-robin
    arbiter, and needs a C compiler (or a previously cached kernel
    build) on first use.  Metrics timeseries no longer force a
    fallback: the kernels keep the per-link counters and the
    active-router gauge in arrays and drain them into the timeseries
    (the ``metrics`` parameter is kept for call-site compatibility)."""
    if tracer is not None and getattr(tracer, "enabled", True):
        return "tracing is enabled (the batched data path emits no events)"
    if config is not None and config.backup_routes:
        return ("backup_routes is enabled (fast-reroute healing walks "
                "per-flit worm state the batched arrays do not model)")
    if config is not None and config.policy != "deterministic":
        return (f"selection policy {config.policy!r} is not "
                f"'deterministic' (the batched decision cache replays "
                f"candidate orderings, so policy re-ordering would "
                f"silently diverge)")
    if isinstance(arbiter, Arbiter):
        if type(arbiter) is not Arbiter:
            return (f"arbiter {arbiter.name!r} is not the stock "
                    f"round-robin")
    elif arbiter != "round_robin":
        return f"arbiter {arbiter!r} is not the stock round-robin"
    if not kernel_available():
        return "no C compiler is available to build the batched kernel"
    return None


def build_network(topology, algorithm, config: SimConfig | None = None,
                  arbiter="round_robin", tracer=None,
                  metrics=None) -> Network:
    """Construct the network engine ``config.engine`` selects.

    ``engine="batched"`` transparently falls back to the (bit-
    identical) object engine when :func:`batched_fallback_reason` says
    so; inspect the returned network's ``engine_name`` to see which
    engine actually runs.  A fallback also records its reason in
    ``stats.engine_fallback`` (surfaced as the ``engine_fallback`` key
    of ``SimStats.summary()``), so runners and campaigns report *why*
    without holding the network object."""
    cfg = config or SimConfig()
    if cfg.engine == "batched":
        reason = batched_fallback_reason(arbiter, tracer, metrics, cfg)
        if reason is None:
            return BatchedNetwork(topology, algorithm, cfg,
                                  arbiter=arbiter, metrics=metrics)
        net = Network(topology, algorithm, cfg, arbiter=arbiter,
                      tracer=tracer, metrics=metrics)
        net.stats.engine_fallback = reason
        return net
    return Network(topology, algorithm, cfg, arbiter=arbiter,
                   tracer=tracer, metrics=metrics)

"""Fault model: fail-stop links and nodes, injection schedules.

Paper Section 2.1 assumptions:

  i)  a link is either faulty-and-known or works; links are
      bidirectional and both directions fail together;
  ii) a node either works or fails, and adjacent nodes learn of it;
  iii) no messages are sent to disconnected or faulty destinations;
  iv) no message is affected during the diagnosis phase after a failure
      (the network quiesces until all concerned nodes updated their
      fault state);
  v)  multiple faults are allowed.

``FaultState`` is the ground truth the routers' distributed state
machines approximate.  ``FaultSchedule`` injects faults at given cycles;
the network honours assumption iv by running each routing algorithm's
state recomputation atomically at the fault instant (mode
``"quiesce"``), and offers a ``"harsh"`` mode that instead kills worms
caught on a dying link — the extension discussed in Section 2.1 for
direct networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .topology import Topology, link_key


@dataclass(frozen=True)
class FaultEvent:
    cycle: int
    kind: str            # "link" | "node"
    target: tuple[int, int] | int

    def __post_init__(self):
        if self.kind not in ("link", "node"):
            raise ValueError(f"unknown fault kind {self.kind!r}")


class FaultState:
    """Current set of dead links and nodes over a topology."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self.dead_links: set[tuple[int, int]] = set()
        self.dead_nodes: set[int] = set()
        #: bumped on every mutation; consumers cache against it
        self.version = 0
        self._components: list[int] | None = None

    # -- mutation -----------------------------------------------------

    def _invalidate(self) -> None:
        self.version += 1
        self._components = None

    def fail_link(self, a: int, b: int) -> None:
        key = link_key(a, b)
        if key not in self.topology.links():
            raise ValueError(f"no link {key} in topology")
        self.dead_links.add(key)
        self._invalidate()

    def fail_node(self, node: int) -> None:
        if not 0 <= node < self.topology.n_nodes:
            raise ValueError(f"no node {node}")
        self.dead_nodes.add(node)
        self._invalidate()

    def repair_link(self, a: int, b: int) -> None:
        """Undo a link fault (what-if exploration and repair events)."""
        self.dead_links.discard(link_key(a, b))
        self._invalidate()

    def repair_node(self, node: int) -> None:
        self.dead_nodes.discard(node)
        self._invalidate()

    def apply(self, event: FaultEvent) -> None:
        if event.kind == "link":
            a, b = event.target  # type: ignore[misc]
            self.fail_link(a, b)
        else:
            self.fail_node(int(event.target))  # type: ignore[arg-type]

    # -- queries --------------------------------------------------------

    def link_ok(self, a: int, b: int) -> bool:
        """A link works iff itself and both endpoints work (a dead node
        takes its links down with it, assumption ii)."""
        if a in self.dead_nodes or b in self.dead_nodes:
            return False
        return link_key(a, b) not in self.dead_links

    def node_ok(self, node: int) -> bool:
        return node not in self.dead_nodes

    def port_ok(self, node: int, port_id: int) -> bool:
        p = self.topology.port(node, port_id)
        if p is None:
            return False
        return self.link_ok(node, p.neighbor)

    def alive_ports(self, node: int) -> list[int]:
        return [pid for pid in self.topology.ports(node)
                if self.port_ok(node, pid)]

    def n_faults(self) -> int:
        return len(self.dead_links) + len(self.dead_nodes)

    def connected(self, a: int, b: int) -> bool:
        """Is b reachable from a over healthy links/nodes?  Uses a
        component labelling cached until the fault set changes (faults
        are rare events; connectivity queries happen per message)."""
        if not (self.node_ok(a) and self.node_ok(b)):
            return False
        if a == b:
            return True
        comp = self._component_labels()
        return comp[a] == comp[b] and comp[a] >= 0

    def _component_labels(self) -> list[int]:
        if self._components is not None:
            return self._components
        n = self.topology.n_nodes
        labels = [-1] * n
        next_label = 0
        for start in range(n):
            if labels[start] >= 0 or not self.node_ok(start):
                continue
            labels[start] = next_label
            stack = [start]
            while stack:
                cur = stack.pop()
                for p in self.topology.ports(cur).values():
                    nb = p.neighbor
                    if labels[nb] < 0 and self.link_ok(cur, nb):
                        labels[nb] = next_label
                        stack.append(nb)
            next_label += 1
        self._components = labels
        return labels

    def snapshot(self) -> tuple[frozenset, frozenset]:
        return frozenset(self.dead_links), frozenset(self.dead_nodes)


@dataclass
class FaultSchedule:
    """Time-ordered fault injections for a simulation run.

    ``due`` is answered from a cycle-keyed index built once and rebuilt
    lazily whenever ``events`` grew — the simulator asks it every cycle
    of every run, and the old full-list scan showed up in profiles of
    long chaos campaigns.
    """

    events: list[FaultEvent] = field(default_factory=list)
    _by_cycle: dict[int, list[FaultEvent]] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _n_indexed: int = field(default=0, init=False, repr=False, compare=False)

    def add_link_fault(self, cycle: int, a: int, b: int) -> "FaultSchedule":
        self.events.append(FaultEvent(cycle, "link", link_key(a, b)))
        return self

    def add_node_fault(self, cycle: int, node: int) -> "FaultSchedule":
        self.events.append(FaultEvent(cycle, "node", node))
        return self

    def due(self, cycle: int) -> list[FaultEvent]:
        if self._n_indexed != len(self.events):
            index: dict[int, list[FaultEvent]] = {}
            for e in self.events:
                index.setdefault(e.cycle, []).append(e)
            self._by_cycle = index
            self._n_indexed = len(self.events)
        return self._by_cycle.get(cycle, [])

    def last_cycle(self) -> int:
        return max((e.cycle for e in self.events), default=-1)

    def validate(self, topology: Topology) -> None:
        """Fail fast at setup time if any event targets a link or node
        the topology does not have (instead of mid-run at the fault
        instant, deep inside a simulation)."""
        links = topology.links()
        for e in self.events:
            if e.cycle < 0:
                raise ValueError(f"fault event at negative cycle {e.cycle}")
            if e.kind == "link":
                a, b = e.target  # type: ignore[misc]
                if link_key(a, b) not in links:
                    raise ValueError(
                        f"fault schedule targets link {link_key(a, b)} "
                        f"which is not in the topology")
            else:
                node = int(e.target)  # type: ignore[arg-type]
                if not 0 <= node < topology.n_nodes:
                    raise ValueError(
                        f"fault schedule targets node {node} but the "
                        f"topology has nodes 0..{topology.n_nodes - 1}")

    @classmethod
    def static(cls, links=(), nodes=()) -> "FaultSchedule":
        """All faults present from cycle 0 (the common evaluation setup
        in the fault-tolerant routing literature)."""
        s = cls()
        for a, b in links:
            s.add_link_fault(0, a, b)
        for n in nodes:
            s.add_node_fault(0, n)
        return s


def random_link_faults(topology: Topology, n: int, rng,
                       keep_connected: bool = True,
                       max_tries: int = 2000) -> list[tuple[int, int]]:
    """Draw n distinct random link faults, optionally preserving global
    connectivity of the healthy subnetwork (so Condition 3 remains
    satisfiable and experiments measure routing, not partitions)."""
    links = sorted(topology.links())
    chosen: list[tuple[int, int]] = []
    state = FaultState(topology)
    tries = 0
    while len(chosen) < n:
        tries += 1
        if tries > max_tries:
            raise RuntimeError(f"could not place {n} faults while keeping "
                               f"the network connected")
        idx = int(rng.integers(0, len(links)))
        link = links[idx]
        if link in state.dead_links:
            continue
        state.fail_link(*link)
        if keep_connected and not _all_connected(state):
            state.repair_link(*link)
            continue
        chosen.append(link)
    return chosen


def random_node_faults(topology: Topology, n: int, rng,
                       keep_connected: bool = True,
                       max_tries: int = 2000) -> list[int]:
    """Draw n distinct random node faults; with ``keep_connected`` the
    *surviving* nodes stay mutually reachable (the standard setup for
    node-fault experiments — partitions measure topology, not
    routing)."""
    chosen: list[int] = []
    state = FaultState(topology)
    tries = 0
    while len(chosen) < n:
        tries += 1
        if tries > max_tries:
            raise RuntimeError(f"could not place {n} node faults while "
                               f"keeping the survivors connected")
        node = int(rng.integers(0, topology.n_nodes))
        if node in state.dead_nodes:
            continue
        state.fail_node(node)
        if keep_connected and not _all_connected(state):
            state.repair_node(node)
            continue
        chosen.append(node)
    return chosen


def _all_connected(state: FaultState) -> bool:
    topo = state.topology
    alive = [n for n in topo.nodes() if state.node_ok(n)]
    if not alive:
        return True
    seen = {alive[0]}
    stack = [alive[0]]
    while stack:
        cur = stack.pop()
        for p in topo.ports(cur).values():
            nb = p.neighbor
            if nb not in seen and state.link_ok(cur, nb):
                seen.add(nb)
                stack.append(nb)
    return len(seen) == len(alive)

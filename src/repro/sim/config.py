"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SimConfig:
    """Knobs of the flit-level wormhole simulator.

    ``cycles_per_step`` converts rule-interpretation steps into router
    cycles (paper Section 4.3 delay model: one step = wiring + 2 x FCFB
    + one table access; with the default 1998-era numbers that fits one
    10 ns router cycle).  The decision-time benchmarks sweep it.
    """

    buffer_depth: int = 4          # flits per virtual-channel buffer
    cycles_per_step: int = 1       # router cycles per interpretation step
    injection_vc: int = 0          # local-port VC messages enter through
    fault_mode: str = "quiesce"    # "quiesce" honours assumption iv;
    #                                "harsh" kills worms on dying links
    retransmit_dropped: bool = False
    detection_delay: int = 0       # cycles between a fault occurring and
    #                                the Information Units confirming it
    #                                (heartbeat detection; harsh mode only)
    trace_paths: bool = False      # record per-message node paths
    deadlock_threshold: int = 2000  # cycles without progress => deadlock
    active_scheduling: bool = True  # iterate only routers holding flits
    #                                 (and sources with pending worms);
    #                                 cycle-accurate either way — the
    #                                 False setting exists for A/B tests

    def __post_init__(self):
        if self.buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        if self.cycles_per_step < 0:
            raise ValueError("cycles_per_step must be >= 0")
        if self.fault_mode not in ("quiesce", "harsh"):
            raise ValueError(f"unknown fault_mode {self.fault_mode!r}")
        if self.detection_delay < 0:
            raise ValueError("detection_delay must be >= 0")
        if self.detection_delay and self.fault_mode != "harsh":
            raise ValueError("detection_delay needs fault_mode='harsh' "
                             "(quiesce mode models instantaneous, "
                             "message-safe diagnosis)")

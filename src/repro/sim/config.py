"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SimConfig:
    """Knobs of the flit-level wormhole simulator.

    ``cycles_per_step`` converts rule-interpretation steps into router
    cycles (paper Section 4.3 delay model: one step = wiring + 2 x FCFB
    + one table access; with the default 1998-era numbers that fits one
    10 ns router cycle).  The decision-time benchmarks sweep it.

    The reliability layer is opt-in and neutral when disabled: with
    ``detection_delay=0``, ``diagnosis_hop_delay=0``, ``retry_limit=0``
    and ``hop_budget=0`` (the defaults) the simulator behaves
    bit-for-bit like the pre-reliability code paths.
    """

    buffer_depth: int = 4          # flits per virtual-channel buffer
    cycles_per_step: int = 1       # router cycles per interpretation step
    injection_vc: int = 0          # local-port VC messages enter through
    fault_mode: str = "quiesce"    # "quiesce" honours assumption iv;
    #                                "harsh" kills worms on dying links
    retransmit_dropped: bool = False  # legacy: immediate re-offer of a
    #                                   ripped-up message, no backoff
    detection_delay: int = 0       # cycles between a fault occurring and
    #                                the Information Units confirming it
    #                                (heartbeat detection; harsh mode only)
    diagnosis_hop_delay: int = 0   # cycles per hop for the fault-
    #                                notification flood (0 = instant
    #                                global knowledge, the legacy model;
    #                                harsh mode only)
    retry_limit: int = 0           # max source-retransmission attempts per
    #                                message (0 = retries disabled)
    retry_backoff: int = 16        # base backoff in cycles; attempt k
    #                                waits retry_backoff * 2**(k-1) after
    #                                the source's view confirms the fault
    hop_budget: int = 0            # livelock guard: a message exceeding
    #                                this many hops is declared stuck
    #                                (0 = disabled)
    backup_routes: bool = False    # LFA-style fast reroute: precompile
    #                                per-node backup subbases against
    #                                each local link fault, heal worms
    #                                caught on a dying link and re-inject
    #                                locally (harsh mode only; link
    #                                faults — node faults keep the
    #                                rip-up/retry slow path)
    trace_paths: bool = False      # record per-message node paths
    deadlock_threshold: int = 2000  # cycles without progress => deadlock
    active_scheduling: bool = True  # iterate only routers holding flits
    #                                 (and sources with pending worms);
    #                                 cycle-accurate either way — the
    #                                 False setting exists for A/B tests
    engine: str = "object"         # "object": per-flit Python objects
    #                                (the bit-exact oracle); "batched":
    #                                the struct-of-arrays engine of
    #                                repro.sim.batched — same results,
    #                                selected via build_network()
    policy: str = "deterministic"  # output-selection policy over the
    #                                legal candidate list (see
    #                                repro.routing.select): the default
    #                                keeps the algorithm's adaptivity
    #                                order bit-identical; "ecmp",
    #                                "flowlet" and "credit" re-order it
    #                                for load balancing (object engine
    #                                only — build_network falls back)
    policy_seed: int = 0           # hash seed for ecmp/flowlet (ignored
    #                                by deterministic/credit)

    def __post_init__(self):
        if self.buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        if self.cycles_per_step < 0:
            raise ValueError("cycles_per_step must be >= 0")
        if self.fault_mode not in ("quiesce", "harsh"):
            raise ValueError(f"unknown fault_mode {self.fault_mode!r}")
        if self.detection_delay < 0:
            raise ValueError("detection_delay must be >= 0")
        if self.detection_delay and self.fault_mode != "harsh":
            raise ValueError("detection_delay needs fault_mode='harsh' "
                             "(quiesce mode models instantaneous, "
                             "message-safe diagnosis)")
        if self.diagnosis_hop_delay < 0:
            raise ValueError("diagnosis_hop_delay must be >= 0")
        if self.diagnosis_hop_delay and self.fault_mode != "harsh":
            raise ValueError("diagnosis_hop_delay needs fault_mode='harsh' "
                             "(quiesce mode quiesces the network for an "
                             "atomic, global diagnosis phase)")
        if self.retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        if self.retry_backoff < 1:
            raise ValueError("retry_backoff must be >= 1 cycle")
        if self.hop_budget < 0:
            raise ValueError("hop_budget must be >= 0")
        if self.backup_routes and self.fault_mode != "harsh":
            raise ValueError("backup_routes needs fault_mode='harsh' "
                             "(quiesce mode loses no messages, so there "
                             "is no recovery gap to close)")
        if self.engine not in ("object", "batched"):
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"choose 'object' or 'batched'")
        # lazy import: repro.routing pulls in modules that import
        # repro.sim, so a top-level import here would be circular
        from ..routing.select import POLICIES
        if self.policy not in POLICIES:
            raise ValueError(f"unknown selection policy {self.policy!r}; "
                             f"choose from {sorted(POLICIES)}")
        if self.retry_limit and self.retransmit_dropped:
            raise ValueError("retry_limit and the legacy "
                             "retransmit_dropped are mutually exclusive; "
                             "use retry_limit")

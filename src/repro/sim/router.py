"""Wormhole router model.

Mirrors the paper's architecture (Figure 3): input/output buffers per
virtual channel form the data path; the control unit (here: a
:class:`~repro.routing.base.RoutingAlgorithm`, which in turn may be a
compiled rule program) makes routing decisions that take a configurable
number of interpretation steps; the connection unit is a crossbar that
moves at most one flit per input port and one per output port each
cycle; the message interface lets the control read and modify headers.

Flow control is credit-accurate: a flit is only forwarded when the
downstream virtual-channel buffer has space for it *this* cycle
(incoming flits staged by other routers count).  Virtual-channel
allocation is wormhole-standard: an output VC belongs to one worm from
head grant to tail traversal.

The local injection/ejection port is ``LOCAL`` (= -1): injected worms
enter through local input VC buffers and take part in normal routing;
delivered worms leave through the local output port (one flit per
cycle, like any physical port, but with no downstream buffer limit).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .arbiter import Request
from .flit import Flit, Header
from .topology import Port

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

LOCAL = -1

IDLE = "idle"        # no worm assigned; head (if any) needs a route
ROUTING = "routing"  # decision made, waiting out the decision latency
ROUTED = "routed"    # eligible for VC/switch allocation
ACTIVE = "active"    # worm holds an output VC; body/tail streaming


@dataclass
class InputVC:
    port: int
    vc: int
    capacity: int
    buffer: deque = field(default_factory=deque)
    incoming: list = field(default_factory=list)
    state: str = IDLE
    decision: "object | None" = None       # RouteDecision while ROUTED
    ready_cycle: int = 0                   # decision latency expiry
    out_port: int | None = None
    out_vc: int | None = None
    header: Header | None = None           # header of the current worm

    @property
    def space(self) -> int:
        return self.capacity - len(self.buffer) - len(self.incoming)

    @property
    def front(self) -> Flit | None:
        return self.buffer[0] if self.buffer else None

    def flush_incoming(self) -> None:
        if self.incoming:
            self.buffer.extend(self.incoming)
            self.incoming.clear()

    def release_worm(self) -> None:
        self.state = IDLE
        self.decision = None
        self.out_port = None
        self.out_vc = None
        self.header = None


@dataclass
class OutputVC:
    port: int
    vc: int
    owner: tuple[int, int] | None = None   # (in_port, in_vc) of the worm


class Router:
    def __init__(self, network: "Network", node: int):
        self.network = network
        self.node = node
        self.topology = network.topology
        cfg = network.config
        n_vcs = network.algorithm.n_vcs
        self.n_vcs = n_vcs
        self.ports: dict[int, Port] = dict(self.topology.ports(node))
        port_ids = [LOCAL] + sorted(self.ports)
        self.input_vcs: dict[int, list[InputVC]] = {
            pid: [InputVC(pid, v, cfg.buffer_depth) for v in range(n_vcs)]
            for pid in port_ids}
        self.output_vcs: dict[int, list[OutputVC]] = {
            pid: [OutputVC(pid, v) for v in range(n_vcs)]
            for pid in port_ids}
        # incremental flit count (kept in sync by the transfer sites)
        self.n_flits = 0
        self._alive_version = -1
        self._alive: dict[int, bool] = {}

    # -- views used by routing algorithms ---------------------------------------

    def _refresh_alive(self) -> None:
        faults = self.network.faults
        if self._alive_version != faults.version:
            self._alive = {pid: faults.port_ok(self.node, pid)
                           for pid in self.ports}
            self._alive_version = faults.version

    def alive_ports(self) -> list[int]:
        self._refresh_alive()
        return [pid for pid, ok in self._alive.items() if ok]

    def port_alive(self, pid: int) -> bool:
        if pid == LOCAL:
            return True
        self._refresh_alive()
        return self._alive.get(pid, False)

    def neighbor(self, pid: int) -> int | None:
        p = self.ports.get(pid)
        return p.neighbor if p else None

    def output_free(self, pid: int, vc: int) -> bool:
        """Can a new head claim this output VC right now?"""
        if not self.port_alive(pid):
            return False
        if self.output_vcs[pid][vc].owner is not None:
            return False
        return self.credits(pid, vc) > 0

    def credits(self, pid: int, vc: int) -> int:
        """Free space in the downstream buffer this output feeds."""
        if pid == LOCAL:
            return 1 << 30
        port = self.ports[pid]
        down = self.network.routers[port.neighbor]
        return down.input_vcs[port.neighbor_port][vc].space

    def output_load(self, pid: int) -> int:
        """Adaptivity metric: data committed to this output — occupied
        downstream buffer slots plus worms holding its VCs."""
        if pid == LOCAL:
            return 0
        port = self.ports[pid]
        down = self.network.routers[port.neighbor]
        occupancy = sum(len(iv.buffer) + len(iv.incoming)
                        for iv in down.input_vcs[port.neighbor_port])
        owned = sum(1 for ov in self.output_vcs[pid] if ov.owner is not None)
        return occupancy + owned

    def queue_length(self, pid: int, vc: int) -> int:
        """Occupancy of the downstream VC buffer (NARA's mean_queue)."""
        if pid == LOCAL:
            return 0
        port = self.ports[pid]
        down = self.network.routers[port.neighbor]
        iv = down.input_vcs[port.neighbor_port][vc]
        return len(iv.buffer) + len(iv.incoming)

    # -- cycle phases (driven by Network.step) --------------------------------------

    def flush_incoming(self) -> None:
        for vcs in self.input_vcs.values():
            for iv in vcs:
                iv.flush_incoming()

    def route_stage(self, cycle: int) -> None:
        """Compute routes for heads at the front of IDLE input VCs and
        refresh candidate lists for ROUTED (possibly blocked) heads."""
        if self.n_flits == 0:
            return
        algo = self.network.algorithm
        cfg = self.network.config
        stuck_messages: list[int] = []
        for vcs in self.input_vcs.values():
            for iv in vcs:
                front = iv.front
                if front is None:
                    continue
                if iv.state == IDLE:
                    if not front.is_head:
                        raise RuntimeError(
                            f"node {self.node}: body flit of message "
                            f"{front.msg_id} at the front of an idle VC")
                    header = front.header
                    assert header is not None
                    decision = algo.route(self, header, iv.port, iv.vc)
                    self.network.stats.count_decision(decision.steps)
                    latency = max(1, decision.steps * cfg.cycles_per_step)
                    iv.state = ROUTING
                    iv.header = header
                    iv.decision = decision
                    iv.ready_cycle = cycle + latency - 1
                if iv.state == ROUTING and cycle >= iv.ready_cycle:
                    iv.state = ROUTED
                elif iv.state == ROUTED:
                    # refresh adaptivity ordering while blocked (the
                    # hardware's premises are continuously evaluated);
                    # costs no additional interpretation steps.
                    assert iv.header is not None
                    iv.decision = algo.route(self, iv.header, iv.port, iv.vc)
                if iv.state == ROUTED and iv.decision is not None \
                        and getattr(iv.decision, "stuck", False):
                    assert iv.header is not None
                    stuck_messages.append(iv.header.msg_id)
        for msg_id in stuck_messages:
            self.network.message_stuck(msg_id)

    def collect_requests(self) -> list[Request]:
        """Requests for this cycle's switch allocation."""
        out: list[Request] = []
        if self.n_flits == 0:
            return out
        for vcs in self.input_vcs.values():
            for iv in vcs:
                front = iv.front
                if front is None:
                    continue
                if iv.state == ROUTED:
                    decision = iv.decision
                    assert decision is not None
                    if decision.deliver:
                        out.append(Request(iv.port, iv.vc, LOCAL, iv.vc,
                                           iv.header, True))
                        continue
                    for pid, vc in decision.candidates:
                        if self.output_free(pid, vc):
                            out.append(Request(iv.port, iv.vc, pid, vc,
                                               iv.header, True))
                            break  # one request per input VC per cycle
                elif iv.state == ACTIVE:
                    assert iv.out_port is not None and iv.out_vc is not None
                    # a dead link stalls the worm where it stands (it is
                    # ripped up when the fault is confirmed)
                    if self.port_alive(iv.out_port) \
                            and self.credits(iv.out_port, iv.out_vc) > 0:
                        out.append(Request(iv.port, iv.vc, iv.out_port,
                                           iv.out_vc, iv.header, False))
        return out

    def grant(self, req: Request, cycle: int) -> None:
        """Execute one granted request: move the front flit."""
        iv = self.input_vcs[req.in_port][req.in_vc]
        flit = iv.buffer.popleft()
        self.n_flits -= 1
        if req.is_head:
            if req.out_port != LOCAL:
                self.output_vcs[req.out_port][req.out_vc].owner = (
                    req.in_port, req.in_vc)
            else:
                self.output_vcs[LOCAL][req.out_vc].owner = (
                    req.in_port, req.in_vc)
            iv.state = ACTIVE
            iv.out_port = req.out_port
            iv.out_vc = req.out_vc
            assert iv.header is not None
            self.network.algorithm.on_depart(self, iv.header, req.out_port,
                                             req.out_vc)
            if self.network.config.trace_paths:
                iv.header.fields.setdefault("trace", []).append(self.node)
        if flit.is_tail:
            self.output_vcs[req.out_port][req.out_vc].owner = None
            iv.release_worm()
        self._forward(flit, req.out_port, req.out_vc, cycle)

    def _forward(self, flit: Flit, out_port: int, out_vc: int,
                 cycle: int) -> None:
        net = self.network
        if out_port == LOCAL:
            net.eject(self.node, flit, cycle)
            return
        port = self.ports[out_port]
        if not self.port_alive(out_port):  # pragma: no cover - guarded earlier
            raise RuntimeError(f"node {self.node}: forwarding over the dead "
                               f"port {out_port}")
        down = net.routers[port.neighbor]
        target = down.input_vcs[port.neighbor_port][out_vc]
        if target.space <= 0:  # pragma: no cover - credit check guards this
            raise RuntimeError(
                f"buffer overflow: node {self.node} -> {port.neighbor} "
                f"port {port.neighbor_port} vc {out_vc}")
        target.incoming.append(flit)
        down.n_flits += 1
        net.stats.count_flit_hop()

    # -- fault handling -----------------------------------------------------------

    def worms_using_port(self, pid: int) -> set[int]:
        """Message ids of worms currently assigned to output ``pid``."""
        out = set()
        for vcs in self.input_vcs.values():
            for iv in vcs:
                if iv.state == ACTIVE and iv.out_port == pid and iv.header:
                    out.add(iv.header.msg_id)
        return out

    def purge_message(self, msg_id: int) -> int:
        """Remove every flit of a message from this router; returns the
        number of flits dropped.  Used by the 'harsh' fault mode."""
        dropped = 0
        for vcs in self.input_vcs.values():
            for iv in vcs:
                before = len(iv.buffer) + len(iv.incoming)
                iv.buffer = deque(f for f in iv.buffer if f.msg_id != msg_id)
                iv.incoming = [f for f in iv.incoming if f.msg_id != msg_id]
                dropped += before - len(iv.buffer) - len(iv.incoming)
                if iv.header is not None and iv.header.msg_id == msg_id:
                    if iv.out_port is not None:
                        ov = self.output_vcs[iv.out_port][iv.out_vc]
                        if ov.owner == (iv.port, iv.vc):
                            ov.owner = None
                    iv.release_worm()
                elif iv.state != IDLE and iv.header is None:  # pragma: no cover
                    iv.release_worm()
        self.n_flits -= dropped
        return dropped

    def occupancy(self) -> int:
        return self.n_flits

"""Wormhole router model.

Mirrors the paper's architecture (Figure 3): input/output buffers per
virtual channel form the data path; the control unit (here: a
:class:`~repro.routing.base.RoutingAlgorithm`, which in turn may be a
compiled rule program) makes routing decisions that take a configurable
number of interpretation steps; the connection unit is a crossbar that
moves at most one flit per input port and one per output port each
cycle; the message interface lets the control read and modify headers.

Flow control is credit-accurate: a flit is only forwarded when the
downstream virtual-channel buffer has space for it *this* cycle
(incoming flits staged by other routers count).  Virtual-channel
allocation is wormhole-standard: an output VC belongs to one worm from
head grant to tail traversal.

The local injection/ejection port is ``LOCAL`` (= -1): injected worms
enter through local input VC buffers and take part in normal routing;
delivered worms leave through the local output port (one flit per
cycle, like any physical port, but with no downstream buffer limit).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..obs import events as trace_ev
from .arbiter import Request
from .flit import Flit, Header
from .topology import Port

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

LOCAL = -1

IDLE = "idle"        # no worm assigned; head (if any) needs a route
ROUTING = "routing"  # decision made, waiting out the decision latency
ROUTED = "routed"    # eligible for VC/switch allocation
ACTIVE = "active"    # worm holds an output VC; body/tail streaming


@dataclass
class InputVC:
    port: int
    vc: int
    capacity: int
    buffer: deque = field(default_factory=deque)
    incoming: list = field(default_factory=list)
    state: str = IDLE
    decision: "object | None" = None       # RouteDecision while ROUTED
    ready_cycle: int = 0                   # decision latency expiry
    epoch: int = 0                         # route_epoch of the decision
    out_port: int | None = None
    out_vc: int | None = None
    header: Header | None = None           # header of the current worm

    @property
    def space(self) -> int:
        return self.capacity - len(self.buffer) - len(self.incoming)

    @property
    def front(self) -> Flit | None:
        return self.buffer[0] if self.buffer else None

    def flush_incoming(self) -> None:
        if self.incoming:
            self.buffer.extend(self.incoming)
            self.incoming.clear()

    def release_worm(self) -> None:
        self.state = IDLE
        self.decision = None
        self.out_port = None
        self.out_vc = None
        self.header = None


@dataclass
class OutputVC:
    port: int
    vc: int
    owner: tuple[int, int] | None = None   # (in_port, in_vc) of the worm


class Router:
    def __init__(self, network: "Network", node: int):
        self.network = network
        self.node = node
        self.topology = network.topology
        cfg = network.config
        n_vcs = network.algorithm.n_vcs
        self.n_vcs = n_vcs
        self.ports: dict[int, Port] = dict(self.topology.ports(node))
        port_ids = [LOCAL] + sorted(self.ports)
        self.input_vcs: dict[int, list[InputVC]] = {
            pid: [InputVC(pid, v, cfg.buffer_depth) for v in range(n_vcs)]
            for pid in port_ids}
        self.output_vcs: dict[int, list[OutputVC]] = {
            pid: [OutputVC(pid, v) for v in range(n_vcs)]
            for pid in port_ids}
        # incremental flit count (kept in sync by the transfer sites)
        self.n_flits = 0
        # True while any input VC has staged incoming flits; lets
        # flush_incoming skip the VC scan on quiet routers
        self._has_incoming = False
        self._alive_version = -1
        self._alive: dict[int, bool] = {}
        # flat view of the input VCs, in allocation order (LOCAL first,
        # then ascending ports) — the per-cycle phases iterate this
        self._ivs: tuple[InputVC, ...] = tuple(
            iv for vcs in self.input_vcs.values() for iv in vcs)
        # per-port (downstream router, downstream input VCs) — resolved
        # by finalize() once every router of the network exists
        self._down: dict[int, tuple["Router", list[InputVC]]] = {}
        # output_load memo, valid while the network's load token stands
        self._load_token = -1
        self._loads: dict[int, int] = {}

    def finalize(self) -> None:
        """Resolve downstream buffer references (called by the network
        after all routers are constructed)."""
        routers = self.network.routers
        self._down = {
            pid: (routers[port.neighbor],
                  routers[port.neighbor].input_vcs[port.neighbor_port])
            for pid, port in self.ports.items()}

    # -- views used by routing algorithms ---------------------------------------

    def _refresh_alive(self) -> None:
        faults = self.network.faults
        if self._alive_version != faults.version:
            self._alive = {pid: faults.port_ok(self.node, pid)
                           for pid in self.ports}
            self._alive_version = faults.version

    def alive_ports(self) -> list[int]:
        self._refresh_alive()
        return [pid for pid, ok in self._alive.items() if ok]

    def port_alive(self, pid: int) -> bool:
        if pid == LOCAL:
            return True
        faults = self.network.faults
        if self._alive_version != faults.version:
            self._alive = {p: faults.port_ok(self.node, p)
                           for p in self.ports}
            self._alive_version = faults.version
        return self._alive.get(pid, False)

    def neighbor(self, pid: int) -> int | None:
        p = self.ports.get(pid)
        return p.neighbor if p else None

    def output_free(self, pid: int, vc: int) -> bool:
        """Can a new head claim this output VC right now?"""
        if not self.port_alive(pid):
            return False
        if self.output_vcs[pid][vc].owner is not None:
            return False
        return self.credits(pid, vc) > 0

    def credits(self, pid: int, vc: int) -> int:
        """Free space in the downstream buffer this output feeds."""
        if pid == LOCAL:
            return 1 << 30
        iv = self._down[pid][1][vc]
        return iv.capacity - len(iv.buffer) - len(iv.incoming)

    def output_load(self, pid: int) -> int:
        """Adaptivity metric: data committed to this output — occupied
        downstream buffer slots plus worms holding its VCs.  Memoized
        against the network's load token, which advances whenever any
        buffer content or VC ownership changes (grants, purges) — so
        every adaptive route decision of one cycle shares the figures
        the full recomputation would produce."""
        if pid == LOCAL:
            return 0
        token = self.network._load_token
        if self._load_token != token:
            self._load_token = token
            self._loads.clear()
        out = self._loads.get(pid)
        if out is None:
            out = 0
            for iv in self._down[pid][1]:
                out += len(iv.buffer) + len(iv.incoming)
            for ov in self.output_vcs[pid]:
                if ov.owner is not None:
                    out += 1
            self._loads[pid] = out
        return out

    def queue_length(self, pid: int, vc: int) -> int:
        """Occupancy of the downstream VC buffer (NARA's mean_queue)."""
        if pid == LOCAL:
            return 0
        iv = self._down[pid][1][vc]
        return len(iv.buffer) + len(iv.incoming)

    # -- cycle phases (driven by Network.step) --------------------------------------

    def flush_incoming(self) -> None:
        if not self._has_incoming:
            return
        self._has_incoming = False
        for iv in self._ivs:
            if iv.incoming:
                iv.buffer.extend(iv.incoming)
                iv.incoming.clear()

    def route_stage(self, cycle: int) -> None:
        """Compute routes for heads at the front of IDLE input VCs and
        refresh candidate lists for ROUTED (possibly blocked) heads."""
        if self.n_flits == 0:
            return
        net = self.network
        algo = net.algorithm
        adaptive = algo.adaptive
        epoch = net.route_epoch
        cycles_per_step = net.config.cycles_per_step
        hop_budget = net.config.hop_budget
        tr = net.tracer
        stuck_messages: list[int] = []
        for iv in self._ivs:
            buf = iv.buffer
            if not buf:
                continue
            state = iv.state
            if state == IDLE:
                front = buf[0]
                if not front.is_head:
                    raise RuntimeError(
                        f"node {self.node}: body flit of message "
                        f"{front.msg_id} at the front of an idle VC")
                header = front.header
                assert header is not None
                if hop_budget and header.path_len > hop_budget:
                    # network-level livelock guard: the worm burned its
                    # hop budget without reaching the destination
                    stuck_messages.append(header.msg_id)
                    continue
                decision = algo.route(self, header, iv.port, iv.vc)
                policy = net.policy
                if policy is not None and not decision.deliver:
                    # re-order the legal candidates before the digest
                    # update, so decision digests reflect (and pin) the
                    # policy's choice too
                    decision.candidates = policy.select(
                        self, header, decision.candidates)
                net.stats.count_decision(decision.steps)
                dg = net.stats.digest
                if dg is not None:
                    dg.update(self.node, header.msg_id, decision)
                if tr.enabled:
                    tr.emit(trace_ev.RULE_DECISION, node=self.node,
                            msg_id=header.msg_id, steps=decision.steps,
                            deliver=decision.deliver,
                            candidates=len(decision.candidates))
                latency = max(1, decision.steps * cycles_per_step)
                iv.state = state = ROUTING
                iv.header = header
                iv.decision = decision
                iv.epoch = epoch
                iv.ready_cycle = cycle + latency - 1
            if state == ROUTING:
                if cycle >= iv.ready_cycle:
                    iv.state = ROUTED
            elif state == ROUTED and (adaptive or iv.epoch != epoch):
                # refresh adaptivity ordering while blocked (the
                # hardware's premises are continuously evaluated); costs
                # no additional interpretation steps.  Deterministic
                # (non-adaptive) decisions are refreshed only after the
                # fault knowledge changed — nothing else can alter them.
                assert iv.header is not None
                iv.decision = algo.route(self, iv.header, iv.port, iv.vc)
                policy = net.policy
                if policy is not None and not iv.decision.deliver:
                    iv.decision.candidates = policy.select(
                        self, iv.header, iv.decision.candidates)
                iv.epoch = epoch
            if iv.state == ROUTED and iv.decision is not None \
                    and iv.decision.stuck:
                assert iv.header is not None
                stuck_messages.append(iv.header.msg_id)
        for msg_id in stuck_messages:
            net.message_stuck(msg_id)

    def collect_requests(self) -> list[Request]:
        """Requests for this cycle's switch allocation.  The body
        inlines ``output_free``/``credits``/``port_alive`` — this runs
        once per flit-holding router per cycle and dominated profiles
        as separate calls."""
        out: list[Request] = []
        if self.n_flits == 0:
            return out
        faults = self.network.faults
        if self._alive_version != faults.version:
            self._alive = {p: faults.port_ok(self.node, p)
                           for p in self.ports}
            self._alive_version = faults.version
        alive = self._alive
        output_vcs = self.output_vcs
        down = self._down
        for iv in self._ivs:
            if not iv.buffer:
                continue
            state = iv.state
            if state == ROUTED:
                decision = iv.decision
                assert decision is not None
                if decision.deliver:
                    out.append(Request(iv.port, iv.vc, LOCAL, iv.vc,
                                       iv.header, True))
                    continue
                for pid, vc in decision.candidates:
                    if pid != LOCAL and not alive.get(pid, False):
                        continue
                    if output_vcs[pid][vc].owner is not None:
                        continue
                    if pid != LOCAL:
                        d = down[pid][1][vc]
                        if len(d.buffer) + len(d.incoming) >= d.capacity:
                            continue
                    out.append(Request(iv.port, iv.vc, pid, vc,
                                       iv.header, True))
                    break  # one request per input VC per cycle
            elif state == ACTIVE:
                out_port = iv.out_port
                assert out_port is not None and iv.out_vc is not None
                # a dead link stalls the worm where it stands (it is
                # ripped up when the fault is confirmed)
                if out_port == LOCAL:
                    out.append(Request(iv.port, iv.vc, out_port,
                                       iv.out_vc, iv.header, False))
                elif alive.get(out_port, False):
                    d = down[out_port][1][iv.out_vc]
                    if len(d.buffer) + len(d.incoming) < d.capacity:
                        out.append(Request(iv.port, iv.vc, out_port,
                                           iv.out_vc, iv.header, False))
        return out

    def grant(self, req: Request, cycle: int) -> None:
        """Execute one granted request: move the front flit."""
        net = self.network
        iv = self.input_vcs[req.in_port][req.in_vc]
        flit = iv.buffer.popleft()
        self.n_flits -= 1
        net._load_token += 1
        out_port = req.out_port
        out_vc = req.out_vc
        if req.is_head:
            self.output_vcs[out_port][out_vc].owner = (req.in_port,
                                                       req.in_vc)
            iv.state = ACTIVE
            iv.out_port = out_port
            iv.out_vc = out_vc
            assert iv.header is not None
            net.algorithm.on_depart(self, iv.header, out_port, out_vc)
            if net.config.trace_paths:
                iv.header.fields.setdefault("trace", []).append(self.node)
        if flit.is_tail:
            self.output_vcs[out_port][out_vc].owner = None
            iv.release_worm()
        self._forward(flit, out_port, out_vc, cycle)

    def _forward(self, flit: Flit, out_port: int, out_vc: int,
                 cycle: int) -> None:
        net = self.network
        if out_port == LOCAL:
            net.eject(self.node, flit, cycle)
            return
        if not self.port_alive(out_port):  # pragma: no cover - guarded earlier
            raise RuntimeError(f"node {self.node}: forwarding over the dead "
                               f"port {out_port}")
        down, down_ivs = self._down[out_port]
        target = down_ivs[out_vc]
        full = len(target.buffer) + len(target.incoming) >= target.capacity
        if full:  # pragma: no cover - credit check guards this
            raise RuntimeError(
                f"buffer overflow: node {self.node} -> {down.node} "
                f"port {self.ports[out_port].neighbor_port} vc {out_vc}")
        target.incoming.append(flit)
        down.n_flits += 1
        down._has_incoming = True
        net._active.add(down.node)
        net.stats.flit_hops += 1
        metrics = net.metrics
        if metrics is not None:
            metrics.count_link(self.node, down.node)

    # -- fault handling -----------------------------------------------------------

    def worms_using_port(self, pid: int) -> set[int]:
        """Message ids of worms currently assigned to output ``pid``."""
        out = set()
        for iv in self._ivs:
            if iv.state == ACTIVE and iv.out_port == pid and iv.header:
                out.add(iv.header.msg_id)
        return out

    def purge_message(self, msg_id: int) -> int:
        """Remove every flit of a message from this router; returns the
        number of flits dropped.  Used by the 'harsh' fault mode."""
        dropped = 0
        for iv in self._ivs:
            before = len(iv.buffer) + len(iv.incoming)
            iv.buffer = deque(f for f in iv.buffer if f.msg_id != msg_id)
            iv.incoming = [f for f in iv.incoming if f.msg_id != msg_id]
            dropped += before - len(iv.buffer) - len(iv.incoming)
            if iv.header is not None and iv.header.msg_id == msg_id:
                if iv.out_port is not None:
                    ov = self.output_vcs[iv.out_port][iv.out_vc]
                    if ov.owner == (iv.port, iv.vc):
                        ov.owner = None
                iv.release_worm()
            elif iv.state != IDLE and iv.header is None:  # pragma: no cover
                iv.release_worm()
        self.n_flits -= dropped
        self.network._load_token += 1
        return dropped

    def occupancy(self) -> int:
        return self.n_flits

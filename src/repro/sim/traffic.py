"""Synthetic traffic generation.

Standard interconnection-network workloads: uniform random, transpose,
bit-complement, bit-reverse, hotspot, nearest-neighbour and fixed
random permutations.  Injection is a Bernoulli process per node with a
given offered load in flits/node/cycle; message lengths are fixed or
drawn from a small range (wormhole-switched worms).

All randomness flows through one :class:`numpy.random.Generator` so
every experiment is reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .topology import Hypercube, Mesh2D, Topology

PatternFn = Callable[[int], int]


def uniform_pattern(topology: Topology, rng: np.random.Generator) -> PatternFn:
    n = topology.n_nodes

    def dest(src: int) -> int:
        d = int(rng.integers(0, n - 1))
        return d if d < src else d + 1  # uniform over others

    def dest_batch(srcs: list[int]) -> list[int]:
        # numpy's bounded-integer generation is element-sequential, so
        # one sized draw consumes the bit stream exactly like len(srcs)
        # scalar calls — the RNG stream (and every pinned digest) is
        # unchanged; the per-call Generator overhead is paid once
        ds = rng.integers(0, n - 1, size=len(srcs)).tolist()
        return [d if d < s else d + 1 for d, s in zip(ds, srcs)]

    dest.batch = dest_batch
    return dest


def transpose_pattern(topology: Topology) -> PatternFn:
    if not isinstance(topology, Mesh2D):
        raise ValueError("transpose needs a 2-D mesh/torus")
    if topology.width != topology.height:
        raise ValueError("transpose needs a square mesh")

    def dest(src: int) -> int:
        x, y = topology.coords(src)
        return topology.node_at(y, x)

    return dest


def bit_complement_pattern(topology: Topology) -> PatternFn:
    n = topology.n_nodes
    if n & (n - 1):
        raise ValueError("bit-complement needs a power-of-two node count")
    mask = n - 1

    def dest(src: int) -> int:
        return src ^ mask

    return dest


def bit_reverse_pattern(topology: Topology) -> PatternFn:
    n = topology.n_nodes
    if n & (n - 1):
        raise ValueError("bit-reverse needs a power-of-two node count")
    bits = (n - 1).bit_length()

    def dest(src: int) -> int:
        out = 0
        for i in range(bits):
            if src >> i & 1:
                out |= 1 << (bits - 1 - i)
        return out

    return dest


def hotspot_pattern(topology: Topology, rng: np.random.Generator,
                    hotspot: int | None = None,
                    fraction: float = 0.2) -> PatternFn:
    """Uniform traffic with an extra ``fraction`` directed at one node."""
    n = topology.n_nodes
    if hotspot is None:
        hotspot = n // 2
    uni = uniform_pattern(topology, rng)
    spot = int(hotspot)

    def dest(src: int) -> int:
        if src != spot and rng.random() < fraction:
            return spot
        d = uni(src)
        return d

    return dest


def neighbor_pattern(topology: Topology, rng: np.random.Generator) -> PatternFn:
    def dest(src: int) -> int:
        nbrs = topology.neighbors(src)
        return nbrs[int(rng.integers(0, len(nbrs)))]

    return dest


def permutation_pattern(topology: Topology,
                        rng: np.random.Generator) -> PatternFn:
    """A fixed random permutation without fixed points (derangement by
    rejection; retries are cheap at these sizes)."""
    n = topology.n_nodes
    while True:
        perm = rng.permutation(n)
        if not np.any(perm == np.arange(n)):
            break
    table = [int(x) for x in perm]

    def dest(src: int) -> int:
        return table[src]

    return dest


def dimension_reverse_pattern(topology: Topology) -> PatternFn:
    """Hypercube 'dimension reversal': destination = src with the low
    and high halves of the address swapped."""
    if not isinstance(topology, Hypercube):
        raise ValueError("dimension-reverse needs a hypercube")
    d = topology.dimension
    half = d // 2
    low = (1 << half) - 1

    def dest(src: int) -> int:
        lo = src & low
        hi = src >> half
        return (lo << (d - half)) | hi

    return dest


PATTERNS = {
    "uniform": lambda topo, rng, **kw: uniform_pattern(topo, rng),
    "transpose": lambda topo, rng, **kw: transpose_pattern(topo),
    "bit_complement": lambda topo, rng, **kw: bit_complement_pattern(topo),
    "bit_reverse": lambda topo, rng, **kw: bit_reverse_pattern(topo),
    "hotspot": lambda topo, rng, **kw: hotspot_pattern(topo, rng, **kw),
    "neighbor": lambda topo, rng, **kw: neighbor_pattern(topo, rng),
    "permutation": lambda topo, rng, **kw: permutation_pattern(topo, rng),
    "dimension_reverse":
        lambda topo, rng, **kw: dimension_reverse_pattern(topo),
}


@dataclass
class TrafficGenerator:
    """Bernoulli message injection against a destination pattern.

    ``load`` is offered load in flits/node/cycle; with fixed message
    length L the per-cycle message probability per node is load / L.
    """

    topology: Topology
    pattern: str = "uniform"
    load: float = 0.1
    message_length: int = 8
    seed: int = 1
    pattern_kwargs: dict | None = None

    def __post_init__(self):
        if not 0.0 <= self.load <= 1.0:
            raise ValueError("load must be in [0, 1] flits/node/cycle")
        if self.message_length < 1:
            raise ValueError("message_length must be >= 1")
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}; choose "
                             f"from {sorted(PATTERNS)}")
        self.rng = np.random.default_rng(self.seed)
        self._dest = PATTERNS[self.pattern](
            self.topology, self.rng, **(self.pattern_kwargs or {}))
        self._p = self.load / self.message_length

    def destinations(self) -> PatternFn:
        return self._dest

    def tick(self, cycle: int) -> list[tuple[int, int, int]]:
        """(src, dst, length) triples to inject this cycle."""
        # one bulk draw per cycle regardless of hits keeps the RNG
        # stream (and thus every experiment) identical to the naive
        # per-node loop while skipping the non-injecting nodes
        draws = self.rng.random(self.topology.n_nodes)
        srcs = (draws < self._p).nonzero()[0].tolist()
        if not srcs:
            return []
        length = self.message_length
        batch = getattr(self._dest, "batch", None)
        if batch is not None:
            return [(src, dst, length)
                    for src, dst in zip(srcs, batch(srcs)) if dst != src]
        out = []
        for src in srcs:
            dst = self._dest(src)
            if dst != src:
                out.append((src, dst, length))
        return out
